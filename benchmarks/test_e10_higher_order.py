"""E10 — conclusion: "high-order parallel function application (as found in
the parallel reduction of a sequence of values using an arbitrary
function)" and the abstract's "translation of function values".

Checks: reduce with builtin / user / lambda functions, reduce applied
*inside* a frame (its recursion then runs at depth 1), and frames holding
*different* function values (group dispatch)."""

import random

import pytest

from repro import FunVal, compile_program

SRC = """
fun compose_demo(v) = reduce(fn(a, b) => a + 2 * b, v)
fun row_reduce(vv) = [v <- vv: reduce(add, v)]
fun row_reduce_max(vv) = [v <- vv: reduce(max2, v)]
fun mixed(v) = [x <- v: (if odd(x) then neg else abs_)(x)]
fun apply_table(x) = [f <- [neg, abs_, neg]: f(x)]
"""


@pytest.fixture(scope="module")
def prog():
    return compile_program(SRC)


class TestHigherOrderReproduction:
    def test_reduce_builtin(self, prog):
        assert prog.run_all("row_reduce", [[[1, 2, 3], [10], [4, 4]]]) == \
            [6, 10, 8]

    def test_reduce_arbitrary_lambda(self, prog):
        v = [5, 1, 7]
        got = prog.run_all("compose_demo", [v])
        # left-to-right pairwise-halving reduction of a + 2b
        assert got == prog.run("compose_demo", [v], backend="interp")

    def test_reduce_max_in_frame(self, prog):
        rng = random.Random(4)
        vv = [[rng.randrange(100) for _ in range(rng.randrange(1, 9))]
              for _ in range(40)]
        assert prog.run_all("row_reduce_max", [vv]) == [max(v) for v in vv]

    def test_mixed_function_frame(self, prog):
        assert prog.run_all("mixed", [[1, -2, 3, -4, 5]]) == [-1, 2, -3, 4, -5]

    def test_function_sequence(self, prog):
        assert prog.run_all("apply_table", [9]) == [-9, 9, -9]

    def test_entry_function_argument(self, prog):
        src = "fun mapf(f, v) = [x <- v: f(x)]"
        p = compile_program(src)
        assert p.run("mapf", [FunVal("abs_"), [-3, 4]],
                     types=["(int) -> int", "seq(int)"]) == [3, 4]


def ragged(rng, rows, width):
    return [[rng.randrange(1000) for _ in range(rng.randrange(1, width))]
            for _ in range(rows)]


def test_bench_reduce_in_frame_vector(benchmark, prog):
    vv = ragged(random.Random(8), 400, 12)
    vm, mono = prog.vcode_vm("row_reduce", [vv])
    out = benchmark(lambda: vm.call(mono, [vv]))
    assert out == [sum(v) for v in vv]


def test_bench_reduce_in_frame_interp(benchmark, prog):
    vv = ragged(random.Random(8), 400, 12)
    out = benchmark(lambda: prog.run("row_reduce", [vv], backend="interp"))
    assert out == [sum(v) for v in vv]


def test_bench_group_dispatch(benchmark, prog):
    rng = random.Random(8)
    v = [rng.randrange(-500, 500) for _ in range(5000)]
    vm, mono = prog.vcode_vm("mixed", [v])
    out = benchmark(lambda: vm.call(mono, [v]))
    assert len(out) == len(v)
