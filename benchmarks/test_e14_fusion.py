"""E14 (extension) — elementwise fusion.

The vector model charges a per-op latency, so chains of elementwise
operations waste steps; fusing them into single ops is the classic
vector-compiler optimization (and the modern one: every NESL-lineage
compiler fuses).  Measured: step count, simulated cycles on a
latency-dominated machine, and wall time — fused vs unfused."""

import random


from repro import TransformOptions, compile_program
from repro.machine import VectorMachine

SRC = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"


def progs():
    on = compile_program(SRC, options=TransformOptions(fuse=True))
    off = compile_program(SRC)
    return on, off


class TestFusionAblation:
    def test_same_results(self):
        on, off = progs()
        rng = random.Random(1)
        v = [rng.randrange(-100, 100) for _ in range(500)]
        assert on.run("f", [v]) == off.run("f", [v])

    def test_fewer_steps(self):
        on, off = progs()
        v = list(range(100))
        _r, t_on = on.vector_trace("f", [v])
        _r, t_off = off.vector_trace("f", [v])
        assert len(t_on) < len(t_off)
        # 8 arithmetic ops collapse into 1 fused op
        arith_on = [op for op, _n in t_on if op.startswith("__fused")]
        assert len(arith_on) == 1

    def test_fewer_cycles_when_latency_dominates(self):
        on, off = progs()
        v = list(range(64))
        _r, t_on = on.vector_trace("f", [v])
        _r, t_off = off.vector_trace("f", [v])
        m = VectorMachine(processors=64, latency=10)
        assert m.run_trace(t_on).cycles < m.run_trace(t_off).cycles


def test_bench_fused(benchmark):
    on, _ = progs()
    v = list(range(50_000))
    vm, mono = on.vcode_vm("f", [v])
    benchmark(lambda: vm.call(mono, [v]))


def test_bench_unfused(benchmark):
    _, off = progs()
    v = list(range(50_000))
    vm, mono = off.vcode_vm("f", [v])
    benchmark(lambda: vm.call(mono, [v]))
