"""E11 — section 4.5 ablations.

Three design decisions the paper calls out, each measured on/off:

1. **shared seq_index** — "If the source parameter is fixed relative to the
   surrounding iterators, there is no need to replicate it ... each set of
   index values would retrieve from their own copy of the source sequence,
   clearly a waste of time and space."  We count replicated elements in the
   vector-op trace and time both variants.
2. **native flatten** — "Flatten can be implemented simply by creating a
   new descriptor vector for the values rather than by creating a new value
   using the reduce and concat function definitions."  Native descriptor
   surgery vs the P-level ``flatten_p`` (recursive reduce of concat_p).
3. **native reductions** — rewriting ``reduce(add, v)`` to the segmented
   ``sum`` primitive.
"""

import random


from repro import TransformOptions, compile_program
from repro.machine import VectorMachine

GATHER = "fun gather(v, ix) = [i <- ix: v[i]]"

rng = random.Random(12)


def trace_work(prog, fname, args):
    _res, trace = prog.vector_trace(fname, args)
    return sum(w for _op, w in trace), len(trace)


class TestSharedIndexAblation:
    def setup_method(self):
        self.v = [rng.randrange(100) for _ in range(2000)]
        self.ix = [rng.randrange(1, 2001) for _ in range(2000)]

    def test_same_results(self):
        on = compile_program(GATHER)
        off = compile_program(GATHER,
                              options=TransformOptions(shared_seq_index=False))
        assert on.run("gather", [self.v, self.ix]) == \
            off.run("gather", [self.v, self.ix])

    def test_shared_does_less_work(self):
        on = compile_program(GATHER)
        off = compile_program(GATHER,
                              options=TransformOptions(shared_seq_index=False))
        w_on, _ = trace_work(on, "gather", [self.v, self.ix])
        w_off, _ = trace_work(off, "gather", [self.v, self.ix])
        # without sharing, the 2000-element source is replicated for each of
        # the 2000 index values somewhere in the pipeline
        assert w_on < w_off, (w_on, w_off)

    def test_simulated_cycles_improve(self):
        on = compile_program(GATHER)
        off = compile_program(GATHER,
                              options=TransformOptions(shared_seq_index=False))
        m = VectorMachine(processors=16, latency=2)
        _r, t_on = on.vector_trace("gather", [self.v, self.ix])
        _r, t_off = off.vector_trace("gather", [self.v, self.ix])
        assert m.run_trace(t_on).cycles <= m.run_trace(t_off).cycles


FLATTEN = """
fun native(vv) = flatten(vv)
fun plevel(vv) = flatten_p(vv)
"""


class TestNativeFlattenAblation:
    def setup_method(self):
        self.vv = [[rng.randrange(50) for _ in range(rng.randrange(0, 9))]
                   for _ in range(600)]

    def test_same_results(self):
        prog = compile_program(FLATTEN)
        flat = [x for row in self.vv for x in row]
        assert prog.run("native", [self.vv]) == flat
        assert prog.run("plevel", [self.vv]) == flat

    def test_native_far_cheaper(self):
        prog = compile_program(FLATTEN)
        w_nat, s_nat = trace_work(prog, "native", [self.vv])
        w_p, s_p = trace_work(prog, "plevel", [self.vv])
        assert w_nat < w_p / 5, (w_nat, w_p)
        assert s_nat < s_p / 5, (s_nat, s_p)


REDUCE = "fun total(v) = reduce(add, v)"


class TestNativeReduceAblation:
    def setup_method(self):
        self.v = [rng.randrange(-50, 50) for _ in range(4096)]

    def test_same_results(self):
        on = compile_program(REDUCE,
                             options=TransformOptions(reduce_to_native=True))
        off = compile_program(REDUCE)
        assert on.run("total", [self.v]) == off.run("total", [self.v]) \
            == sum(self.v)

    def test_native_fewer_steps(self):
        on = compile_program(REDUCE,
                             options=TransformOptions(reduce_to_native=True))
        off = compile_program(REDUCE)
        _w_on, s_on = trace_work(on, "total", [self.v])
        _w_off, s_off = trace_work(off, "total", [self.v])
        # the P-level reduce runs log2(4096) = 12 recursion levels
        assert s_on < s_off / 10, (s_on, s_off)


# -- wall-time benchmarks -------------------------------------------------------

def test_bench_gather_shared(benchmark):
    prog = compile_program(GATHER)
    v = [rng.randrange(100) for _ in range(5000)]
    ix = [rng.randrange(1, 5001) for _ in range(5000)]
    vm, mono = prog.vcode_vm("gather", [v, ix])
    benchmark(lambda: vm.call(mono, [v, ix]))


def test_bench_gather_replicated(benchmark):
    prog = compile_program(GATHER,
                           options=TransformOptions(shared_seq_index=False))
    v = [rng.randrange(100) for _ in range(5000)]
    ix = [rng.randrange(1, 5001) for _ in range(5000)]
    vm, mono = prog.vcode_vm("gather", [v, ix])
    benchmark(lambda: vm.call(mono, [v, ix]))


def test_bench_flatten_native(benchmark):
    prog = compile_program(FLATTEN)
    vv = [[1] * (i % 9) for i in range(600)]
    vm, mono = prog.vcode_vm("native", [vv])
    benchmark(lambda: vm.call(mono, [vv]))


def test_bench_flatten_plevel(benchmark):
    prog = compile_program(FLATTEN)
    vv = [[1] * (i % 9) for i in range(600)]
    vm, mono = prog.vcode_vm("plevel", [vv])
    benchmark(lambda: vm.call(mono, [vv]))


def test_bench_reduce_native(benchmark):
    prog = compile_program(REDUCE,
                           options=TransformOptions(reduce_to_native=True))
    v = list(range(4096))
    vm, mono = prog.vcode_vm("total", [v])
    assert benchmark(lambda: vm.call(mono, [v])) == sum(v)


def test_bench_reduce_plevel(benchmark):
    prog = compile_program(REDUCE)
    v = list(range(4096))
    vm, mono = prog.vcode_vm("total", [v])
    assert benchmark(lambda: vm.call(mono, [v])) == sum(v)
