"""E8 — sections 1 & 6: "excellent load-balance on a wide class of parallel
machines" for *irregular* nested parallelism.

Setup: apply a quadratic-work function to every element of a collection
whose element sizes are increasingly skewed (one element holds up to 90% of
the total work).  Two execution models on a simulated P-processor machine:

* **flattened** (this paper): the VCODE trace of the transformed program,
  every vector op spread over all processors;
* **task-per-element** (what nested code without flattening does): each
  outer element is a task; greedy list scheduling; makespan is bounded
  below by the largest task.

Shape expected: flattened utilization stays high and roughly constant as
skew grows; task-model utilization collapses toward 1/P."""

import random

import pytest

from repro import compile_program
from repro.machine import VectorMachine, greedy_makespan, utilization
from conftest import skewed_sizes

SRC = """
fun work(n) = sum([i <- [1..n]: i * i])
fun all(v) = [n <- v: work(n)]
"""

P = 16


@pytest.fixture(scope="module")
def prog():
    return compile_program(SRC)


def models(prog, sizes):
    """(flattened utilization, task-model utilization) for one input."""
    _res, trace = prog.vector_trace("all", [sizes])
    flat = VectorMachine(processors=P, latency=2).run_trace(trace)

    per_elem = []
    for n in sizes:
        _v, cost = prog.measure("work", [n])
        per_elem.append(cost.work)
    ms = greedy_makespan(per_elem, P)
    return flat.utilization, utilization(per_elem, P, ms)


class TestLoadBalanceShape:
    @pytest.mark.parametrize("skew", [0.0, 0.5, 0.9])
    def test_flattened_beats_task_model_under_skew(self, prog, skew):
        rng = random.Random(11)
        sizes = skewed_sizes(64, skew, base=20, rng=rng)
        flat_u, task_u = models(prog, sizes)
        if skew > 0:
            assert flat_u > task_u, (skew, flat_u, task_u)

    def test_task_model_collapses_with_skew(self, prog):
        rng = random.Random(11)
        _f0, t0 = models(prog, skewed_sizes(64, 0.0, 20, rng))
        _f9, t9 = models(prog, skewed_sizes(64, 0.9, 20, rng))
        assert t9 < 0.5 * t0, (t0, t9)

    def test_flattened_stays_high(self, prog):
        rng = random.Random(11)
        f0, _ = models(prog, skewed_sizes(64, 0.0, 20, rng))
        f9, _ = models(prog, skewed_sizes(64, 0.9, 20, rng))
        assert f9 > 0.6 * f0, (f0, f9)
        assert f9 > 0.5

    def test_task_model_speedup_bounded_by_biggest_task(self, prog):
        # with 90% of the work in one task, task-model speedup <= ~1/0.9
        rng = random.Random(11)
        sizes = skewed_sizes(64, 0.9, 20, rng)
        per_elem = [prog.measure("work", [n])[1].work for n in sizes]
        total = sum(per_elem)
        ms = greedy_makespan(per_elem, P)
        assert total / ms < 1.3


def test_bench_flattened_execution(benchmark, prog):
    rng = random.Random(11)
    sizes = skewed_sizes(64, 0.9, 20, rng)
    vm, mono = prog.vcode_vm("all", [sizes])
    benchmark(lambda: vm.call(mono, [sizes]))


def test_bench_trace_simulation(benchmark, prog):
    rng = random.Random(11)
    sizes = skewed_sizes(64, 0.9, 20, rng)
    _res, trace = prog.vector_trace("all", [sizes])
    m = VectorMachine(processors=P, latency=2)
    r = benchmark(m.run_trace, trace)
    assert r.work > 0
