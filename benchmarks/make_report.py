#!/usr/bin/env python
"""Regenerate every table and figure of the reproduction in one run.

Prints the per-experiment tables recorded in EXPERIMENTS.md.  Each section
is labelled with its experiment id (E1..E19) from DESIGN.md.  E17, E18 and
E19 also write machine-readable ``benchmarks/BENCH_E1?.json`` records
(consumed by the CI ``native-smoke``, ``serve-smoke`` and
``parallel-smoke`` jobs).

Run:  python benchmarks/make_report.py
"""

import random
import sys
import time

sys.path.insert(0, "benchmarks")

from repro import FunVal, TransformOptions, compile_program
from repro.lang.types import INT, seq_of
from repro.machine import VectorMachine, greedy_makespan, utilization
from repro.vector.convert import from_python


def hdr(title):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def timeit(fn, *args, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def e1_e2():
    hdr("E1/E2 — Tables 1 & 2: language constructs and primitives")
    prog = compile_program("""
        fun main(n) =
          let v = [i <- [1..n] | odd(i): i * i],
              t = (sum(v), #v)
          in if t.2 > 0 then t.1 else 0
    """)
    for n in (5, 10, 100):
        a = prog.run("main", [n], backend="interp")
        b = prog.run("main", [n])
        c = prog.run("main", [n], backend="vcode")
        print(f"  main({n:4d}) = {a:8d}   interp==vector=={a == b == c}")


def e3():
    hdr("E3 — Figure 1: representation of [[[2,7],[3,9,8]],[[3],[4,3,2]]]")
    nv = from_python([[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]]], seq_of(INT, 3))
    for i, d in enumerate(nv.descs, 1):
        print(f"  descriptor V{i}: {d.tolist()}")
    print(f"  values:        {nv.values.tolist()}")
    print("  paper:         V1=[2] V2=[2,2] V3=[2,3,1,3] "
          "values=[2,7,3,9,8,3,4,3,2]")


def e4():
    hdr("E4 — Figure 2: extract / insert")
    from repro.vector.extract_insert import extract, insert
    nv = from_python([[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]]], seq_of(INT, 3))
    ex = extract(nv, 2)
    print(f"  extract(V,2): top={ex.descs[0].tolist()} "
          f"next={ex.descs[1].tolist()} (values shared: {ex.values is nv.values})")
    print(f"  insert(extract(V,d),V,d) == V for d=1..3: "
          f"{all(insert(extract(nv, d), nv, d) == nv for d in (1, 2, 3))}")


def e5():
    hdr("E5 — Figure 3 / T1: f^d through f^1 (overhead of extract+insert)")
    from repro.vector import ops as O
    from repro.vector.extract_insert import extract
    from repro.vexec.apply import Applier
    ap = Applier(lambda n, a: None, lambda n: False)
    rng = random.Random(9)
    a = [[[rng.randrange(50) for _ in range(6)] for _ in range(5)]
         for _ in range(2000)]
    va = from_python(a, seq_of(INT, 3))
    flat = extract(va, 3)
    t1 = timeit(O.apply_kernel, "mul", [flat, flat], reps=20)
    t3 = timeit(ap.apply_named, "mul", [va, va], [3, 3], 3, None, reps=20)
    print(f"  raw mul^1 on {flat.values.size} elements: {t1 * 1e6:8.1f} us")
    print(f"  mul^3 via T1 (extract+insert):            {t3 * 1e6:8.1f} us")
    print(f"  T1 overhead factor: {t3 / t1:.2f}x  (paper: 'minimal overhead')")


def e6():
    hdr("E6 — Section 5 worked example")
    prog = compile_program("""
        fun sqs(n) = [j <- [1..n]: j * j]
        fun main(k) = [i <- [1..k]: sqs(i)]
    """, options=TransformOptions(trace=True))
    print(f"  main(5) = {prog.run('main', [5])}")
    print("\n  transformed sqs^1 (compare paper section 5):")
    src = prog.transformed_source("main", [5])
    for line in src.splitlines():
        print("   |", line)
    mono, tp = prog.prepare("main", (INT,))
    rules = tp.trace.rules_fired()
    print(f"\n  rules fired: {sorted(set(rules))}  ({len(rules)} applications)")


def e7():
    hdr("E7 — Iterator overhead: per-element interpretation vs vector ops")
    prog = compile_program("fun step(v) = [x <- v: (x * 3 + 1) mod 1000]")
    prog.run("step", [[1]])
    prog.run("step", [[1]], backend="interp")
    print(f"  {'n':>8} {'interp(ms)':>12} {'vector(ms)':>12} {'ratio':>8}")
    for n in (100, 1000, 10_000, 100_000):
        v = list(range(n))
        ti = timeit(lambda: prog.run("step", [v], backend="interp"))
        tv = timeit(lambda: prog.run("step", [v]))
        print(f"  {n:>8} {ti * 1e3:>12.2f} {tv * 1e3:>12.2f} {ti / tv:>8.1f}x")
    _r, rep = prog.profile("step", [list(range(10_000))])
    print(f"  measured (n=10000): {rep.total_calls()} vector ops moving "
          f"{rep.total_elements()} elements — the interpreter instead takes "
          f"~4 bytecode steps per element")
    from repro.guard import GuardConfig, guarded
    big = list(range(100_000))
    idle = GuardConfig(check=False)

    def guarded_run():
        with guarded(idle):
            prog.run("step", [big])

    t_plain, t_idle = float("inf"), float("inf")
    for _ in range(5):
        t_plain = min(t_plain, timeit(prog.run, "step", [big], reps=1))
        t_idle = min(t_idle, timeit(guarded_run, reps=1))
    print(f"  guard hooks, checker off (n=100000): "
          f"{(t_idle / t_plain - 1) * 100:+.2f}% (acceptance bar < 3%)")


def e8():
    hdr("E8 — Load balance under skew (P=16): flattened vs task-per-element")
    from conftest import skewed_sizes
    prog = compile_program("""
        fun work(n) = sum([i <- [1..n]: i * i])
        fun all(v) = [n <- v: work(n)]
    """)
    P = 16
    rows = []
    print(f"  {'skew':>6} {'flattened util':>15} {'task-model util':>16}")
    for skew in (0.0, 0.25, 0.5, 0.75, 0.9):
        sizes = skewed_sizes(64, skew, 20, random.Random(11))
        _r, trace = prog.vector_trace("all", [sizes])
        flat = VectorMachine(processors=P, latency=2).run_trace(trace)
        per = [prog.measure("work", [n])[1].work for n in sizes]
        tm = utilization(per, P, greedy_makespan(per, P))
        print(f"  {skew:>6.2f} {flat.utilization:>15.2%} {tm:>16.2%}")
        rows.append((skew, flat.utilization, tm))
    from repro.machine.chart import hbar_chart
    print("\n  figure: utilization at skew=0.9 (flattened vs task model)")
    last = rows[-1]
    print("  " + hbar_chart(["flattened", "task-model"],
                            [last[1] * 100, last[2] * 100],
                            width=40, unit="%").replace("\n", "\n  "))


def e9():
    hdr("E9 — Divide and conquer: flattened quicksort")
    prog = compile_program("""
        fun qsort(s) =
          if #s <= 1 then s
          else let p = s[(#s + 1) div 2],
                   less = [x <- s | x < p: x],
                   same = [x <- s | x == p: x],
                   more = [x <- s | x > p: x],
                   sorted = [part <- [less, more]: qsort(part)]
               in concat(concat(sorted[1], same), sorted[2])
    """)
    rng = random.Random(2)
    xs, ys = [], []
    print(f"  {'n':>6} {'vector ops':>11} {'work':>10} {'P=64 speedup':>13}")
    for n in (64, 256, 1024, 4096):
        data = [rng.randrange(n * 10) for _ in range(n)]
        res, trace = prog.vector_trace("qsort", [data])
        assert res == sorted(data)
        r1 = VectorMachine(1, 1).run_trace(trace)
        r64 = VectorMachine(64, 1).run_trace(trace)
        print(f"  {n:>6} {len(trace):>11} {r1.work:>10} "
              f"{r1.cycles / r64.cycles:>12.1f}x")
        xs.append(n)
        ys.append(len(trace))
    from repro.machine.chart import line_chart
    print("\n  figure: vector ops (steps) vs n — polylogarithmic growth")
    print("  " + line_chart(xs, ys, height=7, width=44,
                            xlabel="n").replace("\n", "\n  "))


def e10():
    hdr("E10 — Higher-order parallel application")
    prog = compile_program("""
        fun row_reduce(f, vv) = [v <- vv: reduce(f, v)]
        fun mixed(v) = [x <- v: (if odd(x) then neg else abs_)(x)]
    """)
    vv = [[3, 1, 4], [1, 5], [9, 2, 6, 5]]
    for f, want in ((FunVal("add"), [8, 6, 22]), (FunVal("max2"), [4, 5, 9])):
        got = prog.run("row_reduce", [f, vv],
                       types=["(int, int) -> int", "seq(seq(int))"])
        print(f"  reduce({f.name}) per row  -> {got}  (expect {want})")
    print(f"  mixed function frame -> {prog.run('mixed', [[1, -2, 3]])}")


def e11():
    hdr("E11 — Section 4.5 ablations")
    rng = random.Random(12)
    v = [rng.randrange(100) for _ in range(2000)]
    ix = [rng.randrange(1, 2001) for _ in range(2000)]
    g = "fun gather(v, ix) = [i <- ix: v[i]]"

    def work_of(prog, fname, args):
        _r, t = prog.vector_trace(fname, args)
        return sum(w for _o, w in t), len(t)

    on = compile_program(g)
    off = compile_program(g, options=TransformOptions(shared_seq_index=False))
    w_on, s_on = work_of(on, "gather", [v, ix])
    w_off, s_off = work_of(off, "gather", [v, ix])
    print(f"  shared seq_index : work {w_on:>9} vs replicated {w_off:>9} "
          f"({w_off / w_on:.0f}x saved)")

    def kernel_counts(prog, fname, args, *ops):
        _r, rep = prog.profile(fname, args)
        return {op: (c.calls if (c := rep.counter(op)) else 0) for op in ops}

    c_on = kernel_counts(on, "gather", [v, ix],
                         "seq_index_shared", "replicate")
    c_off = kernel_counts(off, "gather", [v, ix],
                          "seq_index", "replicate")
    print(f"    measured: on  -> seq_index_shared x{c_on['seq_index_shared']}, "
          f"replicate x{c_on['replicate']}")
    print(f"    measured: off -> seq_index x{c_off['seq_index']}, "
          f"replicate x{c_off['replicate']} (source copied per index)")

    f = compile_program("fun nat(vv) = flatten(vv) fun pl(vv) = flatten_p(vv)")
    vv = [[1] * (i % 9) for i in range(600)]
    w_nat, s_nat = work_of(f, "nat", [vv])
    w_pl, s_pl = work_of(f, "pl", [vv])
    print(f"  native flatten   : work {w_nat:>9} steps {s_nat:>5} vs P-level "
          f"work {w_pl:>9} steps {s_pl:>5}")

    r_on = compile_program("fun total(v) = reduce(add, v)",
                           options=TransformOptions(reduce_to_native=True))
    r_off = compile_program("fun total(v) = reduce(add, v)")
    big = list(range(4096))
    w_n, s_n = work_of(r_on, "total", [big])
    w_p, s_p = work_of(r_off, "total", [big])
    print(f"  native reduce    : work {w_n:>9} steps {s_n:>5} vs P-level "
          f"work {w_p:>9} steps {s_p:>5}")


def e12():
    hdr("E12 — Post-transform simplifier (section 6 'improvements')")
    from repro.transform.simplify import count_lets
    from repro.lang.types import TSeq
    src = """
        fun qs(s) =
          if #s <= 1 then s
          else let p = s[(#s + 1) div 2],
                   less = [x <- s | x < p: x],
                   same = [x <- s | x == p: x],
                   more = [x <- s | x > p: x],
                   sorted = [part <- [less, more]: qs(part)]
               in concat(concat(sorted[1], same), sorted[2])
    """
    on = compile_program(src)
    off = compile_program(src, options=TransformOptions(simplify=False))
    _m, tp_on = on.prepare("qs", (TSeq(INT),))
    _m, tp_off = off.prepare("qs", (TSeq(INT),))
    lets_on = sum(count_lets(d.body) for d in tp_on.defs.values())
    lets_off = sum(count_lets(d.body) for d in tp_off.defs.values())
    data = [random.Random(1).randrange(1000) for _ in range(256)]
    _r, t_on = on.vector_trace("qs", [data])
    _r, t_off = off.vector_trace("qs", [data])
    print(f"  let bindings : {lets_on} (simplified) vs {lets_off} (raw)")
    print(f"  executed ops : {len(t_on)} vs {len(t_off)}")


def e13():
    hdr("E13 — Op-class mix and communication-aware machine (extension)")
    from repro.machine import CommMachine, VectorMachine, classify_trace
    progs = {
        "elementwise chain": (
            "fun f(v) = [x <- v: (x * x + x) * (x - x * x)]",
            [list(range(2000))]),
        "gather":            ("fun f(v) = [i <- v: v[i]]",
                              [[1] * 2000]),
        "row reductions":    ("fun f(vv) = [v <- vv: sum(v)]",
                              [[[1] * 8] * 250]),
    }
    print(f"  {'program':>18} {'elemwise':>9} {'gather':>8} {'scan':>7} "
          f"{'uniform P=16':>13} {'comm P=16':>10}")
    for name, (src, args) in progs.items():
        prog = compile_program(src)
        _r, trace = prog.vector_trace("f", args)
        mix = classify_trace(trace)
        basic = VectorMachine(processors=16, latency=2).run_trace(trace)
        comm = CommMachine(processors=16, latency=2).run_trace(trace)
        print(f"  {name:>18} {mix.work_fraction('elementwise'):>9.0%} "
              f"{mix.work_fraction('gather_scatter'):>8.0%} "
              f"{mix.work_fraction('scan_reduce'):>7.0%} "
              f"{basic.cycles:>13} {comm.cycles:>10}")


def e14():
    hdr("E14 — Elementwise fusion (extension)")
    src = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"
    on = compile_program(src, options=TransformOptions(fuse=True))
    off = compile_program(src)
    v = list(range(64))
    _r, t_on = on.vector_trace("f", [v])
    _r, t_off = off.vector_trace("f", [v])
    m = VectorMachine(processors=64, latency=10)
    print(f"  vector ops : {len(t_on)} (fused) vs {len(t_off)} (unfused)")
    print(f"  cycles P=64 latency=10 : {m.run_trace(t_on).cycles} vs "
          f"{m.run_trace(t_off).cycles}")
    _r, rep_on = on.profile("f", [v])
    _r, rep_off = off.profile("f", [v])
    print(f"  measured kernels : {rep_on.total_calls()} calls / "
          f"{rep_on.total_bytes()} bytes (fused) vs {rep_off.total_calls()} "
          f"calls / {rep_off.total_bytes()} bytes (unfused)")


def e15():
    hdr("E15 — Segment-batched serving throughput (extension)")
    from repro.serve import BatchExecutor, ServeConfig
    src = "fun main(s) = sum([x <- s: x * x + 1])"
    prog = compile_program(src)
    sets = [[list(range(i % 20 + 1))] for i in range(64)]
    types = ("seq(int)",)
    prog.run_batched("main", sets, types=types)      # warm transform caches

    def batched(bs):
        for i in range(0, len(sets), bs):
            prog.run_batched("main", sets[i:i + bs], types=types)

    def unbatched():
        for a in sets:
            prog.run("main", a, types=types)

    t_loop = timeit(unbatched, reps=5)
    print(f"  {'mode':>14} {'time(ms)':>10} {'req/s':>10} {'speedup':>9}")
    print(f"  {'run() loop':>14} {t_loop * 1e3:>10.2f} "
          f"{64 / t_loop:>10.0f} {'1.0x':>9}")
    for bs in (1, 8, 64):
        t = timeit(lambda: batched(bs), reps=5)
        print(f"  {'batch ' + str(bs):>14} {t * 1e3:>10.2f} "
              f"{64 / t:>10.0f} {t_loop / t:>8.1f}x")
    with BatchExecutor(ServeConfig(max_batch=64)) as ex:
        ex.run_many(src, "main", sets, types=types)
        s = ex.stats.snapshot()
        c = ex.cache.stats()
    print(f"  executor: {s['requests']} requests in {s['batches']} batches "
          f"(max {s['max_batch']}), cache {c['hits']}/{c['hits'] + c['misses']} "
          f"hits")


def e16():
    hdr("E16 — Statically discharged guard checks (extension)")
    src = """
        fun step(v) = [x <- v: (x * 3 + 1) mod 1000]
        fun work(v, k) = if k == 0 then v else work(step(v), k - 1)
    """
    prog = compile_program(src)
    v = list(range(256))
    base = prog.run("work", [v, 600])
    assert prog.run("work", [v, 600], check=True) == base
    assert prog.run("work", [v, 600], check="static") == base
    print("  results identical across check=off / static / full")

    from repro.analysis.shapes import analyze_shapes
    at = prog.entry_types("work", [v, 600])
    _mono, tp = prog.prepare("work", at)
    static, runtime = analyze_shapes(tp).counts()
    print(f"  shape analysis: {static} static sites, {runtime} runtime, "
          f"{len(analyze_shapes(tp).discharged)} check tags discharged")

    t_off = timeit(lambda: prog.run("work", [v, 600]), reps=5)
    t_static = timeit(lambda: prog.run("work", [v, 600], check="static"),
                      reps=5)
    t_full = timeit(lambda: prog.run("work", [v, 600], check=True), reps=5)
    print(f"  {'mode':>14} {'time(ms)':>10} {'overhead':>10}")
    for name, t in (("check off", t_off), ("static", t_static),
                    ("full", t_full)):
        print(f"  {name:>14} {t * 1e3:>10.2f} "
              f"{(t - t_off) * 1e3:>8.2f}ms")


def e17():
    hdr("E17 — Native fused C kernels vs NumPy back end (extension)")
    import json
    from pathlib import Path

    from repro.native import toolchain
    from repro.native.engine import get_engine
    from repro.vexec.evaluator import VectorEvaluator

    src = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"
    n = 200_000
    v = list(range(n))
    prog = compile_program(src)
    available = toolchain.available()
    record = {"experiment": "E17", "workload": "E14 elementwise chain",
              "n": n, "toolchain": toolchain.toolchain_id(),
              "native_available": available, "target_speedup": 5.0}
    if not available:
        print("  no C toolchain: native backend falls back to NumPy "
              "(nothing to measure)")
        record.update({"numpy_ms": None, "native_ms": None,
                       "speedup": None, "bit_identical": None,
                       "met": False})
    else:
        # bit-identity through the public API (includes conversion)
        identical = (prog.run("f", [v], backend="native")
                     == prog.run("f", [v], backend="vector"))
        # timing on pre-converted vectors: measure the kernels, not the
        # Python-list conversion of 200k elements per call
        at = prog.entry_types("f", [v])
        mono_np, tp_np = prog.prepare("f", tuple(at))
        mono_nat, tp_nat = prog.prepare_native("f", tuple(at))
        vec = from_python(v, at[0])
        ev_np = VectorEvaluator(tp_np)
        ev_nat = VectorEvaluator(tp_nat, native=get_engine())
        ev_nat.call_raw(mono_nat, [vec])        # compile + warm the kernel
        t_np = timeit(lambda: ev_np.call_raw(mono_np, [vec]), reps=7)
        t_nat = timeit(lambda: ev_nat.call_raw(mono_nat, [vec]), reps=7)
        speedup = t_np / t_nat
        print(f"  {'backend':>14} {'time(ms)':>10} {'speedup':>9}")
        print(f"  {'numpy':>14} {t_np * 1e3:>10.3f} {'1.0x':>9}")
        print(f"  {'native':>14} {t_nat * 1e3:>10.3f} {speedup:>8.1f}x")
        print(f"  results bit-identical: {identical}")
        record.update({"numpy_ms": round(t_np * 1e3, 4),
                       "native_ms": round(t_nat * 1e3, 4),
                       "speedup": round(speedup, 2),
                       "bit_identical": identical,
                       "met": identical and speedup >= 5.0})
    path = Path(__file__).resolve().parent / "BENCH_E17.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"  wrote {path}")


def e18():
    hdr("E18 — Fault-tolerant multi-process serving (extension)")
    import json
    import os
    from pathlib import Path

    from repro.guard import ChaosSpec
    from repro.serve import (
        BatchExecutor, PoolConfig, RetryPolicy, ServeConfig, WorkerPool,
    )

    # the E15 workload, spread over 8 batch keys so a 4-worker pool has
    # concurrent shards to run (one key would serialize on one worker)
    srcs = [f"fun main(s) = sum([x <- s: x * x + {k}]);" for k in range(8)]
    n = 96
    work = [(f"e{i}", srcs[i % 8], [list(range(i % 20 + 1))])
            for i in range(n)]
    types = ("seq(int)",)

    def drive(ex):
        """One pass of the workload; returns (wall_s, p99_s, ok, err).
        Per-request latency is completion time since the pass started,
        collected in submission order — the same proxy for every
        configuration, so the ratios are comparable."""
        t0 = time.perf_counter()
        futs = [ex.submit(src, "main", args, types=types, request_id=rid)
                for rid, src, args in work]
        lat, ok, err = [], 0, 0
        for f in futs:
            try:
                f.result(timeout=300.0)
                ok += 1
                lat.append(time.perf_counter() - t0)
            except Exception:
                err += 1
        wall = time.perf_counter() - t0
        lat.sort()
        return wall, lat[int(0.99 * (len(lat) - 1))], ok, err

    with BatchExecutor(ServeConfig(max_batch=16)) as ex:
        drive(ex)                                # warm compile caches
        t_single, p99_single, ok1, _ = drive(ex)

    pool_kw = dict(workers=4, max_batch=16, native_after=0)
    with WorkerPool(PoolConfig(**pool_kw)) as pool:
        drive(pool)                              # warm worker caches
        t_pool, p99_pool, ok4, _ = drive(pool)

    # seed chosen so the kill set includes early request ids — the ones
    # that lead coalesced groups (chaos rolls once per dispatch group)
    chaos = ChaosSpec(sites=("pool.worker.abort",), rate=0.10, seed=12)
    with WorkerPool(PoolConfig(chaos=chaos, respawn_backoff_s=0.05,
                               retry=RetryPolicy(max_retries=2,
                                                 base_backoff_s=0.05),
                               **pool_kw)) as pool:
        drive(pool)
        t_chaos, p99_chaos, ok_c, err_c = drive(pool)
        restarts = pool.stats.restarts

    cpus = os.cpu_count() or 1
    speedup = t_single / t_pool
    p99_ratio = p99_chaos / p99_pool
    print(f"  {'configuration':>22} {'wall(ms)':>10} {'p99(ms)':>9} "
          f"{'ok':>4}")
    print(f"  {'1-thread executor':>22} {t_single * 1e3:>10.1f} "
          f"{p99_single * 1e3:>9.1f} {ok1:>4}")
    print(f"  {'4-worker pool':>22} {t_pool * 1e3:>10.1f} "
          f"{p99_pool * 1e3:>9.1f} {ok4:>4}")
    print(f"  {'pool + 10% kills':>22} {t_chaos * 1e3:>10.1f} "
          f"{p99_chaos * 1e3:>9.1f} {ok_c:>4}")
    print(f"  pool speedup {speedup:.2f}x over single-process "
          f"({cpus} CPU{'s' if cpus != 1 else ''}; target 2x needs >= 2), "
          f"chaos p99 {p99_ratio:.2f}x fault-free (target <= 3x), "
          f"{restarts} restarts, {err_c} crash-failed")
    record = {
        "experiment": "E18", "workload": "E15 sum-of-squares x 8 keys",
        "requests": n, "workers": 4, "cpus": cpus,
        "single_ms": round(t_single * 1e3, 2),
        "pool_ms": round(t_pool * 1e3, 2),
        "speedup": round(speedup, 3),
        "p99_pool_ms": round(p99_pool * 1e3, 2),
        "p99_chaos_ms": round(p99_chaos * 1e3, 2),
        "p99_ratio": round(p99_ratio, 3),
        "chaos": {"sites": list(chaos.sites), "rate": chaos.rate,
                  "seed": chaos.seed},
        "chaos_ok": ok_c, "chaos_failed": err_c, "restarts": restarts,
        "throughput_target": 2.0,
        "throughput_met": speedup >= 2.0 if cpus >= 2 else None,
        "p99_target": 3.0,
        "p99_met": p99_ratio <= 3.0,
    }
    path = Path(__file__).resolve().parent / "BENCH_E18.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"  wrote {path}")
    return record


def e19():
    hdr("E19 — True multicore execution of flat vector code (extension)")
    import json
    import os
    from pathlib import Path

    import numpy as np

    from repro.machine import VectorMachine
    from repro.native import toolchain
    from repro.native.engine import get_engine
    from repro.parallel.engine import get_parallel_engine
    from repro.vexec.evaluator import VectorEvaluator

    # the E14 shape with a segmented reduction on top: a fused float
    # chain over >= 1M flat elements, summed per segment
    src = ("fun f(v: seq(seq(float))) = "
           "[s <- v: sum([x <- s: (x * 0.5 + 1.0) * x - 0.25])]")
    nseg, per = 4000, 256               # 1,024,000 flat elements
    rng = np.random.default_rng(1993)
    arg = rng.uniform(-1.0, 1.0, size=nseg * per) \
        .reshape(nseg, per).tolist()
    prog = compile_program(src)
    cpus = os.cpu_count() or 1
    openmp = toolchain.available() and toolchain.openmp_available()
    at = prog.entry_types("f", [arg])
    vec = from_python(arg, at[0])
    mono_np, tp_np = prog.prepare("f", tuple(at))
    mono_nat, tp_nat = prog.prepare_native("f", tuple(at))
    ev_np = VectorEvaluator(tp_np)
    want = ev_np.call_raw(mono_np, [vec])
    t_np = timeit(lambda: ev_np.call_raw(mono_np, [vec]), reps=5)

    # serial baseline: native when a toolchain exists, else NumPy — the
    # honest denominator for each machine's fastest serial path
    if toolchain.available():
        ev_ser = VectorEvaluator(tp_nat, native=get_engine())
        assert ev_ser.call_raw(mono_nat, [vec]) == want   # warm + verify
        t_serial = timeit(lambda: ev_ser.call_raw(mono_nat, [vec]), reps=5)
        baseline = "native"
    else:
        t_serial, baseline = t_np, "numpy"

    # E8's machine-model prediction for the same trace shape: predicted
    # speedup at P processors = P * utilization(P)
    _r, trace = prog.vector_trace("f", [arg[:500]])
    predicted = {p: round(
        VectorMachine(processors=p, latency=2).run_trace(trace)
        .utilization * p, 2) for p in (1, 2, 4, 8)}

    lanes = {}
    identical = True
    print(f"  {'lane':>16} {'time(ms)':>10} {'speedup':>9} "
          f"{'E8 predicts':>12}")
    print(f"  {'numpy serial':>16} {t_np * 1e3:>10.2f} "
          f"{t_serial / t_np:>8.2f}x {'':>12}")
    print(f"  {baseline + ' serial':>16} {t_serial * 1e3:>10.2f} "
          f"{'1.00x':>9} {'':>12}")
    for threads in (1, 2, 4, 8):
        eng = get_parallel_engine(threads)
        ev_par = VectorEvaluator(tp_nat, native=eng)
        same = ev_par.call_raw(mono_nat, [vec]) == want   # warm + verify
        identical = identical and same
        t_par = timeit(lambda: ev_par.call_raw(mono_nat, [vec]), reps=5)
        lanes[threads] = {"ms": round(t_par * 1e3, 3),
                          "speedup": round(t_serial / t_par, 3),
                          "bit_identical": same,
                          "predicted_speedup": predicted[threads]}
        print(f"  {f'parallel x{threads}':>16} {t_par * 1e3:>10.2f} "
              f"{t_serial / t_par:>8.2f}x {predicted[threads]:>11.2f}x")
    enough_cpus = cpus >= 4
    met = (lanes[4]["speedup"] >= 1.7 and identical) if enough_cpus \
        else None
    print(f"  path: {'OpenMP kernels' if openmp else 'chunked NumPy'}, "
          f"{cpus} CPU{'s' if cpus != 1 else ''}; "
          f"bit-identical: {identical}; 4-thread target 1.7x: "
          f"{'met' if met else 'MISSED' if met is not None else 'skipped (< 4 CPUs)'}")
    record = {
        "experiment": "E19",
        "workload": "segmented float reduction over fused chain",
        "segments": nseg, "elements": nseg * per, "cpus": cpus,
        "openmp": openmp, "baseline": baseline,
        "numpy_ms": round(t_np * 1e3, 3),
        "serial_ms": round(t_serial * 1e3, 3),
        "threads": lanes, "bit_identical": identical,
        "target_speedup": 1.7, "target_threads": 4,
        "met": met,
        "skipped_reason": None if enough_cpus
        else f"machine has {cpus} CPU(s); speedup target needs >= 4",
    }
    path = Path(__file__).resolve().parent / "BENCH_E19.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"  wrote {path}")
    return record


def e20():
    hdr("E20 — Predicted-budget admission precision (extension)")
    import json
    from pathlib import Path

    from repro.errors import ResourceLimitError
    from repro.guard.runtime import Budget
    from repro.serve.batcher import BatchExecutor, ServeConfig

    # a boundable workload (closed-form certificate) plus an unbounded
    # one (data-dependent recursion, widened) — the two admission regimes
    src = "fun main(n) = sum([i <- [1..n]: (i * i) + n div i])"
    rec = "fun main(n) = if n <= 0 then 0 else n + main(n - 1)"
    sizes = [8, 16, 32, 64, 128, 256]

    # predicted-vs-measured scatter: the certificate against the
    # interpreter's actual work at each size (ratio = looseness)
    prog = compile_program(src)
    scatter = []
    for n in sizes:
        at = prog.entry_types("main", [n])
        p = prog.cost_certificate("main", at).predict([n])
        _v, rep = prog.measure("main", [n])
        scatter.append({"n": n, "predicted": p["work"],
                        "measured": rep.work,
                        "ratio": round(p["work"] / rep.work, 3)})
    ratios = sorted(s["ratio"] for s in scatter)
    median_ratio = ratios[len(ratios) // 2]

    # admission trial: budgets sweeping [0.25x .. 4x] of the *measured*
    # work.  Decisions under predicted admission vs the runtime-only
    # oracle; disagreements split into false accepts (admitted, then
    # breached — impossible while the bounds are sound) and false
    # rejects (refused, though it would have fit: the looseness cost).
    factors = (0.25, 0.5, 0.9, 1.1, 1.5, 2.0, 3.0, 4.0)
    false_accept = false_reject = agree = 0
    rejected_before_execution = 0
    with BatchExecutor(ServeConfig(backend="interp")) as ex, \
            BatchExecutor(ServeConfig(backend="interp",
                                      predict_admission=False)) as oracle:
        for s in scatter:
            for f in factors:
                budget = max(1, int(s["measured"] * f))
                try:
                    fut = ex.submit(src, "main", [s["n"]],
                                    budget=Budget(max_elements=budget))
                    pred_ok = not isinstance(fut.exception(60),
                                             ResourceLimitError)
                except ResourceLimitError:
                    pred_ok = False
                    rejected_before_execution += 1
                ofut = oracle.submit(src, "main", [s["n"]],
                                     budget=Budget(max_elements=budget))
                oracle_ok = not isinstance(ofut.exception(60),
                                           ResourceLimitError)
                if pred_ok == oracle_ok:
                    agree += 1
                elif pred_ok:
                    false_accept += 1
                else:
                    false_reject += 1
        # the unbounded program: prediction cannot reject, so every
        # over-budget request must be caught by the runtime backstop
        backstop = 0
        for n in (50, 100, 200):
            fut = ex.submit(rec, "main", [n], budget=Budget(max_elements=5))
            if isinstance(fut.exception(60), ResourceLimitError):
                backstop += 1
        stats = ex.stats.snapshot()
    cases = len(scatter) * len(factors)
    fr_rate = round(false_reject / cases, 3)
    met = (false_accept == 0 and fr_rate <= 0.35 and backstop == 3)
    print(f"  {'n':>6} {'measured':>10} {'predicted':>10} {'ratio':>7}")
    for s in scatter:
        print(f"  {s['n']:>6} {s['measured']:>10} {s['predicted']:>10} "
              f"{s['ratio']:>7.2f}")
    print(f"  admission: {cases} trials, {agree} agree, "
          f"{false_accept} false-accept, {false_reject} false-reject "
          f"(rate {fr_rate}); {rejected_before_execution} refused "
          f"pre-execution; runtime backstop caught {backstop}/3 "
          f"unbounded; median over-prediction {median_ratio:.2f}x; "
          f"targets (0 false-accepts, <= 0.35 false-reject): "
          f"{'met' if met else 'MISSED'}")
    record = {
        "experiment": "E20",
        "workload": "predicted-budget admission vs runtime enforcement",
        "sizes": sizes, "budget_factors": list(factors),
        "scatter": scatter, "median_overprediction": median_ratio,
        "cases": cases, "agree": agree,
        "false_accepts": false_accept, "false_rejects": false_reject,
        "false_reject_rate": fr_rate,
        "rejected_before_execution": rejected_before_execution,
        "predicted_rejections": stats["predicted_rejections"],
        "unbounded_backstop_caught": backstop,
        "unbounded_backstop_total": 3,
        "target_false_accepts": 0, "target_false_reject_rate": 0.35,
        "met": met,
    }
    path = Path(__file__).resolve().parent / "BENCH_E20.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {path.relative_to(Path.cwd())}"
          if path.is_relative_to(Path.cwd()) else f"  wrote {path}")
    return record


if __name__ == "__main__":
    for fn in (e1_e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14,
               e15, e16, e17, e18, e19, e20):
        fn()
    print()
