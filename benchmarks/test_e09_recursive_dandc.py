"""E9 — conclusion: "recursive parallel computations (as found, for
example, in parallel divide-and-conquer algorithms)".

Flattened quicksort: both recursive calls advance together inside one
frame, so the number of vector operations (the vector-model *step count*)
grows with the recursion depth — O(log n) expected-case levels — while
total element work stays O(n log n).  Termination itself exercises the R2d
emptiness guards.

Shape expected: steps(4096)/steps(64) far below 4096/64 = 64x (polylog,
roughly the ratio of recursion depths), and simulated speedup on the
flattened sort keeps rising with P."""

import random

import pytest

from repro.machine import VectorMachine


def sort_trace(qsort_program, n, seed=2):
    rng = random.Random(seed)
    data = [rng.randrange(n * 10) for _ in range(n)]
    result, trace = qsort_program.vector_trace("qsort", [data])
    assert result == sorted(data)
    return trace


class TestDivideAndConquerShape:
    def test_steps_polylogarithmic(self, qsort_program):
        t64 = sort_trace(qsort_program, 64)
        t4096 = sort_trace(qsort_program, 4096)
        ratio = len(t4096) / len(t64)
        assert ratio < 8, ratio  # 64x data, < 8x steps

    def test_work_near_nlogn(self, qsort_program):
        w = {}
        for n in (64, 4096):
            w[n] = sum(width for _, width in sort_trace(qsort_program, n))
        # n log n ratio for 64 -> 4096 is 64 * (12/6) = 128; allow slack
        assert 40 < w[4096] / w[64] < 400, w

    def test_nested_sort_of_ragged_collection(self, qsort_program):
        rng = random.Random(5)
        ragged = [[rng.randrange(100) for _ in range(rng.randrange(1, 30))]
                  for _ in range(12)]
        out = qsort_program.run_all("qsort_all", [ragged])
        assert out == [sorted(v) for v in ragged]

    def test_speedup_scales(self, qsort_program):
        trace = sort_trace(qsort_program, 4096)
        r1 = VectorMachine(processors=1, latency=1).run_trace(trace)
        r64 = VectorMachine(processors=64, latency=1).run_trace(trace)
        assert r1.cycles / r64.cycles > 8

    def test_termination_on_adversarial_inputs(self, qsort_program):
        # all-equal keys and already-sorted keys stress the R2d guards
        assert qsort_program.run("qsort", [[7] * 50]) == [7] * 50
        assert qsort_program.run("qsort", [list(range(100))]) == list(range(100))
        assert qsort_program.run("qsort", [[]]) == []


@pytest.mark.parametrize("n", [256, 1024])
def test_bench_flattened_qsort(benchmark, qsort_program, n):
    rng = random.Random(3)
    data = [rng.randrange(n * 10) for _ in range(n)]
    vm, mono = qsort_program.vcode_vm("qsort", [data])
    out = benchmark(lambda: vm.call(mono, [data]))
    assert out == sorted(data)


def test_bench_interpreter_qsort(benchmark, qsort_program):
    rng = random.Random(3)
    data = [rng.randrange(2560) for _ in range(256)]
    out = benchmark(lambda: qsort_program.run("qsort", [data], backend="interp"))
    assert out == sorted(data)
