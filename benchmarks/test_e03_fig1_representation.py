"""E3 — Figure 1: vector representation of nested sequences.

Reproduces the paper's exact example — the nesting tree / vector
representation of ``[[[2,7],[3,9,8]],[[3],[4,3,2]]]`` — and measures
conversion throughput and the representation invariant on large ragged
data."""

import random

import numpy as np
import pytest

from repro.lang.types import INT, seq_of
from repro.vector.convert import from_python, to_python

PAPER_VALUE = [[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]]]
PAPER_DESCS = [[2], [2, 2], [2, 3, 1, 3]]
PAPER_VALUES = [2, 7, 3, 9, 8, 3, 4, 3, 2]


class TestFigure1Reproduction:
    def test_exact_descriptor_vectors(self):
        nv = from_python(PAPER_VALUE, seq_of(INT, 3))
        assert [d.tolist() for d in nv.descs] == PAPER_DESCS
        assert nv.values.tolist() == PAPER_VALUES

    def test_top_descriptor_singleton(self):
        nv = from_python(PAPER_VALUE, seq_of(INT, 3))
        assert nv.descs[0].size == 1  # "V1 is always a singleton vector"

    def test_invariant(self):
        nv = from_python(PAPER_VALUE, seq_of(INT, 3))
        levels = [*nv.descs, nv.values]
        for i in range(len(levels) - 1):
            assert len(levels[i + 1]) == int(levels[i].sum())

    def test_roundtrip(self):
        nv = from_python(PAPER_VALUE, seq_of(INT, 3))
        assert to_python(nv, seq_of(INT, 3)) == PAPER_VALUE


def ragged(rng, outer, inner, leaf):
    return [[[rng.randrange(100) for _ in range(rng.randrange(leaf))]
             for _ in range(rng.randrange(inner))]
            for _ in range(outer)]


@pytest.fixture(scope="module")
def big():
    return ragged(random.Random(3), 2000, 6, 10)


def test_bench_from_python(benchmark, big):
    nv = benchmark(from_python, big, seq_of(INT, 3))
    assert nv.depth == 3


def test_bench_to_python(benchmark, big):
    nv = from_python(big, seq_of(INT, 3))
    out = benchmark(to_python, nv, seq_of(INT, 3))
    assert out == big
