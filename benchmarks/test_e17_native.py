"""E17 (extension) — native fused C kernels vs the NumPy back end.

Acceptance battery for the ``repro.native`` backend:

* >= 5x wall-time speedup over the NumPy vector back end on the E14
  elementwise-chain workload (kernel-only timing: pre-converted vectors,
  warmed caches);
* bit-identical results between the two back ends on every runnable
  example program and on 200 fuzzer-generated programs.

Everything here skips cleanly on a machine without a C toolchain — the
fallback contract itself is tested in tests/native/test_fallback.py.
"""

import ast as pyast
from pathlib import Path

import pytest

from repro import ReproError, compile_program
from repro.native import toolchain

pytestmark = pytest.mark.skipif(not toolchain.available(),
                                reason="no C toolchain")

SRC = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"
EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def test_speedup_at_least_5x():
    import time

    from repro.native.engine import get_engine
    from repro.vector.convert import from_python
    from repro.vexec.evaluator import VectorEvaluator

    n = 200_000
    v = list(range(n))
    prog = compile_program(SRC)
    at = prog.entry_types("f", [v])
    mono_np, tp_np = prog.prepare("f", tuple(at))
    mono_nat, tp_nat = prog.prepare_native("f", tuple(at))
    vec = from_python(v, at[0])
    ev_np = VectorEvaluator(tp_np)
    ev_nat = VectorEvaluator(tp_nat, native=get_engine())
    ev_nat.call_raw(mono_nat, [vec])        # compile + warm

    def best(fn, reps=7):
        t = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            t = min(t, time.perf_counter() - t0)
        return t

    t_np = best(lambda: ev_np.call_raw(mono_np, [vec]))
    t_nat = best(lambda: ev_nat.call_raw(mono_nat, [vec]))
    assert t_np / t_nat >= 5.0, \
        f"native {t_nat * 1e3:.3f}ms vs numpy {t_np * 1e3:.3f}ms: " \
        f"only {t_np / t_nat:.1f}x"


def _example_spec(path: Path) -> dict:
    spec = {}
    for node in pyast.parse(path.read_text()).body:
        if (isinstance(node, pyast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], pyast.Name)
                and node.targets[0].id in ("SOURCE", "PROFILE_ENTRY",
                                           "PROFILE_ARGS")):
            spec[node.targets[0].id] = pyast.literal_eval(node.value)
    return spec


EXAMPLE_FILES = sorted(p for p in EXAMPLES.glob("*.py")
                       if "SOURCE" in _example_spec(p)
                       and "PROFILE_ENTRY" in _example_spec(p))


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.stem for p in EXAMPLE_FILES])
def test_examples_bit_identical(path):
    spec = _example_spec(path)
    prog = compile_program(spec["SOURCE"])
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    assert (prog.run(entry, args, backend="native")
            == prog.run(entry, args, backend="vector")), path.name


@pytest.mark.parametrize("chunk", range(4))
def test_fuzzed_programs_bit_identical(chunk):
    """200 generated programs, native vs numpy: equal values or the same
    error class (chunked so a failure names a 50-seed window)."""
    from repro.fuzz.differ import compare_outcomes, run_case
    from repro.fuzz.gen import gen_case
    for seed in range(chunk * 50, (chunk + 1) * 50):
        case = gen_case(seed)
        try:
            outcomes = run_case(case, backends=("vector", "native"))
        except ReproError:
            continue                  # generator bug, not a backend issue
        assert compare_outcomes(outcomes), \
            f"seed {seed}: {[o.brief() for o in outcomes.values()]}"
