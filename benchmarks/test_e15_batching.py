"""E15 (extension) — segment-batched serving throughput.

N requests to the same entry coalesce into one vector pass: each
argument is packed one descriptor level deeper and the batch executes as
a single call of the synthesized depth-1 extension ``f^1`` — the same T1
machinery the paper uses for nested application, repurposed as a serving
optimization.  Measured: requests/second at batch sizes 1, 8 and 64
against an unbatched ``run()`` loop.  Small per-request payloads make
per-call dispatch the bottleneck, which is exactly the regime a serving
layer lives in; batch 64 must clear 3x the unbatched loop on the vector
backend (the acceptance bar in docs/SERVING.md)."""

import time

import pytest

from repro import compile_program
from repro.serve import BatchExecutor, ServeConfig

SRC = "fun main(s) = sum([x <- s: x * x + 1])"
TYPES = ("seq(int)",)
N_REQUESTS = 64


def argsets():
    return [[list(range(i % 20 + 1))] for i in range(N_REQUESTS)]


def expected():
    return [sum(x * x + 1 for x in a[0]) for a in argsets()]


def loop_unbatched(prog, sets):
    return [prog.run("main", a, types=TYPES) for a in sets]


def loop_batched(prog, sets, bs):
    out = []
    for i in range(0, len(sets), bs):
        out.extend(prog.run_batched("main", sets[i:i + bs], types=TYPES))
    return out


def best_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestBatchingThroughput:
    def test_batched_results_match_loop(self):
        prog = compile_program(SRC)
        sets = argsets()
        want = expected()
        assert loop_unbatched(prog, sets) == want
        for bs in (1, 8, 64):
            assert loop_batched(prog, sets, bs) == want

    def test_batch_64_at_least_3x_unbatched(self):
        """The tentpole claim: one 64-wide vector pass beats 64 dispatches."""
        prog = compile_program(SRC)
        sets = argsets()
        loop_batched(prog, sets, 64)       # warm the transform caches
        t_loop = best_of(lambda: loop_unbatched(prog, sets))
        t_64 = best_of(lambda: loop_batched(prog, sets, 64))
        assert t_loop / t_64 >= 3.0, (
            f"batch-64 speedup only {t_loop / t_64:.2f}x "
            f"({t_loop * 1e3:.2f} ms vs {t_64 * 1e3:.2f} ms)")

    def test_executor_throughput_counts_every_request(self):
        sets = argsets()
        with BatchExecutor(ServeConfig(max_batch=64)) as ex:
            assert ex.run_many(SRC, "main", sets, types=TYPES) == expected()
            stats = ex.stats.snapshot()
        assert stats["responses"] == N_REQUESTS
        assert stats["batched_requests"] + stats["singles"] == N_REQUESTS


@pytest.mark.parametrize("bs", [1, 8, 64])
def test_bench_batched(benchmark, bs):
    prog = compile_program(SRC)
    sets = argsets()
    loop_batched(prog, sets, bs)           # warm
    benchmark(lambda: loop_batched(prog, sets, bs))


def test_bench_unbatched_loop(benchmark):
    prog = compile_program(SRC)
    sets = argsets()
    loop_unbatched(prog, sets)             # warm
    benchmark(lambda: loop_unbatched(prog, sets))
