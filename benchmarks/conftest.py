"""Shared fixtures and data generators for the experiment benchmarks
(E1..E11 — see DESIGN.md section 3 for the experiment index)."""

import random

import pytest

from repro import compile_program


@pytest.fixture(scope="session")
def rng():
    return random.Random(1993)


@pytest.fixture(scope="session")
def sqs_program():
    """The paper's section-5 program."""
    return compile_program("""
        fun sqs(n) = [j <- [1..n]: j * j]
        fun main(k) = [i <- [1..k]: sqs(i)]
    """)


@pytest.fixture(scope="session")
def qsort_program():
    return compile_program("""
        fun qsort(s) =
          if #s <= 1 then s
          else let p = s[(#s + 1) div 2],
                   less = [x <- s | x < p: x],
                   same = [x <- s | x == p: x],
                   more = [x <- s | x > p: x],
                   sorted = [part <- [less, more]: qsort(part)]
               in concat(concat(sorted[1], same), sorted[2])
        fun qsort_all(vv) = [v <- vv: qsort(v)]
    """)


def skewed_sizes(n_tasks: int, skew: float, base: int, rng) -> list[int]:
    """Task sizes with one dominant task: ``skew`` = fraction of total work
    in the largest task (0 = uniform)."""
    small = [max(1, int(rng.gauss(base, base / 4))) for _ in range(n_tasks - 1)]
    total_small = sum(small)
    if skew <= 0:
        return small + [base]
    big = int(total_small * skew / (1 - skew)) if skew < 1 else total_small * 50
    return [max(1, big)] + small
