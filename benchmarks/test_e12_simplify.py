"""E12 (extension) — section 6: "investigating improvements to the
transformations that yield more efficient code."

The post-transformation simplifier (alias inlining + dead-binding
elimination) is our implementation of that direction.  Measured: generated
program size (lets / VCODE instructions) and end-to-end wall time, on/off,
plus equivalence."""

import random


from repro import TransformOptions, compile_program
from repro.lang.types import INT, TSeq
from repro.transform.simplify import count_lets

SRC = """
fun qs(s) =
  if #s <= 1 then s
  else let p = s[(#s + 1) div 2],
           less = [x <- s | x < p: x],
           same = [x <- s | x == p: x],
           more = [x <- s | x > p: x],
           sorted = [part <- [less, more]: qs(part)]
       in concat(concat(sorted[1], same), sorted[2])
"""


def programs():
    on = compile_program(SRC)
    off = compile_program(SRC, options=TransformOptions(simplify=False))
    return on, off


class TestSimplifyAblation:
    def test_same_results(self):
        on, off = programs()
        rng = random.Random(0)
        data = [rng.randrange(100) for _ in range(40)]
        assert on.run("qs", [data]) == off.run("qs", [data]) == sorted(data)

    def test_fewer_lets(self):
        on, off = programs()
        _m, tp_on = on.prepare("qs", (TSeq(INT),))
        _m, tp_off = off.prepare("qs", (TSeq(INT),))
        lets_on = sum(count_lets(d.body) for d in tp_on.defs.values())
        lets_off = sum(count_lets(d.body) for d in tp_off.defs.values())
        assert lets_on < lets_off
        # record the sizes so regressions are visible in output
        print(f"lets: simplified={lets_on} raw={lets_off}")

    def test_fewer_instructions(self):
        on, off = programs()
        _m, vp_on = on.compile_vcode("qs", ["seq(int)"])
        _m, vp_off = off.compile_vcode("qs", ["seq(int)"])
        assert vp_on.instruction_count < vp_off.instruction_count

    def test_fewer_executed_steps(self):
        on, off = programs()
        rng = random.Random(1)
        data = [rng.randrange(1000) for _ in range(128)]
        _r, t_on = on.vector_trace("qs", [data])
        _r, t_off = off.vector_trace("qs", [data])
        assert len(t_on) <= len(t_off)


def _bench(benchmark, prog):
    rng = random.Random(2)
    data = [rng.randrange(10_000) for _ in range(512)]
    vm, mono = prog.vcode_vm("qs", [data])
    out = benchmark(lambda: vm.call(mono, [data]))
    assert out == sorted(data)


def test_bench_simplified(benchmark):
    _bench(benchmark, compile_program(SRC))


def test_bench_unsimplified(benchmark):
    _bench(benchmark, compile_program(
        SRC, options=TransformOptions(simplify=False)))
