"""E18 (extension) — fault-tolerant multi-process serving.

Acceptance battery for the supervised worker pool (docs/RELIABILITY.md):

* throughput: a 4-worker pool clears >= 2x a single-process executor on
  the E15 serving workload — *asserted only on multi-core machines*
  (worker processes cannot beat one process on one CPU; on a single
  core the measurement is still recorded honestly in BENCH_E18.json);
* tail latency under chaos: with 10% of requests killing their worker
  (seeded ``pool.worker.abort``), the p99 completion time of the
  surviving requests stays <= 3x the fault-free pool's p99 — crash
  detection and respawn are fast enough that chaos degrades the tail,
  not the service;
* the machine-readable record ``benchmarks/BENCH_E18.json`` is written
  by ``make_report.e18()`` (the measurement lives there; this file
  drives it and asserts the bars).
"""

import json
import os
from pathlib import Path

import pytest

import make_report

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_E18.json"


@pytest.fixture(scope="module")
def record():
    return make_report.e18()


def test_record_written_and_complete(record):
    on_disk = json.loads(RECORD_PATH.read_text())
    assert on_disk["experiment"] == "E18"
    for key in ("single_ms", "pool_ms", "speedup", "p99_pool_ms",
                "p99_chaos_ms", "p99_ratio", "restarts", "cpus"):
        assert on_disk[key] == record[key]


def test_every_request_resolved_under_chaos(record):
    # containment, not throughput: chaos may fail requests typed, but
    # the pool must answer all of them and actually see crashes
    assert record["chaos_ok"] + record["chaos_failed"] == \
        record["requests"]
    assert record["restarts"] >= 1
    assert record["chaos_ok"] > 0


def test_pool_throughput_2x(record):
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single CPU: worker processes cannot outrun one "
                    "process (recorded honestly in BENCH_E18.json)")
    assert record["speedup"] >= 2.0, (
        f"4-worker pool only {record['speedup']:.2f}x over "
        f"single-process (pool {record['pool_ms']}ms vs "
        f"single {record['single_ms']}ms)")


def test_chaos_p99_within_3x(record):
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single CPU: respawn/retry compete with serving for "
                    "the one core, inflating the tail measurement")
    assert record["p99_ratio"] <= 3.0, (
        f"p99 under 10% worker kills is {record['p99_ratio']:.2f}x "
        f"fault-free ({record['p99_chaos_ms']}ms vs "
        f"{record['p99_pool_ms']}ms)")
