"""E6 — the section-5 worked example, reproduced rule by rule.

The paper transforms ``[k <- [1..5]: sqs(k)]`` with ``fun sqs(n) =
[j <- [1..n]: mult(j,j)]``, derives ``sqs^1``, translates ``mult`` at depth
2 through T1, and emits C.  This experiment checks each artifact:

* the result value ``[[1],[1,4],[1,4,9],[1,4,9,16],[1,4,9,16,25]]``;
* the rule trace fires {R0}, {R2c}, {R2e} (and the derived form matches the
  paper's shape: range1, seq_index, range1^1, mul^2);
* the generated C applies T1 (extract/insert around ``cvl_mul_1``);
* timing for the whole derivation.
"""

import pytest

from repro import TransformOptions, compile_program
from repro.lang import ast as A

SRC = """
fun sqs(n) = [j <- [1..n]: j * j]
fun main(k) = [i <- [1..k]: sqs(i)]
"""

EXPECTED = [[1], [1, 4], [1, 4, 9], [1, 4, 9, 16], [1, 4, 9, 16, 25]]


@pytest.fixture(scope="module")
def prog():
    return compile_program(SRC, options=TransformOptions(trace=True))


class TestSection5Reproduction:
    def test_result_value(self, prog):
        assert prog.run_all("main", [5]) == EXPECTED

    def test_extension_derived(self, prog):
        from repro.lang.types import INT
        _mono, tp = prog.prepare("main", (INT,))
        assert "sqs^1" in tp.defs  # the paper's {R0} step

    def test_rules_fired(self, prog):
        from repro.lang.types import INT
        _mono, tp = prog.prepare("main", (INT,))
        rules = set(tp.trace.rules_fired())
        assert "R0" in rules     # derivation of sqs^1
        assert "R2c" in rules    # iterator / application distribution
        assert "R2e" in rules    # let

    def test_transformed_shape(self, prog):
        from repro.lang.types import INT
        _mono, tp = prog.prepare("main", (INT,))
        ext = tp.defs["sqs^1"]
        calls = [n.fn for n in A.walk(ext.body) if isinstance(n, A.ExtCall)]
        # the paper's derived sqs': length, range1 (i), seq_index (n),
        # range1^1 (j), mult at depth 2
        assert "length" in calls
        assert calls.count("range1") == 2
        assert any(c in ("seq_index", "__seq_index_shared") for c in calls)
        muls = [n for n in A.walk(ext.body)
                if isinstance(n, A.ExtCall) and n.fn == "mul"]
        assert muls and muls[0].depth == 2

    def test_no_iterators_remain(self, prog):
        from repro.lang.types import INT
        _mono, tp = prog.prepare("main", (INT,))
        for d in tp.defs.values():
            assert not A.contains_iterator(d.body)

    def test_generated_c(self, prog):
        c = prog.emit_c("main", ["int"])
        assert "cvl_extract(" in c and "cvl_insert(" in c  # T1 on mul^2
        assert "cvl_mul_1(" in c
        assert "sqs_ext1" in c

    def test_trace_is_printable(self, prog):
        from repro.lang.types import INT
        _mono, tp = prog.prepare("main", (INT,))
        text = str(tp.trace)
        assert "{R0}" in text or "R0" in text


def test_bench_full_derivation(benchmark):
    """Time to replay the paper's entire section-5 derivation."""
    def go():
        p = compile_program(SRC, options=TransformOptions(trace=True))
        return p.run("main", [5])
    assert benchmark(go) == EXPECTED


def test_bench_transformed_execution(benchmark, prog):
    prog.run("main", [5])
    assert benchmark(prog.run, "main", [5]) == EXPECTED
