"""E5 — Figure 3 / rule T1: translation of f^d through f^1.

"it suffices to use f^1, the simple depth 1 parallel extension of f, to be
used in all contexts."  This experiment verifies, for a battery of
primitives and depths d = 2..4, that the evaluator's T1 path
(insert . f^1 . extract) equals per-element application, and measures the
overhead T1 adds over the raw depth-1 kernel (it should be small: extract
and insert are descriptor surgery)."""

import random

import pytest

from repro import compile_program
from repro.lang.types import INT, TSeq, seq_of
from repro.vector import ops as O
from repro.vector.convert import from_python, to_python
from repro.vector.extract_insert import extract, insert
from repro.vexec.apply import Applier

_applier = Applier(call_user=lambda n, a: (_ for _ in ()).throw(RuntimeError),
                   is_user=lambda n: False)


def deep_data(depth, rng, size=4):
    if depth == 0:
        return rng.randrange(1, 20)
    return [deep_data(depth - 1, rng, size)
            for _ in range(rng.randrange(1, size))]


class TestT1Equivalence:
    @pytest.mark.parametrize("depth", [2, 3, 4])
    @pytest.mark.parametrize("name", ["add", "mul", "lt"])
    def test_elementwise_at_depth(self, name, depth):
        rng = random.Random(depth)
        a = deep_data(depth, rng)
        t = seq_of(INT, depth)
        va = from_python(a, t)
        out = _applier.apply_named(name, [va, va], [depth, depth], depth, None)

        def mapn(f, x, d):
            return f(x) if d == 0 else [mapn(f, y, d - 1) for y in x]
        from repro.interp.interpreter import PRIM_IMPLS
        want = mapn(lambda x: PRIM_IMPLS[name](x, x), a, depth)
        rt = seq_of(INT if name != "lt" else __import__(
            "repro.lang.types", fromlist=["BOOL"]).BOOL, depth)
        assert to_python(out, rt) == want

    @pytest.mark.parametrize("depth", [2, 3])
    def test_range1_at_depth(self, depth):
        rng = random.Random(depth + 10)
        a = deep_data(depth, rng)
        va = from_python(a, seq_of(INT, depth))
        out = _applier.apply_named("range1", [va], [depth], depth, None)

        def mapn(x, d):
            return list(range(1, x + 1)) if d == 0 else [mapn(y, d - 1) for y in x]
        assert to_python(out, seq_of(INT, depth + 1)) == mapn(a, depth)

    def test_t1_literally(self):
        # the identity the evaluator exploits, spelled out
        rng = random.Random(0)
        a = deep_data(3, rng)
        va = from_python(a, seq_of(INT, 3))
        flat = extract(va, 3)
        r1 = O.apply_kernel("mul", [flat, flat])
        manual = insert(r1, va, 3)
        auto = _applier.apply_named("mul", [va, va], [3, 3], 3, None)
        assert manual == auto


class TestT1ThroughPrograms:
    def test_user_function_at_depth_2(self):
        prog = compile_program("""
            fun sqs(n) = [j <- [1..n]: j * j]
            fun deep(m) = [i <- [1..m]: [k <- [1..i]: sqs(k)]]
        """)
        got = prog.run_all("deep", [3])
        assert got == [[[1]],
                       [[1], [1, 4]],
                       [[1], [1, 4], [1, 4, 9]]]


# -- benchmarks ---------------------------------------------------------------

@pytest.fixture(scope="module")
def depth3_frames():
    rng = random.Random(9)
    a = [[[rng.randrange(50) for _ in range(6)] for _ in range(5)]
         for _ in range(2000)]
    return from_python(a, seq_of(INT, 3))


def test_bench_depth1_kernel(benchmark, depth3_frames):
    flat = extract(depth3_frames, 3)
    out = benchmark(O.apply_kernel, "mul", [flat, flat])
    assert out.values.size == depth3_frames.values.size


def test_bench_t1_depth3(benchmark, depth3_frames):
    va = depth3_frames
    out = benchmark(_applier.apply_named, "mul", [va, va], [3, 3], 3, None)
    assert out.depth == 3
