"""E20 (extension) — predicted-budget admission precision.

Acceptance battery for the cost-certificate admission benchmark:

* zero false accepts — a request the predictor admits under its budget
  never breaches the runtime guard (this is the soundness of the static
  bound expressed at the serving layer, asserted unconditionally);
* the false-reject rate (refused requests that would have fit — the
  price of over-approximation) stays within the declared target;
* every over-budget request on the *unbounded* program is caught by the
  runtime backstop, since prediction cannot reject what it cannot bound;
* the machine-readable ``benchmarks/BENCH_E20.json`` record (archived
  by the CI ``cost-smoke`` job) is complete.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture(scope="module")
def record():
    from make_report import e20
    return e20()


def test_no_false_accepts(record):
    """Soundness at the admission layer: predicted-admit followed by a
    runtime breach never happens."""
    assert record["false_accepts"] == 0


def test_false_reject_rate_within_target(record):
    assert record["false_reject_rate"] <= record["target_false_reject_rate"]
    assert record["met"] is True


def test_runtime_backstop_catches_the_unbounded(record):
    assert record["unbounded_backstop_caught"] == \
        record["unbounded_backstop_total"]


def test_rejections_happen_before_execution(record):
    """Predicted rejections are synchronous submit-time refusals; the
    executor's own counter agrees with the trial's count."""
    assert record["rejected_before_execution"] > 0
    assert record["predicted_rejections"] == \
        record["rejected_before_execution"]


def test_prediction_is_tight_on_the_scatter(record):
    """Every scatter point over-predicts (soundness) without being
    absurd (precision): 1x <= predicted/measured, median within 4x."""
    for s in record["scatter"]:
        assert s["predicted"] >= s["measured"], f"unsound at n={s['n']}"
    assert record["median_overprediction"] <= 4.0


def test_record_is_complete(record):
    assert record["experiment"] == "E20"
    assert record["cases"] == len(record["sizes"]) * \
        len(record["budget_factors"])
    assert record["agree"] + record["false_accepts"] + \
        record["false_rejects"] == record["cases"]
    path = Path(__file__).resolve().parent / "BENCH_E20.json"
    assert path.is_file()
