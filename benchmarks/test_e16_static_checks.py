"""E16 — Statically discharged guard checks (extension).

Full strict mode (``check=True``) re-validates the descriptor invariant
on every value crossing a kernel, VM, or call boundary — most of those
re-checks are provably redundant (an elementwise kernel reuses its
argument's descriptor chain unchanged).  The symbolic shape analysis
(docs/ANALYSIS.md) discharges exactly the redundant sites;
``check="static"`` keeps only the load-bearing runtime-class checks.

Shape expected: on a check-dominated E7 workload (many kernel and call
boundaries per run, so guard sites rather than data conversion dominate
the delta), static mode's overhead over unchecked execution is at most
**one third** of full mode's overhead, while producing element-wise
identical results on both the E7 and E9 (recursive divide-and-conquer)
workloads."""

import random
import time

import pytest

from repro import compile_program

E7_SRC = """
fun step(v) = [x <- v: (x * 3 + 1) mod 1000]
fun work(v, k) = if k == 0 then v else work(step(v), k - 1)
"""


@pytest.fixture(scope="module")
def e7_prog():
    return compile_program(E7_SRC)


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _interleaved_min(arms, reps=9):
    """min-of-N per arm with the arms interleaved, so clock drift and
    scheduler noise hit every mode equally (the E7 protocol)."""
    best = [float("inf")] * len(arms)
    for _ in range(reps):
        for k, fn in enumerate(arms):
            best[k] = min(best[k], _time(fn))
    return best


class TestStaticCheckOverhead:
    def test_static_overhead_at_most_third_of_full(self, e7_prog):
        # 600 iterations over a small vector: ~4k kernel sites and ~1k
        # call boundaries per run, so the three arms differ by check-site
        # cost rather than by Python<->vector conversion noise.
        v = list(range(256))
        run = e7_prog.run
        run("work", [v, 600], check="static")  # warm caches + shape analysis
        run("work", [v, 600], check=True)

        t_off, t_static, t_full = _interleaved_min([
            lambda: run("work", [v, 600]),
            lambda: run("work", [v, 600], check="static"),
            lambda: run("work", [v, 600], check=True),
        ])
        over_static = max(0.0, t_static - t_off)
        over_full = t_full - t_off
        assert over_full > 0, (t_off, t_full)
        assert over_static <= over_full / 3, \
            (t_off, t_static, t_full, over_static, over_full)

    def test_results_identical_on_e7(self, e7_prog):
        v = list(range(2000))
        base = e7_prog.run("work", [v, 3])
        for backend in ("vector", "vcode"):
            assert e7_prog.run("work", [v, 3], backend=backend,
                               check=True) == base
            assert e7_prog.run("work", [v, 3], backend=backend,
                               check="static") == base

    def test_results_identical_on_e9(self, qsort_program):
        rng = random.Random(16)
        data = [rng.randrange(10_000) for _ in range(2048)]
        base = sorted(data)
        for backend in ("vector", "vcode"):
            assert qsort_program.run("qsort", [data], backend=backend,
                                     check=True) == base
            assert qsort_program.run("qsort", [data], backend=backend,
                                     check="static") == base


N = 50_000


def test_bench_check_off(benchmark, e7_prog):
    v = list(range(N))
    e7_prog.run("step", [v])
    benchmark(lambda: e7_prog.run("step", [v]))


def test_bench_check_static(benchmark, e7_prog):
    v = list(range(N))
    e7_prog.run("step", [v], check="static")
    benchmark(lambda: e7_prog.run("step", [v], check="static"))


def test_bench_check_full(benchmark, e7_prog):
    v = list(range(N))
    e7_prog.run("step", [v], check=True)
    benchmark(lambda: e7_prog.run("step", [v], check=True))
