"""E19 (extension) — true multicore execution of flat vector code.

Acceptance battery for the ``repro.parallel`` backend benchmark:

* results bit-identical to the serial back ends at every measured
  thread count (asserted on every machine — determinism does not need
  cores);
* >= 1.7x wall-time speedup at 4 threads over the fastest serial path
  on the >= 1M-element segmented-reduction workload (asserted only on
  machines with >= 4 CPUs; recorded as an honest skip otherwise);
* the machine-readable ``benchmarks/BENCH_E19.json`` record (archived
  by the CI ``parallel-smoke`` job) is complete either way.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

CPUS = os.cpu_count() or 1


@pytest.fixture(scope="module")
def record():
    from make_report import e19
    return e19()


def test_bit_identical_everywhere(record):
    """Determinism is asserted unconditionally — a 1-CPU machine still
    runs all four thread counts, just without speedup."""
    assert record["bit_identical"] is True
    for threads, lane in record["threads"].items():
        assert lane["bit_identical"], f"{threads} threads diverged"


def test_record_is_complete(record):
    assert record["experiment"] == "E19"
    assert record["elements"] >= 1_000_000
    assert set(record["threads"]) == {1, 2, 4, 8}
    for lane in record["threads"].values():
        assert lane["ms"] > 0 and lane["speedup"] > 0
        assert lane["predicted_speedup"] > 0
    path = Path(__file__).resolve().parent / "BENCH_E19.json"
    assert path.is_file()


def test_honest_skip_on_small_machines(record):
    """Below 4 CPUs the speedup target is recorded as skipped — never as
    met or missed."""
    if CPUS >= 4:
        assert record["skipped_reason"] is None
    else:
        assert record["met"] is None
        assert record["skipped_reason"]


@pytest.mark.skipif(CPUS < 4, reason=f"need >= 4 CPUs, have {CPUS}")
def test_speedup_at_least_1_7x_at_4_threads(record):
    lane = record["threads"][4]
    assert lane["speedup"] >= 1.7, \
        f"4-thread speedup {lane['speedup']:.2f}x < 1.7x " \
        f"(serial {record['serial_ms']}ms, parallel {lane['ms']}ms)"


@pytest.mark.skipif(CPUS < 2, reason=f"need >= 2 CPUs, have {CPUS}")
def test_two_threads_beat_one(record):
    """With real cores, 2 threads must not be slower than the 1-thread
    lane by more than measurement noise."""
    t1 = record["threads"][1]["ms"]
    t2 = record["threads"][2]["ms"]
    assert t2 <= t1 * 1.10, f"2 threads ({t2}ms) slower than 1 ({t1}ms)"
