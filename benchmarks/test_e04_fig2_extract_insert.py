"""E4 — Figure 2: the extract / insert representation manipulations.

Asserts the paper's law ``V = insert(extract(V,d), V, d)``, that extract is
pure descriptor surgery (no data movement), and — the section 4.5
requirement that "insert and extract have minimal overhead" — that their
cost does not grow with the number of *leaf values*."""

import random

import pytest

from repro.lang.types import INT, seq_of
from repro.vector.convert import from_python
from repro.vector.extract_insert import extract, insert


def big_nested(n_leaf_per_node: int):
    rng = random.Random(5)
    return [[[rng.randrange(9) for _ in range(n_leaf_per_node)]
             for _ in range(3)] for _ in range(3000)]


@pytest.fixture(scope="module")
def nv():
    return from_python(big_nested(8), seq_of(INT, 3))


class TestFigure2Reproduction:
    def test_roundtrip_law(self, nv):
        for d in (1, 2, 3):
            assert insert(extract(nv, d), nv, d) == nv

    def test_extract_shares_values(self, nv):
        assert extract(nv, 2).values is nv.values

    def test_insert_shares_values(self, nv):
        ex = extract(nv, 2)
        assert insert(ex, nv, 2).values is ex.values

    def test_cost_independent_of_leaf_width(self):
        # leaf arrays 100x larger; descriptor sizes identical, so the
        # operation touches the same amount of descriptor data
        small = from_python(big_nested(2), seq_of(INT, 3))
        large = from_python(big_nested(200), seq_of(INT, 3))
        es, el = extract(small, 2), extract(large, 2)
        assert [d.size for d in es.descs] == [d.size for d in el.descs]


def test_bench_extract(benchmark, nv):
    out = benchmark(extract, nv, 2)
    assert out.depth == 2


def test_bench_insert(benchmark, nv):
    ex = extract(nv, 2)
    out = benchmark(insert, ex, nv, 2)
    assert out.depth == 3


def test_bench_extract_insert_roundtrip(benchmark, nv):
    def go():
        return insert(extract(nv, 3), nv, 3)
    assert benchmark(go) == nv
