"""E1 — Table 1: the basic constructors of P.

Every construct of Table 1 (application, lambda abstraction, let,
conditional) plus the iterator goes through the full pipeline; the
benchmark measures end-to-end compile+transform+run of a program that uses
them all, and the assertions pin the reproduced semantics."""

import pytest

from repro import compile_program

ALL_CONSTRUCTS = """
fun apply2(f, x, y) = f(x, y)                 -- application of a fn value
fun use_lambda(x) = (fn(a, b) => a * b)(x, x) -- lambda abstraction
fun use_let(x) = let y = x + 1, z = y * y in z - y
fun use_if(x) = if x > 0 then x else 0 - x
fun use_iter(n) = [i <- [1..n]: use_let(i)]
fun main(n) =
  let tup = (use_lambda(n), use_if(0 - n))
  in apply2(add, tup.1, tup.2) + sum(use_iter(n))
"""


@pytest.fixture(scope="module")
def prog():
    return compile_program(ALL_CONSTRUCTS)


def expected(n):
    def use_let(x):
        y = x + 1
        return y * y - y
    return (n * n + abs(-n)) + sum(use_let(i) for i in range(1, n + 1))


class TestTable1Reproduction:
    def test_all_constructs_agree_across_backends(self, prog):
        for n in (0, 1, 7, 30):
            assert prog.run_all("main", [n]) == expected(n)

    def test_lambda_value(self, prog):
        assert prog.run_both("use_lambda", [6])[0] == 36

    def test_let_scoping(self, prog):
        assert prog.run_both("use_let", [4])[0] == 20

    def test_conditional(self, prog):
        assert prog.run_both("use_if", [-3])[0] == 3

    def test_application_of_value(self, prog):
        from repro import FunVal
        assert prog.run("apply2", [FunVal("mul"), 6, 7],
                        types=["(int, int) -> int", "int", "int"]) == 42


def test_bench_pipeline_all_constructs(benchmark):
    """Wall time of compile+typecheck+transform+vector-run for Table 1."""
    def go():
        p = compile_program(ALL_CONSTRUCTS)
        return p.run("main", [20])
    assert benchmark(go) == expected(20)


def test_bench_run_only(benchmark, prog):
    prog.run("main", [20])  # warm the transform cache
    assert benchmark(prog.run, "main", [20]) == expected(20)
