"""E2 — Table 2: the basic functions of P and their depth-1 parallel
extensions.

For every primitive the paper lists, this benchmark (a) asserts the depth-1
kernel agrees with per-element application of the scalar semantics, and (b)
measures kernel throughput on 100k-element frames — the CVL-substitute's
raw speed."""

import numpy as np
import pytest

from repro.interp.interpreter import PRIM_IMPLS
from repro.lang.types import BOOL, INT, TSeq
from repro.vector import ops as O
from repro.vector.convert import from_python, to_python

N = 100_000
_rng = np.random.default_rng(42)


def int_frame(lo=-100, hi=100, n=N):
    return from_python([int(x) for x in _rng.integers(lo, hi, n)], TSeq(INT))


def bool_frame(n=N):
    return from_python([bool(x) for x in _rng.integers(0, 2, n)], TSeq(BOOL))


SCALAR_BINOPS = ["add", "sub", "mul", "max2", "min2", "lt", "le", "gt",
                 "ge", "eq", "ne"]


class TestTable2Agreement:
    """f^1(args)[k] == f(args[k]) for every Table-2 primitive (small n)."""

    @pytest.mark.parametrize("name", SCALAR_BINOPS)
    def test_scalar_binops(self, name):
        a = [3, -7, 0, 12, -1]
        b = [2, 5, -3, 12, 1]
        va = from_python(a, TSeq(INT))
        vb = from_python(b, TSeq(INT))
        out = O.apply_kernel(name, [va, vb])
        rt = BOOL if name in ("lt", "le", "gt", "ge", "eq", "ne") else INT
        assert to_python(out, TSeq(rt)) == [PRIM_IMPLS[name](x, y)
                                            for x, y in zip(a, b)]

    def test_seq_primitives_agree(self):
        vv = [[5, 1], [9], [2, 2, 2]]
        ix = [2, 1, 3]
        v = from_python(vv, TSeq(TSeq(INT)))
        i = from_python(ix, TSeq(INT))
        assert to_python(O.apply_kernel("length", [v]), TSeq(INT)) == \
            [len(x) for x in vv]
        assert to_python(O.apply_kernel("seq_index", [v, i]), TSeq(INT)) == \
            [x[k - 1] for x, k in zip(vv, ix)]


# -- throughput benchmarks ---------------------------------------------------

@pytest.mark.parametrize("name", ["add", "mul", "lt", "eq"])
def test_bench_elementwise(benchmark, name):
    a, b = int_frame(), int_frame(1, 100)
    out = benchmark(O.apply_kernel, name, [a, b])
    assert out.values.size == N


def test_bench_div_checked(benchmark):
    a, b = int_frame(), int_frame(1, 100)
    out = benchmark(O.apply_kernel, "div", [a, b])
    assert out.values.size == N


def test_bench_range1(benchmark):
    n = from_python([int(x) for x in _rng.integers(0, 20, 20_000)], TSeq(INT))
    out = benchmark(O.apply_kernel, "range1", [n])
    assert out.depth == 2


def test_bench_dist(benchmark):
    c = int_frame(n=20_000)
    r = from_python([int(x) for x in _rng.integers(0, 10, 20_000)], TSeq(INT))
    out = benchmark(O.apply_kernel, "dist", [c, r])
    assert out.depth == 2


def test_bench_restrict(benchmark):
    counts = [int(x) for x in _rng.integers(0, 10, 20_000)]
    v = from_python([[int(y) for y in _rng.integers(0, 9, c)] for c in counts],
                    TSeq(TSeq(INT)))
    m = from_python([[bool(b) for b in _rng.integers(0, 2, c)] for c in counts],
                    TSeq(TSeq(BOOL)))
    out = benchmark(O.apply_kernel, "restrict", [v, m])
    assert out.depth == 2


def test_bench_combine(benchmark):
    mrows = [[bool(b) for b in _rng.integers(0, 2, 8)] for _ in range(20_000)]
    v = from_python([[1] * sum(r) for r in mrows], TSeq(TSeq(INT)))
    u = from_python([[0] * (len(r) - sum(r)) for r in mrows], TSeq(TSeq(INT)))
    m = from_python(mrows, TSeq(TSeq(BOOL)))
    out = benchmark(O.apply_kernel, "combine", [m, v, u])
    assert out.values.size == 160_000


def test_bench_seq_index_shared(benchmark):
    src = from_python(list(range(1, 1001)), TSeq(INT))
    i = from_python([int(x) for x in _rng.integers(1, 1001, N)], TSeq(INT))
    out = benchmark(O.k_seq_index_shared, src, i)
    assert out.values.size == N


def test_bench_seq_update(benchmark):
    counts = [8] * 20_000
    v = from_python([[0] * 8 for _ in counts], TSeq(TSeq(INT)))
    i = from_python([int(x) for x in _rng.integers(1, 9, 20_000)], TSeq(INT))
    x = from_python([7] * 20_000, TSeq(INT))
    out = benchmark(O.apply_kernel, "seq_update", [v, i, x])
    assert out.values.size == 160_000


@pytest.mark.parametrize("name", ["sum", "maxval", "minval", "plus_scan",
                                  "max_scan"])
def test_bench_segmented_reductions(benchmark, name):
    counts = [int(x) for x in _rng.integers(1, 12, 20_000)]
    v = from_python([[int(y) for y in _rng.integers(-9, 9, c)] for c in counts],
                    TSeq(TSeq(INT)))
    out = benchmark(O.apply_kernel, name, [v])
    assert out is not None
