"""E7 — section 6, *Implications for sequential execution*.

"One of the objections often raised to the iterator construct is that it
incurs substantial overhead in the repeated evaluation of the iterator
body.  The transformation rules suggest, however, that by replacing the
iterators with vector primitives, the overhead of repeated calls can be
eliminated."

We measure the same P program executed (a) by the reference interpreter —
per-element repeated evaluation — and (b) by the transformed program on
vector primitives, on one CPU.  Shape expected: vector wins, and the ratio
*grows* with problem size (interpreter cost is per element; vector cost is
per vector op)."""

import time

import pytest

from repro import compile_program
from repro.guard import GuardConfig, guarded

SRC = """
fun step(v) = [x <- v: (x * 3 + 1) mod 1000]
fun work(v, k) = if k == 0 then v else work(step(v), k - 1)
"""


@pytest.fixture(scope="module")
def prog():
    return compile_program(SRC)


def _time(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


class TestIteratorOverheadShape:
    def test_vector_wins_at_scale(self, prog):
        v = list(range(20_000))
        # warm both paths (transform cache, numpy)
        prog.run("step", [v[:16]])
        prog.run("step", [v[:16]], backend="interp")
        t_vec = _time(prog.run, "step", [v])
        t_int = _time(lambda a: prog.run("step", a, backend="interp"), [v])
        assert t_int > 3 * t_vec, (t_int, t_vec)

    def test_ratio_grows_with_size(self, prog):
        prog.run("step", [[1, 2]])
        prog.run("step", [[1, 2]], backend="interp")
        ratios = []
        for n in (200, 20_000):
            v = list(range(n))
            t_vec = min(_time(prog.run, "step", [v]) for _ in range(3))
            t_int = min(_time(lambda a: prog.run("step", a, backend="interp"), [v])
                        for _ in range(3))
            ratios.append(t_int / t_vec)
        assert ratios[1] > ratios[0], ratios

    def test_results_identical(self, prog):
        v = list(range(500))
        assert prog.run("work", [v, 3]) == prog.run("work", [v, 3],
                                                    backend="interp")


class TestGuardOverhead:
    """The guard layer's zero-overhead-when-off contract, measured on the
    same 100k-element loop E7 uses for the obs layer (the acceptance bar
    is < 3%, below run-to-run noise — docs/RELIABILITY.md)."""

    def test_checker_off_overhead_below_noise(self, prog):
        v = list(range(100_000))
        prog.run("step", [v])  # warm transform cache + numpy
        idle = GuardConfig(check=False)  # guard active, checker off

        def guarded_run():
            with guarded(idle):
                prog.run("step", [v])

        # interleave the arms so drift hits both equally; min-of-N is
        # robust to scheduler noise
        t_plain, t_idle = float("inf"), float("inf")
        for _ in range(9):
            t_plain = min(t_plain, _time(prog.run, "step", [v]))
            t_idle = min(t_idle, _time(guarded_run))
        assert t_idle < t_plain * 1.03, (t_plain, t_idle)


N = 10_000


def test_bench_interpreter_per_element(benchmark, prog):
    v = list(range(N))
    benchmark(lambda: prog.run("step", [v], backend="interp"))


def test_bench_vector_primitives(benchmark, prog):
    v = list(range(N))
    prog.run("step", [v])  # warm transform cache
    benchmark(lambda: prog.run("step", [v]))


def test_bench_vcode_vm(benchmark, prog):
    v = list(range(N))
    vm, mono = prog.vcode_vm("step", [v])
    benchmark(lambda: vm.call(mono, [v]))
