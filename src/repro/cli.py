"""Command-line interface.

Usage (also via ``python -m repro``):

    repro run FILE -e ENTRY -a ARG [-a ARG ...] [--backend vector|interp|vcode]
                   [--profile]
    repro eval "EXPR"
    repro transform FILE -e ENTRY (-a ARG ... | -t TYPE ...)
    repro emit-c FILE -e ENTRY -t TYPE [-t TYPE ...]
    repro trace FILE -e ENTRY -t TYPE [-t TYPE ...]
    repro vcode FILE -e ENTRY -t TYPE [-t TYPE ...]
    repro simulate FILE -e ENTRY -a ARG ... [-p 1,4,16,64] [--latency N]
                   [--profile]
    repro measure FILE -e ENTRY -a ARG ...
    repro profile FILE [-e ENTRY] [-a ARG ...] [--backend vector|vcode|interp]
                  [-o profile.json]

Arguments (``-a``) are Python literals: ``5``, ``"[1, 2, 3]"``,
``"[[1],[2,3]]"``, ``"(1, True)"``.  Types (``-t``) use P type syntax:
``int``, ``seq(seq(int))``, ``"(int, int) -> int"``.

FILE is either P source, or a Python example script (``examples/*.py``)
embedding its P program in a module-level ``SOURCE`` string — the CLI
extracts it without executing the script.  ``repro profile`` additionally
honours the example's ``PROFILE_ENTRY``/``PROFILE_ARGS`` defaults, so
``repro profile examples/quicksort.py`` works with no further flags.
"""

from __future__ import annotations

import argparse
import ast as pyast
import sys

from repro.api import compile_program
from repro.errors import ReproError
from repro.transform.pipeline import TransformOptions


def _literal(s: str):
    try:
        return pyast.literal_eval(s)
    except (ValueError, SyntaxError) as e:
        raise SystemExit(f"bad argument literal {s!r}: {e}")


def _example_spec(text: str) -> dict:
    """Module-level ``SOURCE`` / ``PROFILE_ENTRY`` / ``PROFILE_ARGS``
    literal assignments of a Python example script, read via ``ast``
    (the script is never executed)."""
    spec: dict = {}
    try:
        tree = pyast.parse(text)
    except SyntaxError:
        return spec
    for node in tree.body:
        if not (isinstance(node, pyast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], pyast.Name)):
            continue
        name = node.targets[0].id
        if name in ("SOURCE", "PROFILE_ENTRY", "PROFILE_ARGS"):
            try:
                spec[name] = pyast.literal_eval(node.value)
            except ValueError:
                pass
    return spec


def _read_source(path: str) -> tuple[str, dict]:
    """P source text plus, for Python example scripts, the embedded
    profile defaults."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        raise SystemExit(f"cannot read {path}: {e}")
    if path.endswith(".py"):
        spec = _example_spec(text)
        if "SOURCE" not in spec:
            raise SystemExit(
                f"{path}: Python file has no module-level SOURCE string "
                "with an embedded P program")
        return spec["SOURCE"], spec
    return text, {}


def _compile(src: str, options=None):
    try:
        return compile_program(src, options=options)
    except ReproError as e:
        raise SystemExit(f"error: {e}")


def _load(path: str, options=None):
    src, _spec = _read_source(path)
    return _compile(src, options=options)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Proteus-subset flattening compiler (Prins & Palmer 1993)")
    sub = p.add_subparsers(dest="cmd", required=True)

    def common(sp, types_ok=True, args_ok=True):
        sp.add_argument("file", help="P source file")
        sp.add_argument("-e", "--entry", default="main",
                        help="entry function (default: main)")
        if args_ok:
            sp.add_argument("-a", "--arg", action="append", default=[],
                            help="argument as a Python literal (repeatable)")
        if types_ok:
            sp.add_argument("-t", "--type", action="append", default=[],
                            help="argument type in P syntax (repeatable)")
        return sp

    sp = common(sub.add_parser("run", help="run an entry function"))
    sp.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode"])
    sp.add_argument("--profile", action="store_true",
                    help="print the observability report after the result")

    ev = sub.add_parser("eval", help="evaluate a standalone expression")
    ev.add_argument("expr")
    ev.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode"])

    common(sub.add_parser(
        "transform", help="print the iterator-free transformed program"))
    common(sub.add_parser("emit-c", help="print CVL-style C"), args_ok=False)
    common(sub.add_parser(
        "derive", help="print the full derivation document (markdown)"),
        args_ok=False)
    common(sub.add_parser("trace", help="print the rule-application trace"),
           args_ok=False)
    common(sub.add_parser("vcode", help="print the VCODE program"),
           args_ok=False)

    sm = common(sub.add_parser(
        "simulate", help="run and simulate on P-processor machines"))
    sm.add_argument("-p", "--processors", default="1,4,16,64")
    sm.add_argument("--latency", type=int, default=2)
    sm.add_argument("--stats", action="store_true",
                    help="print op-class mix and top ops by work")
    sm.add_argument("--comm", action="store_true",
                    help="use the communication-aware cost model")
    sm.add_argument("--profile", action="store_true",
                    help="print the observability report after the run")

    common(sub.add_parser(
        "measure", help="work/span on the reference interpreter"))

    pf = sub.add_parser(
        "profile",
        help="run under the observability layer: per-kernel counter "
             "tables, phase spans, and a profile.json")
    pf.add_argument("file", help="P source file or examples/*.py script")
    pf.add_argument("-e", "--entry", default=None,
                    help="entry function (default: the example's "
                         "PROFILE_ENTRY, else main)")
    pf.add_argument("-a", "--arg", action="append", default=[],
                    help="argument as a Python literal (default: the "
                         "example's PROFILE_ARGS)")
    pf.add_argument("-t", "--type", action="append", default=[],
                    help="argument type in P syntax (repeatable)")
    pf.add_argument("--backend", default="vector",
                    choices=["vector", "vcode", "interp"])
    pf.add_argument("-o", "--output", default="profile.json",
                    help="where to write the JSON report "
                         "(default: profile.json)")
    pf.add_argument("--no-write", action="store_true",
                    help="print the tables only, write no JSON file")

    rp = sub.add_parser("repl", help="interactive read-eval-print loop")
    rp.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode"])
    return p


def _entry_types(ns):
    return [t for t in ns.type] if getattr(ns, "type", None) else None


def main(argv: list[str] | None = None) -> int:
    ns = _parser().parse_args(argv)
    try:
        return _dispatch(ns)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into e.g. `head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _dispatch(ns) -> int:
    if ns.cmd == "eval":
        prog = compile_program(f"fun main() = {ns.expr}")
        print(prog.run("main", [], backend=ns.backend))
        return 0

    if ns.cmd == "run":
        prog = _load(ns.file)
        args = [_literal(a) for a in ns.arg]
        if ns.profile:
            result, report = prog.profile(ns.entry, args, backend=ns.backend,
                                          types=_entry_types(ns))
            print(result)
            print(report.table())
        else:
            print(prog.run(ns.entry, args, backend=ns.backend,
                           types=_entry_types(ns)))
        return 0

    if ns.cmd == "profile":
        from repro.obs import Profiler, profiling
        src, spec = _read_source(ns.file)
        entry = ns.entry or spec.get("PROFILE_ENTRY") or "main"
        if ns.arg:
            args = [_literal(a) for a in ns.arg]
        else:
            args = list(spec.get("PROFILE_ARGS", []))
        prof = Profiler()
        with profiling(prof):
            prog = _compile(src)
            result = prog.run(entry, args, backend=ns.backend,
                              types=_entry_types(ns))
        report = prof.report(entry=entry, backend=ns.backend, file=ns.file)
        print(f"result: {result}")
        print(report.table())
        if not ns.no_write:
            try:
                report.save(ns.output)
            except OSError as e:
                raise SystemExit(f"cannot write {ns.output}: {e}")
            print(f"wrote {ns.output}")
        return 0

    if ns.cmd == "transform":
        prog = _load(ns.file)
        if ns.type:
            print(prog.transformed_source(ns.entry, ns.type, by_types=True))
        else:
            args = [_literal(a) for a in ns.arg]
            print(prog.transformed_source(ns.entry, args))
        return 0

    if ns.cmd == "emit-c":
        prog = _load(ns.file)
        print(prog.emit_c(ns.entry, ns.type))
        return 0

    if ns.cmd == "derive":
        from repro.lang.types import parse_type
        from repro.transform.derivation import derivation_document
        prog = _load(ns.file, options=TransformOptions(trace=True))
        print(derivation_document(prog, ns.entry,
                                  [parse_type(t) for t in ns.type]))
        return 0

    if ns.cmd == "trace":
        prog = _load(ns.file, options=TransformOptions(trace=True))
        print(prog.trace_for(ns.entry, ns.type))
        return 0

    if ns.cmd == "vcode":
        prog = _load(ns.file)
        _mono, vp = prog.compile_vcode(ns.entry, ns.type)
        print(vp)
        return 0

    if ns.cmd == "simulate":
        prog = _load(ns.file)
        args = [_literal(a) for a in ns.arg]
        prof = None
        if ns.profile:
            from repro.obs import Profiler, profiling
            prof = Profiler()
            with profiling(prof):
                result, trace = prog.vector_trace(ns.entry, args,
                                                  types=_entry_types(ns))
        else:
            result, trace = prog.vector_trace(ns.entry, args,
                                              types=_entry_types(ns))
        print(f"result: {result}")
        from repro.machine import CommMachine, VectorMachine, classify_trace, top_ops
        mk = (lambda p: CommMachine(processors=p, latency=ns.latency)) \
            if ns.comm else \
            (lambda p: VectorMachine(processors=p, latency=ns.latency))
        for p in (int(x) for x in ns.processors.split(",")):
            print(mk(p).run_trace(trace))
        if ns.stats:
            print("\nop-class mix:")
            print(classify_trace(trace))
            print("\ntop ops by work:")
            for op, steps, work in top_ops(trace):
                print(f"  {op:>20}: steps={steps:>6} work={work:>10}")
        if prof is not None:
            print()
            print(prof.report(entry=ns.entry, backend="vcode").table())
        return 0

    if ns.cmd == "repl":
        return repl(backend=ns.backend)

    if ns.cmd == "measure":
        prog = _load(ns.file)
        args = [_literal(a) for a in ns.arg]
        val, cost = prog.measure(ns.entry, args)
        print(f"result: {val}")
        print(cost)
        return 0

    raise SystemExit(f"unknown command {ns.cmd}")  # pragma: no cover


def repl(backend: str = "vector", stdin=None, stdout=None) -> int:
    """Interactive loop: ``fun`` lines add definitions, other lines evaluate
    as expressions.  Commands: :defs, :transform NAME, :backend NAME, :quit.

    ``stdin``/``stdout`` are injectable for tests.
    """
    inp = stdin or sys.stdin
    out = stdout or sys.stdout

    def say(msg: str = "") -> None:
        print(msg, file=out)

    defs: list[str] = []
    say(f"P repl ({backend} back end) — :help for commands")
    while True:
        print("P> ", end="", file=out, flush=True)
        line = inp.readline()
        if not line:
            return 0
        line = line.strip()
        if not line:
            continue
        if line in (":quit", ":q"):
            return 0
        if line == ":help":
            say("fun name(args) = body    add a definition")
            say("EXPR                     evaluate an expression")
            say(":defs                    list definitions")
            say(":transform NAME          show a function's flattened form")
            say(":backend NAME            switch vector|interp|vcode")
            say(":quit                    leave")
            continue
        if line == ":defs":
            for d in defs:
                say(d.splitlines()[0] + (" ..." if "\n" in d else ""))
            continue
        if line.startswith(":backend"):
            cand = line.split(None, 1)[-1]
            if cand in ("vector", "interp", "vcode"):
                backend = cand
                say(f"back end: {backend}")
            else:
                say(f"unknown back end {cand!r}")
            continue
        if line.startswith(":transform"):
            name = line.split(None, 1)[-1].strip()
            try:
                prog = compile_program("\n".join(defs))
                sig = prog.typed.schemes.get(name)
                if sig is None:
                    say(f"no such function {name!r}")
                    continue
                from repro.lang.types import Subst
                params = [Subst().default_unresolved(t) for t in sig.params]
                say(prog.transformed_source(name, params, by_types=True))
            except ReproError as e:
                say(f"error: {e}")
            continue
        try:
            if line.startswith("fun "):
                trial = "\n".join([*defs, line])
                compile_program(trial)  # validate before accepting
                defs.append(line)
                say("ok")
            else:
                src = "\n".join([*defs, f"fun it_repl_() = {line}"])
                prog = compile_program(src)
                say(repr(prog.run("it_repl_", [], backend=backend)))
        except ReproError as e:
            say(f"error: {e}")
        except RecursionError:
            say("error: recursion limit exceeded")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
