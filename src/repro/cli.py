"""Command-line interface.

Usage (also via ``python -m repro``):

    repro run FILE -e ENTRY -a ARG [-a ARG ...]
                   [--backend vector|interp|vcode|native|parallel]
                   [--threads N]
                   [--profile] [--check] [--timeout S] [--max-steps N]
                   [--passes LIST] [--print-ir-after-all]
                   [--print-ir-after PASS] ...
    repro eval "EXPR"
    repro check FILE -e ENTRY -a ARG ...      (all back ends, strict checking)
    repro fuzz [--seed N] [--count N] [--check] [--backends LIST]
    repro native [--status] [FILE -e ENTRY -t TYPE ... [--threads N]]
    repro transform FILE -e ENTRY (-a ARG ... | -t TYPE ...)
                   [--passes LIST] [--print-ir-after-all]
    repro emit-c FILE -e ENTRY -t TYPE [-t TYPE ...]
    repro trace FILE -e ENTRY -t TYPE [-t TYPE ...]
    repro vcode FILE -e ENTRY -t TYPE [-t TYPE ...]
    repro simulate FILE -e ENTRY -a ARG ... [-p 1,4,16,64] [--latency N]
                   [--profile]
    repro measure FILE -e ENTRY -a ARG ...
    repro profile FILE [-e ENTRY] [-a ARG ...]
                  [--backend vector|vcode|interp|native|parallel]
                  [-o profile.json]
    repro analyze FILE [-e ENTRY] [-a ARG ...] [-o analysis.json]

Failures are reported as one-line diagnostics, never raw tracebacks; the
exit code tells the classes apart (see ``repro --help`` or
docs/RELIABILITY.md).

Arguments (``-a``) are Python literals: ``5``, ``"[1, 2, 3]"``,
``"[[1],[2,3]]"``, ``"(1, True)"``.  Types (``-t``) use P type syntax:
``int``, ``seq(seq(int))``, ``"(int, int) -> int"``.

FILE is either P source, or a Python example script (``examples/*.py``)
embedding its P program in a module-level ``SOURCE`` string — the CLI
extracts it without executing the script.  ``repro profile`` additionally
honours the example's ``PROFILE_ENTRY``/``PROFILE_ARGS`` defaults, so
``repro profile examples/quicksort.py`` works with no further flags.
"""

from __future__ import annotations

import argparse
import ast as pyast
import sys
from contextlib import nullcontext as _no_guard
from typing import Any, Optional

from repro.api import compile_program
from repro.errors import (
    AnalysisError, InvariantError, NativeCompileError, ReproError,
    ResourceLimitError, WorkerCrashError,
)
from repro.guard.runtime import Budget, GuardConfig, guarded
from repro.transform.pipeline import TransformOptions

# Exit codes (also in the --help epilog and docs/RELIABILITY.md).
EXIT_OK = 0            # success
EXIT_ERROR = 1         # compile or runtime error (any other ReproError)
EXIT_USAGE = 2         # bad command line (argparse)
EXIT_RESOURCE = 3      # a resource budget was exceeded
EXIT_INVARIANT = 4     # the descriptor invariant was violated
EXIT_DISAGREE = 5      # back ends disagree (repro check / repro fuzz)
EXIT_ANALYSIS = 6      # a static-analysis pass rejected the program
EXIT_NATIVE = 7        # native kernel compilation / cache failure
EXIT_CRASH = 8         # a pool worker process crashed with work in flight

_EXIT_EPILOG = """\
exit codes:
  0  success
  1  compile or runtime error
  2  usage error
  3  resource budget exceeded (--timeout/--max-steps/... breached)
  4  descriptor invariant violated (--check found corruption)
  5  back ends disagree (repro check / repro fuzz), or a measured cost
     exceeded its static bound (repro fuzz --cost)
  6  static analysis rejected the program (repro analyze, the phase
     verifier, or the VCODE lint)
  7  native kernel compilation or cache failure (--backend native;
     see docs/NATIVE.md)
  8  a serving-pool worker crashed with requests in flight
     (repro serve --pool; see docs/RELIABILITY.md)
"""


def _literal(s: str):
    try:
        return pyast.literal_eval(s)
    except (ValueError, SyntaxError) as e:
        raise SystemExit(f"bad argument literal {s!r}: {e}")


def _threads_arg(s: str):
    """``--threads`` value: a thread count, or ``auto`` to pick one from
    the statically predicted concurrency (docs/PARALLEL.md)."""
    if s == "auto":
        return "auto"
    try:
        return int(s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a thread count or 'auto', got {s!r}")


def _example_spec(text: str) -> dict:
    """Module-level ``SOURCE`` / ``PROFILE_ENTRY`` / ``PROFILE_ARGS``
    literal assignments of a Python example script, read via ``ast``
    (the script is never executed)."""
    spec: dict = {}
    try:
        tree = pyast.parse(text)
    except SyntaxError:
        return spec
    for node in tree.body:
        if not (isinstance(node, pyast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], pyast.Name)):
            continue
        name = node.targets[0].id
        if name in ("SOURCE", "PROFILE_ENTRY", "PROFILE_ARGS"):
            try:
                spec[name] = pyast.literal_eval(node.value)
            except ValueError:
                pass
    return spec


def _read_source(path: str) -> tuple[str, dict]:
    """P source text plus, for Python example scripts, the embedded
    profile defaults."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        raise SystemExit(f"cannot read {path}: {e}")
    if path.endswith(".py"):
        spec = _example_spec(text)
        if "SOURCE" not in spec:
            raise SystemExit(
                f"{path}: Python file has no module-level SOURCE string "
                "with an embedded P program")
        return spec["SOURCE"], spec
    return text, {}


def _compile(src: str, options=None):
    try:
        return compile_program(src, options=options)
    except ReproError as e:
        raise SystemExit(f"error: {e}")


def _load(path: str, options=None):
    src, _spec = _read_source(path)
    return _compile(src, options=options)


def _pass_flags(sp) -> None:
    g = sp.add_argument_group(
        "pipeline options", "pass-pipeline configuration and IR dumps "
        "(see docs/PASSES.md)")
    g.add_argument("--passes", metavar="LIST",
                   help="comma-separated pass list overriding the default "
                        "pipeline (e.g. \"canonical,eliminate,simplify\"); "
                        "orderings that violate declared pass invariants "
                        "are rejected before anything runs")
    g.add_argument("--print-ir-after-all", action="store_true",
                   help="dump pretty-printed IR to stderr after every "
                        "executed pass")
    g.add_argument("--print-ir-after", action="append", default=[],
                   metavar="PASS",
                   help="dump IR after this pass only (repeatable)")


def _pass_options(ns) -> Optional[TransformOptions]:
    """TransformOptions for the parsed pipeline flags, or None when all
    are at their defaults (so option-free invocations share the default
    pipeline)."""
    from repro.passes import parse_pass_list
    passes = getattr(ns, "passes", None)
    after = tuple(getattr(ns, "print_ir_after", ()) or ())
    all_ = bool(getattr(ns, "print_ir_after_all", False))
    if not passes and not after and not all_:
        return None
    return TransformOptions(
        passes=parse_pass_list(passes) if passes else None,
        print_ir_all=all_, print_ir_after=after)


def _guard_flags(sp) -> None:
    g = sp.add_argument_group(
        "guard options", "strict checking and resource budgets "
        "(see docs/RELIABILITY.md)")
    g.add_argument("--check", nargs="?", const="full", default=None,
                   choices=["full", "static"], metavar="MODE",
                   help="validate the descriptor invariant at every kernel "
                        "and back-end boundary; '--check static' first runs "
                        "the symbolic shape analysis (docs/ANALYSIS.md) and "
                        "skips every statically-discharged site")
    g.add_argument("--max-elements", type=int, metavar="N",
                   help="abort after N leaf elements moved")
    g.add_argument("--max-bytes", type=int, metavar="N",
                   help="abort after N bytes moved")
    g.add_argument("--max-steps", type=int, metavar="N",
                   help="abort after N execution steps")
    g.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="abort after a wall-clock deadline")
    g.add_argument("--max-depth", type=int, metavar="N",
                   help="abort beyond N nested user-function calls")


def _budget(ns) -> Budget:
    return Budget(max_elements=getattr(ns, "max_elements", None),
                  max_bytes=getattr(ns, "max_bytes", None),
                  max_steps=getattr(ns, "max_steps", None),
                  timeout_s=getattr(ns, "timeout", None),
                  max_call_depth=getattr(ns, "max_depth", None))


def _guard_config(ns):
    """A GuardConfig for the parsed guard flags, or None when all off."""
    b = _budget(ns)
    if getattr(ns, "check", None) or b.any_set():
        return GuardConfig(check=bool(getattr(ns, "check", None)), budget=b)
    return None


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Proteus-subset flattening compiler (Prins & Palmer 1993)",
        epilog=_EXIT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    def common(sp, types_ok=True, args_ok=True):
        sp.add_argument("file", help="P source file")
        sp.add_argument("-e", "--entry", default="main",
                        help="entry function (default: main)")
        if args_ok:
            sp.add_argument("-a", "--arg", action="append", default=[],
                            help="argument as a Python literal (repeatable)")
        if types_ok:
            sp.add_argument("-t", "--type", action="append", default=[],
                            help="argument type in P syntax (repeatable)")
        return sp

    sp = common(sub.add_parser("run", help="run an entry function"))
    sp.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode", "native",
                             "parallel"])
    sp.add_argument("--threads", type=_threads_arg, default=None,
                    metavar="N|auto",
                    help="worker threads for --backend parallel: a "
                         "count, or 'auto' to size from the predicted "
                         "concurrency (work/span) of the static cost "
                         "analysis (default: all CPUs; docs/PARALLEL.md)")
    sp.add_argument("--profile", action="store_true",
                    help="print the observability report after the result")
    _pass_flags(sp)
    _guard_flags(sp)

    ev = sub.add_parser("eval", help="evaluate a standalone expression")
    ev.add_argument("expr")
    ev.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode", "native",
                             "parallel"])
    ev.add_argument("--threads", type=_threads_arg, default=None,
                    metavar="N|auto",
                    help="worker threads for --backend parallel")
    _guard_flags(ev)

    ck = common(sub.add_parser(
        "check", help="run on all three back ends with strict invariant "
                      "checking and compare the results"))
    _guard_flags(ck)

    fz = sub.add_parser(
        "fuzz", help="differential fuzzing: random programs on all three "
                     "back ends, disagreements shrunk to minimal programs")
    fz.add_argument("--seed", type=int, default=0,
                    help="first seed (default: 0)")
    fz.add_argument("--count", type=int, default=100,
                    help="number of programs (default: 100)")
    fz.add_argument("--check", action="store_true",
                    help="also enable strict invariant checking per run")
    fz.add_argument("--no-shrink", action="store_true",
                    help="report disagreements without minimizing them")
    fz.add_argument("--quiet", action="store_true",
                    help="no per-interval progress lines")
    fz.add_argument("--backends", metavar="LIST", default=None,
                    help="comma-separated back ends to compare (default: "
                         "interp,vector,vcode); a leading '+' appends to "
                         "the default, e.g. '--backends +native' or "
                         "'--backends +parallel'.  The native back end is "
                         "skipped cleanly when no C toolchain is "
                         "available; parallel is skipped on single-CPU "
                         "machines")
    fz.add_argument("--threads", type=int, default=None, metavar="N",
                    help="worker threads for the parallel lane "
                         "(default: all CPUs)")
    fz.add_argument("--serve-pool", action="store_true",
                    help="serve the vector lane through a 2-process "
                         "worker pool, so the differential also covers "
                         "the pool's argument/result/error marshalling")
    fz.add_argument("--cost", action="store_true",
                    help="cost-soundness lane instead of the backend "
                         "differential: check every program's measured "
                         "interp work/span stays <= the static cost "
                         "bound at the concrete input sizes; violations "
                         "are shrunk like disagreements "
                         "(docs/ANALYSIS.md)")

    tr = common(sub.add_parser(
        "transform", help="print the iterator-free transformed program"))
    _pass_flags(tr)
    common(sub.add_parser("emit-c", help="print CVL-style C"), args_ok=False)
    common(sub.add_parser(
        "derive", help="print the full derivation document (markdown)"),
        args_ok=False)
    common(sub.add_parser("trace", help="print the rule-application trace"),
           args_ok=False)
    common(sub.add_parser("vcode", help="print the VCODE program"),
           args_ok=False)

    sm = common(sub.add_parser(
        "simulate", help="run and simulate on P-processor machines"))
    sm.add_argument("-p", "--processors", default="1,4,16,64")
    sm.add_argument("--latency", type=int, default=2)
    sm.add_argument("--stats", action="store_true",
                    help="print op-class mix and top ops by work")
    sm.add_argument("--comm", action="store_true",
                    help="use the communication-aware cost model")
    sm.add_argument("--profile", action="store_true",
                    help="print the observability report after the run")
    _guard_flags(sm)

    common(sub.add_parser(
        "measure", help="work/span on the reference interpreter"))

    pf = sub.add_parser(
        "profile",
        help="run under the observability layer: per-kernel counter "
             "tables, phase spans, and a profile.json")
    pf.add_argument("file", help="P source file or examples/*.py script")
    pf.add_argument("-e", "--entry", default=None,
                    help="entry function (default: the example's "
                         "PROFILE_ENTRY, else main)")
    pf.add_argument("-a", "--arg", action="append", default=[],
                    help="argument as a Python literal (default: the "
                         "example's PROFILE_ARGS)")
    pf.add_argument("-t", "--type", action="append", default=[],
                    help="argument type in P syntax (repeatable)")
    pf.add_argument("--backend", default="vector",
                    choices=["vector", "vcode", "interp", "native",
                             "parallel"])
    pf.add_argument("--threads", type=_threads_arg, default=None,
                    metavar="N|auto",
                    help="worker threads for --backend parallel")
    pf.add_argument("-o", "--output", default="profile.json",
                    help="where to write the JSON report "
                         "(default: profile.json)")
    pf.add_argument("--no-write", action="store_true",
                    help="print the tables only, write no JSON file")

    an = sub.add_parser(
        "analyze",
        help="static analysis: the phase-boundary IR verifier, the "
             "symbolic shape analysis (which guard checks are statically "
             "discharged), and the VCODE lint (docs/ANALYSIS.md)")
    an.add_argument("file", help="P source file or examples/*.py script")
    an.add_argument("-e", "--entry", default=None,
                    help="entry function (default: the example's "
                         "PROFILE_ENTRY, else main)")
    an.add_argument("-a", "--arg", action="append", default=[],
                    help="argument as a Python literal (default: the "
                         "example's PROFILE_ARGS)")
    an.add_argument("-t", "--type", action="append", default=[],
                    help="argument type in P syntax (repeatable)")
    an.add_argument("-o", "--output", default="analysis.json",
                    help="where to write the JSON report "
                         "(default: analysis.json)")
    an.add_argument("--no-write", action="store_true",
                    help="print the report only, write no JSON file")
    an.add_argument("--cost", action="store_true",
                    help="also run the symbolic work/span/memory cost "
                         "analysis: per-definition bounds in the output "
                         "and a versioned 'cost' section in the JSON "
                         "(docs/ANALYSIS.md)")

    sub.add_parser(
        "passes",
        help="list the registered pipeline passes with their stages and "
             "invariant contracts (docs/PASSES.md)")

    nt = sub.add_parser(
        "native",
        help="native kernel backend: toolchain/cache status, or the real "
             "C kernels emitted for an entry's fused regions "
             "(docs/NATIVE.md)")
    nt.add_argument("file", nargs="?", default=None,
                    help="P source file (omit with --status)")
    nt.add_argument("-e", "--entry", default="main",
                    help="entry function (default: main)")
    nt.add_argument("-t", "--type", action="append", default=[],
                    help="argument type in P syntax (repeatable)")
    nt.add_argument("--status", action="store_true",
                    help="print toolchain, kernel and cache statistics")
    nt.add_argument("--threads", type=int, default=None, metavar="N",
                    help="emit the OpenMP multicore kernel variants for N "
                         "threads instead of the serial kernels "
                         "(docs/PARALLEL.md)")

    rp = sub.add_parser("repl", help="interactive read-eval-print loop")
    rp.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode", "native",
                             "parallel"])

    sv = sub.add_parser(
        "serve",
        help="segment-batched JSONL server: coalesce requests from stdin "
             "into single vector passes (docs/SERVING.md)")
    sv.add_argument("file", nargs="?", default=None,
                    help="P source file used when a request has no "
                         "\"source\" field")
    sv.add_argument("--backend", default="vector",
                    choices=["vector", "interp", "vcode", "native",
                             "parallel"])
    sv.add_argument("--threads", type=int, default=None, metavar="N",
                    help="worker threads per parallel-backend execution "
                         "(default: all CPUs; docs/PARALLEL.md)")
    sv.add_argument("--max-batch", type=int, default=64, metavar="N",
                    help="largest coalesced batch (default: 64)")
    sv.add_argument("--max-queue", type=int, default=1024, metavar="N",
                    help="queue bound before submissions are rejected")
    sv.add_argument("--workers", type=int, default=1, metavar="N",
                    help="dispatcher threads (default: 1)")
    sv.add_argument("--cache-capacity", type=int, default=128, metavar="N",
                    help="compile-cache LRU slots (default: 128)")
    sv.add_argument("--check", action="store_true",
                    help="strict descriptor-invariant checking per batch")
    sv.add_argument("--stats", action="store_true",
                    help="print serving statistics to stderr at EOF")
    sv.add_argument("--pool", type=int, default=0, metavar="N",
                    help="serve through a supervised pool of N worker "
                         "*processes* (crash isolation, retry, deadline "
                         "kills; docs/RELIABILITY.md) instead of "
                         "in-process threads")
    sv.add_argument("--retry", type=int, default=2, metavar="N",
                    help="with --pool: crash-retry budget per request, "
                         "0 disables (default: 2; budgeted requests "
                         "never retry)")
    sv.add_argument("--chaos", default=None, metavar="SPEC",
                    help="with --pool: seeded process-fault injection, "
                         "e.g. 'abort,poison:rate=0.1:seed=3' or 'all' "
                         "(sites: abort, stall, slow, poison)")
    return p


def _entry_types(ns):
    return [t for t in ns.type] if getattr(ns, "type", None) else None


def main(argv: list[str] | None = None) -> int:
    """Parse and dispatch; every failure mode becomes a one-line
    diagnostic plus a documented exit code — never a raw traceback."""
    ns = _parser().parse_args(argv)
    try:
        return _dispatch(ns)
    except ResourceLimitError as e:
        print(f"resource limit: {e}", file=sys.stderr)
        return EXIT_RESOURCE
    except InvariantError as e:
        print(f"invariant violation: {e}", file=sys.stderr)
        return EXIT_INVARIANT
    except AnalysisError as e:
        print(f"analysis error: {e}", file=sys.stderr)
        return EXIT_ANALYSIS
    except NativeCompileError as e:
        print(f"native backend error: {e}", file=sys.stderr)
        return EXIT_NATIVE
    except WorkerCrashError as e:
        print(f"worker crash: {e}", file=sys.stderr)
        return EXIT_CRASH
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return EXIT_ERROR
    except RecursionError:
        print("error: Python recursion limit exceeded "
              "(use --max-depth for a diagnosed failure)", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:  # output piped into e.g. `head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return EXIT_OK


def _dispatch(ns) -> int:
    if ns.cmd == "eval":
        prog = compile_program(f"fun main() = {ns.expr}")
        print(prog.run("main", [], backend=ns.backend,
                       check=ns.check or False, budget=_budget(ns),
                       threads=ns.threads))
        return 0

    if ns.cmd == "run":
        prog = _load(ns.file, options=_pass_options(ns))
        args = [_literal(a) for a in ns.arg]
        if ns.profile:
            cfg = _guard_config(ns)
            with guarded(cfg) if cfg is not None else _no_guard():
                result, report = prog.profile(ns.entry, args,
                                              backend=ns.backend,
                                              types=_entry_types(ns),
                                              threads=ns.threads)
            print(result)
            print(report.table())
        else:
            print(prog.run(ns.entry, args, backend=ns.backend,
                           types=_entry_types(ns),
                           check=ns.check or False, budget=_budget(ns),
                           threads=ns.threads))
        return 0

    if ns.cmd == "check":
        prog = _load(ns.file)
        args = [_literal(a) for a in ns.arg]
        results = {}
        for backend in ("interp", "vector", "vcode"):
            results[backend] = prog.run(ns.entry, args, backend=backend,
                                        types=_entry_types(ns),
                                        check=True, budget=_budget(ns))
        vals = list(results.values())
        if all(v == vals[0] for v in vals[1:]):
            print(vals[0])
            print("back ends agree (interp, vector, vcode); "
                  "invariants hold")
            return EXIT_OK
        print("back ends DISAGREE:", file=sys.stderr)
        for backend, v in results.items():
            print(f"  {backend:8s} -> {v!r}", file=sys.stderr)
        return EXIT_DISAGREE

    if ns.cmd == "fuzz" and ns.cost:
        from repro.fuzz import fuzz_cost
        interval = max(1, ns.count // 10)

        def cost_progress(i: int, report) -> None:
            if not ns.quiet and (i + 1) % interval == 0:
                print(f"  {i + 1}/{ns.count}: {report.summary()}")

        report = fuzz_cost(ns.seed, ns.count, shrink=not ns.no_shrink,
                           progress=cost_progress)
        print(report.summary())
        for v in report.violations:
            print()
            print(v.describe())
        for seed, msg in report.invalid:
            print(f"invalid program (generator bug) at seed {seed}: {msg}",
                  file=sys.stderr)
        if report.violations:
            return EXIT_DISAGREE
        return EXIT_OK if report.ok else EXIT_ERROR

    if ns.cmd == "fuzz":
        from repro.fuzz import fuzz
        from repro.fuzz.differ import resolve_backends
        try:
            backends = resolve_backends(ns.backends)
        except ValueError as e:
            print(f"fuzz: {e}", file=sys.stderr)
            return EXIT_USAGE
        if ns.threads is not None:
            from repro.parallel import set_default_threads
            set_default_threads(ns.threads)
        interval = max(1, ns.count // 10)

        def progress(i: int, report) -> None:
            if not ns.quiet and (i + 1) % interval == 0:
                print(f"  {i + 1}/{ns.count}: {report.summary()}")

        if ns.serve_pool:
            from contextlib import ExitStack

            from repro.serve import PoolConfig, WorkerPool
            stack = ExitStack()
            pool = stack.enter_context(
                WorkerPool(PoolConfig(workers=2, native_after=0)))
            if not ns.quiet:
                print("fuzz: vector lane served through a 2-process "
                      "worker pool")
        else:
            from contextlib import nullcontext
            stack, pool = nullcontext(), None
        with stack:
            report = fuzz(ns.seed, ns.count, check=ns.check,
                          shrink=not ns.no_shrink, progress=progress,
                          backends=backends, pool=pool)
        print(report.summary())
        for d in report.disagreements:
            print()
            print(d.describe())
        for seed, msg in report.invalid:
            print(f"invalid program (generator bug) at seed {seed}: {msg}",
                  file=sys.stderr)
        if report.disagreements:
            return EXIT_DISAGREE
        return EXIT_OK if report.ok else EXIT_ERROR

    if ns.cmd == "profile":
        from repro.obs import Profiler, profiling
        src, spec = _read_source(ns.file)
        entry = ns.entry or spec.get("PROFILE_ENTRY") or "main"
        if ns.arg:
            args = [_literal(a) for a in ns.arg]
        else:
            args = list(spec.get("PROFILE_ARGS", []))
        prof = Profiler()
        with profiling(prof):
            prog = _compile(src)
            result = prog.run(entry, args, backend=ns.backend,
                              types=_entry_types(ns), threads=ns.threads)
        report = prof.report(entry=entry, backend=ns.backend, file=ns.file)
        print(f"result: {result}")
        print(report.table())
        if not ns.no_write:
            try:
                report.save(ns.output)
            except OSError as e:
                raise SystemExit(f"cannot write {ns.output}: {e}")
            print(f"wrote {ns.output}")
        return 0

    if ns.cmd == "analyze":
        from repro.analysis.report import analyze_source
        src, spec = _read_source(ns.file)
        entry = ns.entry or spec.get("PROFILE_ENTRY") or "main"
        if ns.arg:
            args = [_literal(a) for a in ns.arg]
        else:
            args = list(spec.get("PROFILE_ARGS", []))
        report = analyze_source(src, entry, args, types=_entry_types(ns),
                                file=ns.file, cost=ns.cost)
        print(report.render())
        if not ns.no_write:
            try:
                report.save(ns.output)
            except OSError as e:
                raise SystemExit(f"cannot write {ns.output}: {e}")
            print(f"wrote {ns.output}")
        return 0

    if ns.cmd == "transform":
        prog = _load(ns.file, options=_pass_options(ns))
        if ns.type:
            print(prog.transformed_source(ns.entry, ns.type, by_types=True))
        else:
            args = [_literal(a) for a in ns.arg]
            print(prog.transformed_source(ns.entry, args))
        return 0

    if ns.cmd == "emit-c":
        prog = _load(ns.file)
        print(prog.emit_c(ns.entry, ns.type))
        return 0

    if ns.cmd == "derive":
        from repro.lang.types import parse_type
        from repro.transform.derivation import derivation_document
        prog = _load(ns.file, options=TransformOptions(trace=True))
        print(derivation_document(prog, ns.entry,
                                  [parse_type(t) for t in ns.type]))
        return 0

    if ns.cmd == "trace":
        prog = _load(ns.file, options=TransformOptions(trace=True))
        print(prog.trace_for(ns.entry, ns.type))
        return 0

    if ns.cmd == "vcode":
        prog = _load(ns.file)
        _mono, vp = prog.compile_vcode(ns.entry, ns.type)
        print(vp)
        return 0

    if ns.cmd == "simulate":
        prog = _load(ns.file)
        args = [_literal(a) for a in ns.arg]
        prof = None
        cfg = _guard_config(ns)
        guard_scope = guarded(cfg) if cfg is not None else _no_guard()
        if ns.profile:
            from repro.obs import Profiler, profiling
            prof = Profiler()
            with profiling(prof), guard_scope:
                result, trace = prog.vector_trace(ns.entry, args,
                                                  types=_entry_types(ns))
        else:
            with guard_scope:
                result, trace = prog.vector_trace(ns.entry, args,
                                                  types=_entry_types(ns))
        print(f"result: {result}")
        from repro.machine import CommMachine, VectorMachine, classify_trace, top_ops
        machine = CommMachine if ns.comm else VectorMachine
        for p in (int(x) for x in ns.processors.split(",")):
            print(machine(processors=p, latency=ns.latency).run_trace(trace))
        if ns.stats:
            print("\nop-class mix:")
            print(classify_trace(trace))
            print("\ntop ops by work:")
            for op, steps, work in top_ops(trace):
                print(f"  {op:>20}: steps={steps:>6} work={work:>10}")
        if prof is not None:
            print()
            print(prof.report(entry=ns.entry, backend="vcode").table())
        return 0

    if ns.cmd == "passes":
        from repro.passes import registered_passes
        from repro.transform.pipeline import DEFAULT_PASSES
        print(f"{'pass':<12} {'stage':<7} {'requires':<28} "
              f"{'produces':<22} description")
        for name, cls in sorted(registered_passes().items()):
            req = ",".join(sorted(cls.requires)) or "-"
            pro = ",".join(sorted(cls.produces)) or "-"
            print(f"{name:<12} {cls.stage:<7} {req:<28} {pro:<22} "
                  f"{cls.description}")
        print(f"\ndefault pipeline: {', '.join(DEFAULT_PASSES)} "
              "(+ fuse when TransformOptions.fuse)")
        return 0

    if ns.cmd == "native":
        if ns.status:
            from repro.native import toolchain
            from repro.native.engine import get_engine
            engine = get_engine()
            if engine is None:
                print("toolchain:   none (no C compiler on PATH; native "
                      "backend falls back to NumPy)")
                print("available:   no")
                print("openmp:      no")
                return 0
            st = engine.status()
            print(f"toolchain:   {st['toolchain']}")
            print(f"available:   {'yes' if st['available'] else 'no'}")
            print(f"openmp:      "
                  f"{'yes' if toolchain.openmp_available() else 'no'}"
                  f" (multicore kernels; docs/PARALLEL.md)")
            print(f"kernels:     {st['fused_kernels']} fused, "
                  f"{st['segmented_kernels']} segmented, "
                  f"{st['gather_kernels']} gather")
            c = st["cache"]
            print(f"cache:       {c['hits']} hits, {c['misses']} misses, "
                  f"{c['compiles']} compiles, {c['evictions']} evictions, "
                  f"{c['loaded']} loaded")
            print(f"cache dir:   {c['directory']}")
            return 0
        if ns.file is None:
            print("native: FILE required unless --status is given",
                  file=sys.stderr)
            return EXIT_USAGE
        prog = _load(ns.file)
        print(prog.emit_c(ns.entry, ns.type, native=True,
                          omp_threads=ns.threads))
        return 0

    if ns.cmd == "repl":
        return repl(backend=ns.backend)

    if ns.cmd == "serve":
        if ns.threads is not None:
            from repro.parallel import set_default_threads
            set_default_threads(ns.threads)
        default_source = None
        if ns.file is not None:
            default_source, _spec = _read_source(ns.file)
        return serve(default_source=default_source, backend=ns.backend,
                     max_batch=ns.max_batch, max_queue=ns.max_queue,
                     workers=ns.workers, cache_capacity=ns.cache_capacity,
                     check=ns.check, stats=ns.stats, pool=ns.pool,
                     retry=ns.retry, chaos=ns.chaos)

    if ns.cmd == "measure":
        prog = _load(ns.file)
        args = [_literal(a) for a in ns.arg]
        val, cost = prog.measure(ns.entry, args)
        print(f"result: {val}")
        print(cost)
        return 0

    raise SystemExit(f"unknown command {ns.cmd}")  # pragma: no cover


def _coerce_tuples(v, t):
    """JSON has no tuples; rebuild them where the P type says tuple."""
    from repro.lang import types as T
    if isinstance(t, T.TTuple) and isinstance(v, list):
        return tuple(_coerce_tuples(x, it) for x, it in zip(v, t.items))
    if isinstance(t, T.TSeq) and isinstance(v, list):
        return [_coerce_tuples(x, t.elem) for x in v]
    return v


def _error_kind(e: BaseException) -> str:
    if isinstance(e, WorkerCrashError):
        return "crash"
    if isinstance(e, ResourceLimitError):
        return "resource"
    if isinstance(e, InvariantError):
        return "invariant"
    return "error"


def serve(default_source=None, backend="vector", max_batch=64,
          max_queue=1024, workers=1, cache_capacity=128, check=False,
          stats=False, pool=0, retry=2, chaos=None,
          stdin=None, stdout=None, stderr=None) -> int:
    """The ``repro serve`` loop: JSONL requests on stdin, JSONL responses
    on stdout, in request order (docs/SERVING.md documents the protocol).

    One request per line: ``{"id": .., "fname": "main", "args": [..]}``
    plus optional ``"source"`` (else the FILE argument's program),
    ``"types"``, ``"backend"``, ``"check"``, budget fields
    (``"timeout_s"``, ``"max_steps"``, ``"max_depth"``, ``"max_elements"``,
    ``"max_bytes"``) and ``"deadline_s"``.  Responses:
    ``{"id": .., "ok": true, "result": ..}`` or ``{"id": .., "ok": false,
    "kind": "crash"|"resource"|"invariant"|"error", "error": msg}``
    (tuples in results render as JSON arrays).  Exit code 0 iff every
    request succeeded.  ``stdin``/``stdout``/``stderr`` are injectable
    for tests.

    ``pool > 0`` swaps the in-process :class:`BatchExecutor` for a
    supervised :class:`~repro.serve.pool.WorkerPool` of that many worker
    *processes* — same protocol, plus crash isolation: a worker death
    surfaces as ``"kind": "crash"`` on exactly its in-flight requests
    (after ``retry`` transparent retries), never as a dead server.
    ``chaos`` arms seeded process-fault injection in the workers
    (:meth:`~repro.guard.faults.ChaosSpec.parse` syntax).
    """
    import json

    from repro.lang.types import parse_type
    from repro.serve import (
        BatchExecutor, PoolConfig, RetryPolicy, ServeConfig, WorkerPool,
    )

    inp = stdin or sys.stdin
    out = stdout or sys.stdout
    err = stderr or sys.stderr
    if pool:
        from repro.guard.faults import ChaosSpec
        try:
            spec = ChaosSpec.parse(chaos) if chaos else None
        except ValueError as e:
            print(f"serve: bad --chaos spec: {e}", file=err)
            return EXIT_USAGE
        config = PoolConfig(
            workers=pool, max_batch=max_batch, max_queue=max_queue,
            backend=backend, check=check, cache_capacity=cache_capacity,
            retry=RetryPolicy(max_retries=retry) if retry > 0 else None,
            chaos=spec)
    else:
        config = ServeConfig(max_batch=max_batch, max_queue=max_queue,
                             workers=workers, backend=backend, check=check,
                             cache_capacity=cache_capacity)
    pending: list[tuple[Any, Any]] = []   # (id, future-or-error) in order
    failures = 0

    def flush_done(drain: bool) -> None:
        nonlocal failures
        while pending:
            rid, fut = pending[0]
            if isinstance(fut, BaseException):
                resp = {"id": rid, "ok": False,
                        "kind": _error_kind(fut), "error": str(fut)}
            else:
                if not drain and not fut.done():
                    return
                try:
                    resp = {"id": rid, "ok": True, "result": fut.result()}
                except BaseException as e:
                    resp = {"id": rid, "ok": False,
                            "kind": _error_kind(e), "error": str(e)}
            if not resp["ok"]:
                failures += 1
            pending.pop(0)
            print(json.dumps(resp, default=str), file=out, flush=True)

    executor = WorkerPool(config) if pool else BatchExecutor(config)
    with executor as ex:
        for line in inp:
            line = line.strip()
            if not line:
                continue
            rid = None
            try:
                msg = json.loads(line)
                rid = msg.get("id")
                source = msg.get("source", default_source)
                if source is None:
                    raise ValueError(
                        "request has no \"source\" and no FILE was given")
                types = msg.get("types")
                args = msg.get("args", [])
                if types is not None:
                    args = [_coerce_tuples(a, parse_type(t))
                            for a, t in zip(args, types)]
                budget = Budget(
                    max_elements=msg.get("max_elements"),
                    max_bytes=msg.get("max_bytes"),
                    max_steps=msg.get("max_steps"),
                    timeout_s=msg.get("timeout_s"),
                    max_call_depth=msg.get("max_depth"))
                fut = ex.submit(
                    source, msg.get("fname", "main"), args,
                    types=types, backend=msg.get("backend"),
                    check=msg.get("check"),
                    budget=budget if budget.any_set() else None,
                    deadline_s=msg.get("deadline_s"),
                    request_id=str(rid) if rid is not None else None)
                pending.append((rid, fut))
            except BaseException as e:
                pending.append((rid, e))
            flush_done(drain=False)
        flush_done(drain=True)
        if stats:
            s = ex.stats.snapshot()
            mean_batch = (s["batched_requests"] / s["batches"]
                          if s["batches"] else 0.0)
            line = (f"serve: {s['requests']} requests, {s['batches']} "
                    f"batches (mean {mean_batch:.1f}, max {s['max_batch']}),"
                    f" {s['singles']} singles, {s['errors']} errors")
            if pool:
                line += (f", {s['restarts']} worker restarts, "
                         f"{s['retries']} retries, {s['shed']} shed "
                         f"[{ex.healthy_workers()}/{pool} healthy]")
            else:
                c = ex.cache.stats()
                lookups = c["hits"] + c["misses"]
                hit_rate = c["hits"] / lookups if lookups else 0.0
                line += (f", cache hit-rate {hit_rate:.2f} "
                         f"({c['hits']}/{lookups}, {c['entries']} entries)")
            print(line, file=err)
    return EXIT_OK if failures == 0 else EXIT_ERROR


def repl(backend: str = "vector", stdin=None, stdout=None) -> int:
    """Interactive loop: ``fun`` lines add definitions, other lines evaluate
    as expressions.  Commands: :defs, :transform NAME, :backend NAME, :quit.

    ``stdin``/``stdout`` are injectable for tests.
    """
    inp = stdin or sys.stdin
    out = stdout or sys.stdout

    def say(msg: str = "") -> None:
        print(msg, file=out)

    defs: list[str] = []
    say(f"P repl ({backend} back end) — :help for commands")
    while True:
        print("P> ", end="", file=out, flush=True)
        line = inp.readline()
        if not line:
            return 0
        line = line.strip()
        if not line:
            continue
        if line in (":quit", ":q"):
            return 0
        if line == ":help":
            say("fun name(args) = body    add a definition")
            say("EXPR                     evaluate an expression")
            say(":defs                    list definitions")
            say(":transform NAME          show a function's flattened form")
            say(":backend NAME            switch "
                "vector|interp|vcode|native|parallel")
            say(":quit                    leave")
            continue
        if line == ":defs":
            for d in defs:
                say(d.splitlines()[0] + (" ..." if "\n" in d else ""))
            continue
        if line.startswith(":backend"):
            cand = line.split(None, 1)[-1]
            if cand in ("vector", "interp", "vcode", "native", "parallel"):
                backend = cand
                say(f"back end: {backend}")
            else:
                say(f"unknown back end {cand!r}")
            continue
        if line.startswith(":transform"):
            name = line.split(None, 1)[-1].strip()
            try:
                prog = compile_program("\n".join(defs))
                sig = prog.typed.schemes.get(name)
                if sig is None:
                    say(f"no such function {name!r}")
                    continue
                from repro.lang.types import Subst
                params = [Subst().default_unresolved(t) for t in sig.params]
                say(prog.transformed_source(name, params, by_types=True))
            except ReproError as e:
                say(f"error: {e}")
            continue
        try:
            if line.startswith("fun "):
                trial = "\n".join([*defs, line])
                compile_program(trial)  # validate before accepting
                defs.append(line)
                say("ok")
            else:
                src = "\n".join([*defs, f"fun it_repl_() = {line}"])
                prog = compile_program(src)
                say(repr(prog.run("it_repl_", [], backend=backend)))
        except ReproError as e:
            say(f"error: {e}")
        except RecursionError:
            say("error: recursion limit exceeded")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
