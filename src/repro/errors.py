"""Exception hierarchy for the repro package.

Every user-facing failure raised by the pipeline derives from
:class:`ReproError`, so callers can catch a single type.  Each stage of the
pipeline (lexing, parsing, typing, transformation, execution) has its own
subclass carrying a source location when one is available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro pipeline."""


class SourceError(ReproError):
    """An error attributable to a location in P source text."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        where = f" at line {line}, column {col}" if line else ""
        super().__init__(f"{message}{where}")


class LexError(SourceError):
    """Invalid character or token while scanning P source."""


class ParseError(SourceError):
    """Syntactically invalid P source."""


class TypeCheckError(SourceError):
    """Static type error in a P program."""


class TransformError(ReproError):
    """The iterator-elimination transformation reached an invalid state."""


class AnalysisError(ReproError):
    """A static-analysis pass rejected the program.

    Raised by :mod:`repro.analysis` when a phase postcondition fails
    (IR verifier), when the VCODE lint finds a hard error, or when the
    shape analysis meets an inconsistent fact.  ``stage`` names the pass
    and phase that failed (e.g. ``"verify:eliminate"``, ``"vlint:qsort__1"``);
    ``detail`` explains the violated rule; ``subterm`` optionally carries a
    pretty-printed minimal offending subterm.
    """

    def __init__(self, stage: str, detail: str, subterm: str = ""):
        self.stage = stage
        self.detail = detail
        self.subterm = subterm
        msg = f"analysis failed at {stage}: {detail}"
        if subterm:
            msg += f"\n  in: {subterm}"
        super().__init__(msg)


class EvalError(ReproError):
    """Runtime error in the reference interpreter (e.g. index out of range)."""


class VectorError(ReproError):
    """Invalid operation on the flat vector representation."""


class VMError(ReproError):
    """Runtime error in the VCODE virtual machine."""


class NativeCompileError(ReproError):
    """The native backend failed to compile or load a generated C kernel.

    Raised by :mod:`repro.native` when a C toolchain *is* present but a
    kernel could not be built (compiler error, unwritable cache directory,
    unloadable ``.so`` that survived one evict-and-retry).  A *missing*
    toolchain never raises — the engine falls back to the NumPy applier
    with a single warning (see docs/NATIVE.md).  ``stage`` names the step
    that failed (``"compile"``, ``"load"``, ``"cache"``); ``detail``
    carries the compiler diagnostics.
    """

    def __init__(self, stage: str, detail: str):
        self.stage = stage
        self.detail = detail
        super().__init__(f"native kernel {stage} failed: {detail}")


class GuardError(ReproError):
    """Base class for failures raised by the :mod:`repro.guard` runtime
    hardening layer (invariant checking, resource budgets, fault
    injection)."""


class InvariantError(GuardError):
    """The descriptor-vector representation invariant was violated.

    Raised by the strict-mode checker when a value crossing a kernel or
    backend boundary fails ``#V_{i+1} = sum(V_i)``, holds a negative
    count, or disagrees between descriptor and value-vector lengths.
    ``stage`` names the pipeline boundary that caught the corruption
    (e.g. ``"kernel:restrict"``, ``"extract"``, ``"vm:call:qsort__1"``).
    """

    def __init__(self, stage: str, detail: str):
        self.stage = stage
        self.detail = detail
        super().__init__(f"invariant violated at {stage}: {detail}")


class ResourceLimitError(GuardError):
    """A resource budget was exceeded during guarded execution.

    ``limit`` names the exhausted budget (``"elements"``, ``"bytes"``,
    ``"steps"``, ``"timeout"`` or ``"call-depth"``); ``used``/``budget``
    give the measured and permitted amounts.  For the call-depth guard,
    ``function`` names the dominant recursive function and
    ``frame_sizes`` holds its most recent frame sizes (non-shrinking
    sizes indicate a flattened emptiness-guard recursion that will never
    terminate).
    """

    def __init__(self, limit: str, used, budget, stage: str = "",
                 function: str = "", frame_sizes=(), request: str = ""):
        self.limit = limit
        self.used = used
        self.budget = budget
        self.stage = stage
        self.function = function
        self.frame_sizes = tuple(frame_sizes)
        self.request = request
        msg = f"{limit} budget exceeded: {used} > {budget}"
        if stage:
            msg += f" at {stage}"
        if function:
            msg += f" (in {function}, recent frame sizes {list(self.frame_sizes)}"
            if len(self.frame_sizes) >= 2 and \
                    self.frame_sizes[-1] >= self.frame_sizes[0]:
                msg += " — non-shrinking recursion"
            msg += ")"
        if request:
            msg += f" [request {request}]"
        super().__init__(msg)


class WorkerCrashError(GuardError):
    """A serving-pool worker process died (or was killed) with requests
    in flight.

    Raised by :mod:`repro.serve.pool` for the requests a crashed worker
    could no longer answer, after the per-request retry budget is spent.
    ``reason`` classifies the death (``"exit"`` — nonzero exit status,
    ``"lost-heartbeat"`` — the worker stopped heartbeating,
    ``"poisoned-response"`` — the worker replied with a corrupt payload,
    ``"deadline"`` — the supervisor killed the worker for overrunning a
    request deadline, ``"shutdown"`` — the pool closed with work in
    flight); ``worker`` names the worker slot; ``request_ids`` carries
    every affected request id (PR-4 attribution: a crash is always
    attributable to the requests it took down, never to batchmates on
    other workers).
    """

    def __init__(self, reason: str, worker: str = "",
                 request_ids=(), detail: str = ""):
        self.reason = reason
        self.worker = worker
        self.request_ids = tuple(str(r) for r in request_ids)
        self.detail = detail
        msg = f"worker crashed ({reason})"
        if worker:
            msg += f" [{worker}]"
        if self.request_ids:
            msg += f" [requests {', '.join(self.request_ids)}]"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class FaultInjected(GuardError):
    """A deterministic fault-injection site fired in ``raise`` mode.

    Only ever raised by the testing harness (:mod:`repro.guard.faults`);
    carries the ``site`` name so error-routing tests can assert where the
    fault originated.
    """

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"injected fault at {site}")
