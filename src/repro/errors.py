"""Exception hierarchy for the repro package.

Every user-facing failure raised by the pipeline derives from
:class:`ReproError`, so callers can catch a single type.  Each stage of the
pipeline (lexing, parsing, typing, transformation, execution) has its own
subclass carrying a source location when one is available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro pipeline."""


class SourceError(ReproError):
    """An error attributable to a location in P source text."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        where = f" at line {line}, column {col}" if line else ""
        super().__init__(f"{message}{where}")


class LexError(SourceError):
    """Invalid character or token while scanning P source."""


class ParseError(SourceError):
    """Syntactically invalid P source."""


class TypeCheckError(SourceError):
    """Static type error in a P program."""


class TransformError(ReproError):
    """The iterator-elimination transformation reached an invalid state."""


class EvalError(ReproError):
    """Runtime error in the reference interpreter (e.g. index out of range)."""


class VectorError(ReproError):
    """Invalid operation on the flat vector representation."""


class VMError(ReproError):
    """Runtime error in the VCODE virtual machine."""
