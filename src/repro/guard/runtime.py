"""Process-wide guard switch: strict invariant checking and resource budgets.

This module follows the zero-overhead-when-off contract established by
:mod:`repro.obs.runtime` exactly.  Every guarded hot path in the package
reads one module global and tests it against ``None``::

    from repro.guard import runtime as _guard
    ...
    g = _guard.GUARD
    if g is not None:
        g.after_kernel(name, n, result)

When guarding is off (the default) the cost of a guard site is one
module-attribute load and one ``is None`` test — no allocation, no size
computation, no clock read.  Activation is scoped::

    from repro.guard import Budget, GuardConfig, guarded

    with guarded(GuardConfig(check=True, budget=Budget(max_steps=10_000))):
        prog.run("main", [64])

``guarded`` saves and restores the previously active state, so scopes nest
(the innermost guard observes the work).  Like the profiler switch it is
process-wide, not thread-local: guard one pipeline run at a time.

Two independent facilities live behind the switch:

* **strict invariant checking** (``check=True``) — every value crossing a
  kernel or backend boundary is re-validated against the descriptor
  invariant ``#V_{i+1} = sum(V_i)`` (see :mod:`repro.guard.invariants`);
  corruption raises a stage-named :class:`~repro.errors.InvariantError`.

* **resource budgets** (:class:`Budget`) — ceilings on elements moved,
  bytes moved, execution steps, wall-clock time, and user-function call
  depth.  A breach raises :class:`~repro.errors.ResourceLimitError`
  instead of hanging, exhausting memory, or blowing the Python stack; the
  call-depth diagnostic names the dominant recursive function and its
  recent frame sizes so a non-shrinking emptiness-guard recursion (the
  classic flattening non-termination mode, section 3) is recognizable at
  a glance.

The module also hosts :func:`scoped_recursion_limit`, the shared fix for
the recursion-limit leak: all three executors used to raise
``sys.setrecursionlimit`` globally and never restore it.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ResourceLimitError

# Bound lazily on first strict check: repro.guard.invariants imports the
# vector package, whose modules import this module at load time.
_validate_value = None

__all__ = ["Budget", "GuardConfig", "GuardState", "guarded",
           "scoped_recursion_limit", "current"]

#: The active guard state, or None when guarding is off.  Guarded code
#: reads this exactly once per site.
GUARD: Optional["GuardState"] = None

#: How many of the innermost stack frames the call-depth diagnostic
#: inspects when attributing a depth breach to one function.
_DIAG_WINDOW = 32

#: Deadline checks happen every ``_CLOCK_MASK + 1`` steps so the budget
#: machinery stays cheap even under per-instruction ticking.
_CLOCK_MASK = 0x3F


@dataclass(frozen=True)
class Budget:
    """Resource ceilings for one guarded run; ``None`` disables a ceiling.

    ``max_elements``/``max_bytes`` bound the total leaf elements / bytes
    produced by vector kernels, ``max_steps`` bounds execution steps
    (kernel invocations, VM instructions, interpreter applications),
    ``timeout_s`` bounds wall-clock seconds, and ``max_call_depth`` bounds
    user-function recursion depth across all backends.
    """

    max_elements: Optional[int] = None
    max_bytes: Optional[int] = None
    max_steps: Optional[int] = None
    timeout_s: Optional[float] = None
    max_call_depth: Optional[int] = None

    def any_set(self) -> bool:
        return any(v is not None for v in (
            self.max_elements, self.max_bytes, self.max_steps,
            self.timeout_s, self.max_call_depth))


@dataclass(frozen=True)
class GuardConfig:
    """What a guarded scope enforces: strict checking and/or budgets.

    ``discharged`` carries check-site tags proven redundant by the static
    shape analysis (:mod:`repro.analysis.shapes`): ``kernel:<name>`` skips
    the kernel-boundary re-validation for that kernel, ``prim:<name>``
    skips the VM's post-Prim re-check, ``call:<fname>`` skips the
    call-boundary re-check of a user function whose result the analysis
    proved already validated.  An empty set (the default) is full strict
    mode; budgets are never discharged.
    """

    check: bool = False
    budget: Budget = field(default_factory=Budget)
    discharged: frozenset = frozenset()


class GuardState:
    """Mutable per-scope enforcement state (counters, deadline, call stack).

    Built by :func:`guarded`; guarded code calls the ``after_kernel`` /
    ``tick`` / ``enter_call`` / ``exit_call`` / ``check_value`` hooks.
    """

    __slots__ = ("config", "check", "discharged", "_track_data",
                 "track_frames", "_max_elements", "_max_bytes",
                 "_max_steps", "_max_depth", "_deadline", "_timeout",
                 "elements", "bytes_moved", "steps", "stack")

    def __init__(self, config: GuardConfig):
        self.config = config
        self.check = config.check
        self.discharged = config.discharged
        b = config.budget
        # Data-movement counters are only meaningful when a data ceiling is
        # set; skipping the per-kernel size computation otherwise keeps
        # statically-discharged runs close to check-off cost.
        self._track_data = (b.max_elements is not None
                            or b.max_bytes is not None)
        self._max_elements = b.max_elements
        self._max_bytes = b.max_bytes
        self._max_steps = b.max_steps
        self._max_depth = b.max_call_depth
        # Frame sizes only feed the depth-breach diagnostic; skip the
        # per-call size computation when no depth ceiling is set.
        self.track_frames = b.max_call_depth is not None
        self._timeout = b.timeout_s
        self._deadline = (time.perf_counter() + b.timeout_s
                          if b.timeout_s is not None else None)
        self.elements = 0
        self.bytes_moved = 0
        self.steps = 0
        #: (function name, total argument frame elements) per live call.
        self.stack: list[tuple[str, int]] = []

    # -- budget enforcement ------------------------------------------------

    def tick(self, stage: str) -> None:
        """Charge one execution step at ``stage``; enforces the step
        ceiling and (periodically) the wall-clock deadline."""
        self.steps += 1
        if self._max_steps is not None and self.steps > self._max_steps:
            raise ResourceLimitError("steps", self.steps, self._max_steps,
                                     stage=stage)
        if self._deadline is not None and (self.steps & _CLOCK_MASK) == 0:
            now = time.perf_counter()
            if now > self._deadline:
                raise self._timeout_error(now, stage)

    def charge(self, stage: str, elements: int, nbytes: int) -> None:
        """Charge data movement at ``stage`` and enforce ceilings."""
        self.elements += elements
        self.bytes_moved += nbytes
        if self._max_elements is not None and self.elements > self._max_elements:
            raise ResourceLimitError("elements", self.elements,
                                     self._max_elements, stage=stage)
        if self._max_bytes is not None and self.bytes_moved > self._max_bytes:
            raise ResourceLimitError("bytes", self.bytes_moved,
                                     self._max_bytes, stage=stage)

    def deadline_check(self, stage: str) -> None:
        """Unconditional wall-clock check (used at call boundaries)."""
        if self._deadline is not None:
            now = time.perf_counter()
            if now > self._deadline:
                raise self._timeout_error(now, stage)

    def _timeout_error(self, now: float, stage: str) -> ResourceLimitError:
        elapsed = self._timeout + (now - self._deadline)
        return ResourceLimitError("timeout", f"{elapsed:.2f}s",
                                  f"{self._timeout:g}s", stage=stage)

    # -- the flattened-recursion depth guard -------------------------------

    def enter_call(self, fname: str, frame_elems: int) -> None:
        """Push one user-function call; breach of the depth ceiling raises
        a diagnostic naming the dominant function and its frame sizes."""
        self.stack.append((fname, frame_elems))
        if self._max_depth is not None and len(self.stack) > self._max_depth:
            raise self._depth_breach()
        self.deadline_check(f"call:{fname}")

    def exit_call(self) -> None:
        self.stack.pop()

    def _depth_breach(self) -> ResourceLimitError:
        window = self.stack[-_DIAG_WINDOW:]
        by_name: dict[str, list[int]] = {}
        for name, size in window:
            by_name.setdefault(name, []).append(size)
        hot = max(by_name, key=lambda n: len(by_name[n]))
        return ResourceLimitError(
            "call-depth", len(self.stack), self._max_depth,
            stage=f"call:{self.stack[-1][0]}",
            function=hot, frame_sizes=by_name[hot][-8:])

    # -- strict checking ---------------------------------------------------

    def skip(self, tag: str) -> bool:
        """True when the shape analysis discharged the check site ``tag``."""
        return tag in self.discharged

    def check_value(self, stage: str, value) -> None:
        """Validate the descriptor invariant on ``value`` (only in
        ``check`` mode; callers test :attr:`check` first on hot paths)."""
        if self.check:
            global _validate_value
            if _validate_value is None:
                from repro.guard.invariants import validate_value
                _validate_value = validate_value
            _validate_value(stage, value)

    def after_kernel(self, name: str, frame_len: int, result) -> None:
        """The kernel-boundary hook: validate the result (strict mode,
        unless statically discharged) and charge its size against the
        budgets."""
        stage = f"kernel:{name}"
        if self.check and stage not in self.discharged:
            self.check_value(stage, result)
        self.tick(stage)
        if self._track_data:
            from repro.vector.ops import value_nbytes, value_size
            self.charge(stage, value_size(result), value_nbytes(result))


def current() -> Optional[GuardState]:
    """The active guard state, or None."""
    return GUARD


@contextmanager
def guarded(config: Optional[GuardConfig] = None) -> Iterator[GuardState]:
    """Activate a :class:`GuardState` for the dynamic extent of the block,
    restoring the previous one afterwards (scopes nest)."""
    global GUARD
    state = GuardState(config or GuardConfig(check=True))
    prev = GUARD
    GUARD = state
    try:
        yield state
    finally:
        GUARD = prev


# The recursion limit is interpreter-wide, but scopes open and close from
# many threads once the serving layer runs executors on workers.  A plain
# save/restore pair is only correct for strictly nested (LIFO, same-thread)
# scopes: with two overlapping scopes the first to exit restores its saved
# limit underneath the survivor, which then blows RecursionError mid-run.
# So all scopes share one lock-protected multiset of active requests; the
# effective limit is the max over them, and the baseline is only restored
# when the last scope leaves.
_rec_lock = threading.Lock()
_rec_scopes: list[int] = []          # active requested limits (a multiset)
_rec_baseline: int = 0               # the limit before the first live scope
_rec_wrote: Optional[int] = None     # last value this module wrote, if any


@contextmanager
def scoped_recursion_limit(limit: int) -> Iterator[None]:
    """Raise the Python recursion limit to at least ``limit`` for the
    dynamic extent of the block, then restore the previous limit once the
    *outermost* scope leaves.

    This replaces the historical pattern of every executor calling
    ``sys.setrecursionlimit`` globally and never restoring it, which
    leaked a 200k recursion limit into the host process.  Scopes are
    re-entrant and thread-safe: overlapping (even non-LIFO, cross-thread)
    scopes keep the limit at the maximum any live scope requested, and the
    original limit comes back only when the last one exits.  Restoration
    is skipped if someone else changed the limit meanwhile (last writer
    wins, matching ``sys`` semantics for nested users).
    """
    global _rec_baseline, _rec_wrote
    with _rec_lock:
        if not _rec_scopes:
            _rec_baseline = sys.getrecursionlimit()
        _rec_scopes.append(limit)
        target = max(_rec_baseline, max(_rec_scopes))
        if target > sys.getrecursionlimit():
            sys.setrecursionlimit(target)
            _rec_wrote = target
    try:
        yield
    finally:
        with _rec_lock:
            _rec_scopes.remove(limit)
            cur = sys.getrecursionlimit()
            if _rec_wrote is not None and cur == _rec_wrote:
                # we own the current value; lower it to what is still needed
                target = (max(_rec_baseline, max(_rec_scopes))
                          if _rec_scopes else _rec_baseline)
                if target != cur:
                    sys.setrecursionlimit(target)
                    _rec_wrote = None if not _rec_scopes else target
