"""The segmented-vector invariant checker.

The whole representation of section 4 rests on one structural invariant —
a nested sequence is a chain of descriptor vectors ``V_1 .. V_d`` plus a
value vector, with ``#V_{i+1} = sum(V_i)`` — and on every descriptor being
a 1-D vector of non-negative counts whose top level is a singleton.  The
:class:`~repro.vector.nested.NestedVector` constructor validates this at
*construction* time, but NumPy arrays are mutable: a buggy kernel (or an
injected fault) can corrupt a descriptor in place after construction and
silently poison every downstream result.

:func:`validate_value` re-checks the invariant on an already-built value
and raises a stage-named :class:`~repro.errors.InvariantError` (never the
construction-time ``VectorError``), so a strict-mode run points at the
pipeline boundary where corruption was first observed.  Tuple values are
additionally checked for *conformability*: all leaves of a tuple-of-frames
must share identical descriptor levels (the paper's multiple value vectors
per tuple leaf share one descriptor chain).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantError
from repro.vector.nested import NestedVector, VFun, VTuple

__all__ = ["validate_value", "validate_nested"]


def validate_nested(stage: str, v: NestedVector) -> None:
    """Check one NestedVector against the representation invariant."""
    if not v.descs:
        raise InvariantError(stage, "no descriptor vectors")
    if v.descs[0].size != 1:
        raise InvariantError(
            stage, f"top descriptor must be a singleton, got size {v.descs[0].size}")
    levels = [*v.descs, v.values]
    for i, d in enumerate(v.descs):
        if d.ndim != 1:
            raise InvariantError(stage, f"descriptor V{i + 1} is not 1-D")
        if d.size and int(d.min()) < 0:
            raise InvariantError(
                stage, f"descriptor V{i + 1} contains a negative count "
                       f"(min {int(d.min())})")
    if v.values.ndim != 1:
        raise InvariantError(stage, "value vector is not 1-D")
    for i in range(len(levels) - 1):
        want = int(np.asarray(levels[i]).sum())
        got = int(np.asarray(levels[i + 1]).size)
        if want != got:
            what = "value vector" if i + 1 == len(v.descs) else f"V{i + 2}"
            raise InvariantError(
                stage, f"#V_{i + 2} = sum(V_{i + 1}) violated: "
                       f"sum(V{i + 1}) = {want} but {what} has {got} entries")


def _tuple_conformable(stage: str, t: VTuple) -> None:
    """All NestedVector leaves of a tuple must share one descriptor chain."""
    leaves = [x for x in _iter_leaves(t) if isinstance(x, NestedVector)]
    if len(leaves) < 2:
        return
    first = leaves[0]
    for other in leaves[1:]:
        if other.depth != first.depth:
            raise InvariantError(
                stage, f"tuple components disagree on depth "
                       f"({first.depth} vs {other.depth})")
        for k, (a, b) in enumerate(zip(first.descs, other.descs)):
            if not np.array_equal(a, b):
                raise InvariantError(
                    stage, f"tuple components disagree on descriptor V{k + 1}")


def _iter_leaves(v):
    if isinstance(v, VTuple):
        for x in v.items:
            yield from _iter_leaves(x)
    else:
        yield v


def validate_value(stage: str, v) -> None:
    """Check any vector value (scalar, NestedVector, VTuple, VFun).

    Scalars and function values are trivially valid; tuples are checked
    leafwise plus for shared-descriptor conformability.
    """
    if isinstance(v, NestedVector):
        validate_nested(stage, v)
        return
    if isinstance(v, VTuple):
        for x in v.items:
            validate_value(stage, x)
        _tuple_conformable(stage, v)
        return
    if isinstance(v, (bool, int, float, np.integer, np.floating, np.bool_,
                      VFun)):
        return
    raise InvariantError(stage, f"unexpected value in vector pipeline: {v!r}")
