"""Runtime hardening for the vector pipeline (see docs/RELIABILITY.md).

Three facilities, all scoped and zero-overhead when off:

* :func:`guarded` / :class:`GuardConfig` / :class:`Budget` — strict
  descriptor-invariant checking at kernel and backend boundaries, plus
  resource budgets (elements, bytes, steps, wall clock, call depth);
* :func:`scoped_recursion_limit` — the shared, restoring replacement for
  the executors' historical global ``sys.setrecursionlimit`` calls;
* :mod:`repro.guard.faults` — deterministic fault injection proving the
  checker catches in-place descriptor corruption, and the
  :data:`~repro.guard.faults.PROCESS_FAULT_SITES` registry +
  :class:`~repro.guard.faults.ChaosSpec` extending the same discipline to
  whole worker processes (see :mod:`repro.serve.pool`).
"""

from repro.guard.faults import PROCESS_FAULT_SITES, ChaosSpec
from repro.guard.invariants import validate_nested, validate_value
from repro.guard.runtime import (
    Budget, GuardConfig, GuardState, current, guarded, scoped_recursion_limit,
)

__all__ = ["Budget", "GuardConfig", "GuardState", "guarded", "current",
           "scoped_recursion_limit", "validate_value", "validate_nested",
           "ChaosSpec", "PROCESS_FAULT_SITES"]
