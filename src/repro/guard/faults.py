"""Deterministic fault injection for the vector pipeline.

The point of the strict checker is that it catches *real* corruption, so
this module provides a way to manufacture corruption on demand and prove
the checker sees it.  A fault **site** is a named point in the pipeline
(``segments.gather_subtrees.desc-bump``, ``vm.call.desc-negate``, ...)
where, when an injector is armed for that site, a descriptor array of the
in-flight value is corrupted *in place* — beneath the ``NestedVector``
constructor's own validation, exactly like a buggy kernel writing through
an aliased array.  Sites follow the zero-overhead-when-off contract: one
module-global load and an ``is None`` test when injection is off.

Corruption is seeded and deterministic: the injector draws the target
index and perturbation from ``random.Random(seed)``, so a failing site
replays exactly.  Two modes exist:

* ``"corrupt"`` (default) — silently mutate a descriptor entry (bump by a
  positive delta, or negate to a negative count).  The run then continues
  until a checker boundary observes the damage and raises a stage-named
  :class:`~repro.errors.InvariantError`.
* ``"raise"`` — raise :class:`~repro.errors.FaultInjected` at the site
  itself, for testing that backend failures route through the unified
  CLI reporter.

Use :func:`injecting` (it also disables the constructor-level
``CHECK_INVARIANTS`` belt within its scope, so the boundary checker is
the *only* line of defense being exercised)::

    with injecting("segments.gather_subtrees.desc-bump", seed=3) as inj:
        with guarded(GuardConfig(check=True)):
            prog.run("main", [args])   # raises InvariantError
    assert inj.fired
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from repro.errors import FaultInjected

__all__ = ["FaultInjector", "injecting", "FAULT_SITES"]

#: The armed injector, or None when fault injection is off.
INJECTOR: Optional["FaultInjector"] = None

#: Every fault site compiled into the pipeline, with the boundary expected
#: to catch it.  Tests iterate this registry so a new site cannot be added
#: without proving the checker catches it.
FAULT_SITES: dict[str, str] = {
    "segments.gather_subtrees.desc-bump":
        "descriptor level of a gathered forest bumped by +1",
    "segments.gather_subtrees.desc-negate":
        "descriptor level of a gathered forest made negative",
    "segments.concat_levels.desc-bump":
        "pooled descriptor level bumped by +1",
    "segments.concat_levels.desc-negate":
        "pooled descriptor level made negative",
    "extract_insert.extract.top-bump":
        "extract's synthesized singleton descriptor bumped by +1",
    "extract_insert.extract.desc-negate":
        "a retained lower descriptor of extract's result made negative",
    "extract_insert.insert.desc-bump":
        "a re-attached frame descriptor of insert's result bumped by +1",
    "extract_insert.insert.desc-negate":
        "a re-attached frame descriptor of insert's result made negative",
    "vm.call.desc-bump":
        "descriptor of a VM Call result bumped by +1",
    "vm.call.desc-negate":
        "descriptor of a VM Call result made negative",
    "vm.prim.desc-bump":
        "descriptor of a VM Prim result bumped by +1",
    "vm.prim.desc-negate":
        "descriptor of a VM Prim result made negative",
    "transform.R2d.drop-guard":
        "R2d emptiness guard dropped from one branch (combine arm unguarded)",
    "transform.R2c.depth-bump":
        "depth of one transformed application bumped by +1 (arg depths stale)",
}


class FaultInjector:
    """Arms one fault site; fires on the ``fire_on``-th corruptible visit.

    ``fired`` records whether corruption (or the raise) actually happened;
    a site visit that offers no corruptible descriptor (e.g. every
    candidate array is empty) does not consume the countdown.
    """

    def __init__(self, site: str, seed: int = 0, mode: str = "corrupt",
                 fire_on: int = 1):
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}; "
                             f"known: {sorted(FAULT_SITES)}")
        if mode not in ("corrupt", "raise"):
            raise ValueError(f"bad fault mode {mode!r}")
        self.site = site
        self.mode = mode
        self.rng = random.Random(seed)
        self.countdown = fire_on
        self.fired = False
        self.detail: str = ""

    # -- site-side API ------------------------------------------------------

    def visit(self, site: str, arrays: list) -> None:
        """Called by an instrumented site with its candidate descriptor
        arrays; corrupts one entry of one non-empty int array when armed
        for this site and the countdown elapses."""
        if self.fired or site != self.site:
            return
        candidates = [a for a in arrays
                      if isinstance(a, np.ndarray) and a.size
                      and np.issubdtype(a.dtype, np.integer)]
        if not candidates:
            return
        self.countdown -= 1
        if self.countdown > 0:
            return
        if self.mode == "raise":
            self.fired = True
            raise FaultInjected(site)
        a = candidates[self.rng.randrange(len(candidates))]
        i = self.rng.randrange(a.size)
        if site.endswith("-negate"):
            a[i] = -1 - int(abs(a[i]))
        else:
            a[i] += self.rng.randrange(1, 4)
        self.fired = True
        self.detail = f"{site}: entry {i} of a {a.size}-element descriptor"

    def visit_ir(self, site: str, corrupt) -> None:
        """Called by an instrumented *transform* site with a corruption
        callback ``corrupt(rng) -> str | None``: when armed for this site
        and the countdown elapses, the callback mutates the in-flight IR
        and returns a description (or ``None`` if this visit offered
        nothing corruptible, which does not consume the countdown)."""
        if self.fired or site != self.site:
            return
        self.countdown -= 1
        if self.countdown > 0:
            return
        if self.mode == "raise":
            self.fired = True
            raise FaultInjected(site)
        detail = corrupt(self.rng)
        if detail is None:
            self.countdown = 1  # nothing corruptible here; rearm
            return
        self.fired = True
        self.detail = detail


def visit(site: str, arrays: list) -> None:
    """Module-level site helper; callers must already have tested the
    ``INJECTOR is not None`` fast path."""
    inj = INJECTOR
    if inj is not None:
        inj.visit(site, arrays)


def visit_ir(site: str, corrupt) -> None:
    """Module-level IR-site helper; callers must already have tested the
    ``INJECTOR is not None`` fast path."""
    inj = INJECTOR
    if inj is not None:
        inj.visit_ir(site, corrupt)


@contextmanager
def injecting(site: str, seed: int = 0, mode: str = "corrupt",
              fire_on: int = 1) -> Iterator[FaultInjector]:
    """Arm a :class:`FaultInjector` for the dynamic extent of the block.

    Also switches off the ``NestedVector`` constructor's own validation
    (``repro.vector.nested.CHECK_INVARIANTS``) within the scope: injected
    corruption must be caught by the *boundary* checker, proving it
    stands on its own.
    """
    global INJECTOR
    from repro.vector import nested
    inj = FaultInjector(site, seed=seed, mode=mode, fire_on=fire_on)
    prev, prev_check = INJECTOR, nested.CHECK_INVARIANTS
    INJECTOR = inj
    nested.CHECK_INVARIANTS = False
    try:
        yield inj
    finally:
        INJECTOR = prev
        nested.CHECK_INVARIANTS = prev_check
