"""Deterministic fault injection for the vector pipeline.

The point of the strict checker is that it catches *real* corruption, so
this module provides a way to manufacture corruption on demand and prove
the checker sees it.  A fault **site** is a named point in the pipeline
(``segments.gather_subtrees.desc-bump``, ``vm.call.desc-negate``, ...)
where, when an injector is armed for that site, a descriptor array of the
in-flight value is corrupted *in place* — beneath the ``NestedVector``
constructor's own validation, exactly like a buggy kernel writing through
an aliased array.  Sites follow the zero-overhead-when-off contract: one
module-global load and an ``is None`` test when injection is off.

Corruption is seeded and deterministic: the injector draws the target
index and perturbation from ``random.Random(seed)``, so a failing site
replays exactly.  Two modes exist:

* ``"corrupt"`` (default) — silently mutate a descriptor entry (bump by a
  positive delta, or negate to a negative count).  The run then continues
  until a checker boundary observes the damage and raises a stage-named
  :class:`~repro.errors.InvariantError`.
* ``"raise"`` — raise :class:`~repro.errors.FaultInjected` at the site
  itself, for testing that backend failures route through the unified
  CLI reporter.

Use :func:`injecting` (it also disables the constructor-level
``CHECK_INVARIANTS`` belt within its scope, so the boundary checker is
the *only* line of defense being exercised)::

    with injecting("segments.gather_subtrees.desc-bump", seed=3) as inj:
        with guarded(GuardConfig(check=True)):
            prog.run("main", [args])   # raises InvariantError
    assert inj.fired
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import FaultInjected

__all__ = ["FaultInjector", "injecting", "FAULT_SITES",
           "PARALLEL_FAULT_SITES", "PROCESS_FAULT_SITES", "ChaosSpec"]

#: The armed injector, or None when fault injection is off.
INJECTOR: Optional["FaultInjector"] = None

#: Every fault site compiled into the pipeline, with the boundary expected
#: to catch it.  Tests iterate this registry so a new site cannot be added
#: without proving the checker catches it.
FAULT_SITES: dict[str, str] = {
    "segments.gather_subtrees.desc-bump":
        "descriptor level of a gathered forest bumped by +1",
    "segments.gather_subtrees.desc-negate":
        "descriptor level of a gathered forest made negative",
    "segments.concat_levels.desc-bump":
        "pooled descriptor level bumped by +1",
    "segments.concat_levels.desc-negate":
        "pooled descriptor level made negative",
    "extract_insert.extract.top-bump":
        "extract's synthesized singleton descriptor bumped by +1",
    "extract_insert.extract.desc-negate":
        "a retained lower descriptor of extract's result made negative",
    "extract_insert.insert.desc-bump":
        "a re-attached frame descriptor of insert's result bumped by +1",
    "extract_insert.insert.desc-negate":
        "a re-attached frame descriptor of insert's result made negative",
    "vm.call.desc-bump":
        "descriptor of a VM Call result bumped by +1",
    "vm.call.desc-negate":
        "descriptor of a VM Call result made negative",
    "vm.prim.desc-bump":
        "descriptor of a VM Prim result bumped by +1",
    "vm.prim.desc-negate":
        "descriptor of a VM Prim result made negative",
    "transform.R2d.drop-guard":
        "R2d emptiness guard dropped from one branch (combine arm unguarded)",
    "transform.R2c.depth-bump":
        "depth of one transformed application bumped by +1 (arg depths stale)",
}

#: Fault sites specific to the multicore backend (:mod:`repro.parallel`):
#: each one is a way chunked execution can go wrong *between* the NumPy
#: kernels — a partition cut that ignores segment boundaries, a chunk
#: whose result never lands, a worker that is never joined.  They live in
#: their own registry (like :data:`PROCESS_FAULT_SITES`) because they are
#: reachable only through the chunked dispatch path, not through ordinary
#: serial runs; ``tests/parallel/test_containment.py`` proves set-equality
#: between this registry and its driver table, so a new parallel site
#: cannot be added without a containment proof.
PARALLEL_FAULT_SITES: dict[str, str] = {
    "parallel.partition.misaligned-split":
        "a chunk boundary bumped off its segment start, splitting one "
        "segment across two workers; contained as "
        "InvariantError('parallel.partition')",
    "parallel.stitch.torn-chunk":
        "a worker's recorded output length corrupted, as if its chunk "
        "result were torn or truncated before stitching; contained as "
        "InvariantError('parallel.stitch')",
    "parallel.dispatch.lost-barrier":
        "a worker's completion flag cleared, as if the join barrier lost "
        "a participant; contained as InvariantError('parallel.barrier')",
}


class FaultInjector:
    """Arms one fault site; fires on the ``fire_on``-th corruptible visit.

    ``fired`` records whether corruption (or the raise) actually happened;
    a site visit that offers no corruptible descriptor (e.g. every
    candidate array is empty) does not consume the countdown.
    """

    def __init__(self, site: str, seed: int = 0, mode: str = "corrupt",
                 fire_on: int = 1):
        if site not in FAULT_SITES and site not in PARALLEL_FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; known: "
                f"{sorted([*FAULT_SITES, *PARALLEL_FAULT_SITES])}")
        if mode not in ("corrupt", "raise"):
            raise ValueError(f"bad fault mode {mode!r}")
        self.site = site
        self.mode = mode
        self.rng = random.Random(seed)
        self.countdown = fire_on
        self.fired = False
        self.detail: str = ""

    # -- site-side API ------------------------------------------------------

    def visit(self, site: str, arrays: list) -> None:
        """Called by an instrumented site with its candidate descriptor
        arrays; corrupts one entry of one non-empty int array when armed
        for this site and the countdown elapses."""
        if self.fired or site != self.site:
            return
        candidates = [a for a in arrays
                      if isinstance(a, np.ndarray) and a.size
                      and np.issubdtype(a.dtype, np.integer)]
        if not candidates:
            return
        self.countdown -= 1
        if self.countdown > 0:
            return
        if self.mode == "raise":
            self.fired = True
            raise FaultInjected(site)
        a = candidates[self.rng.randrange(len(candidates))]
        i = self.rng.randrange(a.size)
        if site.endswith("-negate"):
            a[i] = -1 - int(abs(a[i]))
        else:
            a[i] += self.rng.randrange(1, 4)
        self.fired = True
        self.detail = f"{site}: entry {i} of a {a.size}-element descriptor"

    def visit_ir(self, site: str, corrupt) -> None:
        """Called by an instrumented *transform* site with a corruption
        callback ``corrupt(rng) -> str | None``: when armed for this site
        and the countdown elapses, the callback mutates the in-flight IR
        and returns a description (or ``None`` if this visit offered
        nothing corruptible, which does not consume the countdown)."""
        if self.fired or site != self.site:
            return
        self.countdown -= 1
        if self.countdown > 0:
            return
        if self.mode == "raise":
            self.fired = True
            raise FaultInjected(site)
        detail = corrupt(self.rng)
        if detail is None:
            self.countdown = 1  # nothing corruptible here; rearm
            return
        self.fired = True
        self.detail = detail


def visit(site: str, arrays: list) -> None:
    """Module-level site helper; callers must already have tested the
    ``INJECTOR is not None`` fast path."""
    inj = INJECTOR
    if inj is not None:
        inj.visit(site, arrays)


def visit_ir(site: str, corrupt) -> None:
    """Module-level IR-site helper; callers must already have tested the
    ``INJECTOR is not None`` fast path."""
    inj = INJECTOR
    if inj is not None:
        inj.visit_ir(site, corrupt)


# ---------------------------------------------------------------------------
# Process-level faults (the serving pool's chaos registry)
# ---------------------------------------------------------------------------

#: Fault sites that live *between* processes rather than inside the vector
#: pipeline: each one is a way a pool worker can betray its supervisor.
#: The registered containment contract names the typed error the parent
#: must surface (and to whom).  ``tests/guard/test_process_faults.py``
#: iterates this registry with a driver per site, so — like
#: :data:`FAULT_SITES` — a new site cannot be added without proving it is
#: contained.
PROCESS_FAULT_SITES: dict[str, str] = {
    "pool.worker.abort":
        "worker process exits nonzero mid-request; contained as "
        "WorkerCrashError(reason='exit') on exactly the in-flight requests "
        "(or a transparent retry), worker respawned",
    "pool.worker.heartbeat-stall":
        "worker heartbeat goes silent while the request keeps running; "
        "contained as WorkerCrashError(reason='lost-heartbeat') after the "
        "heartbeat timeout, worker killed and respawned",
    "pool.worker.slow-compile":
        "worker wedges (sleeps) before compiling; contained as "
        "ResourceLimitError('timeout') on requests whose deadline passes, "
        "worker killed and respawned",
    "pool.worker.poisoned-response":
        "worker replies with a corrupted payload; contained as "
        "WorkerCrashError(reason='poisoned-response') on that request "
        "(or a transparent retry), worker killed and respawned",
}

#: Short CLI aliases for ``--chaos`` specs.
_CHAOS_ALIASES = {
    "abort": "pool.worker.abort",
    "stall": "pool.worker.heartbeat-stall",
    "slow": "pool.worker.slow-compile",
    "poison": "pool.worker.poisoned-response",
}


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded, deterministic process-fault injection for the worker pool.

    A spec travels (pickled) into every worker process of a
    :class:`~repro.serve.pool.WorkerPool`; at each instrumented site the
    worker asks :meth:`fires` whether to misbehave for this request.  The
    decision is a pure hash of ``(seed, site, request id)``, so a chaos
    run replays exactly — same seed, same victims — with no cross-process
    RNG state to share.  ``rate`` is the per-(site, request) firing
    probability; ``stall_s``/``slow_s`` size the heartbeat stall and the
    wedged compile.
    """

    sites: tuple[str, ...]
    seed: int = 0
    rate: float = 1.0
    stall_s: float = 10.0
    slow_s: float = 1.0

    def __post_init__(self) -> None:
        for site in self.sites:
            if site not in PROCESS_FAULT_SITES:
                raise ValueError(
                    f"unknown process fault site {site!r}; "
                    f"known: {sorted(PROCESS_FAULT_SITES)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def fires(self, site: str, rid: str) -> bool:
        """Deterministic: does ``site`` fire for request ``rid``?"""
        if site not in self.sites:
            return False
        h = hashlib.sha256(f"{self.seed}:{site}:{rid}".encode()).digest()
        return int.from_bytes(h[:8], "big") < self.rate * 2.0 ** 64

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """A spec from its CLI form: comma-separated sites (full names or
        the aliases ``abort``/``stall``/``slow``/``poison``, or ``all``),
        optionally followed by ``:key=value`` settings, e.g.
        ``"abort,poison:rate=0.1:seed=3"``."""
        head, *opts = text.split(":")
        names = [n.strip() for n in head.split(",") if n.strip()]
        if names == ["all"]:
            sites = tuple(PROCESS_FAULT_SITES)
        else:
            sites = tuple(_CHAOS_ALIASES.get(n, n) for n in names)
        kw: dict = {}
        for opt in opts:
            key, _, value = opt.partition("=")
            key = key.strip()
            if key not in ("seed", "rate", "stall_s", "slow_s") or not value:
                raise ValueError(f"bad chaos option {opt!r}")
            kw[key] = int(value) if key == "seed" else float(value)
        return cls(sites=sites, **kw)


@contextmanager
def injecting(site: str, seed: int = 0, mode: str = "corrupt",
              fire_on: int = 1) -> Iterator[FaultInjector]:
    """Arm a :class:`FaultInjector` for the dynamic extent of the block.

    Also switches off the ``NestedVector`` constructor's own validation
    (``repro.vector.nested.CHECK_INVARIANTS``) within the scope: injected
    corruption must be caught by the *boundary* checker, proving it
    stands on its own.
    """
    global INJECTOR
    from repro.vector import nested
    inj = FaultInjector(site, seed=seed, mode=mode, fire_on=fire_on)
    prev, prev_check = INJECTOR, nested.CHECK_INVARIANTS
    INJECTOR = inj
    nested.CHECK_INVARIANTS = False
    try:
        yield inj
    finally:
        INJECTOR = prev
        nested.CHECK_INVARIANTS = prev_check
