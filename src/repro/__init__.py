"""repro — a full reproduction of Prins & Palmer, *Transforming High-Level
Data-Parallel Programs into Vector Operations* (PPoPP 1993).

The package implements the complete system the paper describes:

* the Proteus expression subset **P** (parser, static monomorphic typing,
  reference interpreter with work/span measurement);
* the **transformation** of section 3 (iterator canonical form R1, the
  syntax-directed iterator elimination R2a-R2f, depth-1 parallel-extension
  synthesis, section-4.5 optimizations);
* the **vector model V** of section 4 (descriptor-vector representation of
  nested sequences, extract/insert, a CVL-equivalent segmented-NumPy
  library, and the T1 translation executing every f^d through f^1);
* a linear **VCODE** form with a VM, CVL-style C emission, and a simulated
  P-processor vector machine for load-balance/speedup studies.

Entry points:

>>> from repro import compile_program, run
>>> run("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [5])
[1, 4, 9, 16, 25]
"""

from repro.api import CompiledProgram, batch_executor, compile_program, run
from repro.errors import (
    GuardError, InvariantError, ReproError, ResourceLimitError,
)
from repro.guard import Budget, GuardConfig, guarded
from repro.interp.values import FunVal
from repro.obs import ProfileReport, Profiler, profiling
from repro.serve import BatchExecutor, CompileCache, ServeConfig
from repro.transform.pipeline import TransformOptions

__version__ = "1.3.0"

__all__ = ["compile_program", "run", "CompiledProgram", "TransformOptions",
           "FunVal", "ReproError", "Profiler", "ProfileReport", "profiling",
           "GuardError", "InvariantError", "ResourceLimitError",
           "Budget", "GuardConfig", "guarded",
           "BatchExecutor", "CompileCache", "ServeConfig", "batch_executor",
           "__version__"]
