"""Differential runner and shrinker for the fuzzer.

Each generated program runs on every selected back end — by default the
reference interpreter (the paper's section-2 semantics), the vector
evaluator, and the VCODE VM; ``backends=`` widens the set (e.g. adding
``native``, which is skipped with a note when no C toolchain exists).
The back ends *agree* when they all return equal values or all fail with
the same error class; anything else is a :class:`Disagreement`, which
the greedy shrinker then minimizes by structural replacement on the
generated expression tree (a candidate shrink is kept only if the
smaller program still disagrees the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ReproError
from repro.fuzz.gen import (
    ATOMS, PARAMS, FuzzCase, Node, gen_case, leaf, replace_at, subnodes,
)
from repro.guard.runtime import Budget

BACKENDS = ("interp", "vector", "vcode")

#: every back end the differ can drive (the default trio plus opt-ins)
ALL_BACKENDS = ("interp", "vector", "vcode", "native", "parallel")

#: why an opt-in back end gets dropped up front on machines that cannot
#: exercise it (rendered in the report summary)
_SKIP_REASONS = {"native": "no C toolchain", "parallel": "single CPU"}

#: Safety net so a fuzzer-found non-termination or blow-up fails fast
#: instead of hanging the run (generated programs are total by
#: construction; this guards against generator bugs).
DEFAULT_BUDGET = Budget(timeout_s=30.0, max_elements=50_000_000)


@dataclass(frozen=True)
class Outcome:
    """What one back end did with one program: a value or an error."""

    value: object = None
    error_type: Optional[str] = None
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error_type is not None

    def brief(self) -> str:
        if self.failed:
            return f"{self.error_type}: {self.error}"
        return repr(self.value)


@dataclass
class Disagreement:
    """A program on which the back ends do not agree."""

    case: FuzzCase
    outcomes: dict[str, Outcome]
    shrunk: Optional[FuzzCase] = None

    def describe(self) -> str:
        c = self.shrunk or self.case
        lines = [f"seed {self.case.seed}: back ends disagree on "
                 f"{c.entry}{tuple(c.args)!r}"]
        for b, o in self.outcomes.items():
            lines.append(f"  {b:8s} -> {o.brief()}")
        lines.append("program:")
        lines.extend("  " + ln for ln in c.source.splitlines())
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing run."""

    count: int = 0
    agreed: int = 0
    invalid: list[tuple[int, str]] = field(default_factory=list)
    disagreements: list[Disagreement] = field(default_factory=list)
    skipped_backends: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.disagreements and not self.invalid

    def summary(self) -> str:
        out = (f"fuzz: {self.count} programs, {self.agreed} agreed, "
               f"{len(self.disagreements)} disagreements, "
               f"{len(self.invalid)} invalid")
        if self.invalid:
            seeds = ", ".join(str(s) for s, _ in self.invalid[:5])
            out += f" (invalid seeds: {seeds}…)"
        if self.skipped_backends:
            noted = ", ".join(
                f"{b} ({_SKIP_REASONS[b]})" if b in _SKIP_REASONS else b
                for b in self.skipped_backends)
            out += f" [skipped: {noted}]"
        return out


def run_case(case: FuzzCase, check: bool = False,
             budget: Optional[Budget] = DEFAULT_BUDGET,
             backends: tuple[str, ...] = BACKENDS,
             pool=None) -> dict[str, Outcome]:
    """Run one case on every selected back end; never raises for
    per-backend failures (they become :class:`Outcome` errors).  Compile
    failures propagate — a generated program that does not compile is a
    generator bug, not a back-end disagreement.

    With ``pool`` (a :class:`repro.serve.WorkerPool`), the ``vector``
    lane is served *out of process* through the pool instead of run
    inline, so the differential harness also exercises the serving
    stack's argument/result/error marshalling: a value corrupted (or an
    error retyped) on the way through a worker shows up as an ordinary
    back-end disagreement."""
    from repro.api import compile_program
    prog = compile_program(case.source)
    out: dict[str, Outcome] = {}
    for backend in backends:
        try:
            if pool is not None and backend == "vector":
                v = pool.submit(case.source, case.entry, list(case.args),
                                types=list(case.types), check=check,
                                budget=budget).result(timeout=300.0)
            else:
                v = prog.run(case.entry, list(case.args), backend=backend,
                             types=list(case.types), check=check,
                             budget=budget)
            out[backend] = Outcome(value=v)
        except ReproError as e:
            out[backend] = Outcome(error_type=type(e).__name__, error=str(e))
        except RecursionError as e:
            out[backend] = Outcome(error_type="RecursionError", error=str(e))
        except Exception as e:  # raw leak: itself a robustness finding
            out[backend] = Outcome(error_type=f"!{type(e).__name__}",
                                   error=str(e))
    return out


def compare_outcomes(outcomes: dict[str, Outcome]) -> bool:
    """True when the back ends agree: all equal values, or all failures
    of the same error class (messages may differ across back ends)."""
    vals = list(outcomes.values())
    if all(o.failed for o in vals):
        return len({o.error_type for o in vals}) == 1
    if any(o.failed for o in vals):
        return False
    first = vals[0].value
    return all(o.value == first for o in vals[1:])


def _signature(outcomes: dict[str, Outcome]) -> tuple:
    """Which back ends failed/succeeded — the shrinker preserves this so
    it minimizes *the same* disagreement, not a different one."""
    return tuple(o.error_type for o in outcomes.values())


def shrink_case(case: FuzzCase, check: bool = False,
                max_rounds: int = 20,
                backends: tuple[str, ...] = BACKENDS,
                pool=None) -> tuple[FuzzCase, dict[str, Outcome]]:
    """Greedy structural shrink: repeatedly replace subtrees of the main
    body with same-typed atoms or descendants, and shorten argument
    values, keeping a candidate only if the back ends still disagree with
    the same failure signature.  Returns the minimal case found and its
    outcomes."""
    outcomes = run_case(case, check=check, backends=backends, pool=pool)
    if compare_outcomes(outcomes):
        return case, outcomes
    want = _signature(outcomes)

    def still_fails(c: FuzzCase) -> Optional[dict[str, Outcome]]:
        try:
            o = run_case(c, check=check, backends=backends, pool=pool)
        except ReproError:
            return None            # candidate broke scoping/typing: reject
        if not compare_outcomes(o) and _signature(o) == want:
            return o
        return None

    best, best_out = case, outcomes
    for _ in range(max_rounds):
        improved = False
        # 1. replace any subtree with a same-typed atom or descendant
        for path, node in sorted(subnodes(best.body),
                                 key=lambda pn: len(pn[0])):
            if node.size() <= 1:
                continue
            candidates: list[Node] = [leaf(node.t, ATOMS[node.t])]
            candidates += sorted(
                (n for p, n in subnodes(node) if p and n.t == node.t),
                key=Node.size)
            for cand in candidates:
                if cand.size() >= node.size():
                    continue
                trial = FuzzCase(seed=best.seed,
                                 body=replace_at(best.body, path, cand),
                                 helpers=best.helpers, args=best.args)
                o = still_fails(trial)
                if o is not None:
                    best, best_out, improved = trial, o, True
                    break
            if improved:
                break
        if improved:
            continue
        # 2. drop helper definitions no longer referenced
        body_src = best.body.render()
        kept = tuple(h for h in best.helpers
                     if h.split("(")[0].split()[-1] in body_src)
        if kept != best.helpers:
            trial = FuzzCase(seed=best.seed, body=best.body,
                             helpers=kept, args=best.args)
            o = still_fails(trial)
            if o is not None:
                best, best_out, improved = trial, o, True
                continue
        # 3. shrink argument values
        for i, (name, t) in enumerate(PARAMS):
            v = best.args[i]
            options: list = []
            if t == "int" and v != 0:
                options = [0]
            elif isinstance(v, list) and v:
                options = [[], v[:len(v) // 2]]
            for nv in options:
                args = tuple(nv if j == i else a
                             for j, a in enumerate(best.args))
                trial = FuzzCase(seed=best.seed, body=best.body,
                                 helpers=best.helpers, args=args)
                o = still_fails(trial)
                if o is not None:
                    best, best_out, improved = trial, o, True
                    break
            if improved:
                break
        if not improved:
            break
    return best, best_out


@dataclass
class CostViolation:
    """A program whose *measured* interpreter work/span exceeded the
    static cost bound evaluated at the concrete input sizes — a
    soundness bug in :mod:`repro.analysis.cost`."""

    case: FuzzCase
    measured_work: int
    measured_span: int
    predicted_work: int
    predicted_span: int
    shrunk: Optional[FuzzCase] = None

    @property
    def kind(self) -> tuple[bool, bool]:
        """(work violated, span violated) — preserved by the shrinker."""
        return (self.measured_work > self.predicted_work,
                self.measured_span > self.predicted_span)

    def describe(self) -> str:
        c = self.shrunk or self.case
        lines = [f"seed {self.case.seed}: measured cost exceeds the "
                 f"static bound on {c.entry}{tuple(c.args)!r}",
                 f"  measured  work={self.measured_work} "
                 f"span={self.measured_span}",
                 f"  predicted work={self.predicted_work} "
                 f"span={self.predicted_span}",
                 "program:"]
        lines.extend("  " + ln for ln in c.source.splitlines())
        return "\n".join(lines)


@dataclass
class CostFuzzReport:
    """Aggregate result of one ``fuzz --cost`` soundness run."""

    count: int = 0
    sound: int = 0       #: bounded and measured <= predicted
    unbounded: int = 0   #: declared unbounded (trivially sound)
    skipped: int = 0     #: interpreter run failed (e.g. division by zero)
    invalid: list[tuple[int, str]] = field(default_factory=list)
    violations: list[CostViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.invalid

    def summary(self) -> str:
        out = (f"fuzz --cost: {self.count} programs, {self.sound} sound, "
               f"{self.unbounded} unbounded, {self.skipped} skipped, "
               f"{len(self.violations)} violations, "
               f"{len(self.invalid)} invalid")
        if self.invalid:
            seeds = ", ".join(str(s) for s, _ in self.invalid[:5])
            out += f" (invalid seeds: {seeds}…)"
        return out


def _measure_cost(case: FuzzCase) -> tuple[str, Optional[CostViolation]]:
    """Check one case: static prediction vs measured interpreter cost.
    Returns a status tag plus the violation (when there is one).
    Compile/analysis crashes propagate — those are analyzer bugs, not
    soundness outcomes."""
    from repro.api import compile_program
    from repro.guard.runtime import GuardConfig, guarded

    prog = compile_program(case.source)
    arg_types = prog.entry_types(case.entry, list(case.args),
                                 list(case.types))
    cert = prog.cost_certificate(case.entry, arg_types)
    pred = cert.predict(list(case.args))
    if not pred["bounded"]:
        return "unbounded", None
    try:
        with guarded(GuardConfig(budget=DEFAULT_BUDGET)):
            _val, rep = prog.measure(case.entry, list(case.args))
    except (ReproError, RecursionError):
        return "skipped", None      # the bound only covers completed runs
    if rep.work > pred["work"] or rep.span > pred["span"]:
        return "violation", CostViolation(
            case=case, measured_work=rep.work, measured_span=rep.span,
            predicted_work=pred["work"], predicted_span=pred["span"])
    return "sound", None


def shrink_cost_case(v: CostViolation,
                     max_rounds: int = 20) -> CostViolation:
    """Greedy structural shrink of a soundness violation, mirroring
    :func:`shrink_case`: a candidate is kept only if it still violates
    the same bound(s) (work/span kind preserved)."""
    want = v.kind

    def still_violates(c: FuzzCase) -> Optional[CostViolation]:
        try:
            status, cand = _measure_cost(c)
        except (ReproError, RecursionError):
            return None          # candidate broke scoping/typing: reject
        if status == "violation" and cand is not None \
                and cand.kind == want:
            return cand
        return None

    best = v
    for _ in range(max_rounds):
        improved = False
        bc = best.shrunk or best.case
        # 1. replace any subtree with a same-typed atom or descendant
        for path, node in sorted(subnodes(bc.body),
                                 key=lambda pn: len(pn[0])):
            if node.size() <= 1:
                continue
            candidates: list[Node] = [leaf(node.t, ATOMS[node.t])]
            candidates += sorted(
                (n for p, n in subnodes(node) if p and n.t == node.t),
                key=Node.size)
            for cand in candidates:
                if cand.size() >= node.size():
                    continue
                trial = FuzzCase(seed=bc.seed,
                                 body=replace_at(bc.body, path, cand),
                                 helpers=bc.helpers, args=bc.args)
                got = still_violates(trial)
                if got is not None:
                    got.shrunk = trial
                    got.case = v.case
                    best, improved = got, True
                    break
            if improved:
                break
        if improved:
            continue
        # 2. shrink argument values
        for i, (_name, t) in enumerate(PARAMS):
            av = bc.args[i]
            options: list = []
            if t == "int" and av != 0:
                options = [0]
            elif isinstance(av, list) and av:
                options = [[], av[:len(av) // 2]]
            for nv in options:
                args = tuple(nv if j == i else a
                             for j, a in enumerate(bc.args))
                trial = FuzzCase(seed=bc.seed, body=bc.body,
                                 helpers=bc.helpers, args=args)
                got = still_violates(trial)
                if got is not None:
                    got.shrunk = trial
                    got.case = v.case
                    best, improved = got, True
                    break
            if improved:
                break
        if not improved:
            break
    return best


def fuzz_cost(seed: int, count: int, shrink: bool = True,
              progress: Optional[Callable[[int, CostFuzzReport], None]]
              = None) -> CostFuzzReport:
    """The ``repro fuzz --cost`` soundness lane: for ``count`` generated
    programs, evaluate the static work/span bound at the concrete input
    sizes and check the measured interpreter cost never exceeds it.
    Violations are shrunk (like back-end disagreements) and collected."""
    report = CostFuzzReport()
    for i in range(count):
        case = gen_case(seed + i)
        report.count += 1
        try:
            status, violation = _measure_cost(case)
        except ReproError as e:
            report.invalid.append((case.seed, f"{type(e).__name__}: {e}"))
            continue
        if status == "sound":
            report.sound += 1
        elif status == "unbounded":
            report.unbounded += 1
        elif status == "skipped":
            report.skipped += 1
        elif violation is not None:
            if shrink:
                violation = shrink_cost_case(violation)
            report.violations.append(violation)
        if progress is not None:
            progress(i, report)
    return report


def resolve_backends(spec: Optional[str]) -> tuple[str, ...]:
    """Back-end list from a CLI spec: ``None`` → the default trio, a
    leading ``+`` appends to the default (``+native``), otherwise a
    comma-separated replacement list.  Unknown names raise ValueError."""
    if spec is None:
        return BACKENDS
    spec = spec.strip()
    if spec.startswith("+"):
        names = list(BACKENDS) + [s for s in spec[1:].split(",") if s]
    else:
        names = [s for s in spec.split(",") if s]
    out: list[str] = []
    for n in names:
        n = n.strip()
        if n not in ALL_BACKENDS:
            raise ValueError(f"unknown fuzz back end: {n!r}")
        if n not in out:
            out.append(n)
    if len(out) < 2:
        raise ValueError("need at least two back ends to differentiate")
    return tuple(out)


def fuzz(seed: int, count: int, check: bool = False, shrink: bool = True,
         progress: Optional[Callable[[int, FuzzReport], None]] = None,
         backends: tuple[str, ...] = BACKENDS, pool=None) -> FuzzReport:
    """Run ``count`` generated programs starting at ``seed``; differences
    are shrunk (unless ``shrink=False``) and collected in the report.

    ``backends`` selects the back ends to differentiate; lanes a machine
    cannot exercise are dropped up front and recorded in
    ``report.skipped_backends``: ``native`` when no C toolchain is
    available (a redundant NumPy-fallback lane otherwise), ``parallel``
    on single-CPU machines (where it would add nothing over the lanes it
    is supposed to disagree with)."""
    backends = tuple(backends)
    skipped: list[str] = []
    if "native" in backends:
        from repro.native import toolchain
        if not toolchain.available():
            backends = tuple(b for b in backends if b != "native")
            skipped.append("native")
    if "parallel" in backends:
        import os
        if (os.cpu_count() or 1) < 2:
            backends = tuple(b for b in backends if b != "parallel")
            skipped.append("parallel")
    report = FuzzReport(skipped_backends=tuple(skipped))
    for i in range(count):
        case = gen_case(seed + i)
        report.count += 1
        try:
            outcomes = run_case(case, check=check, backends=backends,
                                pool=pool)
        except ReproError as e:
            report.invalid.append((case.seed, f"{type(e).__name__}: {e}"))
            continue
        if compare_outcomes(outcomes):
            report.agreed += 1
        else:
            d = Disagreement(case=case, outcomes=outcomes)
            if shrink:
                d.shrunk, d.outcomes = shrink_case(case, check=check,
                                                   backends=backends,
                                                   pool=pool)
            report.disagreements.append(d)
        if progress is not None:
            progress(i, report)
    return report
