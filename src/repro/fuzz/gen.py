"""Seeded random P-program generator for the differential fuzzer.

The generator is *type-directed* and *totality-preserving*: every program
it emits is well-typed and free of partial operations by construction —
division and modulus only take literal divisors, indexing is guarded by a
length test, ``dist`` counts are taken modulo a small constant, and
``restrict``/``permute`` arguments are built from the same sequence via a
``let`` binding.  Integer magnitudes are clamped (every value entering a
sequence is reduced ``mod 997``) so results stay far below 2^63 and the
reference interpreter's Python bigints cannot diverge from the vector
representation's ``int64``.

Programs are built as :class:`Node` trees (one node per expression) and
rendered to concrete syntax; the shrinker in :mod:`repro.fuzz.differ`
minimizes failing cases by structural replacement on the same trees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

# Fuzzer type tags (a deliberately small slice of the type system).
INT, BOOL, SEQ, SEQ2 = "int", "bool", "seq", "seq2"

#: Concrete P type syntax per tag (passed as explicit entry types so empty
#: sequence arguments stay typeable).
TYPE_SYNTAX = {INT: "int", BOOL: "bool",
               SEQ: "seq(int)", SEQ2: "seq(seq(int))"}

#: Entry parameters every generated ``main`` receives, in order.
PARAMS: tuple[tuple[str, str], ...] = (
    ("a", INT), ("b", INT), ("s", SEQ), ("t", SEQ), ("ss", SEQ2))

#: Smallest closed expression of each type — the shrinker's terminal
#: replacement and the generator's depth-0 fallback.
ATOMS = {INT: "0", BOOL: "true", SEQ: "[0..(0 - 1)]",
         SEQ2: "[q__ <- [0..(0 - 1)]: [0..q__]]"}

#: Clamp modulus for values entering sequences (prime, so clamped values
#: still spread well).
_CLAMP = 997


@dataclass(frozen=True)
class Node:
    """One generated expression: a render format plus typed children.

    ``fmt`` contains ``{0}``, ``{1}``, ... placeholders for the rendered
    children; variable names are baked into ``fmt`` at generation time.
    """

    t: str
    fmt: str
    kids: tuple["Node", ...] = ()

    def render(self) -> str:
        return self.fmt.format(*(k.render() for k in self.kids))

    def size(self) -> int:
        return 1 + sum(k.size() for k in self.kids)


def leaf(t: str, text: str) -> Node:
    return Node(t, text)


def subnodes(root: Node) -> Iterator[tuple[tuple[int, ...], Node]]:
    """All nodes of the tree with their paths, preorder (root first)."""
    stack: list[tuple[tuple[int, ...], Node]] = [((), root)]
    while stack:
        path, n = stack.pop()
        yield path, n
        for i, k in enumerate(n.kids):
            stack.append((path + (i,), k))


def replace_at(root: Node, path: tuple[int, ...], new: Node) -> Node:
    """A copy of ``root`` with the node at ``path`` swapped for ``new``."""
    if not path:
        return new
    i = path[0]
    kids = list(root.kids)
    kids[i] = replace_at(kids[i], path[1:], new)
    return replace(root, kids=tuple(kids))


@dataclass(frozen=True)
class FuzzCase:
    """One generated program plus the inputs it is run on."""

    seed: int
    body: Node                       # main's body (shrinkable)
    helpers: tuple[str, ...]         # rendered helper definitions
    args: tuple                      # values for PARAMS, in order
    entry: str = "main"

    @property
    def types(self) -> tuple[str, ...]:
        return tuple(TYPE_SYNTAX[t] for _n, t in PARAMS)

    @property
    def source(self) -> str:
        params = ", ".join(n for n, _t in PARAMS)
        defs = list(self.helpers)
        defs.append(f"fun main({params}) =\n  {self.body.render()}")
        return "\n".join(defs)


class _Gen:
    """One generation run: an RNG, a scope, and the type-directed grammar."""

    def __init__(self, rng: random.Random, helpers: Sequence[str] = ()):
        self.rng = rng
        self.env: list[tuple[str, str]] = list(PARAMS)
        self.helpers = list(helpers)   # names of callable (int, seq) helpers
        self._fresh = 0

    # -- scope helpers -----------------------------------------------------

    def fresh(self, base: str = "v") -> str:
        self._fresh += 1
        return f"{base}{self._fresh}__"

    def vars_of(self, t: str) -> list[str]:
        return [n for n, vt in self.env if vt == t]

    def _scoped(self, name: str, t: str, make):
        self.env.append((name, t))
        try:
            return make()
        finally:
            self.env.pop()

    # -- dispatch ----------------------------------------------------------

    def gen(self, t: str, d: int) -> Node:
        return {INT: self.gen_int, BOOL: self.gen_bool,
                SEQ: self.gen_seq, SEQ2: self.gen_seq2}[t](d)

    def atom(self, t: str) -> Node:
        vs = self.vars_of(t)
        if t == INT:
            pool = [str(self.rng.randrange(10))] + vs
        elif t == BOOL:
            pool = ["true", "false"] + [f"({v} < {self.rng.randrange(5)})"
                                        for v in self.vars_of(INT)]
        else:
            pool = vs or [ATOMS[t]]
        return leaf(t, self.rng.choice(pool))

    def clamped_int(self, d: int) -> Node:
        """An int expression reduced mod a small prime — the only form
        allowed to flow into sequences, keeping magnitudes int64-safe."""
        return Node(INT, f"(({{0}}) mod {_CLAMP})", (self.gen_int(d),))

    # -- int ---------------------------------------------------------------

    def gen_int(self, d: int) -> Node:
        if d <= 0:
            return self.atom(INT)
        r = self.rng
        choice = r.choices(
            ["atom", "arith", "mul", "divmod", "len", "sum", "index",
             "minmax", "if", "let", "call", "flatsum"],
            weights=[3, 4, 2, 2, 2, 3, 2, 2, 2, 1,
                     2 if self.helpers else 0, 1])[0]
        if choice == "atom":
            return self.atom(INT)
        if choice == "arith":
            op = r.choice(["+", "-"])
            return Node(INT, f"(({{0}}) {op} ({{1}}))",
                        (self.gen_int(d - 1), self.gen_int(d - 1)))
        if choice == "mul":
            # atoms only: keeps products small (see module docstring)
            return Node(INT, "(({0}) * ({1}))",
                        (self.atom(INT), self.atom(INT)))
        if choice == "divmod":
            op = r.choice(["div", "mod"])
            k = r.randrange(2, 6)
            return Node(INT, f"(({{0}}) {op} {k})", (self.gen_int(d - 1),))
        if choice == "len":
            t = r.choice([SEQ, SEQ2])
            return Node(INT, "(#({0}))", (self.gen(t, d - 1),))
        if choice == "sum":
            return Node(INT, "sum({0})", (self.gen_seq(d - 1),))
        if choice == "flatsum":
            return Node(INT, "sum(flatten({0}))", (self.gen_seq2(d - 1),))
        if choice == "index":
            k = r.randrange(1, 5)
            return Node(
                INT, f"(if (#({{0}})) < {k} then ({{1}}) else ({{0}})[{k}])",
                (self.gen_seq(d - 1), self.gen_int(d - 1)))
        if choice == "minmax":
            fn = r.choice(["max2", "min2"])
            return Node(INT, f"{fn}(({{0}}), ({{1}}))",
                        (self.gen_int(d - 1), self.gen_int(d - 1)))
        if choice == "if":
            return Node(INT, "(if ({0}) then ({1}) else ({2}))",
                        (self.gen_bool(d - 1), self.gen_int(d - 1),
                         self.gen_int(d - 1)))
        if choice == "let":
            v = self.fresh("n")
            bound = self.gen_int(d - 1)
            body = self._scoped(v, INT, lambda: self.gen_int(d - 1))
            return Node(INT, f"(let {v} = ({{0}}) in ({{1}}))", (bound, body))
        # call: helper of signature (int, seq(int)) -> int
        h = r.choice(self.helpers)
        return Node(INT, f"{h}(({{0}}), ({{1}}))",
                    (self.gen_int(d - 1), self.gen_seq(d - 1)))

    # -- bool --------------------------------------------------------------

    def gen_bool(self, d: int) -> Node:
        if d <= 0:
            return self.atom(BOOL)
        r = self.rng
        choice = r.choices(["atom", "cmp", "logic", "not", "quant"],
                           weights=[2, 4, 2, 1, 2])[0]
        if choice == "atom":
            return self.atom(BOOL)
        if choice == "cmp":
            op = r.choice(["<", "<=", "==", "!=", ">", ">="])
            return Node(BOOL, f"(({{0}}) {op} ({{1}}))",
                        (self.gen_int(d - 1), self.gen_int(d - 1)))
        if choice == "logic":
            op = r.choice(["and", "or"])
            return Node(BOOL, f"(({{0}}) {op} ({{1}}))",
                        (self.gen_bool(d - 1), self.gen_bool(d - 1)))
        if choice == "not":
            return Node(BOOL, "(not ({0}))", (self.gen_bool(d - 1),))
        # quant: anytrue/alltrue over a per-element predicate
        fn = r.choice(["anytrue", "alltrue"])
        v = self.fresh("x")
        dom = self.gen_seq(d - 1)
        pred = self._scoped(v, INT, lambda: self.gen_bool(d - 1))
        return Node(BOOL, f"{fn}([{v} <- ({{0}}): ({{1}})])", (dom, pred))

    # -- seq(int) ----------------------------------------------------------

    def gen_seq(self, d: int) -> Node:
        if d <= 0:
            return self.atom(SEQ)
        r = self.rng
        choice = r.choices(
            ["atom", "range", "iter", "filter", "scan", "concat", "dist",
             "restrict", "permute", "lit", "flatpick"],
            weights=[3, 3, 4, 3, 2, 2, 2, 2, 1, 1, 1])[0]
        if choice == "atom":
            return self.atom(SEQ)
        if choice == "range":
            lo = r.randrange(0, 3)
            return Node(SEQ, f"[{lo}..(({{0}}) mod 8)]", (self.gen_int(d - 1),))
        if choice in ("iter", "filter"):
            v = self.fresh("x")
            dom = self.gen_seq(d - 1)
            body = self._scoped(v, INT, lambda: self.clamped_int(d - 1))
            if choice == "iter":
                return Node(SEQ, f"[{v} <- ({{0}}): {{1}}]", (dom, body))
            pred = self._scoped(v, INT, lambda: self.gen_bool(d - 1))
            return Node(SEQ, f"[{v} <- ({{0}}) | ({{1}}): {{2}}]",
                        (dom, pred, body))
        if choice == "scan":
            fn = r.choice(["plus_scan", "max_scan"])
            return Node(SEQ, f"{fn}({{0}})", (self.gen_seq(d - 1),))
        if choice == "concat":
            return Node(SEQ, "concat(({0}), ({1}))",
                        (self.gen_seq(d - 1), self.gen_seq(d - 1)))
        if choice == "dist":
            return Node(SEQ, "dist(({0}), (({1}) mod 5))",
                        (self.clamped_int(d - 1), self.gen_int(d - 1)))
        if choice == "restrict":
            v, x = self.fresh("r"), self.fresh("x")
            bound = self.gen_seq(d - 1)
            pred = self._scoped(x, INT, lambda: self.gen_bool(d - 1))
            return Node(SEQ,
                        f"(let {v} = ({{0}}) in "
                        f"restrict({v}, [{x} <- {v}: ({{1}})]))",
                        (bound, pred))
        if choice == "permute":
            v = self.fresh("r")
            return Node(SEQ,
                        f"(let {v} = ({{0}}) in permute({v}, rank({v})))",
                        (self.gen_seq(d - 1),))
        if choice == "lit":
            return Node(SEQ, "[({0}), ({1})]",
                        (self.clamped_int(d - 1), self.clamped_int(d - 1)))
        # flatpick: flatten a nested sequence
        return Node(SEQ, "flatten({0})", (self.gen_seq2(d - 1),))

    # -- seq(seq(int)) -----------------------------------------------------

    def gen_seq2(self, d: int) -> Node:
        if d <= 0:
            vs = self.vars_of(SEQ2)
            return leaf(SEQ2, self.rng.choice(vs) if vs else ATOMS[SEQ2])
        r = self.rng
        choice = r.choices(["atom", "iter", "over", "dist", "concat", "lit"],
                           weights=[3, 4, 2, 2, 2, 1])[0]
        if choice == "atom":
            return self.gen_seq2(0)
        if choice == "iter":
            v = self.fresh("x")
            dom = self.gen_seq(d - 1)
            body = self._scoped(v, INT, lambda: self.gen_seq(d - 1))
            return Node(SEQ2, f"[{v} <- ({{0}}): ({{1}})]", (dom, body))
        if choice == "over":
            # map over an existing nested sequence (row var in scope)
            v = self.fresh("row")
            dom = self.gen_seq2(d - 1)
            body = self._scoped(v, SEQ, lambda: self.gen_seq(d - 1))
            return Node(SEQ2, f"[{v} <- ({{0}}): ({{1}})]", (dom, body))
        if choice == "dist":
            return Node(SEQ2, "dist(({0}), (({1}) mod 4))",
                        (self.gen_seq(d - 1), self.gen_int(d - 1)))
        if choice == "concat":
            return Node(SEQ2, "concat(({0}), ({1}))",
                        (self.gen_seq2(d - 1), self.gen_seq2(d - 1)))
        return Node(SEQ2, "[({0}), ({1})]",
                    (self.gen_seq(d - 1), self.gen_seq(d - 1)))


def _gen_helper(rng: random.Random, name: str) -> str:
    """A non-recursive helper ``fun name(x, r) = <int expr>`` over an int
    and a seq(int) parameter; called from inside iterator bodies to
    exercise parallel-extension synthesis."""
    g = _Gen(rng)
    g.env = [("x", INT), ("r", SEQ)]
    body = g.gen_int(rng.randrange(1, 3))
    return f"fun {name}(x, r) = {body.render()}"


def _gen_args(rng: random.Random) -> tuple:
    def seq():
        return [rng.randrange(-9, 10) for _ in range(rng.randrange(0, 9))]
    out = []
    for _name, t in PARAMS:
        if t == INT:
            out.append(rng.randrange(-9, 10))
        elif t == SEQ:
            out.append(seq())
        else:
            out.append([seq()[:rng.randrange(0, 6)]
                        for _ in range(rng.randrange(0, 5))])
    return tuple(out)


def gen_case(seed: int, max_depth: int = 4) -> FuzzCase:
    """Deterministically generate one program + inputs from ``seed``."""
    rng = random.Random(seed)
    helpers = []
    names = []
    for i in range(rng.randrange(0, 3)):
        name = f"h{i}"
        helpers.append(_gen_helper(rng, name))
        names.append(name)
    g = _Gen(rng, helpers=names)
    root_t = rng.choice([INT, INT, SEQ, SEQ, BOOL, SEQ2])
    body = g.gen(root_t, rng.randrange(2, max_depth + 1))
    return FuzzCase(seed=seed, body=body, helpers=tuple(helpers),
                    args=_gen_args(rng))
