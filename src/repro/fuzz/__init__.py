"""Differential fuzzing of the three back ends.

``repro.fuzz.gen`` grows random well-typed, total P programs from a seed;
``repro.fuzz.differ`` runs each program on the reference interpreter, the
vector evaluator, and the VCODE VM, compares the results, and greedily
shrinks any disagreement to a minimal failing program.  The CLI front end
is ``repro fuzz`` (see docs/RELIABILITY.md).
"""

from repro.fuzz.differ import (
    CostFuzzReport, CostViolation, Disagreement, FuzzReport, Outcome,
    compare_outcomes, fuzz, fuzz_cost, run_case, shrink_case,
    shrink_cost_case,
)
from repro.fuzz.gen import FuzzCase, gen_case

__all__ = [
    "FuzzCase", "gen_case",
    "Outcome", "Disagreement", "FuzzReport",
    "CostViolation", "CostFuzzReport",
    "run_case", "compare_outcomes", "fuzz", "shrink_case",
    "fuzz_cost", "shrink_cost_case",
]
