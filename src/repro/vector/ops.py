"""Depth-1 parallel extensions of every P primitive (paper section 4.4).

The paper's translation rule T1 reduces every ``f^d`` (d >= 2) to ``f^1``
between ``extract``/``insert``, so the kernels here — together with the
depth-0 wrappers at the bottom — are the *complete* executable vocabulary of
the vector model V.

Kernel calling convention: every argument is a **depth-1 frame** — a vector
value whose top nesting level is the iteration space (all arguments share
the same top length).  Depth-0 arguments have already been replicated by the
evaluator (section 3: "we rely on parallel extensions of functions to
replicate such single values"), except where the section-4.5 shared-argument
fast paths below (``seq_index_shared``) apply.

Element types may be arbitrarily nested: all deep cases route through the
single :func:`repro.vector.segments.gather_subtrees` kernel.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import EvalError, VectorError
from repro.guard import runtime as _guard
from repro.lang import types as T
from repro.obs import runtime as _obs
from repro.vector import segments as S
from repro.vector.nested import (
    FUNTABLE, NestedVector, Value, VFun, VTuple, first_leaf, map_leaves,
    zip_leaves,
)
from repro.vector.segments import INT_DTYPE

# ---------------------------------------------------------------------------
# Frame helpers
# ---------------------------------------------------------------------------


def frame_len(v: Value) -> int:
    """Top length of a depth-1 frame."""
    leaf = first_leaf(v)
    if not isinstance(leaf, NestedVector):
        raise VectorError(f"not a frame: {v!r}")
    return leaf.top_length


def check_conformable(args: list[Value], what: str) -> int:
    """All depth-1 frames must agree on the top length; returns it."""
    ns = {frame_len(a) for a in args}
    if len(ns) != 1:
        raise VectorError(f"{what}: non-conformable frames with lengths {sorted(ns)}")
    return ns.pop()


def kind_of_scalar(t: T.Type) -> str:
    if isinstance(t, T.TInt):
        return "int"
    if isinstance(t, T.TBool):
        return "bool"
    if isinstance(t, T.TFloat):
        return "float"
    if isinstance(t, T.TFun):
        return "fun"
    raise VectorError(f"not a scalar leaf type: {t!r}")


def item_levels(nv: NestedVector, k: int) -> list[np.ndarray]:
    """Level arrays describing the *items at nesting level k* (1 = the frame
    elements themselves, 2 = elements of the frame's sequences, ...)."""
    return [*nv.descs[k:], nv.values]


def gather_items(nv: NestedVector, k: int, idx: np.ndarray,
                 new_upper: list[np.ndarray]) -> NestedVector:
    """Select items at level ``k`` of ``nv`` by ``idx`` and attach the
    descriptor levels ``new_upper`` (which must sum-chain onto ``idx``)."""
    got = S.gather_subtrees(item_levels(nv, k), idx)
    return NestedVector([*new_upper, *got[:-1]], got[-1], nv.kind)


def broadcast_to_count(c: Value, n: int) -> Value:
    """Replicate a depth-0 value ``c`` into a depth-1 frame of ``n`` copies."""
    out = _broadcast(c, n)
    # unit-frame wrapping (wrap1) also lands here; only real fan-out is a
    # replicate in the profile
    if n > 1 and _obs.PROFILER is not None:
        _count_kernel("replicate", n, (), out)
    return out


def _broadcast(c: Value, n: int) -> Value:
    if isinstance(c, VTuple):
        return VTuple([_broadcast(x, n) for x in c.items])
    if isinstance(c, bool):
        return NestedVector([[n]], np.full(n, c, dtype=np.bool_), "bool")
    if isinstance(c, (float, np.floating)):
        return NestedVector([[n]], np.full(n, float(c), dtype=np.float64),
                            "float")
    if isinstance(c, (int, np.integer)):
        return NestedVector([[n]], np.full(n, int(c), dtype=INT_DTYPE), "int")
    if isinstance(c, VFun):
        fid = FUNTABLE.intern(c.name)
        return NestedVector([[n]], np.full(n, fid, dtype=INT_DTYPE), "fun")
    if isinstance(c, NestedVector):
        top = np.array([n], dtype=INT_DTYPE)
        reps = np.full(n, c.top_length, dtype=INT_DTYPE)
        lower = [np.tile(d, n) for d in c.descs[1:]]
        return NestedVector([top, reps, *lower], np.tile(c.values, n), c.kind)
    raise VectorError(f"cannot broadcast {c!r}")


def empty_frame_value(t: T.Type) -> Value:
    """A depth-0 empty value of sequence type ``t`` (used for depth-0 empty
    sequence literals and for ``__empty`` at j == 1)."""
    if isinstance(t, T.TSeq) and isinstance(t.elem, T.TTuple):
        return VTuple([empty_frame_value(T.TSeq(it)) for it in t.elem.items])
    if not isinstance(t, T.TSeq):
        raise VectorError(f"empty value must have sequence type, got {t!r}")
    depth = T.seq_depth(t)
    leaf = T.peel(t, depth)
    if isinstance(leaf, T.TTuple):
        # Seq^d(tuple): push outward
        return VTuple([empty_frame_value(T.seq_of(it, depth)) for it in leaf.items])
    descs = [np.array([0], dtype=INT_DTYPE)]
    for _ in range(depth - 1):
        descs.append(np.empty(0, dtype=INT_DTYPE))
    kind = kind_of_scalar(leaf)
    dtype = {"bool": np.bool_, "float": np.float64}.get(kind, INT_DTYPE)
    return NestedVector(descs, np.empty(0, dtype=dtype), kind)


# ---------------------------------------------------------------------------
# Elementwise scalar kernels
# ---------------------------------------------------------------------------


def _ew(op: Callable, out_kind: str | None):
    """Elementwise kernel; ``out_kind=None`` inherits the input kind
    (numeric-polymorphic primitives)."""
    def kernel(*args: NestedVector) -> NestedVector:
        vals = op(*[a.values for a in args])
        kind = out_kind if out_kind is not None else args[0].kind
        return NestedVector(args[0].descs, vals, kind)
    return kernel


def _fdiv_vals(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if b.size and (b == 0.0).any():
        raise EvalError("division by zero")
    return a / b


def _sqrt_vals(a: np.ndarray) -> np.ndarray:
    if a.size and (a < 0).any():
        raise EvalError("sqrt of negative value")
    return np.sqrt(a)


def _div_vals(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if b.size and (b == 0).any():
        raise EvalError("division by zero")
    return a // b


def _mod_vals(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if b.size and (b == 0).any():
        raise EvalError("mod by zero")
    return a % b


# ---------------------------------------------------------------------------
# Sequence kernels (all: depth-1 frame arguments)
# ---------------------------------------------------------------------------


def k_length(v: Value) -> NestedVector:
    leaf = first_leaf(v)
    if leaf.depth < 2:
        raise VectorError("length^1: frame elements are not sequences")
    return NestedVector([leaf.descs[0]], leaf.descs[1].copy(), "int")


def k_range1(n: NestedVector) -> NestedVector:
    lens = np.maximum(n.values, 0)
    return NestedVector([n.descs[0], lens], S.seg_iota(lens) + 1, "int")


def k_range(a: NestedVector, b: NestedVector) -> NestedVector:
    lens = np.maximum(b.values - a.values + 1, 0)
    vals = S.seg_iota(lens) + np.repeat(a.values, lens)
    return NestedVector([a.descs[0], lens], vals, "int")


def _check_index(i: np.ndarray, lens: np.ndarray, what: str) -> None:
    if i.size and ((i < 1) | (i > lens)).any():
        bad = int(i[((i < 1) | (i > lens)).argmax()])
        raise EvalError(f"{what}: index {bad} out of range")


def k_seq_index(v: Value, i: NestedVector) -> Value:
    def go(leaf: NestedVector) -> NestedVector:
        lens = leaf.descs[1]
        _check_index(i.values, lens, "seq_index")
        idx = S.seg_starts(lens) + i.values - 1
        got = S.gather_subtrees(item_levels(leaf, 2), idx)
        return NestedVector([leaf.descs[0], *got[:-1]], got[-1], leaf.kind)
    return map_leaves(go, v)


def k_seq_index_shared(v: Value, i: NestedVector) -> Value:
    """Section 4.5 fast path: the source sequence is a *shared* depth-0
    value; index without replicating it."""
    def go(leaf: NestedVector) -> NestedVector:
        n = int(leaf.descs[0][0])
        iv = i.values
        if iv.size and (int(iv.min()) < 1 or int(iv.max()) > n):
            # same first-offender report as _check_index, without
            # materializing a full-size bound vector on the hot path
            bad_mask = (iv < 1) | (iv > n)
            bad = int(iv[bad_mask.argmax()])
            raise EvalError(f"seq_index: index {bad} out of range")
        got = S.gather_subtrees(item_levels(leaf, 1), i.values - 1)
        return NestedVector([i.descs[0], *got[:-1]], got[-1], leaf.kind)
    out = map_leaves(go, v)
    if _obs.PROFILER is not None:
        _count_kernel("seq_index_shared", int(i.values.size), (v, i), out)
    return out


def k_seq_index_segshared(v: Value, i: NestedVector,
                          seg_counts: np.ndarray) -> Value:
    """Segmented shared indexing (generalized section 4.5).

    ``v`` is a depth-1 frame of M *segments* (the sequences being indexed,
    one per enclosing iteration point); ``i`` is the flat depth-1 frame of
    indices, of which ``seg_counts[k]`` belong to segment k.  Gathers each
    index from *its own* segment without replicating the segment per index
    — the replication the naive translation would do is O(sum(len^2)).
    """
    seg_counts = np.asarray(seg_counts, dtype=INT_DTYPE)
    M = int(seg_counts.size)
    seg_of = np.repeat(np.arange(M, dtype=INT_DTYPE), seg_counts)

    def go(leaf: NestedVector) -> NestedVector:
        lens = leaf.descs[1]
        if lens.size != M:
            raise VectorError("segshared index: segment count mismatch")
        _check_index(i.values, lens[seg_of], "seq_index")
        idx = S.seg_starts(lens)[seg_of] + i.values - 1
        got = S.gather_subtrees(item_levels(leaf, 2), idx)
        return NestedVector([i.descs[0], *got[:-1]], got[-1], leaf.kind)
    out = map_leaves(go, v)
    if _obs.PROFILER is not None:
        _count_kernel("seq_index_segshared", int(i.values.size), (v, i), out)
    return out


def k_seq_update(v: Value, i: NestedVector, x: Value) -> Value:
    def go(leaf: NestedVector, xleaf: Value) -> NestedVector:
        lens = leaf.descs[1]
        _check_index(i.values, lens, "seq_update")
        pos = S.seg_starts(lens) + i.values - 1
        total = int(lens.sum())
        if leaf.depth == 2:  # scalar elements: in-place on a copy
            vals = leaf.values.copy()
            vals[pos] = xleaf.values
            return NestedVector(leaf.descs, vals, leaf.kind)
        mask = np.zeros(total, dtype=bool)
        mask[pos] = True
        seg_id = np.repeat(np.arange(len(lens), dtype=INT_DTYPE), lens)
        pool = S.concat_levels(item_levels(leaf, 2), item_levels(xleaf, 1))
        idx = np.arange(total, dtype=INT_DTYPE)
        idx[mask] = total + seg_id[mask]
        got = S.gather_subtrees(pool, idx)
        return NestedVector([*leaf.descs[:2], *got[:-1]], got[-1], leaf.kind)
    return zip_leaves(go, v, x)


def k_restrict(v: Value, m: NestedVector) -> Value:
    mcounts = m.descs[1]
    keep = m.values
    new_counts = S.seg_sum(keep.astype(INT_DTYPE), mcounts)
    idx = np.flatnonzero(keep).astype(INT_DTYPE)

    def go(leaf: NestedVector) -> NestedVector:
        if not np.array_equal(leaf.descs[1], mcounts):
            raise EvalError("restrict: lengths differ")
        got = S.gather_subtrees(item_levels(leaf, 2), idx)
        return NestedVector([leaf.descs[0], new_counts, *got[:-1]], got[-1], leaf.kind)
    return map_leaves(go, v)


def k_combine(m: NestedVector, v: Value, u: Value) -> Value:
    keep = m.values
    mcounts = m.descs[1]
    trues = S.seg_sum(keep.astype(INT_DTYPE), mcounts)
    falses = mcounts - trues
    rank_t = np.cumsum(keep) - 1
    rank_f = np.cumsum(~keep) - 1

    def go(vleaf: NestedVector, uleaf: NestedVector) -> NestedVector:
        if not np.array_equal(vleaf.descs[1], trues) or \
           not np.array_equal(uleaf.descs[1], falses):
            raise EvalError("combine: #m != #v + #u within some frame element")
        nv_items = int(vleaf.descs[1].sum())
        pool = S.concat_levels(item_levels(vleaf, 2), item_levels(uleaf, 2))
        idx = np.where(keep, rank_t, nv_items + rank_f).astype(INT_DTYPE)
        got = S.gather_subtrees(pool, idx)
        return NestedVector([m.descs[0], mcounts, *got[:-1]], got[-1], vleaf.kind)
    return zip_leaves(go, v, u)


def k_dist(c: Value, r: NestedVector) -> Value:
    if r.values.size and r.values.min() < 0:
        raise EvalError("dist: negative count")
    idx = np.repeat(np.arange(r.values.size, dtype=INT_DTYPE), r.values)

    def go(leaf: NestedVector) -> NestedVector:
        got = S.gather_subtrees(item_levels(leaf, 1), idx)
        return NestedVector([r.descs[0], r.values, *got[:-1]], got[-1], leaf.kind)
    return map_leaves(go, c)


def k_seq_cons(*args: Value) -> Value:
    """[e1,...,ek]^1 : interleave k conformable frames into length-k rows."""
    k = len(args)
    if k == 0:
        raise VectorError("seq_cons^1 needs at least one argument")
    n = frame_len(args[0])
    counts = np.full(n, k, dtype=INT_DTYPE)

    def go(*leaves: NestedVector) -> NestedVector:
        pool = item_levels(leaves[0], 1)
        for x in leaves[1:]:
            pool = S.concat_levels(pool, item_levels(x, 1))
        # element (m, t) -> pool index t*n + m
        idx = (np.arange(n, dtype=INT_DTYPE)[:, None]
               + n * np.arange(k, dtype=INT_DTYPE)[None, :]).ravel()
        got = S.gather_subtrees(pool, idx)
        return NestedVector([leaves[0].descs[0], counts, *got[:-1]], got[-1],
                            leaves[0].kind)

    # zip across the tuple structure of all args
    def zipn(f, vals):
        if isinstance(vals[0], VTuple):
            return VTuple([zipn(f, [v.items[i] for v in vals])
                           for i in range(len(vals[0].items))])
        return f(*vals)
    return zipn(go, list(args))


def k_flatten(v: Value) -> Value:
    """flatten^1: pure descriptor surgery (the section-4.5 native version)."""
    def go(leaf: NestedVector) -> NestedVector:
        if leaf.depth < 3:
            raise VectorError("flatten^1: elements are not nested sequences")
        merged = S.seg_sum(leaf.descs[2], leaf.descs[1])
        return NestedVector([leaf.descs[0], merged, *leaf.descs[3:]],
                            leaf.values, leaf.kind)
    return map_leaves(go, v)


def k_concat(v: Value, w: Value) -> Value:
    vleaf0, wleaf0 = first_leaf(v), first_leaf(w)
    vc, wc = vleaf0.descs[1], wleaf0.descs[1]
    out_counts = vc + wc
    pos = S.seg_iota(out_counts)
    vstart = S.seg_starts(vc)
    wstart = S.seg_starts(wc)
    rep_vc = np.repeat(vc, out_counts)
    take_v = pos < rep_vc
    nv_items = int(vc.sum())
    idx = np.where(take_v,
                   np.repeat(vstart, out_counts) + pos,
                   nv_items + np.repeat(wstart, out_counts) + pos - rep_vc
                   ).astype(INT_DTYPE)

    def go(vleaf: NestedVector, wleaf: NestedVector) -> NestedVector:
        pool = S.concat_levels(item_levels(vleaf, 2), item_levels(wleaf, 2))
        got = S.gather_subtrees(pool, idx)
        return NestedVector([vleaf.descs[0], out_counts, *got[:-1]], got[-1],
                            vleaf.kind)
    return zip_leaves(go, v, w)


def k_rank(v: NestedVector) -> NestedVector:
    """rank^1: 1-origin stable ascending ranks within each segment."""
    counts = v.descs[1]
    n = v.values.size
    if n == 0:
        return NestedVector(v.descs, v.values.astype(INT_DTYPE), "int")
    seg_id = np.repeat(np.arange(counts.size, dtype=INT_DTYPE), counts)
    order = np.lexsort((np.arange(n), v.values, seg_id))  # stable per segment
    pos_in_seg = np.arange(n, dtype=INT_DTYPE) - np.repeat(
        S.seg_starts(counts), counts)
    ranks = np.empty(n, dtype=INT_DTYPE)
    ranks[order] = pos_in_seg + 1
    return NestedVector(v.descs, ranks, "int")


def k_permute(v: Value, i: NestedVector) -> Value:
    """permute^1: scatter each segment's items to the 1-origin targets."""
    lens = i.descs[1]
    _check_index(i.values, np.repeat(lens, lens), "permute")
    total = int(lens.sum())
    inv = np.empty(total, dtype=INT_DTYPE)
    if total:
        targets = np.repeat(S.seg_starts(lens), lens) + i.values - 1
        seen = np.zeros(total, dtype=bool)
        seen[targets] = True
        if not seen.all():
            raise EvalError("permute: target indices are not a permutation")
        inv[targets] = np.arange(total, dtype=INT_DTYPE)

    def go(leaf: NestedVector) -> NestedVector:
        if not np.array_equal(leaf.descs[1], lens):
            raise EvalError("permute: lengths differ")
        got = S.gather_subtrees(item_levels(leaf, 2), inv)
        return NestedVector([*leaf.descs[:2], *got[:-1]], got[-1], leaf.kind)
    return map_leaves(go, v)


def k_sum(v: NestedVector) -> NestedVector:
    return NestedVector([v.descs[0]], S.seg_sum(v.values, v.descs[1]), v.kind)


def k_maxval(v: NestedVector) -> NestedVector:
    return NestedVector([v.descs[0]], S.seg_max(v.values, v.descs[1]), v.kind)


def k_minval(v: NestedVector) -> NestedVector:
    return NestedVector([v.descs[0]], S.seg_min(v.values, v.descs[1]), v.kind)


def k_anytrue(v: NestedVector) -> NestedVector:
    return NestedVector([v.descs[0]], S.seg_any(v.values, v.descs[1]), "bool")


def k_alltrue(v: NestedVector) -> NestedVector:
    return NestedVector([v.descs[0]], S.seg_all(v.values, v.descs[1]), "bool")


def k_plus_scan(v: NestedVector) -> NestedVector:
    return NestedVector(v.descs, S.seg_plus_scan(v.values, v.descs[1]), v.kind)


def k_max_scan(v: NestedVector) -> NestedVector:
    return NestedVector(v.descs, S.seg_max_scan(v.values, v.descs[1]), v.kind)


# ---------------------------------------------------------------------------
# Kernel table
# ---------------------------------------------------------------------------

KERNELS: dict[str, Callable[..., Value]] = {
    "add": _ew(np.add, None),
    "sub": _ew(np.subtract, None),
    "mul": _ew(np.multiply, None),
    "div": _ew(_div_vals, "int"),
    "mod": _ew(_mod_vals, "int"),
    "max2": _ew(np.maximum, None),
    "min2": _ew(np.minimum, None),
    "neg": _ew(np.negative, None),
    "abs_": _ew(np.abs, None),
    "fdiv": _ew(_fdiv_vals, "float"),
    "sqrt_": _ew(_sqrt_vals, "float"),
    "real": _ew(lambda a: a.astype(np.float64), "float"),
    "trunc_": _ew(lambda a: np.trunc(a).astype(INT_DTYPE), "int"),
    "round_": _ew(lambda a: np.rint(a).astype(INT_DTYPE), "int"),
    "floor_": _ew(lambda a: np.floor(a).astype(INT_DTYPE), "int"),
    "ceil_": _ew(lambda a: np.ceil(a).astype(INT_DTYPE), "int"),
    "eq": _ew(np.equal, "bool"),
    "ne": _ew(np.not_equal, "bool"),
    "lt": _ew(np.less, "bool"),
    "le": _ew(np.less_equal, "bool"),
    "gt": _ew(np.greater, "bool"),
    "ge": _ew(np.greater_equal, "bool"),
    "and_": _ew(np.logical_and, "bool"),
    "or_": _ew(np.logical_or, "bool"),
    "not_": _ew(np.logical_not, "bool"),
    "length": k_length,
    "range1": k_range1,
    "range": k_range,
    "seq_index": k_seq_index,
    "seq_update": k_seq_update,
    "restrict": k_restrict,
    "combine": k_combine,
    "dist": k_dist,
    "flatten": k_flatten,
    "concat": k_concat,
    "sum": k_sum,
    "maxval": k_maxval,
    "minval": k_minval,
    "anytrue": k_anytrue,
    "alltrue": k_alltrue,
    "plus_scan": k_plus_scan,
    "max_scan": k_max_scan,
    "rank": k_rank,
    "permute": k_permute,
    "__seq_cons": k_seq_cons,
    "__rep": lambda w, c: c,  # c was already replicated by the caller
}


# ---------------------------------------------------------------------------
# Evaluator support: depth-0 construction, wrapping, frame surgery
# ---------------------------------------------------------------------------


def take_elements(frame: Value, idx: np.ndarray) -> Value:
    """Gather elements of a depth-1 frame by (0-based) index vector."""
    idx = np.asarray(idx, dtype=INT_DTYPE)

    def go(leaf: NestedVector) -> NestedVector:
        got = S.gather_subtrees(item_levels(leaf, 1), idx)
        return NestedVector.from_levels(len(idx), got, leaf.kind)
    return map_leaves(go, frame)


def seq_cons0(items: list[Value], seq_type: T.Type) -> Value:
    """Depth-0 sequence construction ``[e1, ..., ek]`` from element values."""
    if not items:
        return empty_frame_value(seq_type)
    k = len(items)
    units = [broadcast_to_count(x, 1) for x in items]

    def go(*leaves: NestedVector) -> NestedVector:
        pool = item_levels(leaves[0], 1)
        for x in leaves[1:]:
            pool = S.concat_levels(pool, item_levels(x, 1))
        got = S.gather_subtrees(pool, np.arange(k, dtype=INT_DTYPE))
        return NestedVector.from_levels(k, got, leaves[0].kind)

    def zipn(vals):
        if isinstance(vals[0], VTuple):
            return VTuple([zipn([v.items[i] for v in vals])
                           for i in range(len(vals[0].items))])
        return go(*vals)
    out = zipn(units)
    if _obs.PROFILER is not None:
        _count_kernel("seq_cons", k, tuple(items), out)
    return out


def empty_frame_like(m: NestedVector, j: int, beta: T.Type) -> Value:
    """The paper's ``empty_frame``: a depth-``j`` frame structured like the
    top ``j-1`` levels of ``m`` but with no elements, of element type
    ``beta`` (rule R2d's untaken-branch placeholder)."""
    if isinstance(beta, T.TTuple):
        return VTuple([empty_frame_like(m, j, c) for c in beta.items])
    extra = T.seq_depth(beta)
    leaf = T.peel(beta, extra)
    if isinstance(leaf, T.TTuple):
        return VTuple([empty_frame_like(m, j, T.seq_of(c, extra))
                       for c in leaf.items])
    zeros = np.zeros(len(m.descs[j - 1]), dtype=INT_DTYPE)
    descs = [*m.descs[:j - 1], zeros]
    for _ in range(extra):
        descs.append(np.empty(0, dtype=INT_DTYPE))
    kind = kind_of_scalar(leaf)
    dtype = {"bool": np.bool_, "float": np.float64}.get(kind, INT_DTYPE)
    return NestedVector(descs, np.empty(0, dtype=dtype), kind)


def value_size(v: Value) -> int:
    """Total number of leaf elements held by a vector value (the amount of
    data a replication materializes — used for trace accounting)."""
    if isinstance(v, VTuple):
        return sum(value_size(x) for x in v.items)
    if isinstance(v, NestedVector):
        return int(v.values.size)
    return 1


def value_nbytes(v: Value) -> int:
    """Total storage of a vector value in bytes: the flat value vector plus
    every descriptor vector (scalars count as one 8-byte machine word)."""
    if isinstance(v, VTuple):
        return sum(value_nbytes(x) for x in v.items)
    if isinstance(v, NestedVector):
        return int(v.values.nbytes) + sum(int(d.nbytes) for d in v.descs)
    return 8


def _count_kernel(op: str, n: int, args: tuple, result: Value) -> None:
    """Profile one kernel invocation (see docs/OBSERVABILITY.md): elements
    = leaf elements read + written, bytes = full storage of inputs and
    output including descriptors, frame length = top iteration-space size.

    Callers guard with ``_obs.PROFILER is not None`` so the disabled path
    never reaches the size computations here.
    """
    p = _obs.PROFILER
    if p is None:  # caller raced a deactivation; nothing to record
        return
    elems = value_size(result)
    nb = value_nbytes(result)
    for a in args:
        elems += value_size(a)
        nb += value_nbytes(a)
    p.count("kernel", op, n, elems, nb)


def wrap1(v: Value) -> Value:
    """View a depth-0 value as a one-element depth-1 frame (for running the
    depth-1 kernels at depth 0)."""
    if isinstance(v, VTuple):
        return VTuple([wrap1(x) for x in v.items])
    if isinstance(v, NestedVector):
        return v.prepend_unit()
    return broadcast_to_count(v, 1)


def unwrap1(v: Value) -> Value:
    """Inverse of :func:`wrap1` on a kernel result.  Unambiguous without
    type information: a depth-1 NestedVector holds a scalar result, anything
    deeper holds a sequence result."""
    if isinstance(v, VTuple):
        return VTuple([unwrap1(x) for x in v.items])
    if not isinstance(v, NestedVector):
        raise VectorError(f"unwrap1: not a frame: {v!r}")
    if v.depth == 1:
        if v.values.size != 1:
            raise VectorError("unwrap1: not a unit frame")
        if v.kind == "bool":
            return bool(v.values[0])
        if v.kind == "fun":
            return VFun(FUNTABLE.name_of(int(v.values[0])))
        if v.kind == "float":
            return float(v.values[0])
        return int(v.values[0])
    return v.drop_unit()


def apply_kernel(name: str, args: list[Value]) -> Value:
    """Invoke the depth-1 kernel for primitive ``name``."""
    try:
        k = KERNELS[name]
    except KeyError:
        raise VectorError(f"no depth-1 kernel for {name!r}") from None
    n = check_conformable(args, f"{name}^1") if args else 0
    result = k(*args)
    if _obs.PROFILER is not None:
        _count_kernel(name, n, tuple(args), result)
    g = _guard.GUARD
    if g is not None:
        g.after_kernel(name, n, result)
    return result
