"""Segmented flat-vector kernels — the CVL substitute.

Every kernel is a pure NumPy computation with no Python-level loop over
elements (the max-scan uses a Hillis-Steele doubling loop: O(log max
segment length) passes, exactly a vector-model scan).  A segmented vector is
an ordinary value array plus a ``counts`` array of per-segment lengths; this
is one level of the paper's descriptor representation.

The central kernel is :func:`gather_subtrees`: given the level arrays of a
nested structure and an index vector selecting subtrees at the top level, it
materializes the gathered structure level by level.  ``dist``, ``restrict``,
``combine``, ``seq_index`` and ``concat`` on nested elements are all thin
wrappers over it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantError, VectorError
from repro.guard import faults as _flt
from repro.guard import runtime as _guard
from repro.obs import runtime as _obs

INT_DTYPE = np.int64


def _note(op: str, frame_len: int, arrays: tuple) -> None:
    """Profile one segmented-kernel invocation into the ``segment`` layer
    (elements/bytes summed over every array read or written).  The disabled
    path is one attribute load and one ``is None`` test."""
    p = _obs.PROFILER
    if p is None:
        return
    elems = 0
    nbytes = 0
    for a in arrays:
        a = np.asarray(a)
        elems += int(a.size)
        nbytes += int(a.nbytes)
    p.count("segment", op, int(frame_len), elems, nbytes)


def _check_level_chain(stage: str, levels: list) -> None:
    """Strict-mode consistency check of a level list (Blelloch's VCODE
    debug-interpreter practice): every descriptor level must be
    non-negative and sum-chain onto the next level.  Catching corruption
    *here* — before ``np.repeat``/fancy indexing consume the counts —
    turns an inscrutable NumPy IndexError into a stage-named
    :class:`InvariantError`."""
    g = _guard.GUARD
    if g is None or not g.check:
        return
    for i in range(len(levels) - 1):
        d = np.asarray(levels[i])
        if d.size and int(d.min()) < 0:
            raise InvariantError(
                stage, f"level {i} contains a negative count ({int(d.min())})")
        want = int(d.sum())
        got = int(np.asarray(levels[i + 1]).size)
        if want != got:
            raise InvariantError(
                stage, f"sum(level {i}) = {want} but level {i + 1} "
                       f"has {got} entries")


def as_counts(a: np.ndarray) -> np.ndarray:
    """Validate a counts (descriptor) array: 1-D, non-negative integers."""
    a = np.asarray(a, dtype=INT_DTYPE)
    if a.ndim != 1:
        raise VectorError(f"descriptor must be 1-D, got shape {a.shape}")
    if a.size and a.min() < 0:
        raise VectorError("descriptor contains a negative count")
    return a


def seg_starts(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: the start offset of each segment."""
    out = np.empty(len(counts), dtype=INT_DTYPE)
    if len(counts):
        out[0] = 0
        np.cumsum(counts[:-1], out=out[1:])
    return out


def seg_iota(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for each count c (0-based).

    ``seg_iota([3,0,2]) == [0,1,2,0,1]`` — the flat implementation of the
    paper's ``range1`` parallel extension (up to the +1 index origin).
    """
    counts = np.asarray(counts, dtype=INT_DTYPE)
    total = int(counts.sum())
    if total == 0:
        out = np.empty(0, dtype=INT_DTYPE)
    elif counts.size == 1:
        # one segment (every top-level range1/range): a bare arange — the
        # repeat-and-subtract below would build two more full-size temps
        out = np.arange(total, dtype=INT_DTYPE)
    else:
        out = np.arange(total, dtype=INT_DTYPE) - np.repeat(
            seg_starts(counts), counts)
    _note("seg_iota", len(counts), (counts, out))
    return out


def seg_sum(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment sums (empty segments sum to 0), preserving dtype.

    Integers use the O(n) prefix-difference method.  Floats use
    ``np.add.reduceat`` so each segment is summed *independently and
    left-to-right*, bitwise-matching the reference interpreter (the
    prefix-difference method would accumulate across segment boundaries and
    round differently)."""
    if values.dtype == np.float64:
        # np.add.reduceat is *pairwise* and would round differently; a
        # per-segment sequential cumsum is the only NumPy reduction with
        # the interpreter's left-to-right associativity
        out = np.zeros(len(counts), dtype=np.float64)
        pos = 0
        for i, c in enumerate(counts):
            c = int(c)
            if c:
                out[i] = np.cumsum(values[pos:pos + c])[-1]
            pos += c
    else:
        ends = np.cumsum(counts)
        cs = np.concatenate([np.zeros(1, dtype=INT_DTYPE),
                             np.cumsum(values, dtype=INT_DTYPE)])
        out = cs[ends] - cs[ends - counts]
    _note("seg_sum", len(counts), (values, counts, out))
    return out


def _seg_reduce_strict(values: np.ndarray, counts: np.ndarray, ufunc, what: str) -> np.ndarray:
    if counts.size and counts.min() == 0:
        raise VectorError(f"{what} of an empty sequence")
    if counts.size == 0:
        return np.empty(0, dtype=values.dtype)
    starts = seg_starts(counts)
    return ufunc.reduceat(values, starts)


def seg_max(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment maxima; empty segments are an error."""
    out = _seg_reduce_strict(values, counts, np.maximum, "maxval")
    _note("seg_max", len(counts), (values, counts, out))
    return out


def seg_min(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment minima; empty segments are an error."""
    out = _seg_reduce_strict(values, counts, np.minimum, "minval")
    _note("seg_min", len(counts), (values, counts, out))
    return out


def seg_any(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment boolean OR (empty segments yield False)."""
    return seg_sum(values.astype(INT_DTYPE), counts) > 0


def seg_all(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment boolean AND (empty segments yield True)."""
    return seg_sum(values.astype(INT_DTYPE), counts) == counts


def seg_plus_scan(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Exclusive plus-scan within each segment (identity 0).

    Floats take a per-segment path (cumsum restarted at each segment) so
    rounding matches the reference interpreter exactly; integers use the
    O(n) vectorized prefix-difference method."""
    if values.dtype == np.float64:
        out = np.zeros_like(values)
        pos = 0
        for c in counts:
            c = int(c)
            if c > 1:
                np.cumsum(values[pos:pos + c - 1], out=out[pos + 1:pos + c])
            pos += c
    elif values.size == 0:
        out = np.empty(0, dtype=INT_DTYPE)
    else:
        incl = np.cumsum(values, dtype=INT_DTYPE)
        excl = incl - values
        starts = seg_starts(counts)
        nonempty = counts > 0
        base = np.zeros(len(counts), dtype=INT_DTYPE)
        base[nonempty] = excl[starts[nonempty]]
        out = excl - np.repeat(base, counts)
    _note("seg_plus_scan", len(counts), (values, counts, out))
    return out


def seg_max_scan(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Inclusive running maximum within each segment.

    Hillis-Steele doubling: O(log max-segment-length) vectorized passes —
    the canonical vector-model scan."""
    n = values.size
    out = values.copy()
    if n == 0:
        _note("seg_max_scan", len(counts), (values, counts, out))
        return out
    seg_first = np.repeat(seg_starts(counts), counts)  # start index per slot
    shift = 1
    maxlen = int(counts.max()) if counts.size else 0
    pos = np.arange(n, dtype=INT_DTYPE)
    while shift < maxlen:
        src = pos - shift
        ok = src >= seg_first
        upd = out.copy()
        upd[ok] = np.maximum(out[ok], out[src[ok]])
        out = upd
        shift <<= 1
    _note("seg_max_scan", len(counts), (values, counts, out))
    return out


def tile_idx(seg_lens: np.ndarray, reps: np.ndarray) -> np.ndarray:
    """Gather indices that repeat each length-``seg_lens[i]`` segment
    ``reps[i]`` times, in place.

    ``tile_idx([2,1],[2,3]) == [0,1,0,1,2,2,2]``.
    """
    seg_lens = np.asarray(seg_lens, dtype=INT_DTYPE)
    reps = np.asarray(reps, dtype=INT_DTYPE)
    if seg_lens.shape != reps.shape:
        raise VectorError("tile_idx: shape mismatch")
    starts = seg_starts(seg_lens)
    rep_lens = np.repeat(seg_lens, reps)
    rep_starts = np.repeat(starts, reps)
    if rep_lens.size == 0:
        return np.empty(0, dtype=INT_DTYPE)
    return seg_iota(rep_lens) + np.repeat(rep_starts, rep_lens)


def gather_subtrees(levels: list[np.ndarray], idx: np.ndarray) -> list[np.ndarray]:
    """Select subtrees by top-level index.

    ``levels`` is ``[d_1, d_2, ..., values]`` where each ``d_k`` gives the
    per-node child counts of one nesting level and the last entry holds leaf
    values.  ``idx`` (0-based, repetitions and omissions allowed) selects
    nodes of the top level; the result is the same shape of list describing
    the gathered forest.  This single kernel implements ``dist``,
    ``restrict``, ``combine``, ``seq_index`` and ``concat`` for nested
    element types.
    """
    idx = np.asarray(idx, dtype=INT_DTYPE)
    out: list[np.ndarray] = []
    cur = idx
    for level in levels[:-1]:
        counts = level[cur]
        starts = seg_starts(level)
        nxt = seg_iota(counts) + np.repeat(starts[cur], counts)
        out.append(counts)
        cur = nxt
    out.append(levels[-1][cur])
    if _flt.INJECTOR is not None:
        # descriptor levels only (out[:-1]); the leaf level is semantic data
        _flt.visit("segments.gather_subtrees.desc-bump", out[:-1])
        _flt.visit("segments.gather_subtrees.desc-negate", out[:-1])
    if _guard.GUARD is not None:
        _check_level_chain("segments.gather_subtrees", out)
    _note("gather_subtrees", int(idx.size), (*levels, idx, *out))
    return out


def concat_levels(a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
    """Pool two level lists into one (subtrees of ``b`` renumbered after
    ``a``'s): simple levelwise concatenation, valid because offsets are
    recomputed from the concatenated descriptor at each level."""
    if len(a) != len(b):
        raise VectorError("concat_levels: depth mismatch")
    out = [np.concatenate([x, y]) for x, y in zip(a, b)]
    if _flt.INJECTOR is not None:
        _flt.visit("segments.concat_levels.desc-bump", out[:-1])
        _flt.visit("segments.concat_levels.desc-negate", out[:-1])
    if _guard.GUARD is not None:
        _check_level_chain("segments.concat_levels", out)
    _note("concat_levels", len(out[0]) if out else 0, tuple(out))
    return out


def check_counts_consistent(levels: list[np.ndarray]) -> None:
    """Validate the representation invariant  #V_{i+1} = sum(V_i)."""
    for i in range(len(levels) - 1):
        want = int(np.asarray(levels[i]).sum())
        got = len(levels[i + 1])
        if want != got:
            raise VectorError(
                f"descriptor invariant violated at level {i + 1}: "
                f"sum={want} but next level has {got} entries")
