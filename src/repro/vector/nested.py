"""The vector representation of nested sequences (paper section 4.1,
Figure 1).

A value of type ``Seq^d(scalar)`` is held as ``d`` *descriptor vectors*
``V_1 .. V_d`` (``V_1`` a singleton) plus one *value vector*, with the
invariant ``#V_{i+1} = sum(V_i)``.  Figure 1's example::

    [[[2,7],[3,9,8]], [[3],[4,3,2]]]
    V1 = [2]  V2 = [2,2]  V3 = [2,3,1,3]  values = [2,7,3,9,8,3,4,3,2]

Sequences of *tuples* ("if alpha is a tuple type then k > d+1" value
vectors) are represented by pushing the tuple outward through the sequence
(``Seq(a x b)`` is held as a :class:`VTuple` of two parallel
:class:`NestedVector` s with identical descriptors), so every NestedVector
has exactly one leaf vector.  Sequences of *function values* hold interned
function ids in the leaf (kind ``"fun"``), enabling the paper's translation
of higher-order data-parallel style.
"""

from __future__ import annotations

from typing import Any, Iterable, Union

import numpy as np

from repro.errors import VectorError
from repro.vector import segments as S
from repro.vector.segments import INT_DTYPE

#: When True (default), constructors validate the descriptor invariant.
#: Benchmarks may disable it to measure raw kernel cost.
CHECK_INVARIANTS = True


class FunTable:
    """Global interning table mapping function names to integer ids, so
    frames of function values are ordinary flat integer vectors."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, name: str) -> int:
        if name not in self._ids:
            self._ids[name] = len(self._names)
            self._names.append(name)
        return self._ids[name]

    def name_of(self, fid: int) -> str:
        try:
            return self._names[fid]
        except IndexError:
            raise VectorError(f"unknown function id {fid}") from None


FUNTABLE = FunTable()

_KIND_DTYPES = {"int": INT_DTYPE, "bool": np.bool_, "fun": INT_DTYPE,
                "float": np.float64}


class NestedVector:
    """A nested sequence in flat vector form: descriptors + one value vector.

    ``descs`` is a tuple of 1-D int64 arrays; ``descs[0]`` is always a
    singleton holding the top-level length.  ``values`` is the flat leaf
    vector; ``kind`` is ``"int"``, ``"bool"`` or ``"fun"``.
    """

    __slots__ = ("descs", "values", "kind")

    def __init__(self, descs: Iterable[np.ndarray], values: np.ndarray, kind: str):
        self.descs: tuple[np.ndarray, ...] = tuple(
            np.asarray(d, dtype=INT_DTYPE) for d in descs)
        if kind not in _KIND_DTYPES:
            raise VectorError(f"bad leaf kind {kind!r}")
        self.values = np.asarray(values, dtype=_KIND_DTYPES[kind])
        self.kind = kind
        if CHECK_INVARIANTS:
            self.validate()

    # -- structure -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of nesting levels (number of descriptor vectors)."""
        return len(self.descs)

    @property
    def top_length(self) -> int:
        """Length of the outermost sequence."""
        return int(self.descs[0][0])

    def levels(self) -> list[np.ndarray]:
        """All level arrays below the top length: ``descs[1:]`` + values.

        In this list, entry k gives the child counts (or leaf values) of the
        nodes at level k; it is the format :func:`gather_subtrees` consumes
        when selecting the *top-level elements* of this sequence."""
        return [*self.descs[1:], self.values]

    @classmethod
    def from_levels(cls, top_len: int, levels: list[np.ndarray], kind: str) -> "NestedVector":
        """Inverse of :meth:`levels` given the top length."""
        return cls([np.array([top_len], dtype=INT_DTYPE), *levels[:-1]],
                   levels[-1], kind)

    def validate(self) -> None:
        """Check the representation invariant  #V_{i+1} = sum(V_i)."""
        if not self.descs:
            raise VectorError("NestedVector needs at least one descriptor")
        if self.descs[0].size != 1:
            raise VectorError(
                f"top descriptor must be a singleton, got size {self.descs[0].size}")
        for d in self.descs:
            if d.ndim != 1:
                raise VectorError("descriptors must be 1-D")
            if d.size and d.min() < 0:
                raise VectorError("negative count in descriptor")
        S.check_counts_consistent([*self.descs, self.values])
        if self.values.ndim != 1:
            raise VectorError("value vector must be 1-D")

    # -- comparisons / display -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedVector):
            return NotImplemented
        return (self.kind == other.kind
                and self.depth == other.depth
                and all(np.array_equal(a, b) for a, b in zip(self.descs, other.descs))
                and np.array_equal(self.values, other.values))

    def __hash__(self):  # pragma: no cover - mutable arrays are unhashable
        raise TypeError("NestedVector is unhashable")

    def __repr__(self) -> str:
        ds = ", ".join(np.array2string(d, threshold=8) for d in self.descs)
        vs = np.array2string(self.values, threshold=8)
        return f"NestedVector(kind={self.kind}, descs=[{ds}], values={vs})"

    # -- small helpers used by the evaluator -----------------------------------

    def prepend_unit(self) -> "NestedVector":
        """View this depth-0 *value* as a depth-1 frame of one element
        (add an outer ``[1]`` descriptor)."""
        return NestedVector(
            [np.array([1], dtype=INT_DTYPE), *self.descs], self.values, self.kind)

    def drop_unit(self) -> "NestedVector":
        """Inverse of :meth:`prepend_unit`."""
        if self.top_length != 1 or self.depth < 2:
            raise VectorError("drop_unit: not a unit frame")
        return NestedVector(self.descs[1:], self.values, self.kind)


class VFun:
    """A depth-0 function value (named; P functions are fully parameterized)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name
        FUNTABLE.intern(name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VFun) and other.name == self.name

    def __repr__(self) -> str:
        return f"VFun({self.name})"


class VTuple:
    """A tuple value; components are themselves vector values.

    For a *sequence of tuples* the VTuple sits outside: each component is a
    NestedVector with identical descriptors (the paper's multiple value
    vectors sharing the descriptor levels).
    """

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]):
        self.items = tuple(items)
        if len(self.items) < 2:
            raise VectorError("VTuple needs at least 2 components")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VTuple) and other.items == self.items

    def __repr__(self) -> str:
        return f"VTuple{self.items!r}"


#: A vector-executable value: scalar, nested vector, tuple, or function.
Value = Union[int, bool, NestedVector, VTuple, VFun]


def first_leaf(v: Value) -> Value:
    """The leftmost non-tuple component of ``v`` (used to read the shared
    frame descriptors of a tuple-of-frames)."""
    while isinstance(v, VTuple):
        v = v.items[0]
    return v


def map_leaves(f, v: Value) -> Value:
    """Apply ``f`` to every non-tuple leaf of a (possibly nested) VTuple."""
    if isinstance(v, VTuple):
        return VTuple([map_leaves(f, x) for x in v.items])
    return f(v)


def leaves_of(v: Value) -> list[Value]:
    """Flatten a VTuple tree into its leaf values (left to right)."""
    if isinstance(v, VTuple):
        out: list[Value] = []
        for x in v.items:
            out.extend(leaves_of(x))
        return out
    return [v]


def zip_leaves(f, a: Value, b: Value) -> Value:
    """Apply binary ``f`` leafwise over two structurally equal VTuple trees."""
    if isinstance(a, VTuple):
        if not isinstance(b, VTuple) or len(b.items) != len(a.items):
            raise VectorError("tuple structure mismatch")
        return VTuple([zip_leaves(f, x, y) for x, y in zip(a.items, b.items)])
    return f(a, b)
