"""Figure-1 style rendering of the vector representation.

The paper's Figure 1 shows a nested sequence both as a *nesting tree* and
as its *vector representation* (descriptor vectors + value vector).  This
module renders both as text, for teaching, debugging, and the quickstart
example::

    >>> from repro.vector.convert import from_python
    >>> from repro.vector.display import show
    >>> from repro.lang.types import INT, seq_of
    >>> nv = from_python([[[2,7],[3,9,8]],[[3],[4,3,2]]], seq_of(INT, 3))
    >>> print(show(nv))          # doctest: +SKIP
    nesting tree                 vector representation
    ...
"""

from __future__ import annotations

from repro.vector.nested import NestedVector, VTuple


def nesting_tree(nv: NestedVector, indent: str = "") -> str:
    """ASCII nesting tree of a NestedVector (paper Figure 1, left side)."""
    lines: list[str] = []

    def walk(level: int, start: int, count: int, prefix: str) -> None:
        # children of one node: either subtrees (deeper level) or leaves
        if level == nv.depth:  # leaves
            vals = nv.values[start:start + count]
            lines.append(prefix + "[" + " ".join(str(_py(v)) for v in vals) + "]")
            return
        desc = nv.descs[level]
        for k in range(count):
            c = int(desc[start + k])
            last = k == count - 1
            branch = "`-" if last else "|-"
            lines.append(prefix + branch + f"*({c})")
            walk(level + 1, _child_start(nv, level, start + k), c,
                 prefix + ("  " if last else "| "))

    lines.append(f"root({nv.top_length})")
    walk(1, 0, nv.top_length, "")
    return "\n".join(lines)


def _child_start(nv: NestedVector, level: int, node_index: int) -> int:
    """Start offset of node ``node_index``'s children at ``level``."""
    return int(nv.descs[level][:node_index].sum())


def _py(v):
    return bool(v) if v.dtype == bool else (float(v) if v.dtype.kind == "f"
                                            else int(v))


def representation_table(nv: NestedVector) -> str:
    """The right side of Figure 1: descriptor vectors and the value vector."""
    rows = []
    for i, d in enumerate(nv.descs, 1):
        rows.append((f"descriptor V{i}", d.tolist()))
    rows.append((f"values ({nv.kind})", [_py(x) for x in nv.values]))
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}} : {vals}" for name, vals in rows)


def show(v, title: str = "") -> str:
    """Both views side by side (tuples render componentwise)."""
    if isinstance(v, VTuple):
        parts = [show(x, f"{title}.{i + 1}" if title else f"component {i + 1}")
                 for i, x in enumerate(v.items)]
        return "\n\n".join(parts)
    if not isinstance(v, NestedVector):
        return f"{title + ': ' if title else ''}{v!r}"
    head = f"== {title} ==\n" if title else ""
    return (f"{head}nesting tree:\n{nesting_tree(v)}\n\n"
            f"vector representation (invariant #V_i+1 = sum(V_i)):\n"
            f"{representation_table(v)}")
