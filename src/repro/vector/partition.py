"""Segment-aware partitioning of flat value vectors for multicore runs.

The paper's load-balance argument (section 6) is that flattening turns
ragged nested data into one long value vector that can be divided evenly
by *element count* — not by segment count, which is what a naive
per-subsequence scheduler would do and what makes nested parallelism hard
to balance.  This module is that argument made executable: it plans the
division of a flat vector into ``P`` contiguous chunks for the
:mod:`repro.parallel` backend.

Two invariants make chunked execution bit-identical to serial execution
(docs/PARALLEL.md spells out the contract):

* **exact disjoint cover** — the chunk boundaries are a nondecreasing
  sequence ``0 = b_0 <= b_1 <= ... <= b_P = n``; every element belongs to
  exactly one chunk;
* **segment alignment** — when the vector carries a descriptor level,
  every boundary coincides with a segment start, so each segment is
  processed whole (and therefore in its original sequential order) by
  exactly one worker.  Float reductions then combine in fixed segment
  order with no cross-chunk accumulation at all.

Alignment costs balance: a chunk may exceed the ideal ``ceil(n/P)`` by at
most one segment, so the guarantee is ``chunk size <= ceil(n/P) +
max(counts)`` — the slack property pinned by
``tests/parallel/test_partition.py``.

Plans are validated on construction (and the validation is always on —
it is O(P log nseg) against an O(n) workload): a boundary off a segment
start raises a stage-named
:class:`~repro.errors.InvariantError('parallel.partition')`.  The
``parallel.partition.misaligned-split`` fault site corrupts a planned
boundary in place to prove that containment
(``tests/parallel/test_containment.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvariantError
from repro.guard import faults as _flt
from repro.vector.segments import INT_DTYPE

__all__ = ["ChunkPlan", "plan_partition", "split", "stitch", "imbalance"]


@dataclass(frozen=True)
class ChunkPlan:
    """A planned division of an ``n``-element flat vector into ``parts``
    contiguous chunks.

    ``bounds`` holds ``parts + 1`` nondecreasing element offsets
    (``bounds[0] == 0``, ``bounds[-1] == total``); chunk ``i`` is the
    half-open slice ``values[bounds[i]:bounds[i + 1]]``.  For segmented
    plans ``seg_bounds`` holds the matching segment-index offsets into the
    descriptor level (chunk ``i`` owns segments
    ``counts[seg_bounds[i]:seg_bounds[i + 1]]``); elementwise plans carry
    ``seg_bounds = None``.
    """

    total: int
    parts: int
    bounds: np.ndarray
    seg_bounds: Optional[np.ndarray] = None

    def sizes(self) -> np.ndarray:
        """Element count per chunk."""
        return np.diff(self.bounds)


def plan_partition(total: int, parts: int,
                   counts: Optional[np.ndarray] = None) -> ChunkPlan:
    """Plan ``parts`` contiguous chunks over ``total`` flat elements.

    Without ``counts`` the vector is elementwise-divisible and the cuts
    are the ideal ``i * total // parts``.  With ``counts`` (one descriptor
    level of per-segment lengths summing to ``total``), each ideal cut is
    rounded **up** to the next segment start, keeping every segment whole;
    the resulting chunk sizes stay within ``ceil(total/parts) +
    max(counts)`` of ideal.  ``parts`` may exceed the segment count — the
    trailing chunks are then empty, which dispatch skips.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    ideal = (np.arange(parts + 1, dtype=INT_DTYPE) * total) // parts
    if counts is None:
        bounds = ideal
        seg_bounds = None
        starts = None
    else:
        counts = np.ascontiguousarray(counts, dtype=INT_DTYPE)
        starts = np.concatenate(
            [np.zeros(1, dtype=INT_DTYPE), np.cumsum(counts,
                                                     dtype=INT_DTYPE)])
        if int(starts[-1]) != total:
            raise ValueError(
                f"counts sum to {int(starts[-1])}, expected {total}")
        # round each ideal cut up to the next segment start; searchsorted
        # over a nondecreasing query is itself nondecreasing, so the cuts
        # are monotone by construction
        seg_bounds = np.searchsorted(starts, ideal, side="left") \
            .astype(INT_DTYPE)
        seg_bounds[0] = 0
        seg_bounds[-1] = counts.size
        bounds = starts[seg_bounds]
    if counts is not None and _flt.INJECTOR is not None:
        _flt.visit("parallel.partition.misaligned-split", [bounds])
    plan = ChunkPlan(int(total), int(parts), bounds, seg_bounds)
    _validate(plan, starts)
    return plan


def _validate(plan: ChunkPlan, starts: Optional[np.ndarray]) -> None:
    """The always-on plan check: exact disjoint cover, and (for segmented
    plans) every boundary on a segment start."""
    b = plan.bounds
    if b.size != plan.parts + 1 or int(b[0]) != 0 \
            or int(b[-1]) != plan.total or np.any(np.diff(b) < 0):
        raise InvariantError(
            "parallel.partition",
            f"chunk bounds are not an exact disjoint cover of "
            f"{plan.total} elements: {b.tolist()}")
    if starts is not None:
        pos = np.searchsorted(starts, b, side="left")
        ok = (pos < starts.size) & (starts[np.minimum(pos,
                                                      starts.size - 1)] == b)
        if not bool(np.all(ok)):
            off = b[~ok]
            raise InvariantError(
                "parallel.partition",
                f"chunk boundary {int(off[0])} does not coincide with a "
                f"segment start (a segment would be split across workers)")


def split(plan: ChunkPlan, values: np.ndarray) -> list:
    """The chunk views of ``values`` under ``plan`` (empty chunks
    included, in order)."""
    if values.shape[0] != plan.total:
        raise ValueError(
            f"cannot split {values.shape[0]} values with a plan for "
            f"{plan.total}")
    b = plan.bounds
    return [values[int(b[i]):int(b[i + 1])] for i in range(plan.parts)]


def stitch(plan: ChunkPlan, chunks: list, out_dtype=None) -> np.ndarray:
    """Reassemble per-chunk results into one flat vector, verifying each
    chunk contributed exactly its planned element count (a short or long
    chunk means a torn parallel write and raises
    ``InvariantError('parallel.stitch')``)."""
    got = np.array([len(c) for c in chunks], dtype=INT_DTYPE)
    if _flt.INJECTOR is not None:
        _flt.visit("parallel.stitch.torn-chunk", [got])
    want = plan.sizes()
    if got.size != want.size or np.any(got != want):
        raise InvariantError(
            "parallel.stitch",
            f"chunk result lengths {got.tolist()} != planned "
            f"{want.tolist()}")
    if not chunks:
        return np.empty(0, dtype=out_dtype)
    return np.concatenate([np.asarray(c) for c in chunks]) \
        if out_dtype is None else \
        np.concatenate([np.asarray(c) for c in chunks]).astype(
            out_dtype, copy=False)


def imbalance(plan: ChunkPlan) -> float:
    """Largest chunk relative to the ideal even share (1.0 = perfectly
    balanced; the obs layer reports this as ``parallel.imbalance_x1000``)."""
    if plan.total == 0 or plan.parts <= 1:
        return 1.0
    ideal = plan.total / plan.parts
    return float(int(plan.sizes().max()) / ideal)
