"""The ``extract`` and ``insert`` representation manipulations (paper
section 4.2, Figure 2).

``extract(V, d)`` flattens the top ``d`` nesting levels of ``V`` by
replacing the top ``d`` descriptors with the singleton ``[sum(V_d)]`` — pure
descriptor surgery, no data movement.  ``insert(R, V, d)`` removes the top
(singleton) descriptor of ``R`` and re-attaches the top ``d`` descriptors of
``V``, requiring ``R_1[1] == sum(V_d)`` so the result is consistent.

Law (tested property): ``insert(extract(V, d), V, d) == V``.

Both operations act componentwise on tuples of frames.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VectorError
from repro.guard import faults as _flt
from repro.guard import runtime as _guard
from repro.vector.nested import NestedVector, VTuple, map_leaves
from repro.vector.segments import INT_DTYPE


def extract(v, d: int):
    """Flatten the top ``d`` nesting levels of ``v`` (d >= 1)."""
    if isinstance(v, VTuple):
        return map_leaves(lambda x: extract(x, d), v)
    if not isinstance(v, NestedVector):
        raise VectorError(f"extract: not a nested sequence: {v!r}")
    if d < 1:
        raise VectorError(f"extract: depth must be >= 1, got {d}")
    if d > v.depth:
        raise VectorError(f"extract: depth {d} exceeds nesting depth {v.depth}")
    if d == 1:
        return v
    if d == v.depth:
        total = int(v.values.size)
    else:
        total = int(v.descs[d].size)
    top = np.array([total], dtype=INT_DTYPE)
    out = NestedVector([top, *v.descs[d:]], v.values, v.kind)
    if _flt.INJECTOR is not None:
        _flt.visit("extract_insert.extract.top-bump", [out.descs[0]])
        _flt.visit("extract_insert.extract.desc-negate", list(out.descs[1:]))
    g = _guard.GUARD
    if g is not None and g.check:
        g.check_value("extract", out)
    return out


def insert(r, v, d: int):
    """Re-attach the top ``d`` descriptors of frame source ``v`` onto ``r``.

    ``r``'s top descriptor (a singleton, as produced by :func:`extract`) is
    removed and replaced by ``v``'s top ``d`` descriptors.
    """
    if isinstance(r, VTuple):
        return map_leaves(lambda x: insert(x, v, d), r)
    if not isinstance(r, NestedVector):
        raise VectorError(f"insert: not a nested sequence: {r!r}")
    if d < 1:
        raise VectorError(f"insert: depth must be >= 1, got {d}")
    if d == 1:
        return r
    frame = v
    if isinstance(frame, VTuple):
        from repro.vector.nested import first_leaf
        frame = first_leaf(frame)
    if not isinstance(frame, NestedVector) or frame.depth < d:
        raise VectorError(f"insert: frame source too shallow for depth {d}")
    want = int(frame.descs[d - 1].sum())
    have = int(r.descs[0][0])
    if want != have:
        raise VectorError(
            f"insert: frame expects {want} elements but R has {have}")
    out = NestedVector([*frame.descs[:d], *r.descs[1:]], r.values, r.kind)
    if _flt.INJECTOR is not None:
        _flt.visit("extract_insert.insert.desc-bump", list(out.descs[:d]))
        _flt.visit("extract_insert.insert.desc-negate", list(out.descs[:d]))
    g = _guard.GUARD
    if g is not None and g.check:
        g.check_value("insert", out)
    return out
