"""The vector model V: flat representation of nested sequences (paper
section 4) and the CVL-equivalent library of flat vector operations.

* :mod:`repro.vector.segments`       -- segmented NumPy kernels (scan, reduce,
  iota, gather-subtrees) — our stand-in for CVL
* :mod:`repro.vector.nested`         -- descriptor-vector representation
  (Figure 1): NestedVector, VTuple, VFun
* :mod:`repro.vector.convert`        -- Python nested lists <-> representation
* :mod:`repro.vector.extract_insert` -- the extract / insert operations
  (Figure 2)
* :mod:`repro.vector.ops`            -- depth-1 parallel extensions of every
  Table-2 primitive (Figure 3 / rule T1 executes d >= 2 through these)
"""

from repro.vector.nested import NestedVector, VTuple, VFun
from repro.vector.convert import from_python, to_python
from repro.vector.extract_insert import extract, insert
from repro.vector.display import show
from repro.vector.io import load_value, save_value

__all__ = ["NestedVector", "VTuple", "VFun", "from_python", "to_python",
           "extract", "insert", "show", "save_value", "load_value"]
