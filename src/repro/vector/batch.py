"""Segment-batched packing: one extra descriptor level over N values.

The serving layer (:mod:`repro.serve`) coalesces N independent requests to
the same function ``f`` into a single vector pass: the i-th request's
argument values become the i-th *elements* of depth-extended frames, and
the batch executes as one call of the synthesized depth-1 extension
``f^1`` — the same T1 machinery (``f^d(e) = insert(f^1(extract(e, d)),
e, d)``) that realizes every nested application in the paper.  This module
owns the two representation manipulations that make a batch:

* :func:`pack_values` — N vector values of P type ``t`` become one vector
  value of type ``seq(t)`` whose top descriptor is ``[N]``.  Scalars pack
  into a depth-1 frame; a depth-``d`` :class:`NestedVector` packs into a
  depth-``d+1`` one (new top descriptor ``[N]``, the old per-value top
  lengths concatenated into the next level, lower levels and value vectors
  concatenated); tuples pack componentwise.

* :func:`unpack_values` — the inverse, type-directed like
  :mod:`repro.vector.convert`: the batched result of type ``seq(t)`` is
  split back into N per-request values of type ``t``.

Law (tested property): ``unpack_values(pack_values(vs, t), t, len(vs))``
is element-wise equal to ``vs``.

Both directions validate the descriptor invariant on their output when
strict checking is active (stages ``batch:pack`` / ``batch:unpack``), so a
corrupt batch is caught at the serving boundary, not deep inside a kernel.
"""

from __future__ import annotations


import numpy as np

from repro.errors import VectorError
from repro.guard import runtime as _guard
from repro.lang import types as T
from repro.vector.nested import FUNTABLE, NestedVector, VFun, VTuple, Value
from repro.vector.segments import INT_DTYPE

__all__ = ["pack_values", "unpack_values"]

_SCALAR_KINDS = {T.TInt: "int", T.TBool: "bool", T.TFloat: "float"}


def _check(stage: str, v: Value) -> None:
    g = _guard.GUARD
    if g is not None and g.check:
        g.check_value(stage, v)


def pack_values(vals: list, t: T.Type) -> Value:
    """Pack N vector values of P type ``t`` into one value of ``seq(t)``.

    The result's top descriptor is ``[N]``; element i of the packed frame
    is ``vals[i]``.  N must be >= 1 (an empty batch has no work to run).
    """
    if not vals:
        raise VectorError("pack_values: empty batch")
    out = _pack(vals, t)
    _check("batch:pack", out)
    return out


def _pack(vals: list, t: T.Type) -> Value:
    n = len(vals)
    kind = _SCALAR_KINDS.get(type(t))
    if kind is not None:
        return NestedVector([np.array([n], dtype=INT_DTYPE)],
                            np.asarray(vals), kind)
    if isinstance(t, T.TFun):
        ids = [FUNTABLE.intern(v.name if isinstance(v, VFun) else str(v))
               for v in vals]
        return NestedVector([np.array([n], dtype=INT_DTYPE)],
                            np.asarray(ids, dtype=INT_DTYPE), "fun")
    if isinstance(t, T.TTuple):
        for v in vals:
            if not isinstance(v, VTuple) or len(v.items) != len(t.items):
                raise VectorError(f"pack_values: expected {len(t.items)}-tuple, "
                                  f"got {v!r}")
        return VTuple([_pack([v.items[i] for v in vals], it)
                       for i, it in enumerate(t.items)])
    if isinstance(t, T.TSeq):
        # Seq^d(tuple): the VTuple sits outside the frames — componentwise.
        depth = T.seq_depth(t)
        leaf = T.peel(t, depth)
        if isinstance(leaf, T.TTuple):
            for v in vals:
                if not isinstance(v, VTuple):
                    raise VectorError(f"pack_values: expected VTuple of frames, "
                                      f"got {v!r}")
            return VTuple([_pack([v.items[i] for v in vals],
                                 T.seq_of(it, depth))
                           for i, it in enumerate(leaf.items)])
        return _pack_frames(vals, n)
    raise VectorError(f"pack_values: cannot pack at type {t!r}")


def _pack_frames(vals: list, n: int) -> NestedVector:
    depth = None
    kind = None
    for v in vals:
        if not isinstance(v, NestedVector):
            raise VectorError(f"pack_values: expected NestedVector, got {v!r}")
        if depth is None:
            depth, kind = v.depth, v.kind
        elif v.depth != depth or v.kind != kind:
            raise VectorError(
                f"pack_values: mixed batch (depth {v.depth}/{depth}, "
                f"kind {v.kind}/{kind})")
    descs = [np.array([n], dtype=INT_DTYPE),
             np.array([v.top_length for v in vals], dtype=INT_DTYPE)]
    for lvl in range(1, depth):
        descs.append(np.concatenate([v.descs[lvl] for v in vals]))
    values = np.concatenate([v.values for v in vals])
    return NestedVector(descs, values, kind)


def unpack_values(v: Value, t: T.Type, n: int) -> list:
    """Split a batched value of P type ``seq(t)`` back into N values of
    type ``t`` — the inverse of :func:`pack_values`."""
    _check("batch:unpack", v)
    return _unpack(v, t, n)


def _unpack(v: Value, t: T.Type, n: int) -> list:
    kind = _SCALAR_KINDS.get(type(t))
    if kind is not None or isinstance(t, T.TFun):
        if not isinstance(v, NestedVector) or v.depth != 1:
            raise VectorError(f"unpack_values: expected a depth-1 frame, "
                              f"got {v!r}")
        if v.top_length != n:
            raise VectorError(f"unpack_values: batch of {v.top_length}, "
                              f"expected {n}")
        if isinstance(t, T.TFun):
            return [VFun(FUNTABLE.name_of(int(i))) for i in v.values]
        if kind == "int":
            return [int(x) for x in v.values]
        if kind == "bool":
            return [bool(x) for x in v.values]
        return [float(x) for x in v.values]
    if isinstance(t, T.TTuple):
        if not isinstance(v, VTuple) or len(v.items) != len(t.items):
            raise VectorError(f"unpack_values: expected VTuple, got {v!r}")
        comps = [_unpack(x, it, n) for x, it in zip(v.items, t.items)]
        return [VTuple([c[i] for c in comps]) for i in range(n)]
    if isinstance(t, T.TSeq):
        depth = T.seq_depth(t)
        leaf = T.peel(t, depth)
        if isinstance(leaf, T.TTuple):
            if not isinstance(v, VTuple):
                raise VectorError(f"unpack_values: expected VTuple of frames, "
                                  f"got {v!r}")
            comps = [_unpack(x, T.seq_of(it, depth), n)
                     for x, it in zip(v.items, leaf.items)]
            return [VTuple([c[i] for c in comps]) for i in range(n)]
        return _unpack_frames(v, n)
    raise VectorError(f"unpack_values: cannot unpack at type {t!r}")


def _unpack_frames(v: Value, n: int) -> list:
    if not isinstance(v, NestedVector) or v.depth < 2:
        raise VectorError(f"unpack_values: expected a batched frame, got {v!r}")
    if v.top_length != n:
        raise VectorError(f"unpack_values: batch of {v.top_length}, "
                          f"expected {n}")
    # descs[1] holds the per-request top lengths; walk the levels down,
    # splitting each by the element counts accumulated one level above.
    out_descs: list[list[np.ndarray]] = [[] for _ in range(n)]
    counts = v.descs[1]            # elements each request owns at this level
    for i in range(n):
        out_descs[i].append(np.array([int(counts[i])], dtype=INT_DTYPE))
    for lvl in list(v.descs[2:]) + [None]:
        arr = v.values if lvl is None else lvl
        bounds = np.concatenate(([0], np.cumsum(counts)))
        if bounds[-1] != arr.size:
            raise VectorError("unpack_values: descriptor/value size mismatch")
        pieces = [arr[bounds[i]:bounds[i + 1]] for i in range(n)]
        if lvl is None:
            return [NestedVector(out_descs[i], pieces[i], v.kind)
                    for i in range(n)]
        for i in range(n):
            out_descs[i].append(pieces[i])
        counts = np.array([int(p.sum()) for p in pieces], dtype=INT_DTYPE)
    raise AssertionError("unreachable")  # pragma: no cover
