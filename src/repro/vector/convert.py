"""Conversion between Python values (the interpreter's representation) and
the flat vector representation, driven by the P type.

Tuples under sequences are pushed outward (``Seq(a x b)`` becomes a
``VTuple`` of two parallel NestedVectors), matching the paper's multiple
value vectors per tuple leaf.  Function values convert between
``FunVal``/``VFun`` by name via the global interning table.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import VectorError
from repro.lang import types as T
from repro.vector.nested import FUNTABLE, NestedVector, VFun, VTuple
from repro.vector.segments import INT_DTYPE

# ---------------------------------------------------------------------------
# Python -> vector
# ---------------------------------------------------------------------------


def from_python(v: Any, t: T.Type):
    """Convert a Python value of P type ``t`` to a vector value."""
    if isinstance(t, T.TInt):
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise VectorError(f"expected int, got {v!r}")
        return int(v)
    if isinstance(t, T.TBool):
        if not isinstance(v, (bool, np.bool_)):
            raise VectorError(f"expected bool, got {v!r}")
        return bool(v)
    if isinstance(t, T.TFloat):
        if not isinstance(v, (float, np.floating)):
            raise VectorError(f"expected float, got {v!r}")
        return float(v)
    if isinstance(t, T.TFun):
        return VFun(_fun_name(v))
    if isinstance(t, T.TTuple):
        if not isinstance(v, tuple) or len(v) != len(t.items):
            raise VectorError(f"expected {len(t.items)}-tuple, got {v!r}")
        return VTuple([from_python(x, it) for x, it in zip(v, t.items)])
    if isinstance(t, T.TSeq):
        return _seq_from_python(v, t)
    raise VectorError(f"cannot convert to vector form at type {t!r}")


def _fun_name(v: Any) -> str:
    if isinstance(v, str):
        return v
    name = getattr(v, "name", None)
    if isinstance(name, str):
        return name
    raise VectorError(f"expected a function value, got {v!r}")


def _seq_from_python(v: Any, t: T.TSeq):
    # find the tuple split point: Seq^d(tuple(...)) or Seq^d(scalar/fun)
    depth = 0
    cur: T.Type = t
    while isinstance(cur, T.TSeq):
        depth += 1
        cur = cur.elem
    if isinstance(cur, T.TTuple):
        comps = []
        for i, it in enumerate(cur.items):
            proj = _project(v, depth, i)
            comps.append(from_python(proj, T.seq_of(it, depth)))
        return VTuple(comps)
    return _pure_seq_from_python(v, depth, cur)


def _project(v: Any, depth: int, i: int) -> Any:
    """Project component i of the tuples sitting ``depth`` levels down."""
    if depth == 0:
        if not isinstance(v, tuple) or i >= len(v):
            raise VectorError(f"expected a tuple with >= {i + 1} components, got {v!r}")
        return v[i]
    if not isinstance(v, list):
        raise VectorError(f"expected a sequence, got {v!r}")
    return [_project(x, depth - 1, i) for x in v]


def _pure_seq_from_python(v: Any, depth: int, leaf: T.Type) -> NestedVector:
    if not isinstance(v, list):
        raise VectorError(f"expected a sequence, got {v!r}")
    descs = []
    layer: list = [v]
    for _ in range(depth):
        counts = []
        nxt: list = []
        for x in layer:
            if not isinstance(x, list):
                raise VectorError(f"expected a sequence, got {x!r}")
            counts.append(len(x))
            nxt.extend(x)
        descs.append(np.asarray(counts, dtype=INT_DTYPE))
        layer = nxt
    if isinstance(leaf, T.TInt):
        for x in layer:
            if isinstance(x, bool) or not isinstance(x, (int, np.integer)):
                raise VectorError(f"expected int element, got {x!r}")
        return NestedVector(descs, np.asarray(layer, dtype=INT_DTYPE), "int")
    if isinstance(leaf, T.TBool):
        for x in layer:
            if not isinstance(x, (bool, np.bool_)):
                raise VectorError(f"expected bool element, got {x!r}")
        return NestedVector(descs, np.asarray(layer, dtype=np.bool_), "bool")
    if isinstance(leaf, T.TFloat):
        for x in layer:
            if not isinstance(x, (float, np.floating)):
                raise VectorError(f"expected float element, got {x!r}")
        return NestedVector(descs, np.asarray(layer, dtype=np.float64), "float")
    if isinstance(leaf, T.TFun):
        ids = [FUNTABLE.intern(_fun_name(x)) for x in layer]
        return NestedVector(descs, np.asarray(ids, dtype=INT_DTYPE), "fun")
    raise VectorError(f"bad sequence leaf type {leaf!r}")


# ---------------------------------------------------------------------------
# vector -> Python
# ---------------------------------------------------------------------------


def to_python(v: Any, t: T.Type, fun_factory=None) -> Any:
    """Convert a vector value of P type ``t`` back to Python form.

    ``fun_factory(name)`` builds function values (defaults to
    :class:`repro.interp.values.FunVal`-compatible plain VFun)."""
    if isinstance(t, T.TInt):
        return int(v)
    if isinstance(t, T.TBool):
        return bool(v)
    if isinstance(t, T.TFloat):
        return float(v)
    if isinstance(t, T.TFun):
        name = _fun_name(v)
        return fun_factory(name) if fun_factory else VFun(name)
    if isinstance(t, T.TTuple):
        if not isinstance(v, VTuple):
            raise VectorError(f"expected VTuple, got {v!r}")
        return tuple(to_python(x, it, fun_factory)
                     for x, it in zip(v.items, t.items))
    if isinstance(t, T.TSeq):
        depth = 0
        cur: T.Type = t
        while isinstance(cur, T.TSeq):
            depth += 1
            cur = cur.elem
        if isinstance(cur, T.TTuple):
            if not isinstance(v, VTuple):
                raise VectorError(f"expected VTuple of frames, got {v!r}")
            comps = [to_python(x, T.seq_of(it, depth), fun_factory)
                     for x, it in zip(v.items, cur.items)]
            return _merge_tuples(comps, depth)
        return _pure_seq_to_python(v, cur, fun_factory)
    raise VectorError(f"cannot convert from vector form at type {t!r}")


def _merge_tuples(comps: list, depth: int):
    if depth == 0:
        return tuple(comps)
    n = len(comps[0])
    for c in comps:
        if len(c) != n:
            raise VectorError("tuple components disagree on sequence lengths")
    return [_merge_tuples([c[i] for c in comps], depth - 1) for i in range(n)]


def _pure_seq_to_python(v: NestedVector, leaf: T.Type, fun_factory):
    if not isinstance(v, NestedVector):
        raise VectorError(f"expected NestedVector, got {v!r}")
    if isinstance(leaf, T.TFun):
        layer = [fun_factory(FUNTABLE.name_of(int(i))) if fun_factory
                 else VFun(FUNTABLE.name_of(int(i))) for i in v.values]
    elif isinstance(leaf, T.TBool):
        layer = [bool(x) for x in v.values]
    elif isinstance(leaf, T.TFloat):
        layer = [float(x) for x in v.values]
    else:
        layer = [int(x) for x in v.values]
    for desc in reversed(v.descs[1:]):
        grouped = []
        pos = 0
        for c in desc:
            grouped.append(layer[pos:pos + int(c)])
            pos += int(c)
        layer = grouped
    return layer
