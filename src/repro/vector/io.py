"""Persistence for vector values.

Because the representation is just a handful of flat arrays (Figure 1),
any value — arbitrarily nested, ragged, tuple-structured — serializes to a
single ``.npz`` with one entry per descriptor/value vector plus a tiny
manifest.  This is the practical payoff of the paper's representation: no
pointer graphs to walk, no per-element boxing.

::

    save_value("out.npz", value, typ)
    value, typ = load_value("out.npz")
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import VectorError
from repro.lang import types as T
from repro.lang.types import parse_type, type_str
from repro.vector.nested import NestedVector, VFun, VTuple

_FORMAT = "repro-vector-v1"


def _collect(v: Any, path: str, arrays: dict, manifest: dict) -> None:
    if isinstance(v, VTuple):
        manifest[path] = {"kind": "tuple", "n": len(v.items)}
        for i, x in enumerate(v.items):
            _collect(x, f"{path}.{i}", arrays, manifest)
        return
    if isinstance(v, NestedVector):
        manifest[path] = {"kind": "nested", "depth": v.depth,
                          "leaf": v.kind}
        for i, d in enumerate(v.descs):
            arrays[f"{path}/d{i}"] = d
        if v.kind == "fun":
            from repro.vector.nested import FUNTABLE
            names = [FUNTABLE.name_of(int(x)) for x in v.values]
            manifest[path]["funs"] = names
            arrays[f"{path}/v"] = np.arange(len(names), dtype=np.int64)
        else:
            arrays[f"{path}/v"] = v.values
        return
    if isinstance(v, VFun):
        manifest[path] = {"kind": "fun", "name": v.name}
        return
    if isinstance(v, bool):
        manifest[path] = {"kind": "scalar", "value": v, "type": "bool"}
        return
    if isinstance(v, int):
        manifest[path] = {"kind": "scalar", "value": v, "type": "int"}
        return
    if isinstance(v, float):
        manifest[path] = {"kind": "scalar", "value": v, "type": "float"}
        return
    raise VectorError(f"cannot serialize {v!r}")


def save_value(path: str, value: Any, typ: T.Type) -> None:
    """Write a vector value and its P type to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    manifest: dict[str, Any] = {"__format__": _FORMAT,
                                "__type__": type_str(typ)}
    _collect(value, "root", arrays, manifest)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def _restore(path: str, arrays, manifest: dict) -> Any:
    entry = manifest[path]
    kind = entry["kind"]
    if kind == "tuple":
        return VTuple([_restore(f"{path}.{i}", arrays, manifest)
                       for i in range(entry["n"])])
    if kind == "nested":
        descs = [arrays[f"{path}/d{i}"] for i in range(entry["depth"])]
        if entry["leaf"] == "fun":
            from repro.vector.nested import FUNTABLE
            ids = [FUNTABLE.intern(n) for n in entry["funs"]]
            values = np.asarray(ids, dtype=np.int64)
        else:
            values = arrays[f"{path}/v"]
        return NestedVector(descs, values, entry["leaf"])
    if kind == "fun":
        return VFun(entry["name"])
    if kind == "scalar":
        v = entry["value"]
        return {"bool": bool, "int": int, "float": float}[entry["type"]](v)
    raise VectorError(f"bad manifest entry {entry!r}")


def load_value(path: str):
    """Read back (value, type) written by :func:`save_value`."""
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    try:
        manifest = json.loads(bytes(arrays.pop("__manifest__")).decode())
    except (KeyError, ValueError) as e:
        raise VectorError(f"not a repro vector file: {path} ({e})") from None
    if manifest.get("__format__") != _FORMAT:
        raise VectorError(f"unsupported format in {path}")
    typ = parse_type(manifest["__type__"])
    return _restore("root", arrays, manifest), typ
