"""Fault-tolerant multi-process serving: the supervised worker pool.

:class:`WorkerPool` speaks the same API as
:class:`~repro.serve.batcher.BatchExecutor` (``submit`` → ``ServeFuture``,
``run_many``, ``close``, a context manager) but executes requests in **N
worker processes**, so a crash — a segfaulting native kernel, an OOM
kill, a wedged C call — takes down one worker, not the server.  The
moving parts:

* **Sharding.**  Requests are placed on workers by consistent hash of
  their batch key (:class:`~repro.serve.policy.HashRing`), so one program
  key always lands on the same worker and its :class:`CompileCache` and
  native-kernel handles stay hot.  Budgeted requests (no batch key)
  spread by request id.
* **Dispatch.**  One dispatcher thread per worker coalesces same-key
  pending requests into segment-batched jobs (the batcher's rules) and
  keeps at most one job in flight per worker.  Jobs are pre-pickled in
  the parent so a non-picklable argument fails *that* request with a
  typed error instead of wedging a queue feeder thread.
* **Supervision.**  Every worker heartbeats from a side thread; the
  :class:`~repro.serve.supervisor.Supervisor` kills-and-respawns workers
  that die, stop heartbeating, or overrun a request deadline — with
  exponential, jittered respawn backoff.  In-flight requests on a dead
  worker are **requeued** (bounded, jittered
  :class:`~repro.serve.policy.RetryPolicy`; idempotent-only — budgeted
  requests never retry, a second run would charge the budget twice) or
  **failed** with :class:`~repro.errors.WorkerCrashError` carrying their
  request ids.
* **Integrity.**  Every response payload travels with an adler32
  checksum; a corrupt payload (the ``pool.worker.poisoned-response``
  chaos site) is detected in the parent, the worker is killed, and the
  request is retried or failed typed — a poisoned worker can never
  complete a future with garbage.
* **Degradation.**  The native tier is guarded per batch key by a
  half-open :class:`~repro.serve.policy.CircuitBreaker` (K consecutive
  native failures demote the key to the vector back end until a cooldown
  probe succeeds), and ``submit`` sheds load with
  :class:`~repro.errors.ResourceLimitError` when the queue is saturated
  or fewer than ``min_healthy`` workers are up.
* **Chaos.**  A :class:`~repro.guard.faults.ChaosSpec` pickled into every
  worker fires the process-level fault registry
  (:data:`~repro.guard.faults.PROCESS_FAULT_SITES`) deterministically per
  request — the substrate of ``repro serve --chaos`` and
  ``tools/chaos_smoke.py``.

Observability counters (zero-overhead-when-off): ``serve.worker_restart``,
``serve.retry``, ``serve.breaker_open``, ``serve.shed``.  See
docs/RELIABILITY.md for the supervision tree and the containment
contract.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing as mp
import os
import pickle
import queue as _queue
import random
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import (
    NativeCompileError, ReproError, ResourceLimitError, WorkerCrashError,
)
from repro.guard.faults import ChaosSpec
from repro.guard.runtime import Budget
from repro.obs import runtime as _obs
from repro.serve.batcher import ServeFuture, _name_request
from repro.serve.cache import CompileCache, cache_key
from repro.serve.policy import CircuitBreaker, HashRing, RetryPolicy
from repro.serve.supervisor import Supervisor, WorkerHandle
from repro.transform.pipeline import TransformOptions

__all__ = ["PoolConfig", "PoolStats", "WorkerPool"]


@dataclass(frozen=True)
class PoolConfig:
    """Tunables for one :class:`WorkerPool`."""

    workers: int = 2             #: worker processes
    max_batch: int = 64          #: largest coalesced group per vector pass
    max_queue: int = 1024        #: bounded pending depth (backpressure)
    backend: str = "vector"      #: default back end for requests
    check: bool = False          #: default strict-checking flag
    cache_capacity: int = 128    #: LRU slots in each worker's compile cache
    #: tiered compilation, as in :class:`~repro.serve.batcher.ServeConfig`
    #: — but the pool's native tier is breaker-guarded by default.
    native_after: int = 3
    #: consecutive native failures that open a key's circuit breaker.
    breaker_failures: int = 3
    #: open-breaker cooldown before one half-open probe re-tries the
    #: native tier (None = permanent demotion).
    breaker_cooldown_s: Optional[float] = 5.0
    #: retry policy for requests orphaned by a worker crash; ``None``
    #: disables retrying (every victim fails with
    #: :class:`~repro.errors.WorkerCrashError`).  Budgeted requests are
    #: never retried regardless.
    retry: Optional[RetryPolicy] = RetryPolicy()
    #: ``submit`` sheds (``ResourceLimitError("healthy-workers", ...)``)
    #: while fewer than this many workers are up.
    min_healthy: int = 1
    heartbeat_s: float = 0.2             #: worker heartbeat period
    heartbeat_timeout_s: float = 2.0     #: silence that counts as wedged
    supervise_s: float = 0.05            #: supervisor health-check period
    #: slack past a request deadline before the supervisor kills the
    #: worker running it (lets near-deadline finishes land).
    deadline_grace_s: float = 0.25
    respawn_backoff_s: float = 0.05      #: first respawn delay
    respawn_backoff_max_s: float = 2.0   #: respawn delay ceiling
    respawn_jitter: float = 0.25         #: ± fraction on respawn delays
    backoff_reset_s: float = 5.0         #: stable uptime that clears backoff
    start_timeout_s: float = 60.0        #: pool-startup deadline
    #: multiprocessing start method; ``None`` picks ``forkserver`` when
    #: available (``fork`` is unsafe from a threaded parent) else
    #: ``spawn``.
    start_method: Optional[str] = None
    #: deterministic process-fault injection, pickled into every worker.
    chaos: Optional[ChaosSpec] = None


@dataclass
class PoolStats:
    """Always-on pool statistics (cheap integer updates under a lock)."""

    requests: int = 0            #: accepted submissions
    responses: int = 0           #: futures completed with a value
    errors: int = 0              #: futures completed with an error
    rejected: int = 0            #: submissions refused (queue full)
    shed: int = 0                #: submissions refused (below quorum)
    expired: int = 0             #: deadline failures (queued or killed)
    retries: int = 0             #: crash victims requeued for another run
    restarts: int = 0            #: worker kill-and-respawn cycles
    batches: int = 0             #: coalesced jobs dispatched
    batched_requests: int = 0    #: requests inside those jobs
    singles: int = 0             #: requests dispatched alone
    fallbacks: int = 0           #: batches decomposed in-worker after a failure
    max_batch: int = 0           #: largest job dispatched
    max_queue_depth: int = 0     #: high-water mark of pending depth
    promotions: int = 0          #: batch keys promoted to the native tier
    demotions: int = 0           #: breaker trips demoting a promoted key
    crashes: dict = field(default_factory=dict)  #: crash reason -> count

    def snapshot(self) -> dict:
        d = {k: getattr(self, k) for k in (
            "requests", "responses", "errors", "rejected", "shed",
            "expired", "retries", "restarts", "batches", "batched_requests",
            "singles", "fallbacks", "max_batch", "max_queue_depth",
            "promotions", "demotions")}
        d["crashes"] = dict(self.crashes)
        return d


class _PoolRequest:
    """One unit of work tracked by the parent."""

    __slots__ = ("rid", "source", "fname", "args", "types", "backend",
                 "check", "budget", "options", "use_prelude", "deadline",
                 "future", "batch_key", "shard", "attempts", "tiered",
                 "lead")

    def __init__(self, rid, source, fname, args, types, backend, check,
                 budget, options, use_prelude, deadline):
        self.rid = rid
        self.source = source
        self.fname = fname
        self.args = list(args)
        self.types = types
        self.backend = backend
        self.check = check
        self.budget = budget
        self.options = options
        self.use_prelude = use_prelude
        self.deadline = deadline
        self.future = ServeFuture()
        self.batch_key: Optional[tuple] = None
        self.shard = 0
        self.attempts = 0        #: completed or in-flight executions
        self.tiered = False      #: dispatched on a promoted (native) tier
        self.lead = False        #: first request of its dispatched job


# ---------------------------------------------------------------------------
# Worker side (runs in the child process)
# ---------------------------------------------------------------------------

_ABORT_EXIT = 70   # chaos worker-abort exit status (recognizable in tests)


def _encode_error(e: BaseException) -> tuple:
    """``(class name, message, attrs)`` — enough to rebuild the error in
    the parent with its class identity and attributes intact (custom
    ``__init__`` signatures make repro errors non-picklable as-is)."""
    try:
        attrs = dict(e.__dict__)
        pickle.dumps(attrs)
    except Exception:
        attrs = {}
    return (type(e).__name__, str(e), attrs)


def _decode_error(tup: tuple) -> BaseException:
    """Rebuild a worker-side error in the parent (see
    :func:`_encode_error`); unknown classes degrade to
    :class:`~repro.errors.ReproError`."""
    import builtins

    import repro.errors as _errors
    clsname, msg, attrs = tup
    cls = getattr(_errors, clsname, None)
    if cls is None:
        cls = getattr(builtins, clsname, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        return ReproError(msg)
    inst = cls.__new__(cls)
    Exception.__init__(inst, msg)
    try:
        inst.__dict__.update(attrs)
    except Exception:
        pass
    return inst


def _worker_main(wid: int, gen: int, req_q, resp_q, wcfg: dict) -> None:
    """Entry point of one worker process.

    Owns a private :class:`CompileCache`; executes pre-pickled jobs from
    ``req_q``; answers on the shared ``resp_q`` with checksummed
    payloads.  A side thread heartbeats every ``heartbeat_s`` (so a
    GIL-holding compute keeps beating, while a stuck C call — or the
    chaos stall site — goes silent and earns a supervisor kill).
    """
    chaos: Optional[ChaosSpec] = wcfg.get("chaos")
    state = {"stall_until": 0.0}
    stop_hb = threading.Event()

    def beat() -> None:
        while not stop_hb.wait(wcfg.get("heartbeat_s", 0.2)):
            if time.monotonic() >= state["stall_until"]:
                try:
                    resp_q.put(("hb", wid, gen))
                except Exception:
                    return

    threading.Thread(target=beat, name="repro-pool-hb", daemon=True).start()
    cache = CompileCache(wcfg.get("cache_capacity", 128))
    resp_q.put(("ready", wid, gen, os.getpid()))
    try:
        while True:
            msg = req_q.get()
            if msg is None or msg[0] == "stop":
                break
            job = pickle.loads(msg[1])
            _run_job(cache, job, wid, gen, resp_q, chaos, state)
    finally:
        stop_hb.set()
        try:
            resp_q.put(("bye", wid, gen))
        except Exception:
            pass


def _run_job(cache: CompileCache, job: dict, wid: int, gen: int, resp_q,
             chaos: Optional[ChaosSpec], state: dict) -> None:
    items: list = job["items"]            # [(rid, args), ...]
    rid0 = items[0][0]
    flags: dict = {}

    def send(rid: str, ok: bool, value: Any) -> None:
        body = value if ok else _encode_error(value)
        try:
            payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as e:             # unpicklable result: typed error
            ok = False
            payload = pickle.dumps(_encode_error(
                ReproError(f"unpicklable worker result: {e}")))
        crc = zlib.adler32(payload)
        if chaos is not None and ok and \
                chaos.fires("pool.worker.poisoned-response", rid):
            payload = payload[:-1] + bytes([payload[-1] ^ 0xA5])
        resp_q.put(("done", wid, gen, rid, ok,
                    payload, crc, flags if rid == rid0 else {}))

    if chaos is not None:
        if chaos.fires("pool.worker.heartbeat-stall", rid0):
            # wedged, not dead: the request hangs while heartbeats go
            # silent — only the supervisor's heartbeat timeout can tell
            state["stall_until"] = time.monotonic() + chaos.stall_s
            time.sleep(chaos.stall_s)
        if chaos.fires("pool.worker.slow-compile", rid0):
            time.sleep(chaos.slow_s)
        if chaos.fires("pool.worker.abort", rid0):
            os._exit(_ABORT_EXIT)

    try:
        prog = cache.get(job["source"], job["options"], job["use_prelude"])
    except BaseException as e:
        for rid, _ in items:
            send(rid, False, e)
        return

    fname, types, check = job["fname"], job["types"], job["check"]
    budget: Optional[Budget] = job.get("budget")

    def exec_all(b: str) -> list:
        if len(items) > 1:
            return prog.run_batched(fname, [args for _, args in items],
                                    backend=b, types=types, check=check)
        return [prog.run(fname, items[0][1], backend=b, types=types,
                         check=check, budget=budget)]

    backend = job["backend"]
    fallback = job.get("fallback")
    try:
        try:
            results = exec_all(backend)
        except NativeCompileError:
            if fallback is None:
                raise
            # tiering must never surface an error the requested back end
            # would not have raised: demote in-worker, tell the parent
            flags["native_failed"] = True
            results = exec_all(fallback)
    except ReproError as e:
        if len(items) > 1:
            # decompose: errors land on exactly the requests that caused
            # them, never on innocent batchmates
            flags["fallback"] = True
            b = fallback or backend
            for rid, args in items:
                try:
                    v = prog.run(fname, args, backend=b, types=types,
                                 check=check)
                except ResourceLimitError as re:
                    send(rid, False, _name_request(re, rid))
                except BaseException as be:
                    send(rid, False, be)
                else:
                    send(rid, True, v)
            return
        if isinstance(e, ResourceLimitError):
            e = _name_request(e, rid0)
        send(rid0, False, e)
        return
    except BaseException as e:
        for rid, _ in items:
            send(rid, False, e)
        return
    for (rid, _), value in zip(items, results):
        send(rid, True, value)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class WorkerPool:
    """Supervised multi-process executor behind the ``BatchExecutor`` API.

    Use as a context manager, or call :meth:`close` when done::

        with WorkerPool(PoolConfig(workers=4)) as pool:
            futs = [pool.submit(SRC, "main", [k]) for k in range(100)]
            results = [f.result() for f in futs]
    """

    def __init__(self, config: Optional[PoolConfig] = None):
        self.config = config or PoolConfig()
        cfg = self.config
        if cfg.workers < 1 or cfg.max_batch < 1 or cfg.max_queue < 1:
            raise ValueError("workers, max_batch and max_queue must be >= 1")
        if not 1 <= cfg.min_healthy <= cfg.workers:
            raise ValueError("min_healthy must be within [1, workers]")
        method = cfg.start_method
        if method is None:
            methods = mp.get_all_start_methods()
            method = "forkserver" if "forkserver" in methods else "spawn"
        self._ctx = mp.get_context(method)
        if method == "forkserver":
            try:      # preload the heavy imports once, so respawns fork fast
                self._ctx.set_forkserver_preload(["repro.serve.pool"])
            except Exception:
                pass
        self.stats = PoolStats()
        self.lock = threading.Lock()
        self._work = threading.Condition(self.lock)
        # One response queue per worker *generation*, pumped into this
        # in-process inbox by a parent-side thread each.  A shared
        # response queue would be wedged for every worker the moment one
        # of them is SIGKILLed while holding the queue's write lock — a
        # dead process never releases it (see _pump).
        self._inbox: _queue.Queue = _queue.Queue()
        self._rid = itertools.count(1)
        self._rng = random.Random(0x5EED)
        self._tier_counts: dict = {}
        self._tier_promoted: set = set()
        self._breakers: dict = {}
        self._retries: list = []            # heap of (due, seq, request)
        self._retry_seq = itertools.count()
        self.handles = [WorkerHandle(i) for i in range(cfg.workers)]
        self._ring = HashRing(cfg.workers)
        self.closed = False
        self._shutdown = False
        self._collector_stop = False
        for handle in self.handles:
            self._spawn_worker(handle)
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True)
        self._collector.start()
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop, args=(h,),
                             name=f"repro-pool-dispatch-{h.wid}", daemon=True)
            for h in self.handles]
        for t in self._dispatchers:
            t.start()
        self._supervisor = Supervisor(self)
        self._supervisor.start()
        try:
            self._wait_ready()
        except BaseException:
            self.close(timeout=2.0)
            raise

    # -- public API ------------------------------------------------------

    def submit(self, source: str, fname: str, args: Sequence[Any], *,
               types: Optional[Sequence] = None,
               backend: Optional[str] = None,
               check: Optional[bool] = None,
               budget: Optional[Budget] = None,
               options: Optional[TransformOptions] = None,
               use_prelude: bool = True,
               deadline_s: Optional[float] = None,
               request_id: Optional[str] = None) -> ServeFuture:
        """Enqueue one request; returns its :class:`ServeFuture`.

        Sheds load with ``ResourceLimitError("queue-depth", ...)`` when
        the pending queue is full and ``ResourceLimitError
        ("healthy-workers", ...)`` when the pool is degraded below
        ``min_healthy`` live workers — a degraded pool fails fast instead
        of accumulating work it cannot run.
        """
        cfg = self.config
        req = _PoolRequest(
            request_id if request_id is not None else f"p{next(self._rid)}",
            source, fname, args,
            tuple(types) if types is not None else None,
            backend if backend is not None else cfg.backend,
            check if check is not None else cfg.check,
            budget, options, use_prelude,
            time.monotonic() + deadline_s if deadline_s is not None else None)
        if not (req.budget is not None and req.budget.any_set()):
            req.batch_key = (cache_key(req.source, req.options,
                                       req.use_prelude),
                             req.fname, req.types, req.backend, req.check)
        req.shard = self._ring.lookup(
            req.batch_key if req.batch_key is not None else req.rid)
        shed = None
        with self._work:
            if self.closed:
                raise RuntimeError("WorkerPool is closed")
            healthy = sum(1 for h in self.handles if h.state == "up")
            depth = sum(len(h.pending) for h in self.handles) \
                + len(self._retries)
            if healthy < cfg.min_healthy:
                self.stats.shed += 1
                shed = ResourceLimitError(
                    "healthy-workers", healthy, cfg.min_healthy,
                    stage="pool:submit", request=req.rid)
            elif depth >= cfg.max_queue:
                self.stats.rejected += 1
                shed = ResourceLimitError(
                    "queue-depth", depth + 1, cfg.max_queue,
                    stage="pool:submit", request=req.rid)
            else:
                self.handles[req.shard].pending.append(req)
                depth += 1
                self.stats.requests += 1
                if depth > self.stats.max_queue_depth:
                    self.stats.max_queue_depth = depth
                self._work.notify_all()
        p = _obs.PROFILER
        if p is not None:
            if shed is not None:
                p.count("serve", "shed", 1, 0, 0)
            else:
                p.count("serve", "queue_depth", depth, 0, 0)
        if shed is not None:
            raise shed
        return req.future

    def run_many(self, source: str, fname: str,
                 argsets: Sequence[Sequence[Any]], **kw) -> list:
        """Submit every argument set, wait for all, return results in
        order (re-raising the first error encountered)."""
        futures = [self.submit(source, fname, args, **kw) for args in argsets]
        return [f.result() for f in futures]

    def queue_depth(self) -> int:
        with self.lock:
            return sum(len(h.pending) for h in self.handles) \
                + len(self._retries)

    def healthy_workers(self) -> int:
        with self.lock:
            return sum(1 for h in self.handles if h.state == "up")

    def breaker_snapshot(self) -> dict:
        """Circuit-breaker state per batch key (for stats reporting)."""
        with self.lock:
            breakers = list(self._breakers.values())
        return {
            "keys": len(breakers),
            "open": sum(1 for b in breakers if b.state != "closed"),
            "opens": sum(b.opens for b in breakers),
            "probes": sum(b.probes for b in breakers),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain, stop workers, fail leftovers."""
        with self._work:
            if self.closed and self._shutdown:
                return
            self.closed = True
            self._work.notify_all()
        deadline = time.monotonic() + timeout
        with self._work:
            while time.monotonic() < deadline:
                if not self._retries and not any(
                        h.pending or h.inflight for h in self.handles):
                    break
                self._work.wait(0.1)
            self._shutdown = True
            self._work.notify_all()
            handles = list(self.handles)
        self._supervisor.shutdown()
        for h in handles:
            try:
                h.req_q.put(("stop",))
            except Exception:
                pass
        for h in handles:
            proc = h.proc
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        self._collector_stop = True
        self._supervisor.join(timeout=2.0)
        self._collector.join(timeout=2.0)
        for t in self._dispatchers:
            t.join(timeout=2.0)
        leftovers: list[_PoolRequest] = []
        with self.lock:
            leftovers.extend(r for _, _, r in self._retries)
            self._retries.clear()
            for h in self.handles:
                leftovers.extend(h.pending)
                h.pending.clear()
                leftovers.extend(h.inflight.values())
                h.inflight.clear()
                h.state = "stopped"
        for r in leftovers:
            self._finish(r, error=WorkerCrashError(
                "shutdown", request_ids=[r.rid],
                detail="pool closed with the request unfinished"))
        for h in handles:
            for q in (h.req_q, getattr(h, "resp_q", None)):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- lifecycle internals ---------------------------------------------

    def _spawn_worker(self, handle: WorkerHandle) -> None:
        """(Re)start one worker slot with a fresh generation and a fresh
        request queue (a respawned worker must never replay a stale
        job)."""
        with self.lock:
            if self._shutdown:
                return
            handle.generation += 1
            gen = handle.generation
            handle.state = "starting"
            now = time.monotonic()
            handle.last_hb = now
            handle.started_at = now
            old_req = handle.req_q
            old_resp = getattr(handle, "resp_q", None)
            handle.req_q = self._ctx.Queue()
            handle.resp_q = resp_q = self._ctx.Queue()
        for old in (old_req, old_resp):
            if old is not None:
                try:
                    old.close()
                    old.cancel_join_thread()
                except Exception:
                    pass
        wcfg = {
            "cache_capacity": self.config.cache_capacity,
            "heartbeat_s": self.config.heartbeat_s,
            "chaos": self.config.chaos,
        }
        proc = self._ctx.Process(
            target=_worker_main,
            args=(handle.wid, gen, handle.req_q, resp_q, wcfg),
            name=f"repro-pool-{handle.name}", daemon=True)
        proc.start()
        threading.Thread(
            target=self._pump, args=(handle, gen, resp_q),
            name=f"repro-pool-pump-{handle.wid}.{gen}", daemon=True).start()
        with self.lock:
            handle.proc = proc

    def _pump(self, handle: WorkerHandle, gen: int, resp_q) -> None:
        """Drain one worker generation's response queue into the shared
        in-process inbox.  One pump per generation: if the worker is
        SIGKILLed mid-write its queue may be torn (or its write lock held
        forever by the corpse) — that wedges only this thread, which is
        abandoned when the slot respawns with a fresh queue."""
        while True:
            if self._shutdown or handle.generation != gen:
                return
            try:
                msg = resp_q.get(timeout=0.2)
            except _queue.Empty:
                continue
            except Exception:
                return      # torn queue: the supervisor buries the worker
            self._inbox.put(msg)

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self.config.start_timeout_s
        with self._work:
            while True:
                up = sum(1 for h in self.handles if h.state == "up")
                if up == len(self.handles):
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"worker pool failed to start: {up}/"
                        f"{len(self.handles)} workers up within "
                        f"{self.config.start_timeout_s:.0f}s")
                self._work.wait(min(remaining, 0.1))

    # -- dispatch ---------------------------------------------------------

    def _dispatch_loop(self, handle: WorkerHandle) -> None:
        while True:
            group = None
            with self._work:
                while True:
                    if self._shutdown:
                        return
                    if handle.pending and handle.state == "up" \
                            and not handle.inflight:
                        group = self._take_group_locked(handle)
                        break
                    self._work.wait(0.25)
            if group:
                try:
                    self._dispatch(handle, group)
                except BaseException as e:   # never kill the dispatcher
                    for r in group:
                        if not r.future.done():
                            self._finish(r, error=e)

    def _take_group_locked(self, handle: WorkerHandle
                           ) -> list[_PoolRequest]:
        """Pop the oldest pending request plus every same-key batchmate,
        up to ``max_batch`` (budgeted requests come out alone).  Caller
        holds the lock."""
        head = handle.pending.popleft()
        group = [head]
        key = head.batch_key
        if key is not None and handle.pending:
            kept: deque = deque()
            while handle.pending and len(group) < self.config.max_batch:
                r = handle.pending.popleft()
                if r.batch_key == key:
                    group.append(r)
                else:
                    kept.append(r)
            kept.extend(handle.pending)
            handle.pending.clear()
            handle.pending.extend(kept)
        return group

    def _dispatch(self, handle: WorkerHandle,
                  group: list[_PoolRequest]) -> None:
        group = [r for r in group if not self._expired(r, "pool:queue")]
        if not group:
            return
        lead = group[0]
        backend = self._tier_backend(lead, len(group))
        job = {
            "source": lead.source, "fname": lead.fname,
            "types": lead.types, "check": lead.check,
            "use_prelude": lead.use_prelude, "options": lead.options,
            "backend": backend,
            "fallback": lead.backend if backend != lead.backend else None,
            "items": [(r.rid, r.args) for r in group],
            "budget": lead.budget,
        }
        try:
            blob = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as e:
            for r in group:
                self._finish(r, error=e)
            return
        with self._work:
            if handle.state != "up":        # died between pop and dispatch
                handle.pending.extendleft(reversed(group))
                return
            tiered = backend != lead.backend
            for r in group:
                r.attempts += 1
                r.tiered = tiered
                r.lead = r is lead
                handle.inflight[r.rid] = r
            handle.dispatched_at = time.monotonic()
            if len(group) > 1:
                self.stats.batches += 1
                self.stats.batched_requests += len(group)
                if len(group) > self.stats.max_batch:
                    self.stats.max_batch = len(group)
            else:
                self.stats.singles += 1
            q = handle.req_q
        try:
            q.put(("job", blob))
        except Exception:
            # request queue torn down mid-respawn: treat this group as
            # crash victims (retry or fail typed)
            with self._work:
                victims = [handle.inflight.pop(r.rid)
                           for r in group if r.rid in handle.inflight]
                self._work.notify_all()
            self._absorb_victims(victims, "exit", handle,
                                 detail="request queue closed")

    # -- response collection ----------------------------------------------

    def _collect(self) -> None:
        while True:
            if self._collector_stop:
                return
            try:
                msg = self._inbox.get(timeout=0.1)
            except _queue.Empty:
                continue
            try:
                self._handle_message(msg)
            except Exception:
                continue                     # never kill the collector

    def _handle_message(self, msg: tuple) -> None:
        kind, wid, gen = msg[0], msg[1], msg[2]
        handle = self.handles[wid]
        if gen != handle.generation:
            return                           # a late message from the dead
        if kind == "ready":
            with self._work:
                if handle.state == "starting":
                    handle.state = "up"
                    now = time.monotonic()
                    handle.last_hb = now
                    handle.started_at = now
                self._work.notify_all()
        elif kind == "hb":
            handle.last_hb = time.monotonic()
        elif kind == "done":
            self._on_done(handle, msg)
        elif kind == "bye":
            with self._work:
                if handle.state in ("starting", "up"):
                    handle.state = "stopped"
                self._work.notify_all()

    def _on_done(self, handle: WorkerHandle, msg: tuple) -> None:
        _, _, _, rid, ok, payload, crc, flags = msg
        with self._work:
            req = handle.inflight.pop(rid, None)
            if req is not None and not handle.inflight:
                self._work.notify_all()
        if req is None:
            return                           # stale response: already failed
        if zlib.adler32(payload) != crc:
            self._absorb_victims([req], "poisoned-response", handle,
                                 detail="response checksum mismatch")
            self._worker_failure(handle, "poisoned-response",
                                 detail="response checksum mismatch")
            return
        body = pickle.loads(payload)
        if req.lead and req.batch_key is not None:
            if flags.get("native_failed"):
                self._native_failure(req.batch_key)
            elif ok and req.tiered:
                breaker = self._breakers.get(req.batch_key)
                if breaker is not None:      # half-open probe succeeded
                    breaker.record_success()
            if flags.get("fallback"):
                with self.lock:
                    self.stats.fallbacks += 1
        if ok:
            self._finish(req, value=body)
        else:
            self._finish(req, error=_decode_error(body))

    # -- failure funnel ----------------------------------------------------

    def _worker_failure(self, handle: WorkerHandle, reason: str,
                        detail: str = "",
                        deadline_victims: Sequence[str] = ()) -> None:
        """The single funnel for a worker death or kill: drain its
        in-flight requests, schedule its respawn with backoff, and
        retry-or-fail the victims.  Idempotent per incident (a handle
        already in backoff is left alone)."""
        with self._work:
            if handle.state not in ("starting", "up"):
                return
            handle.state = "backoff"
            proc = handle.proc
            victims = list(handle.inflight.values())
            handle.inflight.clear()
            delay = self._supervisor.next_backoff(handle)
            handle.respawn_at = time.monotonic() + delay
            handle.restarts += 1
            self.stats.restarts += 1
            self.stats.crashes[reason] = self.stats.crashes.get(reason, 0) + 1
            self._work.notify_all()
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        p = _obs.PROFILER
        if p is not None:
            p.count("serve", "worker_restart", 1, 0, 0)
        overrun = set(deadline_victims)
        late = [r for r in victims if r.rid in overrun]
        rest = [r for r in victims if r.rid not in overrun]
        for r in late:
            with self.lock:
                self.stats.expired += 1
            self._finish(r, error=ResourceLimitError(
                "timeout", "deadline overrun in worker",
                f"{r.deadline:.2f}" if r.deadline is not None else "?",
                stage="pool:deadline", request=r.rid))
        self._absorb_victims(rest, reason, handle, detail)

    def _absorb_victims(self, victims: Sequence[_PoolRequest], reason: str,
                        handle: WorkerHandle, detail: str = "") -> None:
        """Retry (bounded, jittered, idempotent-only) or fail each
        request orphaned by a worker incident."""
        retry = self.config.retry
        now = time.monotonic()
        p = _obs.PROFILER
        for r in victims:
            retryable = (retry is not None and r.batch_key is not None
                         and retry.allows(r.attempts))
            if retryable and not self.closed:
                with self._work:
                    self.stats.retries += 1
                    delay = retry.backoff_s(r.attempts, self._rng)
                    heapq.heappush(self._retries,
                                   (now + delay, next(self._retry_seq), r))
                    self._work.notify_all()
                if p is not None:
                    p.count("serve", "retry", 1, 0, 0)
            else:
                self._finish(r, error=WorkerCrashError(
                    reason, worker=handle.name, request_ids=[r.rid],
                    detail=detail))

    def _release_due_retries(self, now: float) -> None:
        """Move due retries back onto their shard's pending queue
        (supervisor tick)."""
        released = []
        with self._work:
            while self._retries and self._retries[0][0] <= now:
                _, _, req = heapq.heappop(self._retries)
                released.append(req)
            for req in released:
                self.handles[req.shard].pending.append(req)
            if released:
                self._work.notify_all()

    def _sweep_deadlines(self, now: float) -> None:
        """Fail pending requests whose deadline passed while queued (a
        worker in backoff must not silently hold its shard's deadlines
        hostage).  Called from the supervisor tick."""
        expired: list[_PoolRequest] = []
        with self.lock:
            for h in self.handles:
                if not h.pending:
                    continue
                keep: list[_PoolRequest] = []
                for r in h.pending:
                    if r.deadline is not None and now > r.deadline:
                        expired.append(r)
                    else:
                        keep.append(r)
                if expired:
                    h.pending.clear()
                    h.pending.extend(keep)
        for r in expired:
            self._expired(r, "pool:queue", now=now)

    def _expired(self, req: _PoolRequest, stage: str,
                 now: Optional[float] = None) -> bool:
        if req.deadline is None:
            return False
        if (now if now is not None else time.monotonic()) <= req.deadline:
            return False
        with self.lock:
            self.stats.expired += 1
        self._finish(req, error=ResourceLimitError(
            "timeout", "deadline passed in queue", f"{req.deadline:.2f}",
            stage=stage, request=req.rid))
        return True

    # -- tiered compilation ------------------------------------------------

    def _tier_backend(self, req: _PoolRequest, weight: int) -> str:
        """The back end a job actually runs on: the requested one, or
        ``native`` once its batch key proves hot — unless the key's
        circuit breaker is open (see
        :class:`~repro.serve.policy.CircuitBreaker`)."""
        if req.backend != "vector" or self.config.native_after <= 0:
            return req.backend
        key = req.batch_key
        if key is None:
            return req.backend
        from repro.native import toolchain
        if not toolchain.available():
            return req.backend
        promoted = False
        with self.lock:
            breaker = self._breakers.get(key)
            n = self._tier_counts.get(key, 0) + weight
            self._tier_counts[key] = n
            if n <= self.config.native_after:
                return req.backend
            if key not in self._tier_promoted:
                self._tier_promoted.add(key)
                self.stats.promotions += 1
                promoted = True
        if breaker is not None and not breaker.allow():
            return req.backend
        if promoted:
            p = _obs.PROFILER
            if p is not None:
                p.count("serve", "tier_promotion", 1, 0, 0)
        return "native"

    def _native_failure(self, key) -> None:
        """One native-tier failure for a batch key; a breaker trip
        demotes the key until a half-open probe succeeds."""
        with self.lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    failures=self.config.breaker_failures,
                    cooldown_s=self.config.breaker_cooldown_s)
        opened = breaker.record_failure()
        if not opened:
            return
        with self.lock:
            self.stats.demotions += 1
        p = _obs.PROFILER
        if p is not None:
            p.count("serve", "tier_demotion", 1, 0, 0)
            p.count("serve", "breaker_open", 1, 0, 0)

    # -- completion --------------------------------------------------------

    def _finish(self, req: _PoolRequest, value: Any = None,
                error: Optional[BaseException] = None) -> None:
        if req.future.done():
            return
        with self.lock:
            if error is not None:
                self.stats.errors += 1
            else:
                self.stats.responses += 1
        if error is not None:
            req.future._set_error(error)
        else:
            req.future._set_value(value)
