"""repro.serve — the segment-batched serving layer.

The paper's translation T1 realizes every depth-d application through the
depth-1 kernel alone (``f^d(e) = insert(f^1(extract(e, d)), e, d)``), so N
independent requests to the same function can be packed as **one extra
descriptor level** and executed in a *single* vector pass — the
request-coalescing trick modern inference stacks use, falling straight out
of the flattening machinery.  This package turns that observation into a
serving subsystem:

* :class:`CompileCache` — thread-safe LRU deduplication of compilation,
  keyed on ``(source, TransformOptions)``;
* :class:`BatchExecutor` — bounded request queue, same-function
  coalescing into segment-batched calls, per-request budget/deadline
  isolation, batch/cache/queue statistics;
* :class:`WorkerPool` — the same API over a supervised pool of worker
  *processes*: crash isolation, heartbeat/deadline kills with
  exponential-backoff respawn, bounded retries, circuit-breaker-guarded
  native tiering, load shedding, and deterministic chaos injection (see
  docs/RELIABILITY.md);
* the ``repro serve`` CLI subcommand — a JSONL stdio server on top of
  either executor (see docs/SERVING.md for the protocol).

Batching is proven semantics-preserving by the test battery in
``tests/serve/``: results are element-wise identical to independent
``run()`` calls across all back ends, under strict checking, and under
concurrent load.
"""

from repro.serve.batcher import (
    BatchExecutor, ServeConfig, ServeFuture, ServeStats,
)
from repro.serve.cache import CompileCache, cache_key
from repro.serve.policy import CircuitBreaker, HashRing, RetryPolicy
from repro.serve.pool import PoolConfig, PoolStats, WorkerPool

__all__ = ["BatchExecutor", "ServeConfig", "ServeFuture", "ServeStats",
           "CompileCache", "cache_key",
           "WorkerPool", "PoolConfig", "PoolStats",
           "RetryPolicy", "CircuitBreaker", "HashRing"]
