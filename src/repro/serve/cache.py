"""Thread-safe LRU compile cache keyed on ``(source, TransformOptions)``.

Serving traffic means the same program text arrives over and over; the
front half of the pipeline (parse -> canonicalize -> typecheck) and the
per-entry transform caches hanging off a :class:`~repro.api.CompiledProgram`
are pure functions of the source and its :class:`TransformOptions`, so one
compiled object can be shared by every request that names the same text.

Concurrency contract (tested by ``tests/serve/test_cache.py``):

* a hit never blocks behind a miss for a *different* key;
* concurrent misses on the **same** key compile **once** — the first
  caller owns the compile, the rest wait on the in-flight entry and share
  the result (no duplicate compiles, the thundering-herd guarantee);
* a failed compile is delivered to every waiter but **not** cached, so a
  transient failure does not poison the key;
* eviction is LRU over completed entries, bounded by ``capacity``.

Statistics (hits / misses / evictions) are kept under the same lock and,
when a profiler is active, mirrored as ``serve``-layer counters
(``cache_hit`` / ``cache_miss``) under the zero-overhead-when-off contract
of :mod:`repro.obs.runtime`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import astuple
from typing import Callable, Optional

from repro.api import CompiledProgram, compile_program
from repro.obs import runtime as _obs
from repro.transform.pipeline import TransformOptions

__all__ = ["CompileCache", "cache_key"]


def cache_key(source: str, options: Optional[TransformOptions],
              use_prelude: bool = True) -> tuple:
    """The cache key: source text plus every transform switch."""
    opts = options or TransformOptions()
    return (source, use_prelude, astuple(opts))


class _Entry:
    """One cache slot; ``event`` is set once the compile finished."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[CompiledProgram] = None
        self.error: Optional[BaseException] = None


class CompileCache:
    """A bounded, thread-safe, LRU compile cache.

    ``compile_fn`` is injectable for tests that count real compiles; it
    must accept ``(source, use_prelude, options)`` like
    :func:`repro.api.compile_program`.
    """

    def __init__(self, capacity: int = 128,
                 compile_fn: Optional[Callable] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._compile = compile_fn or (
            lambda source, use_prelude, options:
            compile_program(source, use_prelude=use_prelude, options=options))
        self._lock = threading.Lock()
        self._map: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, source: str, options: Optional[TransformOptions] = None,
            use_prelude: bool = True) -> CompiledProgram:
        """The compiled program for ``source`` — compiled at most once per
        key no matter how many threads ask concurrently."""
        key = cache_key(source, options, use_prelude)
        with self._lock:
            entry = self._map.get(key)
            if entry is not None and entry.event.is_set():
                self.hits += 1
                self._map.move_to_end(key)
                self._observe("cache_hit")
                return entry.value
            if entry is None:
                entry = self._map[key] = _Entry()
                self.misses += 1
                self._observe("cache_miss")
                owner = True
            else:           # someone is compiling this key right now
                self.hits += 1
                self._observe("cache_hit")
                owner = False
        if not owner:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            return entry.value
        try:
            value = self._compile(source, use_prelude, options)
        except BaseException as e:
            with self._lock:
                # deliver to waiters, but never cache a failure
                entry.error = e
                if self._map.get(key) is entry:
                    del self._map[key]
            entry.event.set()
            raise
        with self._lock:
            entry.value = value
            entry.event.set()
            self._map.move_to_end(key)
            self._evict_locked()
        return value

    def _evict_locked(self) -> None:
        while len(self._map) > self.capacity:
            for key, entry in self._map.items():
                if entry.event.is_set():        # never evict an in-flight slot
                    del self._map[key]
                    self.evictions += 1
                    break
            else:
                return

    def clear(self) -> None:
        with self._lock:
            self._map.clear()

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions, "entries": len(self._map),
                    "capacity": self.capacity}

    @staticmethod
    def _observe(op: str) -> None:
        p = _obs.PROFILER
        if p is not None:
            p.count("serve", op, 0, 0, 0)
