"""The request queue and segment-batching executor behind ``repro serve``.

A :class:`BatchExecutor` accepts concurrent ``(source, fname, args)``
requests, deduplicates compilation through a shared
:class:`~repro.serve.cache.CompileCache`, and coalesces same-function
requests into one segment-batched call: N argument sets are packed as one
extra descriptor level and the batch runs as a *single* vector pass of the
synthesized depth-1 extension ``f^1``
(:meth:`repro.api.CompiledProgram.run_batched`).  Results are unpacked and
delivered per request, element-wise identical to N independent ``run()``
calls — a property enforced by the batching test battery
(``tests/serve/test_batch_equivalence.py``).

Coalescing rules (see docs/SERVING.md):

* requests group by :func:`_batch_key` — same source, options, entry,
  argument-type signature, back end, and ``check`` flag;
* requests carrying a :class:`~repro.guard.Budget` are **never**
  coalesced: budgets are per-request ceilings, and one guard scope cannot
  attribute a breach to a single member of a batch.  They execute
  individually, so a slow request under a tight budget raises
  :class:`~repro.errors.ResourceLimitError` for that request *only*;
* if a batched call fails for any reason, the group is decomposed and
  re-run request-by-request so errors land on exactly the requests that
  caused them — a failing request never poisons its batchmates;
* zero-argument and function-valued-argument entries fall back to the
  per-request path (no frame to enumerate / per-request dispatch tables).

Tiered compilation: a batch key starts on the cheap ``vector`` (NumPy)
back end; once it has served ``ServeConfig.native_after`` weight units of
*predicted work* (quantized by ``tier_unit_work``; raw request counting
when prediction is unavailable) it is *promoted* to the ``native`` back
end (compiled fused C kernels, docs/NATIVE.md), and a key whose native
run fails to compile is *demoted* back for good.
``ServeStats.promotions`` / ``demotions`` and the
``serve.tier_promotion`` observability counter track the tier moves.

Predicted-budget admission (``ServeConfig.predict_admission``): a
budgeted request whose statically predicted cost
(:class:`repro.analysis.cost.CostCertificate`) already exceeds its
budget is rejected by ``submit`` with
``ResourceLimitError("predicted-steps" / "predicted-elements" /
"predicted-bytes", ...)`` before it is queued or executed; unbounded or
unpredictable programs are always admitted, and the runtime guard
remains the enforcement backstop either way.

Backpressure and deadlines reuse the guard layer's error type: a full
queue rejects ``submit`` with ``ResourceLimitError("queue-depth", ...)``,
and a request whose ``deadline_s`` elapses before execution fails with
``ResourceLimitError("timeout", ...)`` without running at all.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import NativeCompileError, ReproError, ResourceLimitError
from repro.guard.runtime import Budget
from repro.lang import types as T
from repro.obs import runtime as _obs
from repro.serve.cache import CompileCache, cache_key
from repro.transform.pipeline import TransformOptions

__all__ = ["ServeConfig", "ServeFuture", "ServeStats", "BatchExecutor"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`BatchExecutor`."""

    max_batch: int = 64          #: largest coalesced group per vector pass
    max_queue: int = 1024        #: bounded queue depth (backpressure limit)
    workers: int = 1             #: dispatcher threads draining the queue
    backend: str = "vector"      #: default back end for requests
    check: bool = False          #: default strict-checking flag
    cache_capacity: int = 128    #: LRU slots in the compile cache
    #: fallback heartbeat interval for an idle dispatcher.  Wake-ups are
    #: event-driven (``submit``/``close`` notify a condition), so this is
    #: a belt against lost notifications, not a polling period — an idle
    #: pool burns no CPU between heartbeats.
    poll_s: float = 1.0
    #: tiered compilation: after this many requests served for one batch
    #: key on the ``vector`` back end, later requests for the key run on
    #: the ``native`` back end (when a C toolchain exists).  ``0``
    #: disables tiering.  A key whose native run raises
    #: :class:`~repro.errors.NativeCompileError` is demoted back to
    #: ``vector`` permanently (for this executor).  See docs/NATIVE.md.
    native_after: int = 3
    #: circuit breaker guarding the native tier: this many *consecutive*
    #: native failures open the breaker (demotion).  1 keeps the PR-7
    #: behavior of demoting on the first failure.
    breaker_failures: int = 1
    #: how long an open breaker waits before letting one half-open probe
    #: re-try the native tier.  ``None`` (the default) never re-probes —
    #: the legacy *permanent* demotion.  See docs/RELIABILITY.md.
    breaker_cooldown_s: Optional[float] = None
    #: predicted-budget admission control: when a budgeted request's
    #: *statically predicted* cost (docs/ANALYSIS.md cost model) already
    #: exceeds its budget, ``submit`` rejects it with
    #: ``ResourceLimitError("predicted-...")`` before it is queued or
    #: executed.  Prediction failures (or unbounded programs) always
    #: admit — the runtime guard stays as the enforcement backstop.
    predict_admission: bool = True
    #: tier promotion counts predicted *work served* instead of raw
    #: request hits: each request weighs ``ceil(predicted_work /
    #: tier_unit_work)`` (1 when unbounded or unpredictable), so a few
    #: heavy requests promote a key as fast as many light ones.  ``0``
    #: restores pure request counting.
    tier_unit_work: int = 4096


class ServeFuture:
    """The pending result of one submitted request."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the request finished; re-raises its error."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        return self._error

    # -- producer side (executor only) ----------------------------------

    def _set_value(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class ServeStats:
    """Always-on serving statistics (cheap integer updates under a lock)."""

    requests: int = 0            #: accepted submissions
    responses: int = 0           #: futures completed with a value
    errors: int = 0              #: futures completed with an error
    rejected: int = 0            #: submissions refused (queue full)
    predicted_rejections: int = 0  #: refused by predicted-budget admission
    expired: int = 0             #: requests whose deadline passed in queue
    batches: int = 0             #: coalesced vector passes executed
    batched_requests: int = 0    #: requests served by those passes
    singles: int = 0             #: requests served individually
    fallbacks: int = 0           #: batches decomposed after a failure
    max_batch: int = 0           #: largest batch executed
    max_queue_depth: int = 0     #: high-water mark of the queue
    promotions: int = 0          #: batch keys promoted to the native tier
    demotions: int = 0           #: promoted keys demoted after a failure
    batch_sizes: dict = field(default_factory=dict)  #: size -> batch count

    def snapshot(self) -> dict:
        d = {k: getattr(self, k) for k in (
            "requests", "responses", "errors", "rejected",
            "predicted_rejections", "expired",
            "batches", "batched_requests", "singles", "fallbacks",
            "max_batch", "max_queue_depth", "promotions", "demotions")}
        d["batch_sizes"] = dict(self.batch_sizes)
        return d


def _name_request(e: ResourceLimitError, rid: str) -> ResourceLimitError:
    """The same breach, re-raised with the originating request named —
    errors escaping a decomposed batch stay attributable."""
    if e.request:
        return e
    return ResourceLimitError(e.limit, e.used, e.budget, stage=e.stage,
                              function=e.function,
                              frame_sizes=e.frame_sizes, request=rid)


class _Request:
    """One queued unit of work."""

    __slots__ = ("rid", "source", "fname", "args", "types", "backend",
                 "check", "budget", "options", "use_prelude", "deadline",
                 "future", "batch_key")

    def __init__(self, rid, source, fname, args, types, backend, check,
                 budget, options, use_prelude, deadline):
        self.rid = rid
        self.source = source
        self.fname = fname
        self.args = list(args)
        self.types = types
        self.backend = backend
        self.check = check
        self.budget = budget
        self.options = options
        self.use_prelude = use_prelude
        self.deadline = deadline
        self.future = ServeFuture()
        self.batch_key: Optional[tuple] = None


class BatchExecutor:
    """Queue + compile cache + coalescing dispatcher; the programmatic
    face of ``repro serve``.

    Use as a context manager, or call :meth:`close` when done::

        with BatchExecutor() as ex:
            futs = [ex.submit(SRC, "main", [k]) for k in range(100)]
            results = [f.result() for f in futs]
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 cache: Optional[CompileCache] = None):
        self.config = config or ServeConfig()
        if self.config.max_batch < 1 or self.config.max_queue < 1 \
                or self.config.workers < 1:
            raise ValueError("max_batch, max_queue and workers must be >= 1")
        # `cache or ...` would discard an *empty* injected cache (len == 0
        # makes it falsy), so test against None explicitly
        self.cache = (cache if cache is not None
                      else CompileCache(self.config.cache_capacity))
        self.stats = ServeStats()
        self._rid = itertools.count(1)         # fallback request-id source
        self._lock = threading.Lock()          # queue + stats
        self._work = threading.Condition(self._lock)   # queue not empty / closed
        self._tier_counts: dict = {}           # batch key -> requests served
        self._tier_promoted: set = set()       # keys now on the native tier
        self._breakers: dict = {}              # batch key -> CircuitBreaker
        self._queue: deque[_Request] = deque()
        self._idle_wakeups = 0                 # fallback-heartbeat timeouts
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"repro-serve-{i}",
                             daemon=True)
            for i in range(self.config.workers)]
        for t in self._threads:
            t.start()

    # -- public API ------------------------------------------------------

    def submit(self, source: str, fname: str, args: Sequence[Any], *,
               types: Optional[Sequence] = None,
               backend: Optional[str] = None,
               check: Optional[bool] = None,
               budget: Optional[Budget] = None,
               options: Optional[TransformOptions] = None,
               use_prelude: bool = True,
               deadline_s: Optional[float] = None,
               request_id: Optional[str] = None) -> ServeFuture:
        """Enqueue one request; returns its :class:`ServeFuture`.

        Raises ``ResourceLimitError("queue-depth", ...)`` when the bounded
        queue is full — the caller sheds load instead of the server
        accumulating unbounded work.

        ``request_id`` names the request in every budget/deadline/
        backpressure :class:`~repro.errors.ResourceLimitError` it can
        provoke, so a breach inside a coalesced batch is attributable to
        the request that caused it.  Auto-assigned (``r1``, ``r2``, ...)
        when not given.
        """
        req = _Request(
            request_id if request_id is not None else f"r{next(self._rid)}",
            source, fname, args,
            tuple(types) if types is not None else None,
            backend if backend is not None else self.config.backend,
            check if check is not None else self.config.check,
            budget, options, use_prelude,
            time.monotonic() + deadline_s if deadline_s is not None else None)
        if (self.config.predict_admission and budget is not None
                and budget.any_set()):
            self._admit(req)     # may raise ResourceLimitError("predicted-…")
        with self._lock:
            if self._closed:
                raise RuntimeError("BatchExecutor is closed")
            depth = len(self._queue)
            if depth >= self.config.max_queue:
                self.stats.rejected += 1
                raise ResourceLimitError("queue-depth", depth + 1,
                                         self.config.max_queue,
                                         stage="serve:submit",
                                         request=req.rid)
            self._queue.append(req)
            depth += 1
            self.stats.requests += 1
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            self._work.notify()
        p = _obs.PROFILER
        if p is not None:
            p.count("serve", "queue_depth", depth, 0, 0)
        return req.future

    def run_many(self, source: str, fname: str,
                 argsets: Sequence[Sequence[Any]], **kw) -> list:
        """Submit every argument set, wait for all, return results in
        order (re-raising the first error encountered)."""
        futures = [self.submit(source, fname, args, **kw) for args in argsets]
        return [f.result() for f in futures]

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the queue, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work.notify_all()
        for t in self._threads:
            t.join(timeout)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- dispatcher ------------------------------------------------------

    def _worker(self) -> None:
        while True:
            group = self._take_group()
            if group is None:
                return
            if not group:
                continue
            try:
                self._execute_group(group)
            except BaseException as e:  # never kill the worker loop
                for req in group:
                    if not req.future.done():
                        self._finish(req, error=e)

    def _take_group(self) -> Optional[list[_Request]]:
        """The next coalescible group of requests, or None at shutdown.

        Takes the oldest request, then greedily collects every other
        queued request with the same batch key, up to ``max_batch``.
        Single-only requests (budgeted ones) come out alone.

        Idle dispatchers sleep on a condition notified by ``submit`` and
        ``close`` — no polling; ``poll_s`` is only a fallback heartbeat
        (``self._idle_wakeups`` counts its timeouts, pinned near zero by
        ``tests/serve/test_wakeup.py``).
        """
        with self._work:
            while True:
                if self._queue:
                    head = self._queue.popleft()
                    group = [head]
                    key = self._key_of(head)
                    if key is not None and len(self._queue) > 0:
                        kept: deque[_Request] = deque()
                        while self._queue and len(group) < self.config.max_batch:
                            r = self._queue.popleft()
                            if self._key_of(r) == key:
                                group.append(r)
                            else:
                                kept.append(r)
                        kept.extend(self._queue)
                        self._queue = kept
                    return group
                if self._closed:
                    return None
                if not self._work.wait(self.config.poll_s):
                    self._idle_wakeups += 1

    @staticmethod
    def _key_of(req: _Request) -> Optional[tuple]:
        """The coalescing key, or None when the request must run alone."""
        if req.budget is not None and req.budget.any_set():
            return None
        if req.batch_key is None:
            req.batch_key = (cache_key(req.source, req.options,
                                       req.use_prelude),
                             req.fname, req.types, req.backend, req.check)
        return req.batch_key

    # -- predicted-budget admission (docs/ANALYSIS.md, docs/SERVING.md) --

    def _predict(self, req: _Request) -> Optional[dict]:
        """The request's statically predicted cost, or ``None`` when the
        program is unbounded / prediction fails for any reason."""
        try:
            prog = self.cache.get(req.source, req.options, req.use_prelude)
            arg_types = prog.entry_types(req.fname, req.args, req.types)
            fun_entries = prog._fun_value_entries(req.args, arg_types)
            cert = prog.cost_certificate(req.fname, arg_types, fun_entries)
            p = cert.predict(req.args)
        except Exception:
            return None
        return p if p["bounded"] else None

    def _admit(self, req: _Request) -> None:
        """Reject a budgeted request whose *predicted* cost already
        exceeds its budget — before it is queued or executed.  The
        mapping mirrors the interpreter guard's accounting (``work``
        steps and elements, ``8 * work`` bytes per
        ``interp/interpreter.py``); anything unpredictable is admitted
        and left to the runtime guard (the enforcement backstop)."""
        pred = self._predict(req)
        if pred is None:
            return
        b = req.budget
        assert b is not None
        for limit, used, cap in (
                ("predicted-steps", pred["work"], b.max_steps),
                ("predicted-elements", pred["work"], b.max_elements),
                ("predicted-bytes", 8 * pred["work"], b.max_bytes)):
            if cap is not None and used > cap:
                with self._lock:
                    self.stats.predicted_rejections += 1
                p = _obs.PROFILER
                if p is not None:
                    p.count("serve", "predicted_reject", 1, 0, 0)
                raise ResourceLimitError(limit, used, cap,
                                         stage="serve:submit",
                                         function=req.fname,
                                         request=req.rid)

    # -- tiered compilation ----------------------------------------------

    def _group_weight(self, members: list) -> int:
        """Tier-promotion weight of a request group: predicted work
        served, quantized to ``tier_unit_work`` units (each member at
        least 1, so unpredictable keys degrade to request counting)."""
        if self.config.tier_unit_work <= 0:
            return len(members)
        total = 0
        for r in members:
            pred = self._predict(r)
            if pred is None:
                total += 1
            else:
                total += max(1, -(-pred["work"]
                                  // self.config.tier_unit_work))
        return total

    def _tier_backend(self, req: _Request,
                      group: Optional[list] = None) -> str:
        """The back end this request actually runs on: the requested one,
        or ``native`` once its batch key has served ``native_after``
        weight units of *predicted work* on the default ``vector`` back
        end (tiered compilation: cheap NumPy execution until a key
        proves hot, then the compiled kernel path).  A coalesced group
        accounts every member."""
        if req.backend != "vector" or self.config.native_after <= 0:
            return req.backend
        key = self._key_of(req)
        if key is None:                        # budgeted: runs alone, untiered
            return req.backend
        from repro.native import toolchain
        if not toolchain.available():
            return req.backend
        weight = self._group_weight(group if group else [req])
        promoted = False
        with self._lock:
            breaker = self._breakers.get(key)
            n = self._tier_counts.get(key, 0) + weight
            self._tier_counts[key] = n
            if n <= self.config.native_after:
                return req.backend
            if key not in self._tier_promoted:
                self._tier_promoted.add(key)
                self.stats.promotions += 1
                promoted = True
        # breaker state transitions happen outside the queue lock: an
        # open breaker keeps the key on the vector tier until its
        # cooldown admits a half-open probe (docs/RELIABILITY.md)
        if breaker is not None and not breaker.allow():
            return req.backend
        if promoted:
            p = _obs.PROFILER
            if p is not None:
                p.count("serve", "tier_promotion", 1, 0, 0)
        return "native"

    def _breaker_of(self, key):
        from repro.serve.policy import CircuitBreaker
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    failures=self.config.breaker_failures,
                    cooldown_s=self.config.breaker_cooldown_s)
            return breaker

    def _demote(self, key) -> None:
        """Record one native-tier failure for a batch key.  When the
        failure trips the key's circuit breaker the key is *demoted*:
        it keeps serving on the vector back end until the breaker's
        cooldown (if any — the default is permanent, PR-7 style) lets a
        half-open probe re-try the native tier."""
        opened = self._breaker_of(key).record_failure()
        if not opened:
            return
        with self._lock:
            self.stats.demotions += 1
        p = _obs.PROFILER
        if p is not None:
            p.count("serve", "tier_demotion", 1, 0, 0)
            p.count("serve", "breaker_open", 1, 0, 0)

    def _tiered_run(self, prog, req: _Request,
                    group: Optional[list] = None):
        """Run one request (or its coalesced group) on the tier-selected
        back end; a native-tier compile failure demotes the key and
        retries on the requested back end, so tiering never surfaces an
        error the requested back end would not have raised."""
        backend = self._tier_backend(req, group)

        def go(b: str):
            if group is not None:
                return prog.run_batched(req.fname,
                                        [r.args for r in group],
                                        backend=b, types=req.types,
                                        check=req.check)
            return prog.run(req.fname, req.args, backend=b,
                            types=req.types, check=req.check,
                            budget=req.budget)

        if backend == req.backend:
            return go(backend)
        try:
            result = go(backend)
        except NativeCompileError:
            self._demote(req.batch_key)
            return go(req.backend)
        breaker = self._breakers.get(req.batch_key)
        if breaker is not None:    # a half-open probe succeeded: close it
            breaker.record_success()
        return result

    # -- execution -------------------------------------------------------

    def _execute_group(self, group: list[_Request]) -> None:
        group = [r for r in group if not self._expired(r)]
        if not group:
            return
        if len(group) == 1:
            self._execute_single(group[0])
            return
        req = group[0]
        try:
            prog = self.cache.get(req.source, req.options, req.use_prelude)
            # every batch member is one served request: record its lookup
            # too, so the hit-rate measures request-level deduplication
            # rather than group-level (the entry is ready — each extra
            # get is a dict access under the lock)
            for _ in group[1:]:
                self.cache.get(req.source, req.options, req.use_prelude)
            results = self._tiered_run(prog, req, group)
        except ReproError:
            # decompose: attribute failures to the requests that caused
            # them, never to innocent batchmates
            with self._lock:
                self.stats.fallbacks += 1
            for r in group:
                self._execute_single(r)
            return
        self._note_batch(len(group))
        for r, value in zip(group, results):
            self._finish(r, value=value)

    def _execute_single(self, req: _Request) -> None:
        if self._expired(req):
            return
        try:
            prog = self.cache.get(req.source, req.options, req.use_prelude)
            value = self._tiered_run(prog, req)
        except ResourceLimitError as e:
            self._finish(req, error=_name_request(e, req.rid))
            return
        except BaseException as e:
            self._finish(req, error=e)
            return
        with self._lock:
            self.stats.singles += 1
        self._finish(req, value=value)

    def _expired(self, req: _Request) -> bool:
        if req.deadline is not None and time.monotonic() > req.deadline:
            with self._lock:
                self.stats.expired += 1
            self._finish(req, error=ResourceLimitError(
                "timeout", "deadline passed in queue",
                f"{req.deadline:.2f}", stage="serve:queue",
                request=req.rid))
            return True
        return False

    def _note_batch(self, n: int) -> None:
        with self._lock:
            self.stats.batches += 1
            self.stats.batched_requests += n
            if n > self.stats.max_batch:
                self.stats.max_batch = n
            self.stats.batch_sizes[n] = self.stats.batch_sizes.get(n, 0) + 1
        p = _obs.PROFILER
        if p is not None:
            # the batch-size histogram: calls per size live in batch_sizes;
            # the aggregate cell tracks count / total size / largest batch
            p.count("serve", "batch", n, n, 0)
            p.count("serve", f"batch[{n}]", n, n, 0)

    def _finish(self, req: _Request, value: Any = None,
                error: Optional[BaseException] = None) -> None:
        with self._lock:
            if error is not None:
                self.stats.errors += 1
            else:
                self.stats.responses += 1
        if error is not None:
            req.future._set_error(error)
        else:
            req.future._set_value(value)
