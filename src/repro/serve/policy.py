"""Degradation policies for the serving tier: retries, circuit breaking,
and shard placement.

These are the pure decision pieces the fault-tolerant pool
(:mod:`repro.serve.pool`) and the thread executor
(:mod:`repro.serve.batcher`) share — no processes, no queues, no clocks
of their own, so every policy is unit-testable in isolation
(``tests/serve/test_policy.py``):

* :class:`RetryPolicy` — bounded per-request retries with exponential,
  jittered backoff.  Retries are for *idempotent* work only: a request
  carrying a :class:`~repro.guard.Budget` is never retried, because a
  second run would charge the same budget twice (the pool enforces
  this, see docs/RELIABILITY.md).
* :class:`CircuitBreaker` — the closed → open → half-open automaton
  that generalizes the serve layer's permanent native-tier demotion
  (PR 7) into a recoverable one: after ``failures`` consecutive
  failures the breaker *opens* (callers stop trying), after
  ``cooldown_s`` it lets exactly one *probe* through (half-open), and
  the probe's outcome either closes it again or re-opens it with an
  escalated cooldown.  ``cooldown_s=None`` keeps the legacy behavior —
  open forever, i.e. a permanent demotion.
* :func:`shard_of` / :class:`HashRing` — stable (non-salted) consistent
  hashing of batch keys onto worker slots, so one program key always
  lands on the same worker and its compile caches stay hot.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "CircuitBreaker", "HashRing", "shard_of",
           "stable_hash"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential, jittered backoff.

    ``max_retries`` is the number of *re*-executions allowed after the
    first attempt (0 disables retrying).  The ``attempt``-th retry backs
    off ``base_backoff_s * multiplier**(attempt-1)`` seconds, capped at
    ``max_backoff_s``, with a uniform ±``jitter`` fraction applied so a
    burst of victims of one crash does not re-arrive in lockstep.
    """

    max_retries: int = 1
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def allows(self, attempts: int) -> bool:
        """May a request that has already run ``attempts`` times run
        again?"""
        return attempts <= self.max_retries

    def backoff_s(self, attempt: int,
                  rng: Optional[random.Random] = None) -> float:
        """Delay before the ``attempt``-th retry (1-based)."""
        base = min(self.base_backoff_s * self.multiplier ** max(0, attempt - 1),
                   self.max_backoff_s)
        if self.jitter <= 0:
            return base
        r = (rng or random).random()
        return base * (1.0 + self.jitter * (2.0 * r - 1.0))


class CircuitBreaker:
    """Closed → open → half-open breaker over one failure domain.

    Thread-safe.  The clock is injectable for tests (``clock`` must be a
    monotonic ``() -> float``).

    * **closed** — traffic flows; ``failures`` *consecutive* failures
      trip the breaker.
    * **open** — :meth:`allow` answers False until ``cooldown_s`` has
      elapsed (forever when ``cooldown_s`` is None — the permanent
      demotion of PR 7).
    * **half-open** — after the cooldown exactly one caller is let
      through as a probe; its success closes the breaker, its failure
      re-opens it with the cooldown scaled by ``escalation`` (capped at
      ``max_cooldown_s``).
    """

    def __init__(self, failures: int = 3,
                 cooldown_s: Optional[float] = 5.0,
                 escalation: float = 2.0,
                 max_cooldown_s: float = 60.0,
                 clock=time.monotonic):
        if failures < 1:
            raise ValueError("failures must be >= 1")
        self.failures = failures
        self.cooldown_s = cooldown_s
        self.escalation = escalation
        self.max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        self._current_cooldown = cooldown_s if cooldown_s is not None else 0.0
        self.opens = 0          #: transitions into the open state
        self.probes = 0         #: half-open probes admitted

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  An open breaker whose cooldown
        elapsed transitions to half-open and admits exactly one probe."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "half-open":
                return False                 # one probe already in flight
            if self.cooldown_s is None:      # permanent: never re-probe
                return False
            if self._clock() - self._opened_at >= self._current_cooldown:
                self._state = "half-open"
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive = 0
            if self.cooldown_s is not None:
                self._current_cooldown = self.cooldown_s

    def record_failure(self) -> bool:
        """Record one failure; returns True when this failure *opened*
        the breaker (so callers can count demotions / emit the
        ``serve.breaker_open`` counter exactly once per trip)."""
        with self._lock:
            if self._state == "half-open":   # failed probe: re-open, escalate
                self._state = "open"
                self._opened_at = self._clock()
                self._current_cooldown = min(
                    self._current_cooldown * self.escalation,
                    self.max_cooldown_s)
                self.opens += 1
                return True
            self._consecutive += 1
            if self._state == "closed" and self._consecutive >= self.failures:
                self._state = "open"
                self._opened_at = self._clock()
                self.opens += 1
                return True
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {"state": self._state, "opens": self.opens,
                    "probes": self.probes,
                    "consecutive_failures": self._consecutive}


def stable_hash(key) -> int:
    """A process-stable 64-bit hash of a (possibly nested) key.  Python's
    builtin ``hash`` is salted per process, which would scatter one
    program key across different shards in parent and tests — so shard
    placement uses SHA-256 over the ``repr`` instead."""
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of keys onto ``slots`` worker indices.

    Each slot owns ``replicas`` points on a 64-bit ring; a key maps to
    the first point clockwise from its hash.  With a fixed slot count
    this is just a stable sharding function; the ring form keeps the
    mapping stable under future slot addition/removal (only ~1/N of keys
    move), which plain modulo would not.
    """

    def __init__(self, slots: int, replicas: int = 32):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = slots
        points = []
        for slot in range(slots):
            for r in range(replicas):
                points.append((stable_hash(("ring", slot, r)), slot))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def lookup(self, key) -> int:
        h = stable_hash(key)
        i = bisect.bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]


def shard_of(key, slots: int) -> int:
    """One-shot stable shard assignment (modulo a stable hash) — used
    where a full ring is overkill."""
    return stable_hash(key) % slots
