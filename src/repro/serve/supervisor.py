"""The supervision side of the multi-process serving pool.

:class:`WorkerHandle` is the parent's book-keeping for one worker slot:
the live process (if any), its private request queue, the requests
currently in flight on it, heartbeat freshness, and the respawn backoff
state.  :class:`Supervisor` is the health-check thread of a
:class:`~repro.serve.pool.WorkerPool`; each tick it

* detects **dead workers** (process no longer alive — a nonzero exit,
  a segfault, an ``os._exit`` from a native kernel) and routes them
  through the pool's single failure funnel;
* detects **lost heartbeats** (a wedged worker whose process is alive
  but silent past ``heartbeat_timeout_s``) and kills it;
* enforces **deadline kills**: a request whose deadline passed more than
  ``deadline_grace_s`` ago while in flight gets its worker killed, the
  overrunning request fails with a request-naming
  :class:`~repro.errors.ResourceLimitError`, and innocent batchmates are
  requeued (see docs/RELIABILITY.md — the containment contract);
* **respawns** dead workers with exponential, jittered backoff
  (reset after ``backoff_reset_s`` of stable uptime), so a crash-looping
  kernel cannot pin a CPU respawning;
* releases **due retries** back onto their shard's pending queue.

The supervisor only *decides*; every state change goes through pool
methods (``_worker_failure``, ``_spawn_worker``, ``_requeue``) so there
is exactly one writer protocol for the shared structures.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict, deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.pool import WorkerPool, _PoolRequest

__all__ = ["WorkerHandle", "Supervisor"]


class WorkerHandle:
    """Parent-side state for one worker slot (``w0``, ``w1``, ...).

    ``generation`` increments on every (re)spawn; messages from an older
    generation of the slot (a killed process whose queued responses
    arrive late) are discarded by the collector.
    """

    def __init__(self, wid: int):
        self.wid = wid
        self.name = f"w{wid}"
        self.proc = None                    # multiprocessing.Process | None
        self.req_q = None                   # per-worker request queue
        self.resp_q = None                  # per-generation response queue
        self.generation = 0
        self.state = "init"                 # init|starting|up|backoff|stopped
        self.last_hb = 0.0                  # parent monotonic at last beat
        self.started_at = 0.0
        self.pending: deque = deque()       # sharded, not yet dispatched
        self.inflight: "OrderedDict[str, _PoolRequest]" = OrderedDict()
        self.dispatched_at = 0.0
        self.restarts = 0
        self.backoff_s = 0.0                # next respawn delay
        self.respawn_at = 0.0

    def healthy(self) -> bool:
        return self.state == "up"


class Supervisor(threading.Thread):
    """The pool's health-check loop (daemon thread)."""

    def __init__(self, pool: "WorkerPool"):
        super().__init__(name="repro-pool-supervisor", daemon=True)
        self.pool = pool
        self.rng = random.Random(0xC0FFEE)
        self._halt = threading.Event()

    def shutdown(self) -> None:
        self._halt.set()

    def run(self) -> None:
        cfg = self.pool.config
        while not self._halt.wait(cfg.supervise_s):
            try:
                self.tick()
            except Exception:               # never die silently mid-flight
                if self.pool.closed:
                    return

    # -- one health-check pass -------------------------------------------

    def tick(self) -> None:
        pool = self.pool
        cfg = pool.config
        now = time.monotonic()
        for handle in pool.handles:
            state = handle.state
            if state in ("starting", "up"):
                proc = handle.proc
                if proc is not None and not proc.is_alive():
                    pool._worker_failure(
                        handle, "exit",
                        detail=f"exit code {proc.exitcode}")
                    continue
                if state == "up" and \
                        now - handle.last_hb > cfg.heartbeat_timeout_s:
                    pool._worker_failure(
                        handle, "lost-heartbeat",
                        detail=f"no heartbeat for "
                               f"{now - handle.last_hb:.2f}s")
                    continue
                overrun = self._deadline_victims(handle, now)
                if overrun:
                    pool._worker_failure(handle, "deadline",
                                         deadline_victims=overrun)
                    continue
                if state == "up" and handle.backoff_s and \
                        now - handle.started_at > cfg.backoff_reset_s:
                    handle.backoff_s = 0.0      # stable again: forget crashes
            elif state == "backoff" and now >= handle.respawn_at:
                pool._spawn_worker(handle)
        pool._release_due_retries(now)
        pool._sweep_deadlines(now)

    def _deadline_victims(self, handle: WorkerHandle,
                          now: float) -> list[str]:
        """Request ids in flight on ``handle`` whose deadline passed more
        than ``deadline_grace_s`` ago — grounds for a deadline kill."""
        grace = self.pool.config.deadline_grace_s
        with self.pool.lock:
            return [rid for rid, req in handle.inflight.items()
                    if req.deadline is not None
                    and now > req.deadline + grace]

    # -- respawn backoff ---------------------------------------------------

    def next_backoff(self, handle: WorkerHandle) -> float:
        """Advance and return the slot's respawn delay: exponential from
        ``respawn_backoff_s`` to ``respawn_backoff_max_s`` with a uniform
        ±``respawn_jitter`` fraction."""
        cfg = self.pool.config
        base = handle.backoff_s
        base = cfg.respawn_backoff_s if base <= 0 else \
            min(base * 2.0, cfg.respawn_backoff_max_s)
        handle.backoff_s = base
        if cfg.respawn_jitter <= 0:
            return base
        return base * (1.0 + cfg.respawn_jitter * (2.0 * self.rng.random() - 1.0))
