"""The VCODE instruction set.

A function body is a linear list of instructions over virtual registers
``r0, r1, ...``.  All data-parallel behaviour lives in :class:`Prim` (one
vector operation — the depth annotation selects the T1 path exactly as in
the tree evaluator); control flow is depth-0 only, as guaranteed by the
transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lang import types as T

Reg = int


@dataclass(frozen=True)
class Instr:
    """Base instruction."""


@dataclass(frozen=True)
class Const(Instr):
    """dst <- integer/boolean literal"""
    dst: Reg
    value: Any

    def __str__(self) -> str:
        return f"r{self.dst} = const {self.value}"


@dataclass(frozen=True)
class FunConst(Instr):
    """dst <- function value (by name)"""
    dst: Reg
    name: str

    def __str__(self) -> str:
        return f"r{self.dst} = fun {self.name}"


@dataclass(frozen=True)
class Copy(Instr):
    dst: Reg
    src: Reg

    def __str__(self) -> str:
        return f"r{self.dst} = r{self.src}"


@dataclass(frozen=True)
class Prim(Instr):
    """dst <- fn^depth(args) — one vector-model operation.

    ``fn`` is a primitive name (including the internal ``__seq_cons``,
    ``__tuple_cons``, ``__tuple_extract_k``, ``__any``, ``__empty``,
    ``__rep`` and the 4.5 ``__seq_index_shared``).
    """
    dst: Reg
    fn: str
    args: tuple[Reg, ...]
    depth: int
    arg_depths: tuple[int, ...]
    type: Optional[T.Type] = None

    def __str__(self) -> str:
        a = ", ".join(f"r{x}" for x in self.args)
        sup = f"^{self.depth}" if self.depth else ""
        return f"r{self.dst} = {self.fn}{sup}({a})"


@dataclass(frozen=True)
class Call(Instr):
    """dst <- fname(args) at depth 0 (a compiled user function)."""
    dst: Reg
    fname: str
    args: tuple[Reg, ...]

    def __str__(self) -> str:
        a = ", ".join(f"r{x}" for x in self.args)
        return f"r{self.dst} = call {self.fname}({a})"


@dataclass(frozen=True)
class CallInd(Instr):
    """dst <- dynamic application of a function value / function frame."""
    dst: Reg
    fun: Reg
    args: tuple[Reg, ...]
    depth: int
    fun_depth: int
    arg_depths: tuple[int, ...]
    type: Optional[T.Type] = None

    def __str__(self) -> str:
        a = ", ".join(f"r{x}" for x in self.args)
        sup = f"^{self.depth}" if self.depth else ""
        return f"r{self.dst} = apply{sup} r{self.fun}({a})"


@dataclass(frozen=True)
class Jump(Instr):
    label: str

    def __str__(self) -> str:
        return f"jump {self.label}"


@dataclass(frozen=True)
class JumpIfNot(Instr):
    cond: Reg
    label: str

    def __str__(self) -> str:
        return f"ifnot r{self.cond} jump {self.label}"


@dataclass(frozen=True)
class Label(Instr):
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class Ret(Instr):
    src: Reg

    def __str__(self) -> str:
        return f"ret r{self.src}"


@dataclass
class VFunction:
    """One compiled function."""

    name: str
    params: list[Reg]
    param_types: list[T.Type]
    ret_type: T.Type
    instrs: list[Instr]
    nregs: int
    labels: dict[str, int] = field(default_factory=dict)

    def finalize(self) -> None:
        """Index label positions for the VM."""
        self.labels = {i.name: pc for pc, i in enumerate(self.instrs)
                       if isinstance(i, Label)}

    def __str__(self) -> str:
        ps = ", ".join(f"r{p}" for p in self.params)
        lines = [f"function {self.name}({ps})  ; {self.nregs} regs"]
        for i in self.instrs:
            pad = "" if isinstance(i, Label) else "  "
            lines.append(pad + str(i))
        return "\n".join(lines)


@dataclass
class VProgram:
    """A compiled VCODE program: all functions, entry by name."""

    functions: dict[str, VFunction]

    def __getitem__(self, name: str) -> VFunction:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())

    @property
    def instruction_count(self) -> int:
        return sum(len(f.instrs) for f in self.functions.values())
