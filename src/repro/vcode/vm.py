"""The VCODE virtual machine.

Executes :class:`VProgram` functions over vector values, recording an
op-width *trace*: one ``(opname, element_count)`` entry per executed vector
operation.  The trace is the input to the machine simulator
(:mod:`repro.machine`), which charges each length-n vector op
``ceil(n/P)`` cycles — the standard vector-model cost mapping.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import EvalError, VMError
from repro.guard import faults as _flt
from repro.guard import runtime as _guard
from repro.guard.runtime import scoped_recursion_limit
from repro.obs import runtime as _obs
from repro.vcode.instructions import (
    Call, CallInd, Const, Copy, FunConst, Jump, JumpIfNot, Label, Prim, Ret,
    VFunction, VProgram,
)
from repro.vector import ops as O
from repro.vector.convert import from_python, to_python
from repro.vector.nested import Value, VFun, first_leaf
from repro.vexec.apply import Applier


def _desc_arrays(v: Value) -> list:
    """Descriptor arrays of every NestedVector leaf of ``v`` (fault-site
    candidates; only reached when an injector is armed)."""
    from repro.vector.nested import NestedVector, VTuple
    if isinstance(v, NestedVector):
        return list(v.descs)
    if isinstance(v, VTuple):
        out: list = []
        for x in v.items:
            out.extend(_desc_arrays(x))
        return out
    return []


class VM:
    """Executes VCODE programs."""

    def __init__(self, program: VProgram, record_trace: bool = True,
                 max_recursion: int = 200_000, fusion=None, native=None):
        self.program = program
        self.trace: list[tuple[str, int]] = []
        self._record = record_trace
        self._max_recursion = max_recursion
        self.applier = Applier(
            call_user=self.call_raw,
            is_user=lambda n: n in program.functions,
            observe=self._observe if record_trace else None,
            fusion=fusion,
            native=native)

    def _observe(self, op: str, n: int) -> None:
        self.trace.append((op, n))
        p = _obs.PROFILER
        if p is not None:
            # the width the machine model is charged for this op
            p.count("vm", op, n, n, 0)

    def reset_trace(self) -> None:
        self.trace = []

    # -- public ------------------------------------------------------------------

    def call(self, fname: str, pyargs: list) -> Any:
        """Run a function on Python values; returns Python values."""
        f = self._fn(fname)
        if len(pyargs) != len(f.params):
            raise EvalError(f"{fname} expects {len(f.params)} args")
        with scoped_recursion_limit(self._max_recursion), \
                _obs.span(f"vcode-vm:{fname}"):
            vargs = [from_python(a, t) for a, t in zip(pyargs, f.param_types)]
            out = self.call_raw(fname, vargs)
            return to_python(out, f.ret_type)

    def call_raw(self, fname: str, vargs: list[Value]) -> Value:
        f = self._fn(fname)
        g = _guard.GUARD
        if g is None and _flt.INJECTOR is None:
            return self._run(f, vargs)
        if g is not None:
            g.enter_call(fname, sum(O.value_size(a) for a in vargs)
                         if g.track_frames else 0)
        try:
            result = self._run(f, vargs)
        finally:
            if g is not None:
                g.exit_call()
        if _flt.INJECTOR is not None:
            _flt.visit("vm.call.desc-bump", _desc_arrays(result))
            _flt.visit("vm.call.desc-negate", _desc_arrays(result))
        if g is not None and g.check and not g.skip(f"call:{fname}"):
            g.check_value(f"vm:call:{fname}", result)
        return result

    def _fn(self, name: str) -> VFunction:
        try:
            return self.program[name]
        except KeyError:
            raise VMError(f"no compiled function {name!r}") from None

    # -- the interpreter loop ---------------------------------------------------------

    def _run(self, f: VFunction, vargs: list[Value]) -> Value:
        regs: list[Any] = [None] * f.nregs
        for r, v in zip(f.params, vargs):
            regs[r] = v
        pc = 0
        instrs = f.instrs
        n = len(instrs)
        prof = _obs.PROFILER
        guard = _guard.GUARD
        while pc < n:
            i = instrs[pc]
            pc += 1
            if prof is not None:
                prof.count("vm", "instr:" + type(i).__name__)
            if guard is not None:
                guard.tick(f"vm:{f.name}")
            if isinstance(i, Const):
                regs[i.dst] = i.value
            elif isinstance(i, Copy):
                regs[i.dst] = regs[i.src]
            elif isinstance(i, FunConst):
                regs[i.dst] = VFun(i.name)
            elif isinstance(i, Prim):
                result = self._prim(i, regs)
                if _flt.INJECTOR is not None:
                    _flt.visit("vm.prim.desc-bump", _desc_arrays(result))
                    _flt.visit("vm.prim.desc-negate", _desc_arrays(result))
                if guard is not None and guard.check \
                        and not guard.skip(f"prim:{i.fn}"):
                    guard.check_value(f"vm:prim:{i.fn}", result)
                regs[i.dst] = result
            elif isinstance(i, Call):
                # fault sites + result check live in call_raw (shared with
                # applier-routed user calls)
                regs[i.dst] = self.call_raw(i.fname, [regs[a] for a in i.args])
            elif isinstance(i, CallInd):
                regs[i.dst] = self.applier.apply_dynamic(
                    regs[i.fun], [regs[a] for a in i.args],
                    list(i.arg_depths), i.depth, i.fun_depth, i.type)
            elif isinstance(i, JumpIfNot):
                c = regs[i.cond]
                if not isinstance(c, (bool, np.bool_)):
                    raise EvalError(f"branch condition is not a scalar bool: {c!r}")
                if not c:
                    pc = f.labels[i.label]
            elif isinstance(i, Jump):
                pc = f.labels[i.label]
            elif isinstance(i, Label):
                pass
            elif isinstance(i, Ret):
                return regs[i.src]
            else:  # pragma: no cover
                raise VMError(f"unknown instruction {i!r}")
        raise VMError(f"{f.name}: fell off the end without ret")

    def _prim(self, i: Prim, regs: list[Any]) -> Value:
        args = [regs[a] for a in i.args]
        if i.fn == "__any":
            leaf = first_leaf(args[0])
            if self._record:
                self._observe("any", max(1, int(leaf.values.size)))
            return bool(leaf.values.any())
        if i.fn == "__empty":
            return O.empty_frame_like(first_leaf(args[0]), i.depth, i.type)
        if i.fn == "__seq_cons" and i.depth == 0:
            if self._record:
                self._observe("seq_cons", max(1, len(args)))
            return O.seq_cons0(args, i.type)
        return self.applier.apply_named(i.fn, args, list(i.arg_depths),
                                        i.depth, i.type)
