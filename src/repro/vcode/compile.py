"""Compilation of transformed (iterator-free) P functions to VCODE.

Straightforward ANF-style linearization: every sub-expression lands in a
fresh virtual register.  Conditionals (depth-0 only, by construction)
become diamonds with a join register — keeping the laziness the R2d
emptiness guards rely on for recursion termination.
"""

from __future__ import annotations

import itertools

from repro.errors import VMError
from repro.lang import ast as A
from repro.lang import builtins as B
from repro.transform.pipeline import TransformedProgram
from repro.vcode.instructions import (
    Call, CallInd, Const, Copy, FunConst, Instr, Jump, JumpIfNot, Label,
    Prim, Reg, Ret, VFunction, VProgram,
)


class _FnCompiler:
    def __init__(self, tp: TransformedProgram, name: str):
        self.tp = tp
        self.name = name
        self.instrs: list[Instr] = []
        self._reg = itertools.count()
        self._label = itertools.count()

    def fresh(self) -> Reg:
        return next(self._reg)

    def fresh_label(self, base: str) -> str:
        return f".{base}{next(self._label)}"

    def emit(self, i: Instr) -> None:
        self.instrs.append(i)

    def compile(self) -> VFunction:
        d = self.tp.defs[self.name]
        env = {p: self.fresh() for p in d.params}
        out = self.compile_expr(d.body, env)
        self.emit(Ret(out))
        fn = VFunction(
            name=self.name,
            params=[env[p] for p in d.params],
            param_types=list(d.param_types or []),
            ret_type=d.ret_type,
            instrs=self.instrs,
            nregs=next(self._reg),
        )
        fn.finalize()
        return fn

    # -- expressions -----------------------------------------------------------

    def compile_expr(self, e: A.Expr, env: dict[str, Reg]) -> Reg:
        if isinstance(e, (A.IntLit, A.BoolLit, A.FloatLit)):
            dst = self.fresh()
            self.emit(Const(dst, e.value))
            return dst
        if isinstance(e, A.Var):
            if e.name in env:
                return env[e.name]
            if e.name in self.tp.defs or e.name in self.tp.typed.mono_defs \
                    or B.is_builtin(e.name):
                dst = self.fresh()
                self.emit(FunConst(dst, e.name))
                return dst
            raise VMError(f"unbound variable {e.name!r} while compiling {self.name}")
        if isinstance(e, A.Let):
            r = self.compile_expr(e.bound, env)
            env2 = dict(env)
            env2[e.var] = r
            return self.compile_expr(e.body, env2)
        if isinstance(e, A.If):
            rc = self.compile_expr(e.cond, env)
            dst = self.fresh()
            lelse = self.fresh_label("else")
            lend = self.fresh_label("end")
            self.emit(JumpIfNot(rc, lelse))
            rt = self.compile_expr(e.then, env)
            self.emit(Copy(dst, rt))
            self.emit(Jump(lend))
            self.emit(Label(lelse))
            re_ = self.compile_expr(e.els, env)
            self.emit(Copy(dst, re_))
            self.emit(Label(lend))
            return dst
        if isinstance(e, A.SeqLit):
            args = tuple(self.compile_expr(x, env) for x in e.items)
            dst = self.fresh()
            self.emit(Prim(dst, "__seq_cons", args, 0,
                           tuple(0 for _ in args), e.type))
            return dst
        if isinstance(e, A.TupleLit):
            args = tuple(self.compile_expr(x, env) for x in e.items)
            dst = self.fresh()
            self.emit(Prim(dst, "__tuple_cons", args, 0,
                           tuple(0 for _ in args), e.type))
            return dst
        if isinstance(e, A.TupleExtract):
            src = self.compile_expr(e.tup, env)
            dst = self.fresh()
            self.emit(Prim(dst, f"__tuple_extract_{e.index}", (src,), 0, (0,),
                           e.type))
            return dst
        if isinstance(e, A.ExtCall):
            args = tuple(self.compile_expr(x, env) for x in e.args)
            dst = self.fresh()
            if e.depth == 0 and e.fn in self.tp.defs:
                self.emit(Call(dst, e.fn, args))
            else:
                self.emit(Prim(dst, e.fn, args, e.depth,
                               tuple(e.arg_depths), e.type))
            return dst
        if isinstance(e, A.IndirectCall):
            fun = self.compile_expr(e.fun, env)
            args = tuple(self.compile_expr(x, env) for x in e.args)
            dst = self.fresh()
            self.emit(CallInd(dst, fun, args, e.depth, e.fun_depth,
                              tuple(e.arg_depths), e.type))
            return dst
        raise VMError(f"cannot compile node {type(e).__name__} "
                      "(was the program transformed?)")


def compile_function(tp: TransformedProgram, name: str) -> VFunction:
    """Compile a single transformed function."""
    return _FnCompiler(tp, name).compile()


def compile_transformed(tp: TransformedProgram,
                        lint: bool = True) -> VProgram:
    """Compile every function of a transformed program.

    ``lint`` (default on) runs the VCODE lint (:mod:`repro.analysis.vlint`)
    over the output and raises a stage-named
    :class:`~repro.errors.AnalysisError` on any hard finding — register
    use before definition, bad jump targets, missing returns, call-arity
    mismatches.  Warnings (dead vector results, unreferenced labels) are
    collected by ``repro analyze``, not here.
    """
    vp = VProgram({name: compile_function(tp, name) for name in tp.defs})
    if lint:
        from repro.analysis.vlint import check_program
        from repro.obs import runtime as _obs
        with _obs.span("analyze:vlint"):
            check_program(vp)
    return vp
