"""CVL-style C code emission (the paper's section 5 shows the C that KIDS
generates from the transformed program).

We emit compilable-looking C over an abstract ``vec_p`` handle type and a
``cvl_*`` call per vector operation — the same 1:1 instruction mapping the
VCODE VM executes.  Rule T1 appears literally in the output: every
depth >= 2 primitive is an ``cvl_extract`` / depth-1 call / ``cvl_insert``
triple.  No C toolchain or CVL exists in this environment, so this output
is presentation-level (executed semantics come from the VM); its *shape*
is what benchmark E6 checks against the paper.
"""

from __future__ import annotations

from repro.vcode.instructions import (
    Call, CallInd, Const, Copy, FunConst, Jump, JumpIfNot, Label, Prim, Ret,
    VFunction, VProgram,
)

_HEADER = """\
/* Generated from transformed Proteus program: P -> V translation.
 * vec_p: handle to a flat vector (descriptor or value vector) in the
 * CVL-style vector library; every cvl_* call is one vector operation. */
#include "cvl.h"
"""


def _cname(name: str) -> str:
    """C identifier for a (possibly mangled) function name."""
    return (name.replace("^", "_ext").replace("$", "_v").replace("%", "_u")
            .replace(".", "_"))


def emit_function(f: VFunction, program: VProgram | None = None) -> str:
    user_exts = set()
    if program is not None:
        user_exts = {n[:-2] for n in program.functions if n.endswith("^1")}
    params = ", ".join(f"vec_p r{p}" for p in f.params)
    lines = [f"vec_p {_cname(f.name)}({params})", "{"]
    declared = set(f.params)

    def dst(r: int) -> str:
        if r in declared:
            return f"r{r}"
        declared.add(r)
        return f"vec_p r{r}"

    for i in f.instrs:
        if isinstance(i, Const):
            lines.append(f"  {dst(i.dst)} = cvl_scalar({str(i.value).lower()});")
        elif isinstance(i, FunConst):
            lines.append(f"  {dst(i.dst)} = cvl_funval({_cname(i.name)});")
        elif isinstance(i, Copy):
            lines.append(f"  {dst(i.dst)} = r{i.src};")
        elif isinstance(i, Prim):
            lines.extend(_emit_prim(i, dst, user_exts))
        elif isinstance(i, Call):
            args = ", ".join(f"r{a}" for a in i.args)
            lines.append(f"  {dst(i.dst)} = {_cname(i.fname)}({args});")
        elif isinstance(i, CallInd):
            args = ", ".join(f"r{a}" for a in i.args)
            lines.append(
                f"  {dst(i.dst)} = cvl_apply_frame(r{i.fun}, {i.depth}, {args});")
        elif isinstance(i, JumpIfNot):
            lines.append(f"  if (!cvl_bool(r{i.cond})) goto {_label(i.label)};")
        elif isinstance(i, Jump):
            lines.append(f"  goto {_label(i.label)};")
        elif isinstance(i, Label):
            lines.append(f"{_label(i.name)}:;")
        elif isinstance(i, Ret):
            lines.append(f"  return r{i.src};")
    lines.append("}")
    return "\n".join(lines)


def _label(l: str) -> str:
    return "L" + l.strip(".").replace(".", "_")


def _emit_prim(i: Prim, dst, user_exts=frozenset()) -> list[str]:
    args = [f"r{a}" for a in i.args]
    if i.fn == "__seq_index_segshared":
        # generalized 4.5: segmented gather, source one level shallower
        return [f"  {dst(i.dst)} = cvl_seg_index({args[0]}, {args[1]}, "
                f"{i.depth});  /* {i} */"]
    is_user = i.fn in user_exts
    name = _cname(i.fn) + "_ext1" if is_user else f"cvl_{i.fn.strip('_')}"
    if i.depth <= 1:
        call = (f"{name}({', '.join(args)})" if is_user
                else f"{name}_{i.depth}({', '.join(args)})")
        return [f"  {dst(i.dst)} = {call};  /* {i} */"]
    # rule T1, literally: extract to depth 1, apply f^1, insert the frame
    out = []
    flat = []
    frame = None
    for a, fd in zip(args, i.arg_depths):
        if fd == i.depth:
            flat.append(f"cvl_extract({a}, {i.depth})")
            if frame is None:
                frame = a
        else:
            flat.append(f"cvl_replicate({a})")
    call = (f"{name}({', '.join(flat)})" if is_user
            else f"{name}_1({', '.join(flat)})")
    out.append(f"  {dst(i.dst)} = cvl_insert({call}, {frame}, {i.depth});"
               f"  /* {i} via T1 */")
    return out


def _tree_leaf_count(tree) -> int:
    if tree[0] == "arg":
        return tree[1] + 1
    return max((_tree_leaf_count(c) for c in tree[2]), default=0)


def emit_native_kernels(fusion, omp_threads=None) -> str:
    """Real-codegen section: the C kernel the native engine compiles for
    each fused region of a :class:`~repro.transform.fuse.FusionRegistry`.

    The engine specializes each kernel at run time to the observed leaf
    kinds and hoisted (loop-invariant scalar) operands; this presentation
    emits the all-``int``-vector specialization, which is the shape the
    kernel cache stores (see docs/NATIVE.md for a line-by-line reading).
    With ``omp_threads`` the kernels are the OpenMP multicore variants
    the parallel backend compiles for that thread count
    (docs/PARALLEL.md)."""
    from repro.native.codegen import emit_fused_source, render_tree
    tag = "" if omp_threads is None else f", OpenMP x{omp_threads}"
    parts = [
        f"/* --- native fused kernels (repro.native real codegen{tag})"
        " --- */"]
    for name, tree in sorted(fusion.trees.items()):
        k = _tree_leaf_count(tree)
        kinds = ["int"] * k
        hoisted = [False] * k
        parts.append(f"/* {name}: {render_tree(tree, hoisted)} */")
        parts.append(emit_fused_source(tree, kinds, hoisted, name=name,
                                       omp_threads=omp_threads))
    return "\n\n".join(parts)


def emit_program(p: VProgram, fusion=None, omp_threads=None) -> str:
    """Full C translation unit for a compiled VCODE program.

    With ``fusion`` (a populated FusionRegistry), the presentation-level
    CVL section is followed by the *compilable* native kernels the fused
    ops lower to — the real-codegen mode of the emitter
    (``omp_threads`` selects their OpenMP multicore variants)."""
    protos = []
    for f in p.functions.values():
        params = ", ".join(f"vec_p r{x}" for x in f.params)
        protos.append(f"vec_p {_cname(f.name)}({params});")
    bodies = [emit_function(f, p) for f in p.functions.values()]
    out = (_HEADER + "\n" + "\n".join(protos) + "\n\n"
           + "\n\n".join(bodies) + "\n")
    if fusion is not None and fusion.trees:
        out += "\n" + emit_native_kernels(fusion, omp_threads) + "\n"
    return out
