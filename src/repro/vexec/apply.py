"""Shared application machinery for the vector back ends.

Both the tree-walking :class:`VectorEvaluator` and the VCODE virtual machine
apply depth-``d`` parallel extensions the same way (rule T1, argument
replication, section-4.5 shared paths, group dispatch over function
frames).  This module hosts that logic once; back ends supply a
``call_user(name, vector_args) -> Value`` callback for user-function bodies
and an optional ``observe(op, width)`` hook for the machine simulator.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import EvalError, VMError
from repro.lang import builtins as B
from repro.lang import types as T
from repro.vector import ops as O
from repro.vector import segments as S
from repro.vector.extract_insert import extract, insert
from repro.vector.nested import (
    FUNTABLE, NestedVector, Value, VFun, VTuple, first_leaf,
)
from repro.vector.segments import INT_DTYPE


#: segmented primitives the native engine may claim (see repro.native)
_NATIVE_SEGMENTED = frozenset(
    ("sum", "maxval", "minval", "anytrue", "alltrue",
     "plus_scan", "max_scan"))


class Applier:
    """Applies named and dynamic parallel extensions on vector values.

    When a ``native`` engine (see :mod:`repro.native.engine`) is supplied,
    fused elementwise ops and segmented reductions/scans are offered to it
    first; the engine either runs a compiled C kernel (bit-identical by
    contract) or returns None, and the NumPy path below serves the call
    unchanged.  Fused ops are intercepted *before* argument replication so
    depth-0 operands reach the kernel as hoisted scalars.
    """

    def __init__(self, call_user: Callable[[str, list[Value]], Value],
                 is_user: Callable[[str], bool],
                 observe: Optional[Callable[[str, int], None]] = None,
                 fusion=None, native=None):
        self._call_user = call_user
        self._is_user = is_user
        self._observe = observe
        self._fusion = fusion
        self._native = native

    def observe(self, op: str, n: int) -> None:
        if self._observe is not None:
            self._observe(op, n)

    # -- named extension (ExtCall) ------------------------------------------------

    def apply_named(self, name: str, args: list[Value], arg_depths: list[int],
                    depth: int, node_type: Optional[T.Type]) -> Value:
        """Apply ``name^depth`` (T1 reduces depth >= 2 to the depth-1 form)."""
        if depth == 0:
            return self.apply0(name, args, node_type)

        if name == "__seq_index_segshared":
            return self._apply_segshared(args, depth)

        shared = name == "__seq_index_shared"
        if shared:
            name = "seq_index"
        flat: list[Optional[Value]] = []
        frame_src: Optional[Value] = None
        for a, fd in zip(args, arg_depths):
            if fd == depth:
                flat.append(extract(a, depth) if depth >= 2 else a)
                if frame_src is None:
                    frame_src = a
            else:
                flat.append(None)
        if frame_src is None:
            raise VMError(f"{name}^{depth}: no full-depth argument")
        n = O.frame_len(next(f for f in flat if f is not None))
        if self._native is not None and not shared \
                and self._fusion is not None and name in self._fusion:
            # native fused kernel: depth-0 holes in ``flat`` stay scalar
            # (hoisted into the kernel), so no replication is charged
            result = self._native.apply_fused(
                name, self._fusion.trees[name], flat, args, n)
            if result is not None:
                self.observe(name, max(n, O.value_size(result)))
                if depth >= 2:
                    result = insert(result, frame_src, depth)
                return result
        for i, f in enumerate(flat):
            if f is None:
                if shared and i == 0:
                    flat[i] = args[i]  # section 4.5: keep the source shared
                else:
                    flat[i] = O.broadcast_to_count(args[i], n)
                    # replication is a real distribute op in CVL: charge it
                    self.observe("replicate", O.value_size(flat[i]))

        result = self.apply1(name, flat, shared)
        # only primitives are vector ops; a user extension's body reports
        # its own ops (charging the call too would double-count).  An op's
        # width is the larger of its frame length and its output size
        # (producers like range1 touch every element they create).
        if shared or name in O.KERNELS or name.startswith("__tuple") \
                or (self._fusion is not None and name in self._fusion):
            self.observe(name, max(n, O.value_size(result)))
        if depth >= 2:
            result = insert(result, frame_src, depth)
        return result

    def _apply_segshared(self, args: list[Value], depth: int) -> Value:
        """Generalized 4.5: source at frame depth-1, indices at full depth.
        One segmented gather instead of replicating every segment."""
        src, idx = args
        idx_leaf = first_leaf(idx)
        if not isinstance(idx_leaf, NestedVector) or idx_leaf.depth < depth:
            raise VMError("segshared index: malformed index frame")
        seg_counts = idx_leaf.descs[depth - 1]
        flat_idx = extract(idx, depth) if depth >= 2 else idx
        flat_src = extract(src, depth - 1) if depth - 1 >= 2 else src
        result = O.k_seq_index_segshared(flat_src, flat_idx, seg_counts)
        self.observe("seq_index",
                     max(O.frame_len(flat_idx), O.value_size(result)))
        if depth >= 2:
            result = insert(result, idx, depth)
        return result

    def apply1(self, name: str, flat: list[Value], shared: bool = False) -> Value:
        if shared:
            if self._native is not None:
                result = self._native.apply_shared_index(flat[0], flat[1])
                if result is not None:
                    return result
            return O.k_seq_index_shared(flat[0], flat[1])
        if name == "__tuple_cons":
            return VTuple(flat)
        if name.startswith("__tuple_extract_"):
            k = int(name.rsplit("_", 1)[1])
            v = flat[0]
            if not isinstance(v, VTuple) or k > len(v.items):
                raise EvalError(f"bad tuple projection .{k}")
            return v.items[k - 1]
        if self._fusion is not None and name in self._fusion:
            return self._apply_fused(name, flat)
        if self._native is not None and name in _NATIVE_SEGMENTED:
            result = self._native.apply_segmented(name, flat[0])
            if result is not None:
                return result
        if name in O.KERNELS:
            return O.apply_kernel(name, flat)
        from repro.transform.extensions import ext1_name
        return self._call_user(ext1_name(name), flat)

    def _apply_fused(self, name: str, flat: list[Value]) -> Value:
        """One vector op executing a whole fused elementwise tree."""
        from repro.transform.fuse import eval_tree, result_kind
        tree = self._fusion.trees[name]
        O.check_conformable(flat, name)
        vals = eval_tree(tree, [leaf.values for leaf in flat])
        kind = result_kind(tree, [leaf.kind for leaf in flat])
        return NestedVector(flat[0].descs, vals, kind)

    def apply0(self, name: str, args: list[Value],
               node_type: Optional[T.Type]) -> Value:
        """Depth-0 application: unit-frame round trip through the kernels."""
        if name == "__iter":
            # fuse-pass iteration shortcut: a depth-0 sequence value and
            # the depth-1 frame of its elements share one representation,
            # so the identity gather is literally the argument (no vector
            # op executes, so nothing is observed or charged)
            return args[0]
        if name == "__tuple_cons":
            return VTuple(args)
        if name.startswith("__tuple_extract_"):
            k = int(name.rsplit("_", 1)[1])
            v = args[0]
            if not isinstance(v, VTuple) or k > len(v.items):
                raise EvalError(f"bad tuple projection .{k}")
            return v.items[k - 1]
        if name == "__seq_cons":
            return O.seq_cons0(args, node_type)
        if self._is_user(name):
            return self._call_user(name, args)
        if name in O.KERNELS:
            # a depth-0 op on a sequence still moves that much data in CVL
            wrapped = [O.wrap1(a) for a in args]
            result = O.unwrap1(O.apply_kernel(name, wrapped))
            self.observe(name, max([O.value_size(a) for a in args]
                                   + [O.value_size(result), 1]))
            return result
        raise VMError(f"no depth-0 implementation for {name!r}")

    # -- dynamic dispatch (IndirectCall) --------------------------------------------

    def apply_dynamic(self, fun: Value, args: list[Value], arg_depths: list[int],
                      depth: int, fun_depth: int,
                      node_type: Optional[T.Type]) -> Value:
        if fun_depth == 0:
            if not isinstance(fun, VFun):
                raise EvalError(f"attempt to apply non-function {fun!r}")
            return self.apply_named(fun.name, args, arg_depths, depth, node_type)
        return self._group_dispatch(fun, args, arg_depths, depth, node_type)

    def _group_dispatch(self, fun: Value, args: list[Value],
                        arg_depths: list[int], depth: int,
                        node_type: Optional[T.Type]) -> Value:
        ffr = extract(fun, depth) if depth >= 2 else fun
        if not isinstance(ffr, NestedVector) or ffr.kind != "fun":
            raise EvalError(f"not a frame of function values: {fun!r}")
        n = ffr.top_length
        ids = ffr.values

        flat_args: list[Value] = []
        for a, fd in zip(args, arg_depths):
            if fd == depth:
                flat_args.append(extract(a, depth) if depth >= 2 else a)
            else:
                rep = O.broadcast_to_count(a, n)
                self.observe("replicate", O.value_size(rep))
                flat_args.append(rep)

        uniq = np.unique(ids)
        if uniq.size == 0:
            result: Value = O.empty_frame_like(ffr, 1, node_type) \
                if node_type is not None else O.empty_frame_like(ffr, 1, T.INT)
        elif uniq.size == 1:
            result = self._apply_group(FUNTABLE.name_of(int(uniq[0])),
                                       flat_args, n)
        else:
            pieces: list[Value] = []
            positions: list[np.ndarray] = []
            for fid in uniq:
                idx = np.flatnonzero(ids == fid).astype(INT_DTYPE)
                sub = [O.take_elements(a, idx) for a in flat_args]
                pieces.append(self._apply_group(
                    FUNTABLE.name_of(int(fid)), sub, len(idx)))
                positions.append(idx)
            result = merge_groups(pieces, positions, n)
        self.observe("apply_frame", n)
        if depth >= 2:
            result = insert(result, fun, depth)
        return result

    def _apply_group(self, name: str, flat_args: list[Value], n: int) -> Value:
        if not flat_args:
            val = self.apply_named(name, [], [], 0, None)
            return O.broadcast_to_count(val, n)
        if name in O.KERNELS:
            return O.apply_kernel(name, flat_args)
        if B.is_builtin(name):
            raise VMError(f"builtin {name!r} has no depth-1 kernel")
        from repro.transform.extensions import ext1_name
        return self._call_user(ext1_name(name), flat_args)


def merge_groups(pieces: list[Value], positions: list[np.ndarray], n: int) -> Value:
    """Scatter per-group depth-1 frames back to their original positions."""
    order = np.concatenate(positions)
    inv = np.empty(n, dtype=INT_DTYPE)
    inv[order] = np.arange(len(order), dtype=INT_DTYPE)

    def go(*leaves: NestedVector) -> NestedVector:
        pool = O.item_levels(leaves[0], 1)
        for x in leaves[1:]:
            pool = S.concat_levels(pool, O.item_levels(x, 1))
        got = S.gather_subtrees(pool, inv)
        return NestedVector.from_levels(n, got, leaves[0].kind)

    def zipn(vals):
        if isinstance(vals[0], VTuple):
            return VTuple([zipn([v.items[i] for v in vals])
                           for i in range(len(vals[0].items))])
        return go(*vals)
    return zipn(pieces)
