"""Tree-walking evaluator for transformed (iterator-free) P programs on the
vector representation.

Application of a depth-``d`` parallel extension follows the paper exactly
(see :mod:`repro.vexec.apply`, shared with the VCODE VM):

* ``d == 0`` — ordinary scalar evaluation (depth-1 kernels on unit frames);
* ``d == 1`` — the native depth-1 kernel / the synthesized ``f^1``;
* ``d >= 2`` — rule T1: ``insert(f^1(extract(e, d)), e, d)``.

Arguments whose recorded frame depth is 0 are *replicated* to the flattened
frame before the kernel runs (section 3), except for the section-4.5 shared
fast paths (``__seq_index_shared``), which consume the depth-0 value
directly.  Higher-order application dispatches on the function value,
group-by-group for frames of function values.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.errors import EvalError, VMError
from repro.guard import runtime as _guard
from repro.guard.runtime import scoped_recursion_limit
from repro.lang import ast as A
from repro.lang import builtins as B
from repro.obs import runtime as _obs
from repro.transform.pipeline import TransformedProgram
from repro.vector import ops as O
from repro.vector.convert import from_python, to_python
from repro.vector.nested import Value, VFun, VTuple, first_leaf
from repro.vexec.apply import Applier


class VectorEvaluator:
    """Executes the functions of a :class:`TransformedProgram`."""

    def __init__(self, program: TransformedProgram, max_recursion: int = 200_000,
                 observer: Optional[Callable[[str, int], None]] = None,
                 native=None):
        self.program = program
        self._max_recursion = max_recursion
        self.applier = Applier(call_user=self.call_raw,
                               is_user=lambda n: n in program.defs,
                               observe=observer,
                               fusion=program.fusion,
                               native=native)

    # -- public API ----------------------------------------------------------

    def call(self, mono_name: str, pyargs: list) -> Any:
        """Invoke a transformed function on Python values, returning Python
        values (the entry point used by the API and all tests)."""
        d = self._def(mono_name)
        if len(pyargs) != len(d.params):
            raise EvalError(
                f"{mono_name} expects {len(d.params)} arguments, got {len(pyargs)}")
        with scoped_recursion_limit(self._max_recursion), \
                _obs.span(f"vexec:{mono_name}"):
            vargs = [from_python(a, t) for a, t in zip(pyargs, d.param_types)]
            out = self.call_raw(mono_name, vargs)
            return to_python(out, d.ret_type)

    def call_raw(self, name: str, vargs: list[Value]) -> Value:
        """Invoke a transformed function on vector values."""
        d = self._def(name)
        env = dict(zip(d.params, vargs))
        g = _guard.GUARD
        if g is None:
            return self._eval(d.body, env)
        g.enter_call(name, sum(O.value_size(a) for a in vargs)
                     if g.track_frames else 0)
        try:
            result = self._eval(d.body, env)
        finally:
            g.exit_call()
        if g.check and not g.skip(f"call:{name}"):
            g.check_value(f"vexec:{name}", result)
        return result

    # -- plumbing ---------------------------------------------------------------

    def _def(self, name: str) -> A.FunDef:
        try:
            return self.program.defs[name]
        except KeyError:
            raise VMError(f"no transformed definition for {name!r}") from None

    # -- expression evaluation ----------------------------------------------------

    def _eval(self, e: A.Expr, env: dict[str, Value]) -> Value:
        if isinstance(e, (A.IntLit, A.BoolLit, A.FloatLit)):
            return e.value
        if isinstance(e, A.Var):
            if e.name in env:
                return env[e.name]
            if e.name in self.program.defs or e.name in self.program.typed.mono_defs \
                    or B.is_builtin(e.name):
                return VFun(e.name)
            raise EvalError(f"unbound variable {e.name!r}")
        if isinstance(e, A.Let):
            env2 = dict(env)
            env2[e.var] = self._eval(e.bound, env)
            return self._eval(e.body, env2)
        if isinstance(e, A.If):
            c = self._eval(e.cond, env)
            if not isinstance(c, (bool, np.bool_)):
                raise EvalError(f"if condition is not a scalar bool: {c!r}")
            return self._eval(e.then if c else e.els, env)
        if isinstance(e, A.SeqLit):
            items = [self._eval(x, env) for x in e.items]
            self.applier.observe("seq_cons", max(1, len(items)))
            return O.seq_cons0(items, e.type)
        if isinstance(e, A.TupleLit):
            return VTuple([self._eval(x, env) for x in e.items])
        if isinstance(e, A.TupleExtract):
            v = self._eval(e.tup, env)
            if not isinstance(v, VTuple) or e.index > len(v.items):
                raise EvalError(f"bad tuple projection .{e.index}")
            return v.items[e.index - 1]
        if isinstance(e, A.ExtCall):
            return self._eval_ext(e, env)
        if isinstance(e, A.IndirectCall):
            fun = self._eval(e.fun, env)
            args = [self._eval(a, env) for a in e.args]
            return self.applier.apply_dynamic(
                fun, args, e.arg_depths, e.depth, e.fun_depth, e.type)
        raise VMError(f"cannot execute node {type(e).__name__} "
                      "(was the program transformed?)")

    def _eval_ext(self, e: A.ExtCall, env: dict[str, Value]) -> Value:
        name = e.fn
        if name == "__any":
            m = self._eval(e.args[0], env)
            leaf = first_leaf(m)
            self.applier.observe("any", max(1, int(leaf.values.size)))
            return bool(leaf.values.any())
        if name == "__empty":
            m = self._eval(e.args[0], env)
            return O.empty_frame_like(first_leaf(m), e.depth, e.type)
        args = [self._eval(a, env) for a in e.args]
        return self.applier.apply_named(name, args, e.arg_depths, e.depth, e.type)
