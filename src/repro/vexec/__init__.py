"""Vector-model execution of transformed (iterator-free) P programs.

The evaluator realizes the paper's translation rule T1 at run time: every
depth-d application (d >= 2) becomes ``insert(f^1(extract(args, d-1)),
frame, d-1)``; only depth-1 kernels and depth-0 scalar code ever execute.
"""

from repro.vexec.evaluator import VectorEvaluator

__all__ = ["VectorEvaluator"]
