"""The multicore engine behind ``--backend parallel``.

:class:`ParallelEngine` speaks the same applier hook protocol as
:class:`repro.native.engine.NativeEngine` — ``apply_fused`` /
``apply_segmented`` / ``apply_shared_index`` each return a result
bit-identical to the NumPy applier's or ``None`` to fall back — so it
plugs into :class:`repro.vexec.apply.Applier` unchanged and the
differential fuzzer can run it as a fifth backend.

Per engine (one per thread count) the fast path is chosen once:

* with an OpenMP-capable toolchain, hooks delegate to
  :class:`_OmpNative`, a :class:`NativeEngine` whose kernels carry
  ``#pragma omp parallel for`` loops over elements (fused trees) or
  segments (reductions/scans, via precomputed per-segment start
  offsets);
* otherwise the pure-Python chunked path plans a segment-aligned
  partition (:func:`repro.vector.partition.plan_partition`) and fans the
  chunks out to a thread pool of GIL-releasing NumPy kernel calls.

Both paths preserve the serial fold order *within* every segment, which
is the whole determinism argument: a segment never straddles a chunk or
an OpenMP iteration, so no float addition is ever reassociated
(docs/PARALLEL.md; pinned by ``tests/parallel/test_determinism.py``).

The chunked path is instrumented with the ``parallel.*`` fault sites of
:data:`repro.guard.faults.PARALLEL_FAULT_SITES` — partition, stitch, and
barrier corruption are each caught by an always-on validation raising a
stage-named :class:`~repro.errors.InvariantError` — and reports
``parallel`` obs counters (per-op accounting plus ``chunks``,
``imbalance_x1000``, ``barrier_wait``).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Optional

import numpy as np

from ..errors import EvalError, InvariantError, VectorError
from ..guard import faults as _flt
from ..guard import runtime as _guard
from ..obs import runtime as _obs
from ..native import toolchain
from ..native.engine import (
    NativeEngine, _DTYPES, _STRICT_REDUCE, _scalar_kind,
)
from ..vector import segments as S
from ..vector.nested import NestedVector
from ..vector.partition import ChunkPlan, imbalance, plan_partition
from ..vector.segments import INT_DTYPE

__all__ = ["MIN_PARALLEL", "ParallelEngine", "get_parallel_engine",
           "pick_threads", "reset_engines", "set_default_threads",
           "default_threads"]

#: Below this many flat elements the chunked path declines (returns None)
#: and the serial NumPy kernel serves the call — thread dispatch overhead
#: would swamp any speedup.  Module-level so tests can lower it to force
#: chunking on small inputs.
MIN_PARALLEL = 2048

#: the raw segmented kernels workers call directly (no obs/guard inside a
#: worker thread; the engine accounts once, on the caller's thread)
_SEG_FN = {
    "sum": S.seg_sum,
    "maxval": S.seg_max,
    "minval": S.seg_min,
    "anytrue": S.seg_any,
    "alltrue": S.seg_all,
    "plus_scan": S.seg_plus_scan,
    "max_scan": S.seg_max_scan,
}
_SEG_REDUCTIONS = frozenset(("sum", "maxval", "minval", "anytrue",
                             "alltrue"))


class _OmpNative(NativeEngine):
    """A :class:`NativeEngine` whose emitted kernels are OpenMP-parallel.

    The two class seams do all the work: ``_omp_threads`` makes codegen
    emit ``#pragma omp parallel for`` variants (thread count baked into
    the source, hence into the cache key), and ``_extra_cflags`` adds
    ``-fopenmp`` to both the compile command and the key.  Everything
    else — planning, hoisting, guard/obs accounting, strict-reduce
    errors — is inherited unchanged, which is why the OpenMP path is
    bit-identical to serial native by construction.
    """

    _extra_cflags = ("-fopenmp",)

    def __init__(self, threads: int, cache=None):
        super().__init__(cache=cache)
        self._omp_threads = int(threads)


class ParallelEngine:
    """Multicore applier hook for one fixed thread count.

    ``native`` is the :class:`_OmpNative` delegate (None on machines
    without an OpenMP toolchain — or in tests that pin the chunked
    path).  Every hook returns None for inputs the parallel paths do not
    cover (threads < 2, tiny vectors, exotic kinds); the caller's NumPy
    path then serves the call, exactly like the native engine's
    fallback contract.
    """

    def __init__(self, threads: int, native: Optional[_OmpNative] = None):
        self.threads = max(1, int(threads))
        self._native = native
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    # -- dispatch plumbing -------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix="repro-parallel")
            return self._pool

    def _run_chunks(self, tasks: list) -> list:
        """Run one thunk per chunk on the pool; a barrier joins them all
        before any result is read.  Deterministic error reporting: after
        the barrier, the *earliest chunk's* exception is re-raised, so a
        failing program fails identically at every thread count."""
        flags = np.zeros(len(tasks), dtype=INT_DTYPE)
        results: list = [None] * len(tasks)
        errors: list = [None] * len(tasks)

        def run_one(i: int, fn) -> None:
            try:
                results[i] = fn()
            except BaseException as exc:  # re-raised in chunk order below
                errors[i] = exc
            flags[i] = 1

        ex = self._executor()
        futures = [ex.submit(run_one, i, fn) for i, fn in enumerate(tasks)]
        waited = sum(1 for f in futures if not f.done())
        wait(futures)
        p = _obs.PROFILER
        if p is not None:
            p.count("parallel", "barrier_wait", frame_len=len(tasks),
                    elements=waited)
        if _flt.INJECTOR is not None:
            _flt.visit("parallel.dispatch.lost-barrier", [flags])
        if bool(np.any(flags != 1)):
            missing = np.flatnonzero(flags != 1)
            raise InvariantError(
                "parallel.barrier",
                f"join barrier lost {missing.size} of {len(tasks)} "
                f"workers (chunks {missing.tolist()})")
        for exc in errors:
            if exc is not None:
                raise exc
        return results

    def _check_stitch(self, what: str, got: np.ndarray,
                      want: np.ndarray) -> None:
        """Verify every chunk contributed exactly its planned share (the
        ``parallel.stitch.torn-chunk`` site corrupts ``got`` to prove
        containment)."""
        if _flt.INJECTOR is not None:
            _flt.visit("parallel.stitch.torn-chunk", [got])
        if got.size != want.size or bool(np.any(got != want)):
            raise InvariantError(
                "parallel.stitch",
                f"{what}: chunk result lengths {got.tolist()} != planned "
                f"{want.tolist()}")

    def _account(self, op: str, n: int, plan: ChunkPlan, args: tuple,
                 result: NestedVector) -> None:
        """Profile one chunked invocation into the ``parallel`` layer
        (same element/byte accounting as the native layer) plus the
        partition-shape counters, then fire the guard's kernel-boundary
        hook once — exactly as the serial kernel would."""
        p = _obs.PROFILER
        if p is not None:
            from ..vector.ops import value_nbytes, value_size
            elems = value_size(result)
            nb = value_nbytes(result)
            for a in args:
                if isinstance(a, NestedVector):
                    elems += value_size(a)
                    nb += value_nbytes(a)
            p.count("parallel", op, n, elems, nb)
            p.count("parallel", "chunks", frame_len=plan.parts,
                    elements=int(np.count_nonzero(plan.sizes())))
            p.count("parallel", "imbalance_x1000",
                    frame_len=int(round(imbalance(plan) * 1000)))
        g = _guard.GUARD
        if g is not None:
            g.after_kernel(op, n, result)

    # -- fused elementwise trees -------------------------------------------

    def apply_fused(self, name: str, tree, flat: list, raw: list,
                    n: int) -> Optional[NestedVector]:
        """Evaluate fused op ``name`` across chunks (or OpenMP threads),
        or return None to fall back.

        The tree is elementwise, so the partition needs no segment
        alignment: each worker evaluates the whole tree over its slice of
        every vector leaf (depth-0 leaves stay scalar, NumPy broadcasts
        them) directly into its slice of the preallocated output."""
        if self._native is not None:
            result = self._native.apply_fused(name, tree, flat, raw, n)
            if result is not None:
                return result
        if self.threads < 2 or n < MIN_PARALLEL:
            return None
        from ..transform.fuse import eval_tree, result_kind
        leaves: list = []
        kinds: list = []
        first_vec: Optional[NestedVector] = None
        for v, r in zip(flat, raw):
            if v is None:
                kind = _scalar_kind(r)
                if kind is None:
                    return None
                leaves.append(r)
                kinds.append(kind)
            else:
                if not isinstance(v, NestedVector) or v.depth != 1 \
                        or v.kind not in _DTYPES or v.values.size != n:
                    return None
                leaves.append(v.values)
                kinds.append(v.kind)
                if first_vec is None:
                    first_vec = v
        out_kind = result_kind(tree, kinds)
        if out_kind not in _DTYPES:
            return None
        plan = plan_partition(n, self.threads)
        out = np.empty(n, dtype=_DTYPES[out_kind])
        b = plan.bounds

        def task(lo: int, hi: int):
            def run():
                sub = [x[lo:hi] if isinstance(x, np.ndarray) else x
                       for x in leaves]
                out[lo:hi] = eval_tree(tree, sub)
                return hi - lo
            return run

        tasks = [task(int(b[i]), int(b[i + 1])) for i in range(plan.parts)]
        written = self._run_chunks(tasks)
        self._check_stitch(
            f"fused {name}", np.array(written, dtype=INT_DTYPE),
            plan.sizes())
        descs = first_vec.descs if first_vec is not None \
            else (np.array([n], dtype=INT_DTYPE),)
        result = NestedVector(descs, out, out_kind)
        self._account(name, n, plan,
                      tuple(v for v in flat if v is not None), result)
        return result

    # -- segmented reductions and scans ------------------------------------

    def apply_segmented(self, name: str, v) -> Optional[NestedVector]:
        """Run segmented primitive ``name`` across segment-aligned chunks
        (or OpenMP threads), or return None to fall back.

        Each chunk owns whole segments, so a worker's call of the *same*
        serial NumPy kernel over its slice produces exactly the serial
        per-segment results; stitching is pure concatenation in segment
        order."""
        if self._native is not None:
            result = self._native.apply_segmented(name, v)
            if result is not None:
                return result
        if self.threads < 2 or name not in _SEG_FN:
            return None
        if not isinstance(v, NestedVector) or v.depth != 2 \
                or v.kind not in _DTYPES:
            return None
        total = int(v.values.size)
        if total < MIN_PARALLEL:
            return None
        counts = np.ascontiguousarray(v.descs[1], dtype=INT_DTYPE)
        if name in _STRICT_REDUCE and counts.size \
                and int(counts.min()) == 0:
            # same message as the serial kernels, raised before dispatch
            raise VectorError(f"{name} of an empty sequence")
        plan = plan_partition(total, self.threads, counts=counts)
        sb = plan.seg_bounds
        assert sb is not None
        vals = v.values
        fn = _SEG_FN[name]
        b = plan.bounds

        def task(i: int):
            e0, e1 = int(b[i]), int(b[i + 1])
            s0, s1 = int(sb[i]), int(sb[i + 1])

            def run():
                return fn(vals[e0:e1], counts[s0:s1])
            return run

        chunks = self._run_chunks([task(i) for i in range(plan.parts)])
        reduction = name in _SEG_REDUCTIONS
        want = np.diff(sb) if reduction else plan.sizes()
        got = np.array([c.shape[0] for c in chunks], dtype=INT_DTYPE)
        self._check_stitch(f"segmented {name}", got, want)
        out_kind = "bool" if name in ("anytrue", "alltrue") else v.kind
        values = np.concatenate(chunks) if chunks else \
            np.empty(0, dtype=_DTYPES[out_kind])
        result_descs = (v.descs[0],) if reduction else v.descs
        result = NestedVector(result_descs, values, out_kind)
        self._account(name, int(v.descs[0][0]), plan, (v,), result)
        return result

    # -- shared-index gather -----------------------------------------------

    def apply_shared_index(self, src, idx) -> Optional[NestedVector]:
        """Chunked section-4.5 shared gather, or None to fall back.

        Bounds checking is chunk-local but error reporting is not: after
        the barrier the earliest out-of-range position across all chunks
        raises the applier's exact ``seq_index`` message, so the first
        offender is identical at every thread count."""
        if self._native is not None:
            result = self._native.apply_shared_index(src, idx)
            if result is not None:
                return result
        if self.threads < 2:
            return None
        if not isinstance(src, NestedVector) or src.depth != 1 \
                or src.kind not in _DTYPES:
            return None
        if not isinstance(idx, NestedVector) or idx.depth != 1 \
                or idx.kind != "int":
            return None
        iv = idx.values
        n = int(iv.size)
        if n < MIN_PARALLEL:
            return None
        sv = src.values
        m = int(src.descs[0][0])
        plan = plan_partition(n, self.threads)
        out = np.empty(n, dtype=_DTYPES[src.kind])
        b = plan.bounds

        def task(lo: int, hi: int):
            def run():
                chunk = iv[lo:hi]
                bad = (chunk < 1) | (chunk > m)
                if bool(bad.any()):
                    pos = int(bad.argmax())
                    return (hi - lo, lo + pos, int(chunk[pos]))
                out[lo:hi] = sv[chunk - 1]
                return (hi - lo, -1, 0)
            return run

        tasks = [task(int(b[i]), int(b[i + 1])) for i in range(plan.parts)]
        reports = self._run_chunks(tasks)
        offenders = [(pos, val) for _, pos, val in reports if pos >= 0]
        if offenders:
            _, bad = min(offenders)
            raise EvalError(f"seq_index: index {bad} out of range")
        self._check_stitch(
            "shared gather",
            np.array([w for w, _, _ in reports], dtype=INT_DTYPE),
            plan.sizes())
        result = NestedVector(idx.descs, out, src.kind)
        self._account("seq_index_shared", n, plan, (src, idx), result)
        return result

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        native = self._native.status() if self._native is not None else None
        return {"threads": self.threads,
                "openmp": self._native is not None,
                "min_parallel": MIN_PARALLEL,
                "native": native}


# ---------------------------------------------------------------------------
# Process-wide engines (one per thread count, like the native singleton)
# ---------------------------------------------------------------------------

_ENGINES: dict[int, ParallelEngine] = {}
_ENGINES_LOCK = threading.Lock()
_DEFAULT_THREADS: Optional[int] = None


def set_default_threads(n: Optional[int]) -> None:
    """Set the process default for ``--backend parallel`` runs that do not
    name a thread count (the CLI's ``--threads`` lands here so serve and
    fuzz flows pick it up); None restores auto-detection."""
    global _DEFAULT_THREADS
    _DEFAULT_THREADS = None if n is None else max(1, int(n))


def default_threads() -> int:
    """The thread count used when a run does not specify one: the
    :func:`set_default_threads` override, else ``$REPRO_THREADS``, else
    the machine's CPU count."""
    if _DEFAULT_THREADS is not None:
        return _DEFAULT_THREADS
    env = os.environ.get("REPRO_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def pick_threads(work: int, span: int, cpus: Optional[int] = None) -> int:
    """Thread count for ``--threads auto``, from predicted concurrency.

    The available concurrency ``work / span`` bounds how many threads
    can ever be busy; each thread additionally needs on the order of
    ``MIN_PARALLEL`` elements of slack before the chunked path engages
    at all, so the pick is the largest power of two no greater than both
    the CPU count and ``concurrency / (MIN_PARALLEL / 2)``, floored at
    one.  By construction the result never exceeds the predicted
    concurrency (a pinned regression property)."""
    cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    conc = work // max(1, span)
    cap = min(max(1, cpus), max(1, conc // max(1, MIN_PARALLEL // 2)))
    t = 1
    while t * 2 <= cap:
        t *= 2
    return min(t, max(1, conc))


def get_parallel_engine(threads: Optional[int] = None) -> ParallelEngine:
    """The process-wide engine for ``threads`` (default:
    :func:`default_threads`).  Unlike the native singleton this never
    returns None — without any C toolchain the chunked pure-Python path
    still works; the OpenMP delegate is attached only when
    :func:`repro.native.toolchain.openmp_available` says the probe
    compiled."""
    t = max(1, int(threads if threads is not None else default_threads()))
    with _ENGINES_LOCK:
        eng = _ENGINES.get(t)
        if eng is None:
            native = None
            if t > 1 and toolchain.available() \
                    and toolchain.openmp_available():
                native = _OmpNative(t)
            eng = ParallelEngine(t, native=native)
            _ENGINES[t] = eng
        return eng


def reset_engines() -> None:
    """Drop every cached engine (tests only — pair with
    :func:`repro.native.toolchain.reset` when simulating machines)."""
    with _ENGINES_LOCK:
        for eng in _ENGINES.values():
            if eng._pool is not None:
                eng._pool.shutdown(wait=False)
        _ENGINES.clear()
