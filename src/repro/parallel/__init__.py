"""The multicore backend: real parallel execution of flat vector code.

The paper's section-6 claim — flattening produces vector operations whose
work divides evenly across processors — is measured on the *simulated*
machine by E8/E13.  This package executes it for real, as
``--backend parallel``: every flat vector operation of a transformed
program runs across ``--threads N`` cores, with results **bit-identical**
to the serial vector and native backends (the differential conformance
suite in ``tests/parallel`` proves it at threads 1, 2, and 4).

Two cooperating paths, chosen per process at engine construction:

* **native threading** — when the C toolchain can build OpenMP shared
  objects (:func:`repro.native.toolchain.openmp_available`), fused and
  segmented kernels are re-emitted with ``#pragma omp parallel for``
  loops (:mod:`repro.native.codegen` with ``omp_threads``) and compiled
  with ``-fopenmp``; the thread count is baked into the kernel source, so
  it participates in the content-address cache key;
* **pure-Python chunking** — otherwise, the segment-aware partitioner
  (:mod:`repro.vector.partition`) splits the flat value vector into
  contiguous, segment-aligned chunks dispatched to a thread pool of
  GIL-releasing NumPy kernel calls and stitched deterministically.

Either way each segment is folded sequentially by exactly one worker, so
float reductions never reassociate — the determinism contract documented
in docs/PARALLEL.md.
"""

from repro.parallel.engine import (
    MIN_PARALLEL, ParallelEngine, default_threads, get_parallel_engine,
    reset_engines, set_default_threads,
)

__all__ = ["MIN_PARALLEL", "ParallelEngine", "default_threads",
           "get_parallel_engine", "reset_engines", "set_default_threads"]
