"""Public API: compile and run P programs on either back end.

Typical use::

    from repro import compile_program

    prog = compile_program('''
        fun sqs(n) = [i <- [1..n]: i*i]
        fun nested(k) = [i <- [1..k]: sqs(i)]
    ''')
    prog.run("nested", [3])                      # vector back end (default)
    prog.run("nested", [3], backend="interp")    # reference interpreter
    prog.transformed_source("nested", [3])       # the iterator-free program

The pipeline is: parse -> merge prelude -> canonicalize (R1 + filter
desugar) -> type inference -> monomorphize per entry -> eliminate iterators
(R2) -> section-4.5 optimizations -> execute (vector representation /
reference interpreter).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

from repro.errors import EvalError, TypeCheckError
from repro.guard import runtime as _guard
from repro.guard.runtime import Budget, GuardConfig
from repro.interp.cost import CostReport
from repro.interp.interpreter import Interpreter
from repro.interp.values import check_value, infer_value_type
from repro.lang import ast as A
from repro.lang import types as T
from repro.lang.parser import parse_program
from repro.lang.prelude import merge_with_prelude
from repro.lang.pretty import pretty_def
from repro.lang.typecheck import TypedProgram, typecheck_program
from repro.obs import runtime as _obs
from repro.transform.pipeline import (
    TransformOptions, TransformedProgram, transform_program,
)
from repro.vector.convert import from_python, to_python
from repro.vexec.evaluator import VectorEvaluator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.cost import CostCertificate

#: accepted by ``run(threads=...)``: an explicit count, ``"auto"``
#: (pick from the cost certificate's predicted concurrency), or ``None``
#: (the machine default)
ThreadSpec = Union[int, str, None]

#: Transform options for the cost analysis: the certificate bounds the
#: reference interpreter's measure on the *canonical* program, which
#: retains bindings the default pipeline's simplify pass cleans away, so
#: the analyzed IR must retain them too.
_COST_OPTIONS = TransformOptions(shared_seq_index=True,
                                 reduce_to_native=False, simplify=False,
                                 fuse=False, verify=False)

TypeLike = Union[str, T.Type]


def _as_type(t: TypeLike) -> T.Type:
    return T.parse_type(t) if isinstance(t, str) else t


@dataclass
class CompiledProgram:
    """A P program carried through the full pipeline, lazily per entry."""

    raw: A.Program
    canonical: A.Program
    typed: TypedProgram
    options: TransformOptions = field(default_factory=TransformOptions)
    _transformed: dict[tuple, tuple[str, TransformedProgram]] = field(
        default_factory=dict)
    _cost_certs: dict[tuple, "CostCertificate"] = field(
        default_factory=dict, repr=False, compare=False)
    # Serializes monomorphize + transform: TypedProgram.instance publishes
    # its _instances entry before mono_defs is populated, so a second
    # thread racing through prepare() would transform against a program
    # that does not contain the entry yet.  Execution stays parallel;
    # only the (cached) compilation side is serialized.
    _prep_lock: threading.RLock = field(default_factory=threading.RLock,
                                        repr=False, compare=False)

    # -- entry preparation ------------------------------------------------------

    def entry_types(self, fname: str, args: Sequence[Any],
                    types: Optional[Sequence[TypeLike]] = None) -> tuple[T.Type, ...]:
        """Concrete argument types for an entry call (inferred from the
        Python values unless given explicitly)."""
        if types is not None:
            out = tuple(_as_type(t) for t in types)
            if len(out) != len(args):
                raise TypeCheckError("types/args length mismatch")
            for v, t in zip(args, out):
                if not isinstance(t, T.TFun):
                    check_value(v, t, "argument")
            return out
        return tuple(infer_value_type(a) for a in args)

    def prepare(self, fname: str, arg_types: tuple[T.Type, ...],
                fun_args: Sequence[str] = ()) -> tuple[str, TransformedProgram]:
        """Monomorphize + transform ``fname`` at the given argument types.

        ``fun_args`` names user functions passed *as values* into the entry
        call; their instances are transformed too so dynamic dispatch finds
        them.
        """
        key = (fname, arg_types, tuple(sorted(fun_args)))
        if key in self._transformed:
            return self._transformed[key]
        with self._prep_lock:
            if key in self._transformed:
                return self._transformed[key]
            with _obs.span("monomorphize"):
                mono = self.typed.instance(fname, arg_types)
            entries = [mono, *fun_args]
            with _obs.span("transform"):
                tp = transform_program(self.typed, entries, self.options,
                                       ext_entries=tuple(fun_args))
            self._transformed[key] = (mono, tp)
            return mono, tp

    def prepare_batched(self, fname: str, arg_types: tuple[T.Type, ...],
                        fun_args: Sequence[str] = ()
                        ) -> tuple[str, TransformedProgram]:
        """Like :meth:`prepare`, but additionally synthesizes the entry's
        own depth-1 parallel extension ``f^1`` — the function the serving
        layer runs once per coalesced batch (see :mod:`repro.serve`)."""
        key = (fname, arg_types, tuple(sorted(fun_args)), "batched")
        if key in self._transformed:
            return self._transformed[key]
        with self._prep_lock:
            if key in self._transformed:
                return self._transformed[key]
            with _obs.span("monomorphize"):
                mono = self.typed.instance(fname, arg_types)
            entries = [mono, *fun_args]
            with _obs.span("transform"):
                tp = transform_program(self.typed, entries, self.options,
                                       ext_entries=(mono, *fun_args))
            self._transformed[key] = (mono, tp)
            return mono, tp

    def _native_options(self) -> TransformOptions:
        """Transform options for the native backend: fusion is what the
        native code generator compiles, so a default pipeline is upgraded
        to ``fuse=True``; explicit ``passes`` lists and already-fused
        options are respected as-is."""
        from dataclasses import replace
        o = self.options
        if not o.fuse and o.passes is None:
            o = replace(o, fuse=True)
        return o

    def prepare_native(self, fname: str, arg_types: tuple[T.Type, ...],
                       fun_args: Sequence[str] = (), batched: bool = False
                       ) -> tuple[str, TransformedProgram]:
        """Like :meth:`prepare` (or :meth:`prepare_batched`), but with the
        native backend's fused transform options (see docs/NATIVE.md)."""
        key = (fname, arg_types, tuple(sorted(fun_args)),
               "native-batched" if batched else "native")
        if key in self._transformed:
            return self._transformed[key]
        with self._prep_lock:
            if key in self._transformed:
                return self._transformed[key]
            with _obs.span("monomorphize"):
                mono = self.typed.instance(fname, arg_types)
            entries = [mono, *fun_args]
            exts = (mono, *fun_args) if batched else tuple(fun_args)
            with _obs.span("transform"):
                tp = transform_program(self.typed, entries,
                                       self._native_options(),
                                       ext_entries=exts)
            self._transformed[key] = (mono, tp)
            return mono, tp

    def cost_certificate(self, fname: str, arg_types: tuple[T.Type, ...],
                         fun_args: Sequence[str] = ()) -> "CostCertificate":
        """Static cost certificate for ``fname`` at the given argument
        types: symbolic work/span/mem upper bounds evaluable at concrete
        sizes (see :mod:`repro.analysis.cost` and docs/ANALYSIS.md).

        The certificate bounds the *reference interpreter's* measured
        work/span on the canonical program, so the flattened IR it is
        derived from is transformed with fixed options
        (``simplify=False``: the canonical program retains bindings the
        default pipeline would clean away, and the bound must cover
        them)."""
        from repro.analysis.cost import cost_certificate_for
        key = (fname, arg_types, tuple(sorted(fun_args)), "cost")
        with self._prep_lock:
            cert = self._cost_certs.get(key)
            if cert is not None:
                return cert
            cached = self._transformed.get(key)
            if cached is None:
                with _obs.span("monomorphize"):
                    mono = self.typed.instance(fname, arg_types)
                entries = [mono, *fun_args]
                with _obs.span("transform"):
                    tp = transform_program(
                        self.typed, entries, _COST_OPTIONS,
                        ext_entries=tuple(fun_args))
                cached = (mono, tp)
                self._transformed[key] = cached
            mono, tp = cached
            with _obs.span("analyze:cost"):
                cert = cost_certificate_for(tp, mono)
            self._cost_certs[key] = cert
            return cert

    def _resolve_threads(self, fname: str, args: Sequence[Any],
                         arg_types: tuple[T.Type, ...],
                         fun_entries: Sequence[str],
                         threads: ThreadSpec) -> Optional[int]:
        """Resolve ``threads="auto"`` from the cost certificate's
        predicted concurrency (work/span); anything else passes through.
        Unbounded entries (or any analysis failure) fall back to the
        machine default — auto never degrades a run to an error."""
        if threads != "auto":
            assert threads is None or isinstance(threads, int)
            return threads
        from repro.parallel.engine import default_threads, pick_threads
        try:
            cert = self.cost_certificate(fname, arg_types, fun_entries)
            p = cert.predict(list(args))
        except Exception:
            return default_threads()
        if not p["bounded"]:
            return default_threads()
        return pick_threads(p["work"], p["span"])

    def _fun_value_entries(self, args: Sequence[Any],
                           arg_types: tuple[T.Type, ...]) -> list[str]:
        """Instantiate user functions passed by value as entry arguments."""
        out = []
        for v, t in zip(args, arg_types):
            if isinstance(t, T.TFun):
                name = v.name if hasattr(v, "name") else str(v)
                if name in self.typed.source.defs:
                    with self._prep_lock:
                        out.append(self.typed.instance(name, t.params))
        return out

    # -- execution ---------------------------------------------------------------

    def run(self, fname: str, args: Sequence[Any], backend: str = "vector",
            types: Optional[Sequence[TypeLike]] = None,
            check: Union[bool, str] = False,
            budget: Optional[Budget] = None,
            threads: ThreadSpec = None) -> Any:
        """Run ``fname(args)``; ``backend`` is ``"vector"``, ``"vcode"``,
        ``"native"``, ``"parallel"``, or ``"interp"``.

        ``"native"`` executes fused elementwise regions and segmented
        primitives as compiled C kernels (bit-identical to the NumPy
        path by contract; see docs/NATIVE.md), falling back to the NumPy
        applier — with one warning — when no C toolchain is available.
        ``"parallel"`` runs those same flat operations across ``threads``
        CPU cores (default: the machine's CPU count) via OpenMP kernels
        or segment-aligned chunking, still bit-identical to serial — see
        docs/PARALLEL.md.  ``threads`` is ignored by the other backends;
        ``threads="auto"`` picks the count from the cost certificate's
        predicted concurrency (docs/ANALYSIS.md).

        ``check=True`` (or ``"full"``) enables strict descriptor-invariant
        checking at every kernel and backend boundary; ``check="static"``
        keeps only the checks the symbolic shape analysis could not
        discharge (see docs/ANALYSIS.md — the reference interpreter has
        no vector values to discharge, so it falls back to full
        checking).  ``budget`` imposes resource ceilings (see
        :mod:`repro.guard` and docs/RELIABILITY.md).  All are scoped to
        this call and cost nothing when unused.
        """
        discharged, entry = self._discharged(fname, args, types, check,
                                             backend)
        if check or (budget is not None and budget.any_set()):
            with _guard.guarded(GuardConfig(check=bool(check),
                                            budget=budget or Budget(),
                                            discharged=discharged)):
                return self._run_unguarded(fname, args, backend, types,
                                           _entry=entry, _threads=threads)
        return self._run_unguarded(fname, args, backend, types,
                                   _threads=threads)

    def _discharged(self, fname: str, args: Sequence[Any],
                    types: Optional[Sequence[TypeLike]],
                    check: Union[bool, str], backend: str,
                    batched: bool = False) -> tuple[frozenset, Optional[tuple]]:
        """Check tags the shape analysis discharges for this entry
        (``check="static"`` on a vector backend only; empty otherwise),
        plus the ``(arg_types, fun_entries)`` pair it had to compute — the
        execution path reuses it so argument types are inferred exactly
        once per call."""
        if check != "static" or backend not in ("vector", "vcode", "native",
                                                "parallel"):
            return frozenset(), None
        arg_types = self.entry_types(fname, args, types)
        fun_entries = self._fun_value_entries(args, arg_types)
        if backend in ("native", "parallel"):
            _mono, tp = self.prepare_native(fname, arg_types, fun_entries,
                                            batched=batched)
        else:
            prepare = self.prepare_batched if batched else self.prepare
            _mono, tp = prepare(fname, arg_types, fun_entries)
        from repro.analysis.shapes import analyze_shapes
        return analyze_shapes(tp).discharged, (arg_types, fun_entries)

    def _run_unguarded(self, fname: str, args: Sequence[Any],
                       backend: str = "vector",
                       types: Optional[Sequence[TypeLike]] = None,
                       _entry: Optional[tuple] = None,
                       _threads: ThreadSpec = None) -> Any:
        if backend == "interp":
            with _obs.span("execute:interp"):
                return Interpreter(self.canonical).call(fname, list(args))
        if backend == "interp-raw":
            return Interpreter(self.raw).call(fname, list(args))
        if backend == "vcode":
            vm, mono = self.vcode_vm(fname, args, types, _entry=_entry)
            with _obs.span("execute:vcode"):
                return vm.call(mono, list(args))
        if backend not in ("vector", "native", "parallel"):
            raise ValueError(f"unknown backend {backend!r}")
        if _entry is not None:
            arg_types, fun_entries = _entry
        else:
            arg_types = self.entry_types(fname, args, types)
            fun_entries = self._fun_value_entries(args, arg_types)
        if backend == "native":
            from repro.native.engine import get_engine
            mono, tp = self.prepare_native(fname, arg_types, fun_entries)
            with _obs.span("execute:native"):
                return VectorEvaluator(tp, native=get_engine()).call(
                    mono, list(args))
        if backend == "parallel":
            from repro.parallel.engine import get_parallel_engine
            mono, tp = self.prepare_native(fname, arg_types, fun_entries)
            nthreads = self._resolve_threads(fname, args, arg_types,
                                             fun_entries, _threads)
            with _obs.span("execute:parallel"):
                return VectorEvaluator(
                    tp, native=get_parallel_engine(nthreads)).call(
                        mono, list(args))
        mono, tp = self.prepare(fname, arg_types, fun_entries)
        with _obs.span("execute:vector"):
            return VectorEvaluator(tp).call(mono, list(args))

    # -- segment batching ------------------------------------------------------

    def run_batched(self, fname: str, argsets: Sequence[Sequence[Any]],
                    backend: str = "vector",
                    types: Optional[Sequence[TypeLike]] = None,
                    check: Union[bool, str] = False,
                    budget: Optional[Budget] = None,
                    threads: ThreadSpec = None) -> list:
        """Run ``fname`` over N independent argument sets as **one**
        segment-batched vector pass, returning the N results in order.

        Each argument position is packed into a frame one descriptor level
        deeper (request i becomes element i) and the batch executes as a
        single call of the synthesized depth-1 extension ``f^1`` — exactly
        the T1 machinery that realizes every nested application in the
        paper, so the results are element-wise identical to N independent
        :meth:`run` calls (a tested property; see docs/SERVING.md).

        Batching applies to the ``vector``, ``vcode`` and ``native`` back
        ends.  The
        reference interpreter has no vector representation to pack, so
        ``backend="interp"`` — like zero-argument or function-valued-
        argument entries — falls back to a per-request loop with the same
        results.  ``check``/``budget`` scope one guard around the whole
        batch (per-request budget isolation is the serving layer's job:
        :class:`repro.serve.BatchExecutor` never coalesces budgeted
        requests).
        """
        argsets = [list(a) for a in argsets]
        if not argsets:
            return []
        discharged, entry = self._discharged(fname, argsets[0], types, check,
                                             backend, batched=True)
        if check or (budget is not None and budget.any_set()):
            with _guard.guarded(GuardConfig(check=bool(check),
                                            budget=budget or Budget(),
                                            discharged=discharged)):
                return self._run_batched_unguarded(fname, argsets, backend,
                                                   types, _entry=entry,
                                                   _threads=threads)
        return self._run_batched_unguarded(fname, argsets, backend, types,
                                           _threads=threads)

    def _run_batched_unguarded(self, fname: str, argsets: list[list],
                               backend: str,
                               types: Optional[Sequence[TypeLike]],
                               _entry: Optional[tuple] = None,
                               _threads: ThreadSpec = None) -> list:
        arg_types = (_entry[0] if _entry is not None
                     else self.entry_types(fname, argsets[0], types))
        if (backend == "interp" or not arg_types
                or any(isinstance(t, T.TFun) for t in arg_types)):
            return [self._run_unguarded(fname, args, backend, types)
                    for args in argsets]
        if backend not in ("vector", "vcode", "native", "parallel"):
            raise ValueError(f"unknown backend {backend!r}")

        from repro.transform.extensions import ext1_name
        from repro.vector.batch import pack_values, unpack_values

        if backend in ("native", "parallel"):
            mono, tp = self.prepare_native(fname, arg_types, batched=True)
        else:
            mono, tp = self.prepare_batched(fname, arg_types)
        entry_def = tp.defs[mono]
        n = len(argsets)
        with _obs.span(f"batch:pack[{n}]"):
            cols = []
            for j, t in enumerate(arg_types):
                col = []
                for args in argsets:
                    if len(args) != len(arg_types):
                        raise EvalError(
                            f"{fname} expects {len(arg_types)} arguments, "
                            f"got {len(args)}")
                    col.append(from_python(args[j], t))
                cols.append(pack_values(col, t))
        ext = ext1_name(mono)
        if backend in ("vector", "native", "parallel"):
            native = None
            if backend == "native":
                from repro.native.engine import get_engine
                native = get_engine()
            elif backend == "parallel":
                from repro.parallel.engine import get_parallel_engine
                native = get_parallel_engine(self._resolve_threads(
                    fname, argsets[0], arg_types, (), _threads))
            ev = VectorEvaluator(tp, native=native)
            with _guard.scoped_recursion_limit(200_000), \
                    _obs.span(f"execute:{backend}-batch[{n}]"):
                out = ev.call_raw(ext, cols)
        else:
            from repro.vcode.compile import compile_transformed
            from repro.vcode.vm import VM
            with _obs.span("vcode-compile"):
                vm = VM(compile_transformed(tp), fusion=tp.fusion)
            with _guard.scoped_recursion_limit(200_000), \
                    _obs.span(f"execute:vcode-batch[{n}]"):
                out = vm.call_raw(ext, cols)
        with _obs.span(f"batch:unpack[{n}]"):
            parts = unpack_values(out, entry_def.ret_type, n)
            return [to_python(p, entry_def.ret_type) for p in parts]

    # -- VCODE / machine model ------------------------------------------------------

    def compile_vcode(self, fname: str, arg_types: Sequence[TypeLike]):
        """Compile an entry to a VCODE program; returns (mono-name, VProgram)."""
        from repro.vcode.compile import compile_transformed
        ats = tuple(_as_type(t) for t in arg_types)
        mono, tp = self.prepare(fname, ats)
        return mono, compile_transformed(tp)

    def vcode_vm(self, fname: str, args: Sequence[Any],
                 types: Optional[Sequence[TypeLike]] = None,
                 _entry: Optional[tuple] = None):
        """A fresh VM (with trace recording) for an entry; returns (vm, mono)."""
        from repro.vcode.compile import compile_transformed
        from repro.vcode.vm import VM
        if _entry is not None:
            arg_types, fun_entries = _entry
        else:
            arg_types = self.entry_types(fname, args, types)
            fun_entries = self._fun_value_entries(args, arg_types)
        mono, tp = self.prepare(fname, arg_types, fun_entries)
        with _obs.span("vcode-compile"):
            vm = VM(compile_transformed(tp), fusion=tp.fusion)
        return vm, mono

    def vector_trace(self, fname: str, args: Sequence[Any],
                     types: Optional[Sequence[TypeLike]] = None
                     ) -> tuple[Any, list[tuple[str, int]]]:
        """Run on the VCODE VM and return (result, op-width trace) — the
        input to the machine simulator."""
        vm, mono = self.vcode_vm(fname, args, types)
        result = vm.call(mono, list(args))
        return result, vm.trace

    def emit_c(self, fname: str, arg_types: Sequence[TypeLike],
               native: bool = False,
               omp_threads: Optional[int] = None) -> str:
        """CVL-style C translation unit for an entry (section-5 view).

        ``native=True`` uses the native backend's fused pipeline and
        appends the *real* C kernels the native engine compiles for each
        fused region (the same :mod:`repro.native.codegen` output that
        lands in the kernel cache; see docs/NATIVE.md).  ``omp_threads``
        additionally switches those kernels to the OpenMP multicore
        variants the parallel backend compiles for that thread count
        (docs/PARALLEL.md)."""
        from repro.vcode.compile import compile_transformed
        from repro.vcode.emit_c import emit_program
        ats = tuple(_as_type(t) for t in arg_types)
        if native:
            _mono, tp = self.prepare_native(fname, ats)
        else:
            _mono, tp = self.prepare(fname, ats)
        vp = compile_transformed(tp)
        return emit_program(vp, fusion=tp.fusion if native else None,
                            omp_threads=omp_threads)

    def run_both(self, fname: str, args: Sequence[Any],
                 types: Optional[Sequence[TypeLike]] = None,
                 check: Union[bool, str] = False,
                 budget: Optional[Budget] = None) -> tuple[Any, Any]:
        """Run on both back ends and assert agreement (the paper's soundness
        property); returns (value, value)."""
        vec = self.run(fname, args, "vector", types, check=check, budget=budget)
        ref = self.run(fname, args, "interp", types, check=check, budget=budget)
        if vec != ref:
            raise AssertionError(
                f"back ends disagree on {fname}{tuple(args)!r}: "
                f"vector={vec!r} interp={ref!r}")
        return vec, ref

    def run_all(self, fname: str, args: Sequence[Any],
                types: Optional[Sequence[TypeLike]] = None,
                check: Union[bool, str] = False,
                budget: Optional[Budget] = None) -> Any:
        """Run on all three back ends (interp, vector, vcode) and assert
        three-way agreement; returns the common value."""
        vec, ref = self.run_both(fname, args, types, check=check, budget=budget)
        vc = self.run(fname, args, "vcode", types, check=check, budget=budget)
        if vc != vec:
            raise AssertionError(
                f"VCODE VM disagrees on {fname}{tuple(args)!r}: "
                f"vcode={vc!r} vector={vec!r}")
        return vec

    def profile(self, fname: str, args: Sequence[Any],
                backend: str = "vector",
                types: Optional[Sequence[TypeLike]] = None,
                threads: Optional[int] = None,
                **meta) -> tuple[Any, "ProfileReport"]:
        """Run ``fname(args)`` under the observability layer and return
        ``(result, ProfileReport)``.

        Counters cover the whole run; phase spans cover whatever work
        actually happens inside it — if this entry was already prepared,
        the transform spans were spent earlier and only execution spans
        appear (profile a fresh :func:`compile_program` to see compile
        phases).  See docs/OBSERVABILITY.md.
        """
        from repro.obs import Profiler, profiling
        prof = Profiler()
        with profiling(prof):
            result = self.run(fname, args, backend, types, threads=threads)
        return result, prof.report(entry=fname, backend=backend, **meta)

    def measure(self, fname: str, args: Sequence[Any]) -> tuple[Any, CostReport]:
        """Run on the reference interpreter with work/span accounting."""
        return Interpreter(self.canonical).run(fname, list(args))

    def measure_vector(self, fname: str, args: Sequence[Any],
                       types: Optional[Sequence[TypeLike]] = None
                       ) -> tuple[Any, CostReport]:
        """Vector-model cost of the *flattened* execution: work = total
        elements moved by vector ops, span = number of vector ops (each op
        is one step in the vector model)."""
        result, trace = self.vector_trace(fname, args, types)
        report = CostReport(work=sum(max(0, n) for _op, n in trace),
                            span=len(trace))
        return result, report

    def evaluator(self, fname: str, args: Sequence[Any],
                  types: Optional[Sequence[TypeLike]] = None
                  ) -> tuple[VectorEvaluator, str, list]:
        """Lower-level access: (evaluator, mono-name, args) for callers that
        drive execution themselves (the VCODE compiler, the simulator)."""
        arg_types = self.entry_types(fname, args, types)
        fun_entries = self._fun_value_entries(args, arg_types)
        mono, tp = self.prepare(fname, arg_types, fun_entries)
        return VectorEvaluator(tp), mono, list(args)

    # -- inspection ----------------------------------------------------------------

    def transformed_source(self, fname: str, args_or_types: Sequence[Any],
                           by_types: bool = False) -> str:
        """Pretty-printed iterator-free program for an entry (section 5 view)."""
        if by_types:
            arg_types = tuple(_as_type(t) for t in args_or_types)
        else:
            arg_types = self.entry_types(fname, args_or_types)
        mono, tp = self.prepare(fname, arg_types)
        return "\n\n".join(pretty_def(d) for d in tp.defs.values())

    def trace_for(self, fname: str, arg_types: Sequence[TypeLike]):
        """Rule-application trace for an entry (requires options.trace)."""
        mono, tp = self.prepare(fname, tuple(_as_type(t) for t in arg_types))
        return tp.trace


def compile_program(source: str, use_prelude: bool = True,
                    options: Optional[TransformOptions] = None) -> CompiledProgram:
    """Front half of the pipeline: parse, run the source-stage passes
    (R1 canonicalization, with its postcondition and optional IR dump —
    see docs/PASSES.md), and type-check."""
    from repro.passes.base import PassContext
    from repro.passes.manager import manager_for

    with _obs.span("parse"):
        raw = parse_program(source)
        if use_prelude:
            raw = merge_with_prelude(raw)
    opts = options or TransformOptions()
    pm = manager_for(opts)  # validates the whole pipeline's ordering
    ctx = PassContext(options=opts, program=raw)
    pm.run_source(ctx)
    canonical = ctx.program
    with _obs.span("typecheck"):
        typed = typecheck_program(canonical)
    return CompiledProgram(raw=raw, canonical=canonical, typed=typed,
                           options=opts)


def run(source: str, fname: str, args: Sequence[Any],
        backend: str = "vector",
        types: Optional[Sequence[TypeLike]] = None) -> Any:
    """One-shot convenience: compile and run."""
    return compile_program(source).run(fname, args, backend, types)


def batch_executor(config=None, cache=None):
    """A serving :class:`~repro.serve.BatchExecutor`: bounded request
    queue, LRU compile cache, and same-function segment batching (one
    extra descriptor level, one vector pass per batch).  Lazy import so
    the serving layer costs nothing unless used; see docs/SERVING.md."""
    from repro.serve import BatchExecutor
    return BatchExecutor(config=config, cache=cache)
