"""Operation classes and a communication-aware machine model.

The basic :class:`~repro.machine.simulator.VectorMachine` charges every
vector op ``latency + ceil(n/P)``.  Real machines distinguish op classes by
their communication pattern — the concern that originally drove flat
data-parallel languages to regular layouts (paper section 1: "an effort to
predict and minimize communication requirements").  This module classifies
every op the back ends emit and provides :class:`CommMachine`, which scales
each op's element cost by a per-class factor:

==============  ===========================================  =============
class           ops                                          pattern
==============  ===========================================  =============
elementwise     add, mul, comparisons, not, ...              none (local)
scan_reduce     sum, maxval, plus_scan, any, ...             tree/scan
gather_scatter  seq_index, permute, restrict, combine, ...   irregular
replicate       dist, broadcast of invariant arguments       one-to-many
structure       length, flatten, extract-side descriptor op  descriptors
==============  ===========================================  =============

The class mix of a trace (:func:`classify_trace`) shows *where* a flattened
program spends its machine time — the analysis the paper's CVL targets did
by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

ELEMENTWISE = frozenset({
    "add", "sub", "mul", "div", "mod", "max2", "min2", "neg", "abs_",
    "eq", "ne", "lt", "le", "gt", "ge", "and_", "or_", "not_",
    "fdiv", "sqrt_", "real", "trunc_", "round_", "floor_", "ceil_",
    "__rep",
})

SCAN_REDUCE = frozenset({
    "sum", "maxval", "minval", "anytrue", "alltrue",
    "plus_scan", "max_scan", "any", "rank",
})

GATHER_SCATTER = frozenset({
    "seq_index", "seq_update", "restrict", "combine", "permute",
    "concat", "seq_cons", "__seq_cons", "apply_frame",
})

REPLICATE = frozenset({"dist", "replicate"})

STRUCTURE = frozenset({"length", "flatten", "range", "range1"})


def classify(op: str) -> str:
    """Op class of one trace entry (unknown ops count as gather_scatter,
    the conservative choice)."""
    if op in ELEMENTWISE:
        return "elementwise"
    if op in SCAN_REDUCE:
        return "scan_reduce"
    if op in REPLICATE:
        return "replicate"
    if op in STRUCTURE:
        return "structure"
    if op in GATHER_SCATTER:
        return "gather_scatter"
    return "gather_scatter"


@dataclass
class ClassMix:
    """Aggregate (steps, work) per op class for one trace."""

    steps: dict[str, int] = field(default_factory=dict)
    work: dict[str, int] = field(default_factory=dict)

    @property
    def total_work(self) -> int:
        return sum(self.work.values())

    def work_fraction(self, cls: str) -> float:
        t = self.total_work
        return self.work.get(cls, 0) / t if t else 0.0

    def __str__(self) -> str:
        rows = []
        for cls in sorted(self.work, key=self.work.get, reverse=True):
            rows.append(f"{cls:>15}: steps={self.steps[cls]:>6} "
                        f"work={self.work[cls]:>10} "
                        f"({self.work_fraction(cls):6.1%})")
        return "\n".join(rows)


def classify_trace(trace: Iterable[tuple[str, int]]) -> ClassMix:
    """Group a VCODE trace by op class."""
    mix = ClassMix()
    for op, n in trace:
        cls = classify(op)
        mix.steps[cls] = mix.steps.get(cls, 0) + 1
        mix.work[cls] = mix.work.get(cls, 0) + max(0, int(n))
    return mix


#: Default per-class element-cost factors for a distributed-memory machine:
#: local arithmetic is cheap, tree reductions pay log-ish overhead folded
#: into a constant factor, irregular communication dominates.
DEFAULT_FACTORS = {
    "elementwise": 1.0,
    "structure": 1.0,
    "scan_reduce": 2.0,
    "replicate": 3.0,
    "gather_scatter": 4.0,
}


@dataclass
class CommMachine:
    """P processors with per-op-class communication factors.

    A length-n op of class c costs ``latency + factor[c] * ceil(n/P)``
    cycles.  With all factors 1 this degenerates to
    :class:`~repro.machine.simulator.VectorMachine`.
    """

    processors: int = 16
    latency: int = 2
    factors: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_FACTORS))

    def run_trace(self, trace: Iterable[tuple[str, int]]):
        from repro.machine.simulator import MachineReport
        if self.processors < 1:
            raise ValueError("need at least one processor")
        cycles = 0.0
        work = 0
        steps = 0
        for op, n in trace:
            n = max(0, int(n))
            f = self.factors.get(classify(op), 1.0)
            cycles += self.latency + f * (-(-n // self.processors))
            work += n
            steps += 1
        return MachineReport(processors=self.processors, latency=self.latency,
                             cycles=int(round(cycles)), steps=steps, work=work)


def top_ops(trace: Iterable[tuple[str, int]], k: int = 10) -> list[tuple[str, int, int]]:
    """The k ops with the most total work: (op, steps, work), sorted."""
    steps: dict[str, int] = {}
    work: dict[str, int] = {}
    for op, n in trace:
        steps[op] = steps.get(op, 0) + 1
        work[op] = work.get(op, 0) + max(0, int(n))
    ranked = sorted(work, key=work.get, reverse=True)[:k]
    return [(op, steps[op], work[op]) for op in ranked]
