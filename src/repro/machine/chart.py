"""Tiny ASCII charts for the experiment reports.

The paper's performance story is told in shapes (speedup curves,
utilization vs skew); these helpers render them as text so
``benchmarks/make_report.py`` can include *figures*, not just tables,
with zero plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence


def hbar_chart(labels: Sequence[str], values: Sequence[float],
               width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart; one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not labels:
        return "(empty chart)"
    top = max(max(values), 1e-12)
    lw = max(len(str(l)) for l in labels)
    rows = []
    for label, v in zip(labels, values):
        n = int(round(width * v / top))
        rows.append(f"{str(label):>{lw}} | {'#' * n}{' ' * (width - n)} "
                    f"{v:g}{unit}")
    return "\n".join(rows)


def line_chart(xs: Sequence[float], ys: Sequence[float],
               height: int = 10, width: int = 50,
               xlabel: str = "", ylabel: str = "") -> str:
    """Scatter/line chart on a character grid (marks points with '*')."""
    if len(xs) != len(ys):
        raise ValueError("xs/ys length mismatch")
    if not xs:
        return "(empty chart)"
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        cx = int((x - xmin) / xspan * (width - 1))
        cy = int((y - ymin) / yspan * (height - 1))
        grid[height - 1 - cy][cx] = "*"
    lines = []
    for r, row in enumerate(grid):
        label = f"{ymax:g}" if r == 0 else (f"{ymin:g}" if r == height - 1 else "")
        lines.append(f"{label:>8} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{xmin:<10g}{xlabel:^{max(0, width - 20)}}{xmax:>10g}")
    if ylabel:
        lines.insert(0, f"{ylabel}")
    return "\n".join(lines)
