"""Simulated P-processor vector machine.

The paper ran CVL on real parallel hardware; here a cycle model stands in
(DESIGN.md section 5): a length-n vector operation on P processors costs
``latency + ceil(n / P)`` cycles, the standard vector-model mapping.  This
preserves the structural claims under study — load balance, step counts,
speedup shapes — which depend only on that cost structure.
"""

from repro.machine.simulator import MachineReport, VectorMachine
from repro.machine.metrics import (
    block_makespan, greedy_makespan, utilization, speedup_curve,
)
from repro.machine.opclasses import (
    ClassMix, CommMachine, classify, classify_trace, top_ops,
)

__all__ = ["VectorMachine", "MachineReport", "block_makespan",
           "greedy_makespan", "utilization", "speedup_curve",
           "CommMachine", "ClassMix", "classify", "classify_trace",
           "top_ops"]
