"""Load-balance metrics for the *nested / task-per-processor* execution
model that the flattening transformation competes against.

Languages without flattening map each outer element of a nested parallel
computation to a processor (or a task).  With irregular element sizes the
makespan is dominated by the largest element regardless of scheduling —
this module quantifies that, so benchmark E8 can contrast it with the
flattened execution's near-perfect balance.
"""

from __future__ import annotations

import heapq
from typing import Sequence


def block_makespan(task_work: Sequence[int], processors: int) -> int:
    """Makespan of a static block (contiguous) assignment of tasks to
    processors — the default distribution of flat data-parallel languages."""
    n = len(task_work)
    if processors < 1:
        raise ValueError("need at least one processor")
    if n == 0:
        return 0
    per = -(-n // processors)
    best = 0
    for p in range(processors):
        chunk = task_work[p * per:(p + 1) * per]
        best = max(best, sum(chunk))
    return best


def greedy_makespan(task_work: Sequence[int], processors: int) -> int:
    """Makespan of a greedy list-scheduling (longest-queue-first) dynamic
    assignment — the best a task-per-element runtime realistically does
    without splitting tasks."""
    if processors < 1:
        raise ValueError("need at least one processor")
    if not task_work:
        return 0
    heap = [0] * min(processors, len(task_work))
    heapq.heapify(heap)
    for w in sorted(task_work, reverse=True):
        load = heapq.heappop(heap)
        heapq.heappush(heap, load + int(w))
    return max(heap)


def utilization(task_work: Sequence[int], processors: int, makespan: int) -> float:
    """Useful fraction of processor-cycles for a given makespan."""
    total = sum(int(w) for w in task_work)
    return total / (processors * makespan) if makespan else 0.0


def speedup_curve(task_work: Sequence[int], processor_counts: Sequence[int],
                  schedule: str = "greedy") -> list[tuple[int, float]]:
    """(P, speedup) pairs for the task-per-element model.

    ``schedule`` is ``"block"`` or ``"greedy"``.
    """
    total = sum(int(w) for w in task_work)
    fn = block_makespan if schedule == "block" else greedy_makespan
    out = []
    for p in processor_counts:
        ms = fn(task_work, p)
        out.append((p, total / ms if ms else 0.0))
    return out
