"""Cycle model of a P-processor machine executing a vector-op trace.

Input: the op-width trace recorded by the VCODE VM (or the tree evaluator's
observer) — one ``(opname, element_count)`` entry per executed vector
operation.  Each op costs ``latency + ceil(n / processors)`` cycles: all
processors cooperate on each flat vector operation, which is exactly how
CVL-style libraries execute and why the flattened program load-balances
regardless of how irregular the nesting was.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MachineReport:
    """Results of simulating one trace on one machine configuration."""

    processors: int
    latency: int
    cycles: int          # simulated time T_P
    steps: int           # number of vector ops (vector-model step count)
    work: int            # total elements processed = T_1 with latency 0

    @property
    def speedup_vs_serial(self) -> float:
        """T_1 / T_P against a 1-processor machine with the same latency."""
        t1 = self.steps * self.latency + self.work
        return t1 / self.cycles if self.cycles else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of processor-cycles doing useful element work."""
        return self.work / (self.processors * self.cycles) if self.cycles else 0.0

    def __str__(self) -> str:
        return (f"P={self.processors} cycles={self.cycles} steps={self.steps} "
                f"work={self.work} speedup={self.speedup_vs_serial:.2f} "
                f"util={self.utilization:.2%}")


@dataclass
class VectorMachine:
    """A P-processor machine in the vector model."""

    processors: int = 16
    #: per-vector-op fixed overhead in cycles (instruction issue, sync)
    latency: int = 2

    def run_trace(self, trace: list[tuple[str, int]]) -> MachineReport:
        """Charge every op of the trace; return the aggregate report."""
        if self.processors < 1:
            raise ValueError("need at least one processor")
        cycles = 0
        work = 0
        for _op, n in trace:
            n = max(0, int(n))
            cycles += self.latency + -(-n // self.processors)  # ceil div
            work += n
        return MachineReport(processors=self.processors, latency=self.latency,
                             cycles=cycles, steps=len(trace), work=work)


def sweep_processors(trace: list[tuple[str, int]],
                     processor_counts: list[int],
                     latency: int = 2) -> list[MachineReport]:
    """Simulate one trace across machine sizes (speedup curves)."""
    return [VectorMachine(p, latency).run_trace(trace)
            for p in processor_counts]
