"""Whole-program transformation driver, on the pass manager.

Given a :class:`TypedProgram` and entry points (monomorphized names),
:func:`transform_program` produces a :class:`TransformedProgram`: every
reachable function body made iterator-free (R2) plus the synthesized
``f^1`` depth-1 parallel extensions (R0) — "the number of parallel
extensions of f that are introduced is a static property of the
program".

Since the pass-manager refactor the driver itself is thin: a
:class:`TransformOptions` *compiles down to a pass list*
(:meth:`TransformOptions.pipeline`), a validated
:class:`~repro.passes.manager.PassManager` runs the defs-stage passes
(R2 elimination, the §4.5 optimizations, cleanup, optional fusion) with
per-pass timing, per-pass postcondition verification, and optional
labeled IR dumps.  The source-stage portion of the same pipeline (R1
canonicalization) runs earlier, in :func:`repro.api.compile_program`.
See docs/PASSES.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.lang import ast as A
from repro.lang.typecheck import TypedProgram
from repro.passes.base import PassContext
from repro.passes.manager import manager_for
from repro.transform.extensions import ext1_name
from repro.transform.trace import NullTrace, Trace

#: the default pass pipeline (R1 through cleanup); ``fuse`` appends when
#: enabled.  ``optimize`` is always listed — its §4.5 patterns are
#: individually gated, so ablations change which patterns fire, not the
#: pipeline shape (and its postcondition re-verifies either way).
DEFAULT_PASSES = ("canonical", "eliminate", "optimize", "simplify")


@dataclass
class TransformOptions:
    """Switches for the section-4.5 optimizations, pipeline shape, and
    tracing; compiles down to a pass list via :meth:`pipeline`.

    Option interactions are by *pipeline position*, not flag order —
    see the supported-combination table in docs/PASSES.md.  The defaults
    run ``canonical, eliminate, optimize, simplify``:

    * ``reduce_to_native`` (default off) and ``shared_seq_index``
      (default on) both gate patterns *inside* the ``optimize`` pass;
      when both are on, native reductions rewrite first, then index
      sharing (the reduction rewrite can expose shared sources but never
      the converse).
    * ``fuse`` (default off) appends the ``fuse`` pass after
      ``simplify``, so fusion sees cleaned let-chains; with ``simplify``
      off, fusion still runs, on the raw R2 output.
    * ``reduce_to_native`` + ``fuse`` compose: reductions are not
      elementwise, so a rewritten ``sum`` bounds a fused region but is
      never pulled into one.

    Every combination of the four switches is supported and covered by
    ``tests/passes/test_options.py``.
    """

    #: rewrite seq_index with a depth-0 source to the shared fast path
    #: (§4.5 pt. 1; an ``optimize``-pass pattern)
    shared_seq_index: bool = True
    #: rewrite reduce(add/max2/min2, v) to native segmented reductions
    #: (§4.5 pt. 2; an ``optimize``-pass pattern)
    reduce_to_native: bool = False
    #: clean the generated let-chains (alias inlining, dead bindings);
    #: includes the ``simplify`` pass
    simplify: bool = True
    #: fuse chains of same-depth elementwise primitives into single ops;
    #: appends the ``fuse`` pass (after ``simplify`` when both are on)
    fuse: bool = False
    #: record a rule-application trace (benchmark E6)
    trace: bool = False
    #: re-check per-pass postconditions after every pass (repro.analysis)
    verify: bool = True
    #: explicit pass list (names from :mod:`repro.passes.registry`);
    #: overrides the flag-derived pipeline when set.  Ordering is
    #: validated against declared invariants before anything runs.
    passes: Optional[tuple[str, ...]] = None
    #: dump pretty-printed IR after every executed pass
    print_ir_all: bool = False
    #: dump IR after exactly these passes
    print_ir_after: tuple[str, ...] = ()
    #: where IR dumps go (callable taking the dump text); None = stderr
    ir_sink: Optional[Callable[[str], None]] = None

    def pipeline(self) -> tuple[str, ...]:
        """The pass list these options compile down to: the explicit
        ``passes`` when given, else the flag-derived default
        (``canonical, eliminate, optimize[, simplify][, fuse]``)."""
        if self.passes is not None:
            return tuple(self.passes)
        names = ["canonical", "eliminate", "optimize"]
        if self.simplify:
            names.append("simplify")
        if self.fuse:
            names.append("fuse")
        return tuple(names)


@dataclass
class TransformedProgram:
    """Iterator-free functions ready for vector execution (R2 output plus
    the R0-synthesized extensions)."""

    typed: TypedProgram
    defs: dict[str, A.FunDef]
    options: TransformOptions
    trace: Trace
    fusion: object = None  # FusionRegistry when the fuse pass ran
    #: (pass verify-stage name, defs checked) per verifier run, in order
    verified_phases: tuple = ()

    def __getitem__(self, name: str) -> A.FunDef:
        return self.defs[name]

    def __contains__(self, name: str) -> bool:
        return name in self.defs

    def has_ext1(self, mono_name: str) -> bool:
        """True when the R0 depth-1 extension of ``mono_name`` exists."""
        return ext1_name(mono_name) in self.defs

    def ext1(self, mono_name: str) -> A.FunDef:
        """The R0 depth-1 extension ``f^1`` of ``mono_name``."""
        return self.defs[ext1_name(mono_name)]


def transform_program(typed: TypedProgram, entries: list[str],
                      options: Optional[TransformOptions] = None,
                      ext_entries: tuple[str, ...] = ()) -> TransformedProgram:
    """Transform ``entries`` (monomorphized names) and everything they
    reach, by running the defs-stage passes of the options' pipeline
    (R2 elimination onward).

    ``ext_entries`` additionally get their depth-1 extensions synthesized
    (R0) — used for function values injected from outside the program
    (e.g. a user function passed as an entry argument), which static
    analysis cannot see.
    """
    opts = options or TransformOptions()
    trace = Trace() if opts.trace else NullTrace()
    pm = manager_for(opts)
    ctx = PassContext(options=opts, trace=trace, typed=typed,
                      entries=tuple(entries),
                      ext_entries=tuple(ext_entries))
    pm.run_defs(ctx)
    return TransformedProgram(typed=typed, defs=ctx.defs, options=opts,
                              trace=trace, fusion=ctx.fusion,
                              verified_phases=tuple(ctx.verified))
