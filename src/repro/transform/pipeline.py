"""Whole-program transformation driver.

Given a :class:`TypedProgram` and entry points (monomorphized names), this
produces a :class:`TransformedProgram`: every reachable function body made
iterator-free by the eliminator, plus the synthesized ``f^1`` depth-1
parallel extensions.  "The number of parallel extensions of f that are
introduced is a static property of the program" — the worklist below
discovers exactly that set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransformError
from repro.lang import ast as A
from repro.lang.typecheck import TypedProgram
from repro.obs import runtime as _obs
from repro.transform import optimize as OPT
from repro.transform.eliminate import Eliminator
from repro.transform.extensions import ext1_name, synthesize_ext1
from repro.transform.trace import NullTrace, Trace


@dataclass
class TransformOptions:
    """Switches for the section-4.5 optimizations and tracing."""

    #: rewrite seq_index with a depth-0 source to the shared fast path
    shared_seq_index: bool = True
    #: rewrite reduce(add/max2/min2, v) to native segmented reductions
    reduce_to_native: bool = False
    #: clean the generated let-chains (alias inlining, dead bindings)
    simplify: bool = True
    #: fuse chains of same-depth elementwise primitives into single ops
    fuse: bool = False
    #: record a rule-application trace (benchmark E6)
    trace: bool = False
    #: re-check phase postconditions after every phase (repro.analysis)
    verify: bool = True


@dataclass
class TransformedProgram:
    """Iterator-free functions ready for vector execution."""

    typed: TypedProgram
    defs: dict[str, A.FunDef]
    options: TransformOptions
    trace: Trace
    fusion: object = None  # FusionRegistry when options.fuse
    #: (phase stage name, defs checked) per verifier run, in phase order
    verified_phases: tuple = ()

    def __getitem__(self, name: str) -> A.FunDef:
        return self.defs[name]

    def __contains__(self, name: str) -> bool:
        return name in self.defs

    def has_ext1(self, mono_name: str) -> bool:
        return ext1_name(mono_name) in self.defs

    def ext1(self, mono_name: str) -> A.FunDef:
        return self.defs[ext1_name(mono_name)]


class _Pipeline:
    """Worklist-driven transformation; implements ExtensionRegistry."""

    def __init__(self, typed: TypedProgram, trace: Trace):
        self.typed = typed
        self.trace = trace
        self.out_defs: dict[str, A.FunDef] = {}
        self._queue: list[tuple[str, str]] = []  # (mono_name, "def"|"ext1")
        self._seen: set[tuple[str, str]] = set()
        self.eliminator = Eliminator(self, trace)

    # -- ExtensionRegistry ----------------------------------------------------

    def is_user_function(self, name: str) -> bool:
        return name in self.typed.mono_defs

    def request_def(self, mono_name: str) -> None:
        self._enqueue(mono_name, "def")

    def request_ext1(self, mono_name: str) -> None:
        self._enqueue(mono_name, "ext1")

    def _enqueue(self, mono_name: str, kind: str) -> None:
        if mono_name not in self.typed.mono_defs:
            raise TransformError(f"unknown function {mono_name!r}")
        key = (mono_name, kind)
        if key not in self._seen:
            self._seen.add(key)
            self._queue.append(key)

    # -- processing --------------------------------------------------------------

    def drain(self) -> None:
        while self._queue:
            name, kind = self._queue.pop()
            if kind == "def":
                self._transform_def(name)
            else:
                self._transform_ext1(name)

    def _transform_def(self, name: str) -> None:
        src = self.typed.mono_defs[name]
        body = self.eliminator.transform_body(name, src.params, A.clone(src.body))
        if A.contains_iterator(body):
            raise TransformError(f"iterators remain in transformed {name}")
        self.out_defs[name] = A.FunDef(
            name=name, params=list(src.params), body=body,
            param_types=src.param_types, ret_type=src.ret_type,
            line=src.line, col=src.col)

    def _transform_ext1(self, name: str) -> None:
        src = self.typed.mono_defs[name]
        wrapper = synthesize_ext1(src)
        self.trace.record_text(
            "R0", f"fun {name}({', '.join(src.params)}) = ...",
            f"fun {wrapper.name}({', '.join(wrapper.params)}) = "
            f"[i <- [1..#{wrapper.params[0]}]: ...]")
        body = self.eliminator.transform_body(
            wrapper.name, wrapper.params, wrapper.body)
        if A.contains_iterator(body):
            raise TransformError(f"iterators remain in {wrapper.name}")
        self.out_defs[wrapper.name] = A.FunDef(
            name=wrapper.name, params=wrapper.params, body=body,
            param_types=wrapper.param_types, ret_type=wrapper.ret_type,
            line=src.line, col=src.col)


def transform_program(typed: TypedProgram, entries: list[str],
                      options: Optional[TransformOptions] = None,
                      ext_entries: tuple[str, ...] = ()) -> TransformedProgram:
    """Transform ``entries`` (monomorphized names) and everything they reach.

    ``ext_entries`` additionally get their depth-1 extensions synthesized —
    used for function values injected from outside the program (e.g. a user
    function passed as an entry argument), which static analysis cannot see.
    """
    opts = options or TransformOptions()
    trace = Trace() if opts.trace else NullTrace()
    pl = _Pipeline(typed, trace)

    verified: list[tuple[str, int]] = []

    def verify(phase: str) -> None:
        # the phase-boundary IR verifier (docs/ANALYSIS.md); lazy import
        # keeps the transform layer loadable without the analysis package
        if not opts.verify:
            return
        from repro.analysis.verify import verify_transformed
        stage = f"verify:{phase}"
        with _obs.span(stage):
            n = verify_transformed(pl.out_defs, stage, typed)
        verified.append((stage, n))

    with _obs.span("eliminate"):
        for name in entries:
            pl.request_def(name)
        for name in ext_entries:
            pl.request_ext1(name)
        pl.drain()
    verify("eliminate")

    defs = pl.out_defs
    with _obs.span("optimize"):
        if opts.reduce_to_native:
            for d in defs.values():
                d.body = OPT.rewrite_native_reduce(d.body)
        if opts.shared_seq_index:
            for d in defs.values():
                d.body = OPT.rewrite_shared_index(d.body)
                d.body = OPT.rewrite_segshared_index(d.body)
    verify("optimize")
    if opts.simplify:
        from repro.transform.simplify import simplify_def
        with _obs.span("simplify"):
            for d in defs.values():
                simplify_def(d)
        verify("simplify")
    fusion = None
    if opts.fuse:
        from repro.transform.fuse import FusionRegistry, fuse_expr
        fusion = FusionRegistry()
        with _obs.span("fuse"):
            for d in defs.values():
                d.body = fuse_expr(d.body, fusion)
        verify("fuse")
    return TransformedProgram(typed=typed, defs=defs, options=opts,
                              trace=trace, fusion=fusion,
                              verified_phases=tuple(verified))
