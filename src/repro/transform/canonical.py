"""Iterator canonical form — the paper's rule R1 plus the filtered-iterator
desugaring of section 2.

R1 (section 3.1): an iterator is canonical when its domain is ``[1..e]``::

    [x <- e1: e2]  ==>  let v = e1 in [i <- [1..#v]: e2[x := v[i]]]

Filtered form (section 2)::

    [x <- d | b: e]  ==>  let T = restrict(d, [x <- d: b])
                          in [t <- T: e[x := t]]

Both are *source-to-source*: canonicalization runs on the untyped parse so
that the subsequent type check annotates the generated nodes like any other
code.  Domains that are already literally ``[1..e]`` with a constant lower
bound 1 are left untouched.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.transform.trace import NullTrace, Trace


def _is_canonical_domain(d: A.Expr) -> bool:
    """True for a literal ``range(1, e)`` domain."""
    return (isinstance(d, A.Call)
            and isinstance(d.fn, A.Var) and d.fn.name == "range"
            and len(d.args) == 2
            and isinstance(d.args[0], A.IntLit) and d.args[0].value == 1)


def _call(name: str, *args: A.Expr) -> A.Call:
    return A.Call(A.Var(name), list(args))


def canonicalize_expr(e: A.Expr, trace: Trace | None = None) -> A.Expr:
    """Recursively rewrite ``e`` so every iterator is canonical and
    filter-free."""
    trace = trace or NullTrace()
    e = A.map_children(e, lambda c: canonicalize_expr(c, trace))

    if not isinstance(e, A.Iter):
        return e

    # Step 1: desugar the filter (section 2); bind the domain once
    if e.filter is not None:
        dv = A.fresh_name("d")
        t = A.fresh_name("T")
        tv = A.fresh_name(e.var)
        mask = A.Iter(e.var, A.Var(dv), e.filter, None)
        restricted = _call("restrict", A.Var(dv), mask)
        body = A.substitute(e.body, {e.var: A.Var(tv)})
        new = A.Let(dv, e.domain,
                    A.Let(t, restricted, A.Iter(tv, A.Var(t), body, None)))
        new.line, new.col = e.line, e.col
        trace.record("filter", e, new)
        # the generated iterators may themselves need R1
        return canonicalize_expr(new, trace)

    # Step 2: R1 for non-range domains.  The paper substitutes v[i] for
    # every occurrence of x; binding it once (let x = v[i] in e2) is
    # equivalent in a pure language and avoids duplicating the indexing
    # when x occurs several times.
    if _is_canonical_domain(e.domain):
        return e
    v = A.fresh_name("v")
    i = A.fresh_name("i")
    elem = _call("seq_index", A.Var(v), A.Var(i))
    body = A.Let(e.var, elem, e.body)
    domain = _call("range", A.IntLit(1), _call("length", A.Var(v)))
    new = A.Let(v, e.domain, A.Iter(i, domain, body, None))
    new.line, new.col = e.line, e.col
    trace.record("R1", e, new)
    return new


def canonicalize_def(d: A.FunDef, trace: Trace | None = None) -> A.FunDef:
    """Rewrite one definition's body to canonical iterator form (R1)."""
    return A.FunDef(name=d.name, params=list(d.params),
                    body=canonicalize_expr(d.body, trace),
                    param_types=d.param_types, ret_type=d.ret_type,
                    line=d.line, col=d.col)


def canonicalize_program(p: A.Program, trace: Trace | None = None) -> A.Program:
    """Canonicalize every definition of a program (pre-typecheck)."""
    return A.Program({d.name: canonicalize_def(d, trace) for d in p})
