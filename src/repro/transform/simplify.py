"""Post-transformation cleanup of the generated let-chains, as rewrite
patterns.

The eliminator (R2) emits very regular code — every iterator introduces
``ib``, ``iw`` and alias bindings, every R2d conditional introduces masks
and witnesses — and many of these are aliases or end up unused (e.g. a
``dist`` rebinding for a variable the body's live branch never touches).
P is pure, so the following rewrites are unconditionally sound:

* **alias/literal inlining** (:class:`AliasInlinePattern`) —
  ``let x = y in e`` (``y`` a variable or literal) becomes ``e[x := y]``;
* **dead-binding elimination** (:class:`DeadBindingPattern`) —
  ``let x = b in e`` with ``x`` not free in ``e`` becomes ``e`` (``b``
  has no effects to preserve).

The ``simplify`` pass applies both with the greedy fixpoint driver
(:func:`~repro.passes.pattern.greedy_rewrite`).  This is the first of
the "improvements to the transformations that yield more efficient code"
the paper's section 6 says the authors were investigating; benchmark
E11x measures the step-count reduction.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast as A
from repro.passes.pattern import RewritePattern, greedy_rewrite

__all__ = [
    "AliasInlinePattern", "DeadBindingPattern",
    "simplify_expr", "simplify_def", "count_lets",
]


class AliasInlinePattern(RewritePattern):
    """``let x = y in e`` with ``y`` a variable or literal becomes
    ``e[x := y]`` — sound in pure P (§6 cleanup direction)."""

    def match_and_rewrite(self, e: A.Expr) -> Optional[A.Expr]:
        """Fire on a let binding a bare variable or literal."""
        if isinstance(e, A.Let) and isinstance(
                e.bound, (A.Var, A.IntLit, A.BoolLit, A.FloatLit)):
            return A.substitute(e.body, {e.var: e.bound})
        return None


class DeadBindingPattern(RewritePattern):
    """``let x = b in e`` with ``x`` not free in ``e`` becomes ``e`` —
    ``b`` is pure, so dropping it is sound (§6 cleanup direction)."""

    def match_and_rewrite(self, e: A.Expr) -> Optional[A.Expr]:
        """Fire on a let whose bound variable is dead in the body."""
        if isinstance(e, A.Let) and e.var not in A.free_vars(e.body):
            return e.body
        return None


#: the simplifier's rule set, in match order (alias inlining first, as a
#: dead alias is cheaper to inline than to liveness-check)
PATTERNS = (AliasInlinePattern(), DeadBindingPattern())


def simplify_expr(e: A.Expr) -> A.Expr:
    """Simplify to a fixpoint (each sweep is one bottom-up application of
    the §6-cleanup pattern set)."""
    return greedy_rewrite(e, PATTERNS)


def simplify_def(d: A.FunDef) -> A.FunDef:
    """Simplify one transformed (iterator-free, R2-output) definition in
    place."""
    d.body = simplify_expr(d.body)
    return d


def count_lets(e: A.Expr) -> int:
    """Number of Let nodes (used by tests and the E11x/E12 ablation
    benchmarks measuring the §6 cleanup)."""
    return sum(1 for n in A.walk(e) if isinstance(n, A.Let))
