"""Post-transformation cleanup of the generated let-chains.

The eliminator emits very regular code — every iterator introduces ``ib``,
``iw`` and alias bindings, every R2d conditional introduces masks and
witnesses — and many of these are aliases or end up unused (e.g. a ``dist``
rebinding for a variable the body's live branch never touches).  P is pure,
so the following rewrites are unconditionally sound:

* **alias/literal inlining** — ``let x = y in e`` (``y`` a variable or
  literal) becomes ``e[x := y]``;
* **dead-binding elimination** — ``let x = b in e`` with ``x`` not free in
  ``e`` becomes ``e`` (``b`` has no effects to preserve).

Iterated to a fixpoint.  This is the first of the "improvements to the
transformations that yield more efficient code" the paper's section 6 says
the authors were investigating; benchmark E11x measures the step-count
reduction.
"""

from __future__ import annotations

from repro.lang import ast as A


def simplify_expr(e: A.Expr) -> A.Expr:
    """Simplify to a fixpoint (each pass is one bottom-up sweep)."""
    while True:
        new, changed = _sweep(e)
        if not changed:
            return new
        e = new


def _sweep(e: A.Expr) -> tuple[A.Expr, bool]:
    changed = False

    def rec(c: A.Expr) -> A.Expr:
        nonlocal changed
        out, ch = _sweep(c)
        changed = changed or ch
        return out

    e = A.map_children(e, rec)

    if isinstance(e, A.Let):
        if isinstance(e.bound, (A.Var, A.IntLit, A.BoolLit, A.FloatLit)):
            return A.substitute(e.body, {e.var: e.bound}), True
        if e.var not in A.free_vars(e.body):
            return e.body, True
    return e, changed


def simplify_def(d: A.FunDef) -> A.FunDef:
    d.body = simplify_expr(d.body)
    return d


def count_lets(e: A.Expr) -> int:
    """Number of Let nodes (used by tests and the ablation benchmark)."""
    return sum(1 for n in A.walk(e) if isinstance(n, A.Let))
