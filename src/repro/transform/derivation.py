"""Derivation documents — the KIDS story.

The paper's pipeline ran inside KIDS, an interactive program-derivation
system: the user watches the program move through rule applications from
high-level form to vector code.  This module renders that derivation as a
markdown document for any entry point: original source, canonical form
(R1), the rule applications from the trace (R2a-R2f, R0, T1), the
transformed program, the VCODE, and the generated C — the full section-5 presentation for arbitrary
programs.

Used by ``python -m repro derive FILE -e ENTRY -t TYPE ...``.
"""

from __future__ import annotations

from repro.lang.pretty import pretty_def
from repro.lang.types import Type, type_str


def derivation_document(prog, entry: str, arg_types: list[Type]) -> str:
    """Render the full derivation of ``entry`` at ``arg_types``.

    ``prog`` is a :class:`repro.api.CompiledProgram` compiled with
    ``TransformOptions(trace=True)`` (rule applications are listed only if
    the trace was enabled).
    """
    mono, tp = prog.prepare(entry, tuple(arg_types))
    lines: list[str] = []
    w = lines.append

    ats = ", ".join(type_str(t) for t in arg_types)
    w(f"# Derivation of `{entry}({ats})`")
    w("")
    w("Transformation of a data-parallel Proteus program into vector")
    w("operations, following Prins & Palmer (PPoPP 1993).")
    w("")

    w("## 1. Source program (P)")
    w("")
    w("```")
    user_defs = [d for d in prog.raw if not _is_prelude(prog, d.name)]
    w("\n\n".join(pretty_def(d) for d in user_defs))
    w("```")
    w("")

    w("## 2. Canonical form (rule R1, filter desugaring)")
    w("")
    w("Every iterator's domain becomes `[1..e]`; filters become")
    w("restrict-of-mask (paper section 2).")
    w("")
    w("```")
    canon = [prog.canonical[d.name] for d in user_defs
             if d.name in prog.canonical.defs]
    w("\n\n".join(pretty_def(d) for d in canon))
    w("```")
    w("")

    if tp.trace.entries:
        w("## 3. Rule applications (tau)")
        w("")
        for e in tp.trace.entries:
            w(f"* **{{{e.rule}}}** in `{e.where}`:")
            w(f"  `{e.before}`")
            w(f"  ⇒ `{e.after}`")
        w("")

    w("## 4. Transformed, iterator-free program")
    w("")
    w("Applications of depth-d parallel extensions are written `f^d`;")
    w("`__seq_index_shared` marks the section-4.5 no-replication path.")
    w("")
    w("```")
    w("\n\n".join(pretty_def(d) for d in tp.defs.values()))
    w("```")
    w("")

    w("## 5. VCODE (the executable notation V)")
    w("")
    w("```")
    from repro.vcode.compile import compile_transformed
    vp = compile_transformed(tp)
    w(str(vp))
    w("```")
    w("")

    w("## 6. Generated CVL-style C (what KIDS would emit)")
    w("")
    w("```c")
    from repro.vcode.emit_c import emit_program
    w(emit_program(vp).rstrip())
    w("```")
    w("")
    return "\n".join(lines)


_PRELUDE_RENDERED: dict[str, str] = {}


def _is_prelude(prog, name: str) -> bool:
    if not _PRELUDE_RENDERED:
        from repro.lang.prelude import prelude_program
        for d in prelude_program():
            _PRELUDE_RENDERED[d.name] = pretty_def(d)
    return name in _PRELUDE_RENDERED and name in prog.raw.defs \
        and pretty_def(prog.raw[name]) == _PRELUDE_RENDERED[name]
