"""The paper's transformations (section 3): iterator canonical form (R1),
iterator elimination (R2a-R2f), parallel-extension synthesis, and the
section-4.5 vector-level optimizations."""

from repro.transform.pipeline import TransformOptions, TransformedProgram, transform_program
from repro.transform.canonical import canonicalize_program, canonicalize_expr

__all__ = ["TransformOptions", "TransformedProgram", "transform_program",
           "canonicalize_program", "canonicalize_expr"]
