"""Elementwise fusion (extension; the direction of section 6's
"improvements to the transformations that yield more efficient code").

A chain of elementwise operations at the same depth, e.g. the transformed
body ``add^1(mul^1(x, x), __rep^1(w, 1))``, executes as several full-width
vector ops.  On the vector model each op costs a latency plus a sweep, so
fusing the chain into *one* op reduces the step count (and, on the NumPy
substrate, intermediate materialization).

The pass collects maximal trees of same-depth elementwise ``ExtCall``s,
replaces each by ``ExtCall("__fused<k>", leaves, depth)``, and records the
op tree in a :class:`FusionRegistry` carried by the transformed program.
The shared ``Applier`` evaluates a fused op by running the tree directly on
the flat value arrays of the leaf frames.

Fusion boundary
---------------

Only genuinely elementwise primitives participate: the ``elementwise``
flag in the builtin table, **minus the checked ops** ``div``, ``mod``,
``fdiv`` and ``sqrt_`` (the ``_UNSAFE`` set below).  Those four raise
``PValueError`` on bad operands — division by zero, a negative square
root — and the report must carry the *original* source location and
operand value.  Inside a fused kernel the intermediate that feeds the
check never materializes, so a checked op fused into a tree would either
lose the faulting value or fire at a different program point.  They
therefore stay unfused and act as fusion *barriers*: a chain like
``mul → div → add`` fuses the segments on each side of the ``div`` but
never across it, and the error message of a failing ``div`` is
byte-identical whether fusion is enabled or not
(``tests/transform/test_fusion_boundary.py`` pins both properties).

The same boundary applies to the native backend: fused regions handed to
``repro.native`` contain only unchecked elementwise ops, so a compiled C
kernel can never mask or reorder a Python-level check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.lang import ast as A
from repro.lang import builtins as B

#: elementwise primitives safe to fuse (checked ops excluded: their error
#: reporting must fire exactly as unfused execution would — div/mod/fdiv
#: and sqrt_ raise on bad operands, so they stay unfused)
_UNSAFE = {"div", "mod", "fdiv", "sqrt_"}


def _fusable_prim(name: str) -> bool:
    if name in _UNSAFE:
        return False
    return B.is_builtin(name) and B.get_builtin(name).elementwise


#: A fused op tree: ("arg", k) selects leaf k; ("prim", name, children)
#: applies an elementwise primitive.
Tree = Union[tuple]


_NUMPY_FN = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "max2": np.maximum, "min2": np.minimum, "neg": np.negative,
    "abs_": np.abs, "eq": np.equal, "ne": np.not_equal, "lt": np.less,
    "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal,
    "and_": np.logical_and, "or_": np.logical_or, "not_": np.logical_not,
    "real": lambda a: a.astype(np.float64),
    "trunc_": lambda a: np.trunc(a).astype(np.int64),
    "round_": lambda a: np.rint(a).astype(np.int64),
    "floor_": lambda a: np.floor(a).astype(np.int64),
    "ceil_": lambda a: np.ceil(a).astype(np.int64),
}


def eval_tree(tree: Tree, leaves: list[np.ndarray]) -> np.ndarray:
    """Evaluate a fused op tree over the leaf value arrays."""
    tag = tree[0]
    if tag == "arg":
        return leaves[tree[1]]
    _tag, name, children = tree
    if name == "__rep":
        # __rep(witness, value): the replicated value is the second child
        return eval_tree(children[1], leaves)
    return _NUMPY_FN[name](*(eval_tree(c, leaves) for c in children))


def result_kind(tree: Tree, leaf_kinds: list[str]) -> str:
    """Leaf kind of the tree's result (bool for comparisons/logic, else
    inherited)."""
    tag = tree[0]
    if tag == "arg":
        return leaf_kinds[tree[1]]
    _tag, name, children = tree
    if name in ("eq", "ne", "lt", "le", "gt", "ge", "and_", "or_", "not_"):
        return "bool"
    if name in ("real",):
        return "float"
    if name in ("trunc_", "round_", "floor_", "ceil_"):
        return "int"
    if name == "__rep":
        return result_kind(children[1], leaf_kinds)
    return result_kind(children[0], leaf_kinds)


@dataclass
class FusionRegistry:
    """Op trees for the ``__fused<k>`` primitives of one program."""

    trees: dict[str, Tree] = field(default_factory=dict)
    _counter: int = 0

    def register(self, tree: Tree) -> str:
        """Intern one fused op tree under a fresh ``__fused<k>`` name
        (the elementwise composition replacing a primitive chain)."""
        name = f"__fused{self._counter}"
        self._counter += 1
        self.trees[name] = tree
        return name

    def __contains__(self, name: str) -> bool:
        return name in self.trees

    def size(self, name: str) -> int:
        """Number of primitive applications fused into ``name``."""
        def count(t: Tree) -> int:
            if t[0] == "arg":
                return 0
            return 1 + sum(count(c) for c in t[2])
        return count(self.trees[name])


# -- iteration shortcut ------------------------------------------------------
#
# The iterator-entry scaffolding ``let ib = length(v), iw = range1(ib),
# x = __seq_index_shared^1(v, iw)`` gathers every element of ``v`` through
# the identity index vector — a full-size iota plus a full-size gather that
# produce a frame *representation-identical* to ``v`` itself (a depth-0
# sequence value and the depth-1 frame of its elements share the same
# descriptor chain and value pool).  ``shortcut_iteration`` recognizes the
# pattern and replaces the gather with the internal view op
# ``__iter^0(v)``, whose execution is literally ``return v`` (see
# ``Applier.apply0``); the dead ``ib``/``iw`` bindings are then removed by
# the simplifier sweep the fuse pass runs afterwards.

#: let-bound scaffolding the shortcut may chase through when resolving the
#: index operand back to ``range1(length(v))``
_TRANSPARENT = frozenset({"length", "range1"})


def _resolve(e: A.Expr, env: dict[str, A.Expr]) -> A.Expr:
    """Chase a variable through transparent let bindings (bounded by the
    environment size, so alias cycles cannot loop)."""
    for _ in range(len(env) + 1):
        if isinstance(e, A.Var) and e.name in env:
            e = env[e.name]
        else:
            break
    return e


def shortcut_iteration(e: A.Expr) -> A.Expr:
    """Rewrite identity iterator-entry gathers to ``__iter^0`` (see the
    comment above).  Sound for any element type: an identity gather
    returns the argument's exact level structure."""
    return _shortcut(e, {})


def _shortcut(e: A.Expr, env: dict[str, A.Expr]) -> A.Expr:
    if isinstance(e, A.Let):
        bound = _shortcut(e.bound, env)
        # rebinding ``e.var`` invalidates every chased expression that
        # mentions it (shadowing would otherwise alias the wrong value)
        env2 = {k: v for k, v in env.items()
                if e.var not in A.free_vars(v)}
        if isinstance(bound, A.Var) or (
                isinstance(bound, A.ExtCall) and bound.fn in _TRANSPARENT
                and bound.depth == 0):
            env2[e.var] = bound
        else:
            env2.pop(e.var, None)
        body = _shortcut(e.body, env2)
        out = A.Let(e.var, bound, body)
        out.type, out.line, out.col = e.type, e.line, e.col
        return out
    if (isinstance(e, A.ExtCall) and e.fn == "__seq_index_shared"
            and e.depth == 1 and len(e.args) == 2
            and isinstance(e.args[0], A.Var)
            and list(e.arg_depths) == [0, 1]):
        idx = _resolve(e.args[1], env)
        if (isinstance(idx, A.ExtCall) and idx.fn == "range1"
                and idx.depth == 0 and len(idx.args) == 1):
            ln = _resolve(idx.args[0], env)
            if (isinstance(ln, A.ExtCall) and ln.fn == "length"
                    and ln.depth == 0 and len(ln.args) == 1
                    and isinstance(ln.args[0], A.Var)
                    and ln.args[0].name == e.args[0].name):
                out = A.ExtCall("__iter", [e.args[0]], 0, [0])
                out.type, out.line, out.col = e.type, e.line, e.col
                return out
    return A.map_children(e, lambda c: _shortcut(c, env))


def fuse_expr(e: A.Expr, registry: FusionRegistry) -> A.Expr:
    """Bottom-up fusion over one transformed (iterator-free) body."""
    e = A.map_children(e, lambda c: fuse_expr(c, registry))

    if not (isinstance(e, A.ExtCall) and _is_fusable_root(e, registry)):
        return e

    leaves: list[A.Expr] = []
    depths: list[int] = []

    def build(node: A.Expr, fd: int) -> Tree:
        # the frame depth of every sub-argument is recorded on its parent
        # call's arg_depths, so thread it down instead of guessing
        if isinstance(node, A.ExtCall) and node.depth == e.depth:
            if _fusable_prim(node.fn) or node.fn == "__rep":
                return ("prim", node.fn,
                        tuple(build(a, f)
                              for a, f in zip(node.args, node.arg_depths)))
            if node.fn in registry:
                # inline an already-fused subtree (children fused first)
                return _remap(registry.trees[node.fn], node, build)
        k = len(leaves)
        leaves.append(node)
        depths.append(fd)
        return ("arg", k)

    tree = build(e, e.depth)
    # fusing a single prim buys nothing; require at least two
    if _prim_count(tree) < 2 or not leaves:
        return e
    if all(d == 0 for d in depths):
        return e  # would change the node's depth classification
    name = registry.register(tree)
    out = A.ExtCall(name, leaves, e.depth, depths)
    out.type = e.type
    out.line, out.col = e.line, e.col
    return out


def _is_fusable_root(e: A.ExtCall, registry: FusionRegistry) -> bool:
    if e.depth < 1 or not _fusable_prim(e.fn) or e.fn == "__rep":
        return False
    # only worth it if some argument is itself a fusable elementwise call
    # (or an already-fused op we can inline)
    return any(isinstance(a, A.ExtCall) and a.depth == e.depth
               and (_fusable_prim(a.fn) or a.fn == "__rep" or a.fn in registry)
               for a in e.args)


def _remap(sub: Tree, call: A.ExtCall, build) -> Tree:
    """Inline ``sub`` (the tree of an earlier fused op) at a call site:
    every ("arg", k) becomes the built form of the call's k-th argument."""
    if sub[0] == "arg":
        k = sub[1]
        return build(call.args[k], call.arg_depths[k])
    _tag, name, children = sub
    return ("prim", name, tuple(_remap(c, call, build) for c in children))


def _prim_count(tree: Tree) -> int:
    if tree[0] == "arg":
        return 0
    name = tree[1]
    n = 0 if name == "__rep" else 1
    return n + sum(_prim_count(c) for c in tree[2])
