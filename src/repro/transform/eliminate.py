"""Iterator elimination — the syntax-directed transformation tau(e, j) of
section 3.2 (rules R2a-R2f).

``tau`` walks a typed, monomorphic, canonical function body carrying the
current iteration depth ``j`` and rewrites every construct:

* identifiers and constants translate to themselves (R2a, R2b);
* applications become applications of the depth-``j`` parallel extension
  ``f^j`` (R2c for the function part, realized as :class:`ExtCall` /
  :class:`IndirectCall` nodes);
* an iterator ``[i <- [1..e1]: e2]`` becomes ``let ib = tau(e1); i =
  range1^j(ib); v = dist^j(v, ib) ... in tau(e2, j+1)`` with a ``dist``
  rebinding for every enclosing-iterator-bound variable occurring in the
  body (R2c in the paper's numbering);
* conditionals at depth >= 1 become ``restrict``/``combine`` with dynamic
  emptiness guards (R2d) — the guards are what make transformed *recursive*
  functions terminate;
* ``let`` distributes (R2e); function values reduce to named references
  (R2f; lambdas were already lifted by monomorphization).

Every in-scope variable has a *frame depth*: 0 for function parameters and
loop-invariant bindings, or exactly ``j`` for iterator-/let-bound frames
(the entry rebindings maintain this invariant).  Each application records
its arguments' frame depths so the evaluator can replicate depth-0 values
("we rely on parallel extensions of functions to replicate such single
values to the appropriate depth"), or avoid replicating them (section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.errors import TransformError
from repro.guard import faults as _flt
from repro.lang import ast as A
from repro.lang import builtins as B
from repro.lang import types as T
from repro.transform.trace import NullTrace, Trace


class ExtensionRegistry(Protocol):
    """What the eliminator needs from the pipeline driver."""

    def request_def(self, mono_name: str) -> None:
        """Ensure the depth-0 transformed body of ``mono_name`` will exist."""

    def request_ext1(self, mono_name: str) -> None:
        """Ensure the depth-1 parallel extension of ``mono_name`` will exist."""

    def is_user_function(self, name: str) -> bool:
        """True if ``name`` is a monomorphized top-level definition."""


@dataclass
class Env:
    """Scope information for one point of the walk."""

    fdepth: dict[str, int] = field(default_factory=dict)
    witness: Optional[str] = None  # a variable holding a full depth-j frame

    def child(self, binds: dict[str, int]) -> "Env":
        """The scope one iterator deeper: ``binds`` maps the iterator's
        bound variables to their frame depths (R2's depth bookkeeping)."""
        # binds is a plain dict: its keys are P identifiers, which must never
        # collide with Python parameter names (a user variable named "w" or
        # "self" is perfectly legal P)
        fd = dict(self.fdepth)
        fd.update(binds)
        return Env(fd, self.witness)

    def with_witness(self, witness_name: str, binds: dict[str, int]) -> "Env":
        """Like :meth:`child`, but also names the frame witness — the
        variable R2d's guard restriction re-expands results against."""
        fd = dict(self.fdepth)
        fd.update(binds)
        return Env(fd, witness_name)


def _var(name: str, t: T.Type | None = None) -> A.Var:
    v = A.Var(name)
    v.type = t
    return v


def _let(var: str, bound: A.Expr, body: A.Expr) -> A.Let:
    e = A.Let(var, bound, body)
    e.type = body.type
    return e


def _ext(fn: str, args: list[A.Expr], depth: int, arg_depths: list[int],
         t: T.Type | None = None) -> A.ExtCall:
    e = A.ExtCall(fn, args, depth, arg_depths)
    e.type = t
    return e


class Eliminator:
    """Applies tau to function bodies.  One instance per pipeline run."""

    def __init__(self, registry: ExtensionRegistry,
                 trace: Trace | None = None):
        self.registry = registry
        self.trace = trace or NullTrace()

    # -- public --------------------------------------------------------------

    def transform_body(self, fname: str, params: list[str], body: A.Expr,
                       param_depths: list[int] | None = None,
                       witness: Optional[str] = None,
                       start_depth: int = 0) -> A.Expr:
        """tau(body, start_depth) with parameters at the given frame depths
        (all 0 by default — the f^0 case).  Extension synthesis passes
        depth-1 parameters and a witness."""
        self.trace.set_context(fname)
        depths = param_depths or [0] * len(params)
        env = Env(dict(zip(params, depths)), witness)
        out, _fd = self.tau(body, start_depth, env)
        return out

    # -- the transformation ----------------------------------------------------

    def tau(self, e: A.Expr, j: int, env: Env) -> tuple[A.Expr, int]:
        """Returns (transformed expression, frame depth of its value)."""
        if isinstance(e, A.Var):
            # R2a — additionally, a Var reaching here is a *value* position
            # (call targets are handled in _tau_call), so a reference to a
            # top-level function is a function value that may be dispatched
            # at any depth later: make both its forms available.
            if e.name not in env.fdepth and self.registry.is_user_function(e.name):
                self.registry.request_def(e.name)
                self.registry.request_ext1(e.name)
            return e, env.fdepth.get(e.name, 0)
        if isinstance(e, (A.IntLit, A.BoolLit, A.FloatLit)):
            return e, 0  # R2b
        if isinstance(e, A.Lambda):
            raise TransformError(
                "lambda survived monomorphization; cannot transform")  # R2f
        if isinstance(e, A.SeqLit):
            return self._tau_seqlit(e, j, env)
        if isinstance(e, A.TupleLit):
            return self._tau_tuplelit(e, j, env)
        if isinstance(e, A.TupleExtract):
            return self._tau_tuple_extract(e, j, env)
        if isinstance(e, A.Call):
            return self._tau_call(e, j, env)
        if isinstance(e, A.Let):
            return self._tau_let(e, j, env)
        if isinstance(e, A.If):
            return self._tau_if(e, j, env)
        if isinstance(e, A.Iter):
            return self._tau_iter(e, j, env)
        raise TransformError(f"cannot transform node {type(e).__name__}")

    # -- leaves and structure ---------------------------------------------------

    def _tau_seqlit(self, e: A.SeqLit, j: int, env: Env) -> tuple[A.Expr, int]:
        items = [self.tau(x, j, env) for x in e.items]
        fds = [fd for _, fd in items]
        if not items or (j == 0 or all(fd == 0 for fd in fds)):
            out = A.SeqLit([x for x, _ in items])
            out.type = e.type
            return out, 0
        out = _ext("__seq_cons", [x for x, _ in items], j, fds, e.type)
        return out, j

    def _tau_tuplelit(self, e: A.TupleLit, j: int, env: Env) -> tuple[A.Expr, int]:
        items = [self.tau(x, j, env) for x in e.items]
        fds = [fd for _, fd in items]
        if j == 0 or all(fd == 0 for fd in fds):
            out = A.TupleLit([x for x, _ in items])
            out.type = e.type
            return out, 0
        out = _ext("__tuple_cons", [x for x, _ in items], j, fds, e.type)
        return out, j

    def _tau_tuple_extract(self, e: A.TupleExtract, j: int, env: Env) -> tuple[A.Expr, int]:
        tup, fd = self.tau(e.tup, j, env)
        if fd == 0:
            out = A.TupleExtract(tup, e.index)
            out.type = e.type
            return out, 0
        out = _ext(f"__tuple_extract_{e.index}", [tup], j, [fd], e.type)
        return out, j

    # -- application (R2c for function parts) -----------------------------------

    def _tau_call(self, e: A.Call, j: int, env: Env) -> tuple[A.Expr, int]:
        args = [self.tau(a, j, env) for a in e.args]
        fds = [fd for _, fd in args]
        arg_exprs = [x for x, _ in args]

        if not (isinstance(e.fn, A.Var)
                and e.fn.name not in env.fdepth
                and (self.registry.is_user_function(e.fn.name)
                     or B.is_builtin(e.fn.name))):
            # higher-order: the function part is a local variable or an
            # arbitrary function-valued expression (e.g. a conditional
            # choosing between functions) — dynamic dispatch
            fn_expr, fun_fd = self.tau(e.fn, j, env)
            depth = j if (fun_fd > 0 or any(fd > 0 for fd in fds)) else 0
            out = A.IndirectCall(fn_expr, arg_exprs, depth, fun_fd, fds)
            out.type = e.type
            self.trace.record("R2c", e, out)
            return out, depth and j
        name = e.fn.name

        depth = j if any(fd > 0 for fd in fds) else 0
        if self.registry.is_user_function(name):
            if depth == 0:
                self.registry.request_def(name)
            else:
                self.registry.request_ext1(name)
        elif not B.is_builtin(name):
            raise TransformError(f"unknown function {name!r} in application")
        out = _ext(name, arg_exprs, depth, fds, e.type)
        if _flt.INJECTOR is not None and depth > 0:
            def _bump(_rng, _out=out, _name=name, _depth=depth):
                _out.depth = _depth + 1
                return f"bumped {_name}^{_depth} to depth {_depth + 1}"
            _flt.visit_ir("transform.R2c.depth-bump", _bump)
        self.trace.record("R2c", e, out)
        return out, depth

    # -- let (R2e) ----------------------------------------------------------------

    def _tau_let(self, e: A.Let, j: int, env: Env) -> tuple[A.Expr, int]:
        bound, bfd = self.tau(e.bound, j, env)
        body, fd = self.tau(e.body, j, env.child({e.var: bfd}))
        out = _let(e.var, bound, body)
        out.type = e.type
        self.trace.record("R2e", e, out)
        return out, fd

    # -- conditional (R2d) ----------------------------------------------------------

    def _tau_if(self, e: A.If, j: int, env: Env) -> tuple[A.Expr, int]:
        cond, cfd = self.tau(e.cond, j, env)

        if j == 0 or cfd == 0:
            # uniform condition: an ordinary (lazy) conditional
            then, tfd = self.tau(e.then, j, env)
            els, efd = self.tau(e.els, j, env)
            fd = max(tfd, efd)
            if fd > 0:
                then = self._lift(then, tfd, j, env, e.then.type)
                els = self._lift(els, efd, j, env, e.els.type)
            out = A.If(cond, then, els)
            out.type = e.type
            return out, fd

        # data-dependent condition at depth j >= 1: restrict/combine form
        m = A.fresh_name("M")
        notm = A.fresh_name("N")
        beta = e.type  # per-element result type

        r2 = self._branch(e.then, j, env, m, beta)
        r3 = self._branch(e.els, j, env, notm, beta)

        r2n, r3n = A.fresh_name("R2"), A.fresh_name("R3")
        comb = _ext("combine", [_var(m), _var(r2n), _var(r3n)],
                    j - 1, [j - 1, j - 1, j - 1], e.type)
        comb.origin = "R2d"
        if _flt.INJECTOR is not None:
            cell = [r2]

            def _drop(_rng, _cell=cell):
                guard_if = _cell[0]
                if not isinstance(guard_if, A.If):
                    return None
                _cell[0] = guard_if.then
                return "dropped the __any emptiness guard of an R2d branch"
            _flt.visit_ir("transform.R2d.drop-guard", _drop)
            r2 = cell[0]
        out = _let(m, cond,
                   _let(notm, _ext("not_", [_var(m)], j, [j], T.BOOL),
                        _let(r2n, r2, _let(r3n, r3, comb))))
        out.type = e.type
        self.trace.record("R2d", e, out)
        return out, j

    def _branch(self, branch: A.Expr, j: int, env: Env, mask_var: str,
                beta: T.Type) -> A.Expr:
        """One arm of R2d: restrict every depth-j variable occurring in the
        branch by the mask, evaluate at depth j, guarded by emptiness."""
        wit = A.fresh_name("W")
        free = A.free_vars(branch)
        restricted = sorted(v for v in free
                            if env.fdepth.get(v, 0) == j and v != mask_var)
        benv = env.with_witness(wit, {v: j for v in restricted})
        body, bfd = self.tau(branch, j, benv)
        body = self._lift(body, bfd, j, benv, beta)
        # bind the branch witness: the mask restricted by itself
        wrestrict = _ext("restrict", [_var(mask_var), _var(mask_var)],
                         j - 1, [j - 1, j - 1], T.BOOL)
        wrestrict.origin = "R2d-restrict"
        inner: A.Expr = _let(wit, wrestrict, body)
        for v in reversed(restricted):
            vrestrict = _ext("restrict", [_var(v), _var(mask_var)],
                             j - 1, [j - 1, j - 1])
            vrestrict.origin = "R2d-restrict"
            inner = _let(v, vrestrict, inner)
        guard = _ext("__any", [_var(mask_var)], 0, [j], T.BOOL)
        empty = _ext("__empty", [_var(mask_var)], j, [j], beta)
        out = A.If(guard, inner, empty)
        out.type = beta
        out.origin = "R2d-guard"
        return out

    def _lift(self, e: A.Expr, fd: int, j: int, env: Env,
              beta: T.Type | None) -> A.Expr:
        """Lift a depth-0 value to the current depth-j frame via __rep."""
        if fd == j or j == 0:
            return e
        if fd != 0:
            raise TransformError(f"unexpected frame depth {fd} at depth {j}")
        if env.witness is None:
            raise TransformError("no frame witness available for lifting")
        return _ext("__rep", [_var(env.witness), e], j, [j, 0], beta)

    # -- iterator (paper rule R2c for iterators) -----------------------------------

    def _tau_iter(self, e: A.Iter, j: int, env: Env) -> tuple[A.Expr, int]:
        if e.filter is not None:
            raise TransformError("filtered iterator survived canonicalization")
        dom = e.domain
        if not (isinstance(dom, A.Call) and isinstance(dom.fn, A.Var)
                and dom.fn.name == "range" and len(dom.args) == 2
                and isinstance(dom.args[0], A.IntLit) and dom.args[0].value == 1):
            raise TransformError("non-canonical iterator survived R1")
        bound_expr = dom.args[1]

        ib = A.fresh_name("ib")
        iw = A.fresh_name("iw")
        ibe, ibfd = self.tau(bound_expr, j, env)
        ibe = self._lift(ibe, ibfd, j, env, T.INT)

        # i = range1^j(ib)
        range_call = _ext("range1", [_var(ib, T.INT)], j, [j], T.TSeq(T.INT))

        # dist every enclosing-bound variable occurring in the body
        free = A.free_vars(e.body, frozenset([e.var]))
        to_dist = sorted(v for v in free if env.fdepth.get(v, 0) >= 1)
        for v in to_dist:
            if env.fdepth[v] != j:
                raise TransformError(
                    f"variable {v} has frame depth {env.fdepth[v]} at depth {j}")

        benv = env.with_witness(iw, {v: j + 1 for v in to_dist})
        benv.fdepth[e.var] = j + 1
        benv.fdepth[iw] = j + 1
        body, bfd = self.tau(e.body, j + 1, benv)
        body = self._lift(body, bfd, j + 1, benv, e.body.type)

        inner: A.Expr = _let(e.var, _var(iw, T.TSeq(T.INT)), body)
        for v in reversed(to_dist):
            inner = _let(
                v,
                _ext("dist", [_var(v), _var(ib, T.INT)], j, [j, j]),
                inner)
        out = _let(ib, ibe, _let(iw, range_call, inner))
        out.type = e.type
        self.trace.record("R2c", e, out)
        return out, j
