"""Vector-level optimizations (paper section 4.5), as rewrite patterns.

1. **Shared arguments** (§4.5, :class:`SharedIndexPattern`) — "Consider
   the function seq_index.  If the source parameter is fixed relative to
   the surrounding iterators, there is no need to replicate it...  We can
   avoid such waste by not always replicating depth 0 argument frames."
   An ``ExtCall`` of ``seq_index`` at depth >= 1 whose source argument has
   frame depth 0 is rewritten to the internal ``__seq_index_shared``
   primitive, whose kernel indexes the single shared sequence directly.

2. **Native derived functions** (§4.5, :class:`NativeReducePattern`) —
   "it would be advantageous to increase the set of predefined functions
   in V": applications of the prelude ``reduce`` whose function argument
   is a known associative builtin are rewritten to the corresponding
   native segmented reduction (``sum``, ``maxval``, ``minval``).  (The
   native ``flatten``/``concat`` primitives themselves are always
   available; benchmark E11 compares them with the P-level
   ``flatten_p``/``concat_p``.)

3. **Segment-shared arguments** (generalized §4.5,
   :class:`SegSharedIndexPattern`) — eliminate the iterator-entry
   ``dist`` of a sequence the body only ever indexes, gathering from each
   element's own segment instead of replicating.

Each rule is a :class:`~repro.passes.pattern.RewritePattern`, applied by
the ``optimize`` pass (:mod:`repro.passes.builtin`) as one bottom-up
sweep per rule; all are local and type-preserving, and each can be
toggled independently for the ablation benchmarks (E11).  The legacy
``rewrite_*`` entry points below apply one sweep of the corresponding
pattern.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast as A
from repro.passes.pattern import RewritePattern, apply_patterns

#: reduce's builtin function argument -> native segmented reduction (§4.5)
_NATIVE_REDUCTIONS = {"add": "sum", "max2": "maxval", "min2": "minval"}


def _base_name(mono: str) -> str:
    """Strip the monomorphization suffix: ``reduce$2`` -> ``reduce``
    (monomorphization mangles per instance; §4.5 matches the base)."""
    return mono.split("$", 1)[0]


class SharedIndexPattern(RewritePattern):
    """§4.5 pt. 1: ``seq_index^d`` (d >= 1) with a frame-depth-0 source
    becomes ``__seq_index_shared`` — index the one shared sequence
    instead of replicating it into the frame."""

    def match_and_rewrite(self, e: A.Expr) -> Optional[A.Expr]:
        """Fire on a depth->=1 ``seq_index`` whose source stayed at
        frame depth 0 (the paper's fixed-relative-to-the-iterators
        case)."""
        if (isinstance(e, A.ExtCall) and e.fn == "seq_index"
                and e.depth >= 1 and e.arg_depths and e.arg_depths[0] == 0
                and e.arg_depths[1] == e.depth):
            out = A.ExtCall("__seq_index_shared", e.args, e.depth,
                            list(e.arg_depths))
            return self.copy_meta(out, e)
        return None


class NativeReducePattern(RewritePattern):
    """§4.5 pt. 2: ``reduce(add|max2|min2, v)`` becomes the native
    segmented reduction (``sum``/``maxval``/``minval``)."""

    def match_and_rewrite(self, e: A.Expr) -> Optional[A.Expr]:
        """Fire on a ``reduce`` application whose function argument is a
        known associative builtin (§4.5's "increase the set of
        predefined functions in V")."""
        if (isinstance(e, A.ExtCall) and _base_name(e.fn) == "reduce"
                and len(e.args) == 2 and isinstance(e.args[0], A.Var)
                and e.args[0].name in _NATIVE_REDUCTIONS):
            out = A.ExtCall(_NATIVE_REDUCTIONS[e.args[0].name], [e.args[1]],
                            e.depth,
                            [e.arg_depths[1]] if e.arg_depths else [])
            return self.copy_meta(out, e)
        return None


class SegSharedIndexPattern(RewritePattern):
    """Generalized §4.5 no-replication: eliminate the iterator-entry
    ``dist`` of a variable that the body only ever *indexes*.

    The iterator rule (R2) rebinds every enclosing-bound variable to the
    frame depth: ``let v = dist^j(v, ib) in ... seq_index^{j+1}(v, i)
    ...``.  When the sequence is only indexed, replicating it costs
    O(sum(len_k^2)) elements; a segmented gather indexes each element's
    *own* segment directly.  Pattern: the let-bound dist over the
    same-named outer variable (exactly what the eliminator generates),
    with every use at ``seq_index`` source position at depth j+1.
    Rewrites the uses to the internal ``__seq_index_segshared`` (source
    one level shallower) and drops the dist.
    """

    def match_and_rewrite(self, e: A.Expr) -> Optional[A.Expr]:
        """Fire on the R2 iterator-entry rebinding ``let v = dist^j(v,
        ib) in body`` when ``body`` only indexes ``v``."""
        if not (isinstance(e, A.Let) and isinstance(e.bound, A.ExtCall)
                and e.bound.fn == "dist" and len(e.bound.args) == 2
                and isinstance(e.bound.args[0], A.Var)
                and e.bound.args[0].name == e.var  # the generated rebinding
                and e.bound.depth >= 1):
            return None
        j = e.bound.depth
        name = e.var
        ib = e.bound.args[1]
        ib_name = ib.name if isinstance(ib, A.Var) else None
        if not _only_indexed(e.body, name, j + 1,
                             allow_length=ib_name is not None):
            return None
        return _to_segshared(e.body, name, j, j + 1, ib_name)


def rewrite_shared_index(e: A.Expr) -> A.Expr:
    """One bottom-up sweep of the shared-argument rewrite (§4.5 pt. 1)."""
    return apply_patterns(e, [SharedIndexPattern()])


def rewrite_segshared_index(e: A.Expr) -> A.Expr:
    """One bottom-up sweep of the segment-shared-index rewrite
    (generalized §4.5)."""
    return apply_patterns(e, [SegSharedIndexPattern()])


def rewrite_native_reduce(e: A.Expr) -> A.Expr:
    """One bottom-up sweep of the native-reduction rewrite (§4.5 pt. 2)."""
    return apply_patterns(e, [NativeReducePattern()])


def _only_indexed(e: A.Expr, name: str, depth: int,
                  allow_length: bool) -> bool:
    """True if every free occurrence of ``name`` in ``e`` is the source of a
    ``seq_index`` (or, when allowed, ``length``) at ``depth``, respecting
    shadowing — the side condition of the segment-shared §4.5 rewrite."""
    if isinstance(e, A.Var):
        return e.name != name  # a bare occurrence disqualifies
    if isinstance(e, A.ExtCall) and e.fn == "seq_index" and e.depth == depth \
            and isinstance(e.args[0], A.Var) and e.args[0].name == name:
        return all(_only_indexed(a, name, depth, allow_length)
                   for a in e.args[1:])
    if allow_length and isinstance(e, A.ExtCall) and e.fn == "length" \
            and e.depth == depth and isinstance(e.args[0], A.Var) \
            and e.args[0].name == name:
        return True
    if isinstance(e, A.Let):
        if not _only_indexed(e.bound, name, depth, allow_length):
            return False
        return True if e.var == name \
            else _only_indexed(e.body, name, depth, allow_length)
    if isinstance(e, A.Lambda):
        return True if name in e.params \
            else _only_indexed(e.body, name, depth, allow_length)
    if isinstance(e, A.Iter):  # pragma: no cover - post-transform ASTs only
        return False
    return all(_only_indexed(c, name, depth, allow_length)
               for c in A.children(e))


def _to_segshared(e: A.Expr, name: str, src_depth: int, depth: int,
                  ib_name) -> A.Expr:
    """Rewrite every indexing use of ``name`` to the segment-shared form
    (the replacement side of the generalized §4.5 rewrite)."""
    def rec(c: A.Expr) -> A.Expr:
        return _to_segshared(c, name, src_depth, depth, ib_name)
    if isinstance(e, A.ExtCall) and e.fn == "seq_index" and e.depth == depth \
            and isinstance(e.args[0], A.Var) and e.args[0].name == name:
        out = A.ExtCall("__seq_index_segshared",
                        [e.args[0], rec(e.args[1])],
                        depth, [src_depth, depth])
        out.type = e.type
        out.line, out.col = e.line, e.col
        return out
    if ib_name is not None and isinstance(e, A.ExtCall) and e.fn == "length" \
            and e.depth == depth and isinstance(e.args[0], A.Var) \
            and e.args[0].name == name:
        # length of the replicated sequences == the segment lengths,
        # distributed: dist^{src_depth}(length^{src_depth}(v), ib)
        from repro.lang.types import INT
        ln = A.ExtCall("length", [e.args[0]], src_depth, [src_depth])
        ln.type = INT
        ibv = A.Var(ib_name)
        out = A.ExtCall("dist", [ln, ibv], src_depth,
                        [src_depth, src_depth])
        out.type = e.type
        out.line, out.col = e.line, e.col
        return out
    if isinstance(e, A.Let) and e.var == name:
        # the bound expression still sees the outer binding; the body's
        # occurrences refer to the shadowing one and must stay
        e2 = A.Let(e.var, rec(e.bound), e.body)
        e2.type, e2.line, e2.col = e.type, e.line, e.col
        return e2
    if isinstance(e, A.Lambda) and name in e.params:
        return e
    return A.map_children(e, rec)
