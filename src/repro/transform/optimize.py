"""Vector-level optimizations (paper section 4.5).

1. **Shared arguments** — "Consider the function seq_index.  If the source
   parameter is fixed relative to the surrounding iterators, there is no
   need to replicate it...  We can avoid such waste by not always
   replicating depth 0 argument frames."  An ``ExtCall`` of ``seq_index`` at
   depth >= 1 whose source argument has frame depth 0 is rewritten to the
   internal ``__seq_index_shared`` primitive, whose kernel indexes the
   single shared sequence directly.

2. **Native derived functions** — "it would be advantageous to increase the
   set of predefined functions in V": applications of the prelude
   ``reduce`` whose function argument is a known associative builtin are
   rewritten to the corresponding native segmented reduction (``sum``,
   ``maxval``, ``minval``).  (The native ``flatten``/``concat`` primitives
   themselves are always available; benchmark E11 compares them with the
   P-level ``flatten_p``/``concat_p``.)

Both rewrites are local and type-preserving; each can be toggled
independently for the ablation benchmarks.
"""

from __future__ import annotations

from repro.lang import ast as A

#: reduce's builtin function argument -> native segmented reduction
_NATIVE_REDUCTIONS = {"add": "sum", "max2": "maxval", "min2": "minval"}


def _base_name(mono: str) -> str:
    """Strip the monomorphization suffix: ``reduce$2`` -> ``reduce``."""
    return mono.split("$", 1)[0]


def rewrite_shared_index(e: A.Expr) -> A.Expr:
    """Apply the shared-argument rewrite (section 4.5, pt. 1) bottom-up."""
    e = A.map_children(e, rewrite_shared_index)
    if (isinstance(e, A.ExtCall) and e.fn == "seq_index" and e.depth >= 1
            and e.arg_depths and e.arg_depths[0] == 0
            and e.arg_depths[1] == e.depth):
        out = A.ExtCall("__seq_index_shared", e.args, e.depth,
                        list(e.arg_depths))
        out.type = e.type
        out.line, out.col = e.line, e.col
        return out
    return e


def rewrite_segshared_index(e: A.Expr) -> A.Expr:
    """Generalized section-4.5 no-replication: eliminate the iterator-entry
    ``dist`` of a variable that the body only ever *indexes*.

    The iterator rule rebinds every enclosing-bound variable to the frame
    depth: ``let v = dist^j(v, ib) in ... seq_index^{j+1}(v, i) ...``.  When
    the sequence is only indexed, replicating it costs O(sum(len_k^2))
    elements; a segmented gather indexes each element's *own* segment
    directly.  Pattern: the let-bound dist over the same-named outer
    variable (exactly what the eliminator generates), with every use at
    ``seq_index`` source position at depth j+1.  Rewrites the uses to the
    internal ``__seq_index_segshared`` (source one level shallower) and
    drops the dist.
    """
    e = A.map_children(e, rewrite_segshared_index)

    if not (isinstance(e, A.Let) and isinstance(e.bound, A.ExtCall)
            and e.bound.fn == "dist" and len(e.bound.args) == 2
            and isinstance(e.bound.args[0], A.Var)
            and e.bound.args[0].name == e.var       # the generated rebinding
            and e.bound.depth >= 1):
        return e
    j = e.bound.depth
    name = e.var
    ib = e.bound.args[1]
    ib_name = ib.name if isinstance(ib, A.Var) else None
    if not _only_indexed(e.body, name, j + 1, allow_length=ib_name is not None):
        return e
    return _to_segshared(e.body, name, j, j + 1, ib_name)


def _only_indexed(e: A.Expr, name: str, depth: int,
                  allow_length: bool) -> bool:
    """True if every free occurrence of ``name`` in ``e`` is the source of a
    ``seq_index`` (or, when allowed, ``length``) at ``depth``, respecting
    shadowing."""
    if isinstance(e, A.Var):
        return e.name != name  # a bare occurrence disqualifies
    if isinstance(e, A.ExtCall) and e.fn == "seq_index" and e.depth == depth \
            and isinstance(e.args[0], A.Var) and e.args[0].name == name:
        return all(_only_indexed(a, name, depth, allow_length)
                   for a in e.args[1:])
    if allow_length and isinstance(e, A.ExtCall) and e.fn == "length" \
            and e.depth == depth and isinstance(e.args[0], A.Var) \
            and e.args[0].name == name:
        return True
    if isinstance(e, A.Let):
        if not _only_indexed(e.bound, name, depth, allow_length):
            return False
        return True if e.var == name \
            else _only_indexed(e.body, name, depth, allow_length)
    if isinstance(e, A.Lambda):
        return True if name in e.params \
            else _only_indexed(e.body, name, depth, allow_length)
    if isinstance(e, A.Iter):  # pragma: no cover - post-transform ASTs only
        return False
    return all(_only_indexed(c, name, depth, allow_length)
               for c in A.children(e))


def _to_segshared(e: A.Expr, name: str, src_depth: int, depth: int,
                  ib_name) -> A.Expr:
    def rec(c: A.Expr) -> A.Expr:
        return _to_segshared(c, name, src_depth, depth, ib_name)
    if isinstance(e, A.ExtCall) and e.fn == "seq_index" and e.depth == depth \
            and isinstance(e.args[0], A.Var) and e.args[0].name == name:
        out = A.ExtCall("__seq_index_segshared",
                        [e.args[0], rec(e.args[1])],
                        depth, [src_depth, depth])
        out.type = e.type
        out.line, out.col = e.line, e.col
        return out
    if ib_name is not None and isinstance(e, A.ExtCall) and e.fn == "length" \
            and e.depth == depth and isinstance(e.args[0], A.Var) \
            and e.args[0].name == name:
        # length of the replicated sequences == the segment lengths,
        # distributed: dist^{src_depth}(length^{src_depth}(v), ib)
        from repro.lang.types import INT
        ln = A.ExtCall("length", [e.args[0]], src_depth, [src_depth])
        ln.type = INT
        ibv = A.Var(ib_name)
        out = A.ExtCall("dist", [ln, ibv], src_depth,
                        [src_depth, src_depth])
        out.type = e.type
        out.line, out.col = e.line, e.col
        return out
    if isinstance(e, A.Let) and e.var == name:
        # the bound expression still sees the outer binding; the body's
        # occurrences refer to the shadowing one and must stay
        e2 = A.Let(e.var, rec(e.bound), e.body)
        e2.type, e2.line, e2.col = e.type, e.line, e.col
        return e2
    if isinstance(e, A.Lambda) and name in e.params:
        return e
    return A.map_children(e, rec)


def rewrite_native_reduce(e: A.Expr) -> A.Expr:
    """Apply the native-reduction rewrite (section 4.5, pt. 2) bottom-up."""
    e = A.map_children(e, rewrite_native_reduce)
    if (isinstance(e, A.ExtCall) and _base_name(e.fn) == "reduce"
            and len(e.args) == 2 and isinstance(e.args[0], A.Var)
            and e.args[0].name in _NATIVE_REDUCTIONS):
        out = A.ExtCall(_NATIVE_REDUCTIONS[e.args[0].name], [e.args[1]],
                        e.depth, [e.arg_depths[1]] if e.arg_depths else [])
        out.type = e.type
        out.line, out.col = e.line, e.col
        return out
    return e
