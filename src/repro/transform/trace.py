"""Rule-application trace.

The paper derives the section-5 example by listing each rule firing ({R0},
{R1}, {R2a} ... {T1}).  :class:`Trace` records the same information so the
derivation can be replayed and printed (benchmark E6 regenerates the paper's
worked example from it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast as A
from repro.lang.pretty import pretty


@dataclass
class TraceEntry:
    """One rule firing: which rule (R0/R1/R2a-R2f/T1/...), where, and the
    expression before and after (the paper's ``{R2c}`` step notation)."""

    rule: str          # e.g. "R1", "R2c", "R2d", "R0", "T1"
    where: str         # function being transformed
    before: str        # pretty-printed input expression
    after: str         # pretty-printed output expression

    def __str__(self) -> str:
        return f"{{{self.rule}}} in {self.where}:\n  {self.before}\n  ==>\n  {self.after}"


@dataclass
class Trace:
    """Ordered record of every rule application in a transformation run
    — the machine-readable form of the paper's section-5 derivation."""

    entries: list[TraceEntry] = field(default_factory=list)
    enabled: bool = True
    _context: str = "?"

    def set_context(self, where: str) -> None:
        """Name the function being transformed; stamped on later entries."""
        self._context = where

    def record(self, rule: str, before: A.Expr, after: A.Expr) -> None:
        """Record one firing of ``rule`` rewriting ``before`` to ``after``
        (both are pretty-printed immediately; the AST is not retained)."""
        if not self.enabled:
            return
        self.entries.append(TraceEntry(
            rule=rule, where=self._context,
            before=_one_line(pretty(before)), after=_one_line(pretty(after))))

    def record_text(self, rule: str, before: str, after: str) -> None:
        """Record a firing whose sides are already rendered (R0 uses this
        for whole-definition synthesis, where ASTs would be unwieldy)."""
        if not self.enabled:
            return
        self.entries.append(TraceEntry(rule, self._context, before, after))

    def rules_fired(self) -> list[str]:
        """Just the rule names, in firing order (assertable in tests)."""
        return [e.rule for e in self.entries]

    def __str__(self) -> str:
        return "\n\n".join(str(e) for e in self.entries)


def _one_line(s: str, limit: int = 200) -> str:
    out = " ".join(s.split())
    return out if len(out) <= limit else out[: limit - 3] + "..."


class NullTrace(Trace):
    """A trace that records nothing (default, zero overhead)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
