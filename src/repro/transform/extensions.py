"""Synthesis of depth-1 parallel extensions of user functions.

Section 3: "if g is defined as fun(x1,...,xn) = e, then g^d can be derived
from g by enclosing e within d iterators that enumerate the elements of the
arguments at depth d."  Section 4.3 then shows d = 1 suffices (rule T1
collapses d >= 2 onto f^1 via extract/insert), so we synthesize only f^1::

    fun f^1(V1, ..., Vn) =
      [i <- [1 .. #V1]: let x1 = V1[i], ..., xn = Vn[i] in body]

— exactly the paper's step {R0} in the section-5 example — and feed it back
through the eliminator.  The wrapper is built directly in typed form.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.lang import ast as A
from repro.lang import types as T


def ext1_name(mono_name: str) -> str:
    """Name of the depth-1 extension of ``mono_name`` (printed as in §5)."""
    return f"{mono_name}^1"


def synthesize_ext1(d: A.FunDef) -> A.FunDef:
    """Build the (typed, canonical, not yet iterator-free) wrapper for f^1."""
    if not d.params:
        raise TransformError(
            f"{d.name} has no parameters; a depth-1 extension has no frame "
            "to enumerate (zero-arg functions are dispatched at depth 0)")
    if d.param_types is None or d.ret_type is None:
        raise TransformError(f"{d.name} is not monomorphized")

    vs = [A.fresh_name("V") for _ in d.params]
    iv = A.fresh_name("i")

    def var(name: str, t: T.Type) -> A.Var:
        v = A.Var(name)
        v.type = t
        return v

    # let x_k = V_k[i] in ... body
    inner: A.Expr = A.clone(d.body)
    for p, vname, pt in reversed(list(zip(d.params, vs, d.param_types))):
        ix = A.Call(var("seq_index", T.TFun((T.TSeq(pt), T.INT), pt)),
                    [var(vname, T.TSeq(pt)), var(iv, T.INT)])
        ix.type = pt
        let = A.Let(p, ix, inner)
        let.type = inner.type if inner.type is not None else d.ret_type
        inner = let

    # domain [1 .. #V1]
    length = A.Call(var("length", T.TFun((T.TSeq(d.param_types[0]),), T.INT)),
                    [var(vs[0], T.TSeq(d.param_types[0]))])
    length.type = T.INT
    one = A.IntLit(1)
    one.type = T.INT
    dom = A.Call(var("range", T.TFun((T.INT, T.INT), T.TSeq(T.INT))),
                 [one, length])
    dom.type = T.TSeq(T.INT)

    it = A.Iter(iv, dom, inner, None)
    it.type = T.TSeq(d.ret_type)

    return A.FunDef(
        name=ext1_name(d.name),
        params=vs,
        body=it,
        param_types=[T.TSeq(pt) for pt in d.param_types],
        ret_type=T.TSeq(d.ret_type),
        line=d.line, col=d.col)
