"""Named IR invariants — the currency of pass ordering.

Each invariant names a property of the program representation that some
pass establishes (``produces``) and later passes rely on (``requires``).
The :class:`~repro.passes.manager.PassManager` validates a pipeline
statically: walking the pass list, every ``requires`` set must be covered
by the entry invariants plus the ``produces`` of earlier passes,
otherwise the pipeline is rejected *before anything runs* (tested by the
ordering property suite).

The invariants mirror the paper's staging: R1 gives canonical iterator
domains, type inference + monomorphization give a typed first-order
program, R2 gives iterator freedom, and everything in §4.5 preserves it.
"""

from __future__ import annotations

__all__ = [
    "PARSED", "CANONICAL", "ITERATOR_FREE", "FUSED",
    "ENTRY", "DESCRIPTIONS",
]

#: the program parsed and prelude-merged (holds at pipeline entry)
PARSED = "parsed"

#: every iterator domain is literally ``[1..e]`` and filter-free — rule
#: R1 plus the §2 filter desugaring (produced by the ``canonical`` pass)
CANONICAL = "canonical-domains"

#: no ``Iter`` survives; every application is a depth-annotated
#: ``ExtCall``/``IndirectCall`` — rule R2 (produced by ``eliminate``,
#: which also synthesizes the R0 depth-1 extensions f^1)
ITERATOR_FREE = "iterator-free"

#: maximal same-depth elementwise chains are collapsed to ``__fused<k>``
#: ops (produced by ``fuse``; no built-in pass requires it)
FUSED = "fused"

#: invariants assumed established at pipeline entry.  The pipeline is
#: validated as one list spanning both stages — type inference and
#: monomorphization sit between them as fixed machinery (they are not
#: reorderable passes), so the defs stage inherits everything the source
#: stage produced.
ENTRY = frozenset({PARSED})

#: human-readable summaries, used by docs tooling and diagnostics
DESCRIPTIONS = {
    PARSED: "parsed and prelude-merged AST",
    CANONICAL: "every iterator domain is [1..e], filters desugared (R1)",
    ITERATOR_FREE: "no Iter nodes; depth-annotated applications only (R2)",
    FUSED: "elementwise chains collapsed into __fused ops",
}
