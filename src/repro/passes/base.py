"""The :class:`Pass` contract and the :class:`PassContext` state record.

A pass is one named, self-describing unit of the transformation pipeline
(the paper's phases — R1 canonicalization, R2 iterator elimination with
R0 extension synthesis, the §4.5 optimizations, cleanup, fusion — are
each one pass).  Every pass declares:

* ``requires`` — invariants (:mod:`repro.passes.invariants`) that must
  already be established; the :class:`~repro.passes.manager.PassManager`
  rejects a pipeline whose ordering cannot satisfy them *before running
  anything*;
* ``produces`` — invariants established by a successful run;
* ``run`` — the transformation itself, usually built from
  :class:`~repro.passes.pattern.RewritePattern` sets;
* ``postcondition`` — the per-pass verifier (the phase-boundary IR
  checks of :mod:`repro.analysis.verify`, folded in as pass-local
  contracts rather than pipeline-level hooks).

Passes come in two stages: ``"source"`` passes rewrite the untyped
:class:`~repro.lang.ast.Program` before type inference (R1 runs here),
``"defs"`` passes rewrite the monomorphized definition map after it
(R2 and everything downstream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.lang import ast as A
from repro.transform.trace import NullTrace, Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.lang.typecheck import TypedProgram

__all__ = ["Pass", "PassContext"]


@dataclass
class PassContext:
    """Everything a pass may read or rewrite, threaded through the
    pipeline (one context per :func:`~repro.transform.pipeline.
    transform_program` run; the IR lives in ``program`` until type
    inference and in ``defs`` after it — the rules R1 vs R2 operate on
    exactly these two forms).
    """

    #: transform switches (a :class:`~repro.transform.pipeline.
    #: TransformOptions`); passes gate optional rewrites on it
    options: Any
    #: rule-application trace (R1/R2/R0/T1 firings; benchmark E6)
    trace: Trace = field(default_factory=NullTrace)
    #: the untyped program — source-stage passes rewrite this in place
    program: Optional[A.Program] = None
    #: the typed program — name resolution for defs-stage passes
    typed: Optional["TypedProgram"] = None
    #: monomorphized entry names the defs-stage transformation starts from
    entries: tuple[str, ...] = ()
    #: entries that additionally need their depth-1 extension f^1 (R0)
    ext_entries: tuple[str, ...] = ()
    #: the transformed definitions being grown/rewritten (R2 output)
    defs: dict[str, A.FunDef] = field(default_factory=dict)
    #: fused-op trees, populated by the fuse pass (§6 direction)
    fusion: Any = None
    #: (verify stage name, defs checked) per postcondition run, in order
    verified: list[tuple[str, int]] = field(default_factory=list)


class Pass:
    """One registered pipeline pass; subclass and register with
    :func:`repro.passes.registry.register`.

    Class attributes form the declarative contract (name, stage,
    required/produced invariants); :meth:`run` does the work.  Which
    paper rule a concrete pass implements is documented on the subclass
    (see :mod:`repro.passes.builtin` for R1, R2, §4.5).
    """

    #: registry key; also the ``--passes`` spelling and the IR-dump label
    name: str = ""
    #: ``"source"`` (pre-typecheck, rewrites ctx.program) or ``"defs"``
    stage: str = "defs"
    #: observability span name (defaults to ``name``)
    span: str = ""
    #: postcondition stage/span name (defaults to ``verify:<name>``)
    verify_span: str = ""
    #: invariants that must hold before this pass may run
    requires: frozenset[str] = frozenset()
    #: invariants established by this pass
    produces: frozenset[str] = frozenset()
    #: one-line description for ``repro passes`` style listings and docs
    description: str = ""

    def __init_subclass__(cls, **kw) -> None:
        super().__init_subclass__(**kw)
        if not cls.span:
            cls.span = cls.name
        if not cls.verify_span and cls.name:
            cls.verify_span = f"verify:{cls.name}"

    def run(self, ctx: PassContext) -> None:
        """Apply the pass, mutating ``ctx`` (``ctx.program`` for source
        passes, ``ctx.defs`` for defs passes)."""
        raise NotImplementedError

    def postcondition(self, ctx: PassContext) -> Optional[tuple[str, int]]:
        """Verify the pass's output contract; return ``(stage, n_defs)``
        for the verification record, or ``None`` when the pass has no
        checkable postcondition.  Raise
        :class:`~repro.errors.AnalysisError` on violation.

        The default for defs-stage passes re-checks the full transformed-
        IR postconditions (scoping, arity, frame-depth consistency, R2d
        guard provenance — :mod:`repro.analysis.verify`)."""
        if self.stage != "defs":
            return None
        # lazy import keeps the pass layer loadable without the analysis
        # package
        from repro.analysis.verify import verify_transformed
        n = verify_transformed(ctx.defs, self.verify_span, ctx.typed)
        return self.verify_span, n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name} ({self.stage})>"
