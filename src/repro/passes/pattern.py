"""Composable rewrite patterns and the drivers that apply them.

The paper presents its transformation as a family of local rewrite rules
(R1, R2a-R2f, the section-4.5 optimizations); this module gives each rule
a uniform shape — a :class:`RewritePattern` whose ``match_and_rewrite``
either returns a replacement expression or ``None`` — plus two drivers:

* :func:`apply_patterns` — **one** bottom-up sweep.  Children are
  rewritten first, then the first matching pattern fires at the node and
  its result is *not* re-examined in the same sweep.  This is exactly the
  single-sweep discipline the section-4.5 rewrites use (each is applied
  once, not to a fixpoint).
* :func:`greedy_rewrite` — sweeps repeated to a fixpoint, for rule sets
  that enable each other (the simplifier's alias inlining exposes new
  dead bindings, and vice versa).

Writing a new rule is a ~20-line subclass; see docs/PASSES.md for the
worked tutorial (``examples/custom_pass.py`` is the runnable version).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.lang import ast as A

__all__ = ["RewritePattern", "apply_patterns", "greedy_rewrite"]


class RewritePattern:
    """One local, semantics-preserving rewrite rule (an "elementary
    transformation" in the sense the paper's rules R1/R2a-R2f and the
    §4.5 optimizations are elementary: each replaces one subterm).

    Subclasses implement :meth:`match_and_rewrite`; :attr:`name` defaults
    to the class name and appears in diagnostics and rule traces.
    """

    #: diagnostic label; subclasses may override
    name: str = ""

    def __init_subclass__(cls, **kw) -> None:
        super().__init_subclass__(**kw)
        if not cls.name:
            cls.name = cls.__name__

    def match_and_rewrite(self, e: A.Expr) -> Optional[A.Expr]:
        """Return the replacement for ``e``, or ``None`` if the pattern
        does not apply.  The replacement must preserve semantics, the
        expression's type, and the frame-depth discipline (the per-pass
        postcondition verifier of :mod:`repro.analysis.verify` re-checks
        the latter)."""
        raise NotImplementedError

    def copy_meta(self, new: A.Expr, old: A.Expr) -> A.Expr:
        """Carry type and source position from ``old`` onto ``new`` — every
        rewrite should preserve both (the transformed IR keeps per-element
        types; see R2's typing discipline)."""
        new.type = old.type
        new.line, new.col = old.line, old.col
        return new


def _rewrite_node(e: A.Expr, patterns: Sequence[RewritePattern],
                  state: list) -> A.Expr:
    """One post-order visit: children first, then the first matching
    pattern.  ``state[0]`` flips to True when anything fired."""
    e = A.map_children(e, lambda c: _rewrite_node(c, patterns, state))
    for p in patterns:
        out = p.match_and_rewrite(e)
        if out is not None:
            state[0] = True
            return out
    return e


def apply_patterns(e: A.Expr,
                   patterns: Sequence[RewritePattern]) -> A.Expr:
    """One bottom-up sweep of ``patterns`` over ``e`` (the §4.5 rewrites
    are single-sweep: replacements are final for the sweep)."""
    return _rewrite_node(e, patterns, [False])


def greedy_rewrite(e: A.Expr, patterns: Sequence[RewritePattern],
                   max_sweeps: int = 10_000) -> A.Expr:
    """Sweep ``patterns`` bottom-up until no pattern fires (the greedy
    fixpoint driver; the simplifier's rules R-alias/R-dead terminate
    because each firing strictly shrinks the term).  ``max_sweeps`` is a
    backstop against non-terminating rule sets."""
    for _ in range(max_sweeps):
        state = [False]
        e = _rewrite_node(e, patterns, state)
        if not state[0]:
            return e
    raise RuntimeError(
        f"greedy_rewrite did not reach a fixpoint in {max_sweeps} sweeps "
        f"(patterns: {[p.name for p in patterns]})")
