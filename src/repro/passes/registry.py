"""The pass registry: name → :class:`~repro.passes.base.Pass` class.

Built-in passes (R1 canonicalization through fusion; see
:mod:`repro.passes.builtin`) register at import time; user passes
register the same way — subclass :class:`~repro.passes.base.Pass`, give
it a ``name``, decorate with :func:`register`, and it becomes spellable
in ``TransformOptions(passes=...)`` and ``repro run --passes``
(docs/PASSES.md walks through a complete example).
"""

from __future__ import annotations

from typing import Iterable, Type

from repro.errors import TransformError
from repro.passes.base import Pass

__all__ = ["register", "get_pass", "registered_passes", "parse_pass_list"]

_REGISTRY: dict[str, Type[Pass]] = {}


def register(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator: add a :class:`Pass` subclass to the registry
    under its ``name`` (last registration wins, so tests can shadow a
    built-in; the built-ins cover R1, R2 and §4.5)."""
    if not cls.name:
        raise TransformError(f"pass class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def get_pass(name: str) -> Pass:
    """Instantiate the registered pass called ``name``; unknown names
    list the known spelling set in the error."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise TransformError(
            f"unknown pass {name!r} (registered: {known})") from None
    return cls()


def registered_passes() -> dict[str, Type[Pass]]:
    """A snapshot of the registry (name → class), for docs and tests."""
    return dict(_REGISTRY)


def parse_pass_list(spec: str | Iterable[str]) -> tuple[str, ...]:
    """Normalize a pass-list spec — ``"canonical,eliminate,simplify"`` or
    any iterable of names — to a tuple of names (the
    ``repro run --passes`` surface syntax).  Validation of existence and
    ordering happens in :class:`~repro.passes.manager.PassManager`."""
    if isinstance(spec, str):
        names = [s.strip() for s in spec.split(",")]
    else:
        names = [str(s).strip() for s in spec]
    out = tuple(n for n in names if n)
    if not out:
        raise TransformError("empty pass list")
    return out
