"""The built-in pipeline passes: R1 canonicalization, R2 iterator
elimination (with R0 extension synthesis), the §4.5 optimizations,
let-chain cleanup, and elementwise fusion.

Each pass is a thin declarative wrapper — name, stage, invariant
contract — around the transformation modules of :mod:`repro.transform`;
the actual rewrite rules live there as
:class:`~repro.passes.pattern.RewritePattern` sets so each module keeps
its paper-rule documentation next to the code.  Registration happens at
import time via :func:`repro.passes.registry.register`.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.lang import ast as A
from repro.passes import invariants as INV
from repro.passes.base import Pass, PassContext
from repro.passes.pattern import apply_patterns, greedy_rewrite
from repro.passes.registry import register
from repro.transform.canonical import canonicalize_program
from repro.transform.eliminate import Eliminator
from repro.transform.extensions import ext1_name, synthesize_ext1
from repro.transform.trace import Trace

__all__ = [
    "CanonicalPass", "EliminatePass", "OptimizePass", "SimplifyPass",
    "FusePass",
]


@register
class CanonicalPass(Pass):
    """Rule **R1** plus the §2 filter desugaring: rewrite every iterator
    to the canonical ``[i <- [1..e]: body]`` form, filter-free
    (:mod:`repro.transform.canonical`).  Runs on the untyped source
    program so type inference annotates the generated nodes like any
    other code."""

    name = "canonical"
    stage = "source"
    span = "canonicalize"
    verify_span = "verify:canonicalize"
    requires = frozenset({INV.PARSED})
    produces = frozenset({INV.CANONICAL})
    description = "R1 iterator canonical form + filter desugaring"

    def run(self, ctx: PassContext) -> None:
        """Canonicalize every definition (R1; source-to-source)."""
        ctx.program = canonicalize_program(ctx.program, ctx.trace)

    def postcondition(self, ctx: PassContext):
        """Every iterator domain is literally ``range(1, e)`` with no
        residual filter — the R1 normal form."""
        from repro.analysis.verify import verify_canonical
        n = verify_canonical(ctx.program, self.verify_span)
        return self.verify_span, n


class _Worklist:
    """Worklist-driven R2 elimination; implements the eliminator's
    ExtensionRegistry protocol.  "The number of parallel extensions of f
    that are introduced is a static property of the program" — the
    worklist discovers exactly that set, synthesizing each needed
    depth-1 extension f^1 (rule R0) and feeding it back through the
    eliminator."""

    def __init__(self, typed, trace: Trace):
        self.typed = typed
        self.trace = trace
        self.out_defs: dict[str, A.FunDef] = {}
        self._queue: list[tuple[str, str]] = []  # (mono_name, "def"|"ext1")
        self._seen: set[tuple[str, str]] = set()
        self.eliminator = Eliminator(self, trace)

    # -- ExtensionRegistry ----------------------------------------------------

    def is_user_function(self, name: str) -> bool:
        """True when ``name`` is a monomorphized user definition (an R2c
        candidate for extension synthesis, as opposed to a builtin)."""
        return name in self.typed.mono_defs

    def request_def(self, mono_name: str) -> None:
        """Queue the iterator-free transform of a definition (R2)."""
        self._enqueue(mono_name, "def")

    def request_ext1(self, mono_name: str) -> None:
        """Queue synthesis + transform of a depth-1 extension (R0)."""
        self._enqueue(mono_name, "ext1")

    def _enqueue(self, mono_name: str, kind: str) -> None:
        if mono_name not in self.typed.mono_defs:
            raise TransformError(f"unknown function {mono_name!r}")
        key = (mono_name, kind)
        if key not in self._seen:
            self._seen.add(key)
            self._queue.append(key)

    # -- processing --------------------------------------------------------------

    def drain(self) -> None:
        """Process requests until the static extension set is exhausted."""
        while self._queue:
            name, kind = self._queue.pop()
            if kind == "def":
                self._transform_def(name)
            else:
                self._transform_ext1(name)

    def _transform_def(self, name: str) -> None:
        src = self.typed.mono_defs[name]
        body = self.eliminator.transform_body(name, src.params,
                                              A.clone(src.body))
        if A.contains_iterator(body):
            raise TransformError(f"iterators remain in transformed {name}")
        self.out_defs[name] = A.FunDef(
            name=name, params=list(src.params), body=body,
            param_types=src.param_types, ret_type=src.ret_type,
            line=src.line, col=src.col)

    def _transform_ext1(self, name: str) -> None:
        src = self.typed.mono_defs[name]
        wrapper = synthesize_ext1(src)
        self.trace.record_text(
            "R0", f"fun {name}({', '.join(src.params)}) = ...",
            f"fun {wrapper.name}({', '.join(wrapper.params)}) = "
            f"[i <- [1..#{wrapper.params[0]}]: ...]")
        body = self.eliminator.transform_body(
            wrapper.name, wrapper.params, wrapper.body)
        if A.contains_iterator(body):
            raise TransformError(f"iterators remain in {wrapper.name}")
        self.out_defs[wrapper.name] = A.FunDef(
            name=wrapper.name, params=wrapper.params, body=body,
            param_types=wrapper.param_types, ret_type=wrapper.ret_type,
            line=src.line, col=src.col)


@register
class EliminatePass(Pass):
    """Rules **R2a-R2f** + **R0**: make every reachable definition
    iterator-free (:mod:`repro.transform.eliminate`), synthesizing the
    depth-1 parallel extensions f^1 the worklist discovers
    (:mod:`repro.transform.extensions`)."""

    name = "eliminate"
    requires = frozenset({INV.CANONICAL})
    produces = frozenset({INV.ITERATOR_FREE})
    description = "R2 iterator elimination + R0 extension synthesis"

    def run(self, ctx: PassContext) -> None:
        """Drain the transform worklist from the entry set (R2 over every
        reachable def, R0 for every required extension)."""
        wl = _Worklist(ctx.typed, ctx.trace)
        for name in ctx.entries:
            wl.request_def(name)
        for name in ctx.ext_entries:
            wl.request_ext1(name)
        wl.drain()
        ctx.defs = wl.out_defs


@register
class OptimizePass(Pass):
    """The **§4.5** vector-level optimizations, as single-sweep rewrite
    patterns over the iterator-free defs (:mod:`repro.transform.
    optimize`): native segmented reductions (gated by
    ``options.reduce_to_native``), then the shared/segment-shared
    no-replication index rewrites (gated by ``options.shared_seq_index``).
    The pass itself always runs (and re-verifies) so ablations change
    only which patterns fire."""

    name = "optimize"
    requires = frozenset({INV.ITERATOR_FREE})
    description = "§4.5 rewrites: native reductions, shared-index gathers"

    def run(self, ctx: PassContext) -> None:
        """Apply each enabled §4.5 pattern as its own bottom-up sweep, in
        the documented order (reductions first, then index sharing)."""
        from repro.transform import optimize as OPT
        if ctx.options.reduce_to_native:
            for d in ctx.defs.values():
                d.body = apply_patterns(d.body, [OPT.NativeReducePattern()])
        if ctx.options.shared_seq_index:
            for d in ctx.defs.values():
                d.body = apply_patterns(d.body, [OPT.SharedIndexPattern()])
                d.body = apply_patterns(d.body,
                                        [OPT.SegSharedIndexPattern()])


@register
class SimplifyPass(Pass):
    """Greedy cleanup of the let-chains R2 generates — alias/literal
    inlining and dead-binding elimination to a fixpoint
    (:mod:`repro.transform.simplify`; the §6 "improvements ... that
    yield more efficient code" direction).  Unconditionally sound in the
    pure language P."""

    name = "simplify"
    requires = frozenset({INV.ITERATOR_FREE})
    description = "alias inlining + dead-binding elimination to fixpoint"

    def run(self, ctx: PassContext) -> None:
        """Greedy-rewrite every def with the simplifier pattern set."""
        from repro.transform import simplify as S
        patterns = [S.AliasInlinePattern(), S.DeadBindingPattern()]
        for d in ctx.defs.values():
            d.body = greedy_rewrite(d.body, patterns)


@register
class FusePass(Pass):
    """Elementwise fusion (the §6 direction measured by benchmark E14):
    collapse maximal same-depth trees of elementwise primitives into
    single ``__fused<k>`` ops recorded in a
    :class:`~repro.transform.fuse.FusionRegistry`
    (:mod:`repro.transform.fuse`)."""

    name = "fuse"
    requires = frozenset({INV.ITERATOR_FREE})
    produces = frozenset({INV.FUSED})
    description = "collapse elementwise chains into single fused ops"

    def run(self, ctx: PassContext) -> None:
        """Fuse every def, recording op trees in ``ctx.fusion``.

        Before fusing, identity iterator-entry gathers are shortcut to
        the zero-cost ``__iter`` view (:func:`~repro.transform.fuse.
        shortcut_iteration`); afterwards one simplifier sweep removes the
        ``length``/``range1`` bindings the shortcut left dead."""
        from repro.transform import simplify as S
        from repro.transform.fuse import (
            FusionRegistry, fuse_expr, shortcut_iteration,
        )
        ctx.fusion = FusionRegistry()
        patterns = [S.AliasInlinePattern(), S.DeadBindingPattern()]
        for d in ctx.defs.values():
            body = shortcut_iteration(d.body)
            body = fuse_expr(body, ctx.fusion)
            d.body = greedy_rewrite(body, patterns)
