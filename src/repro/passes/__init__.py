"""`repro.passes` — the unified pass-manager IR framework.

The paper's transformation is a staged sequence of rewrites (R1
canonicalization, R2a-R2f iterator elimination with R0 extension
synthesis, the §4.5 vector-level optimizations); this package runs those
stages as registered, self-describing :class:`~repro.passes.base.Pass`
objects over the one AST, each declaring required/produced invariants
checked *before* anything runs, with per-pass timing, per-pass
postcondition verification, and labeled ``--print-ir-after-all`` dumps.
See docs/PASSES.md for the architecture and the "writing your own pass"
tutorial.
"""

from repro.passes.base import Pass, PassContext
from repro.passes.manager import PassManager, manager_for
from repro.passes.pattern import (
    RewritePattern, apply_patterns, greedy_rewrite,
)
from repro.passes.registry import (
    get_pass, parse_pass_list, register, registered_passes,
)

# importing the built-ins populates the registry (R1 .. fuse)
from repro.passes import builtin as _builtin  # noqa: E402,F401  (registration side effect)

__all__ = [
    "Pass", "PassContext", "PassManager", "manager_for",
    "RewritePattern", "apply_patterns", "greedy_rewrite",
    "register", "get_pass", "registered_passes", "parse_pass_list",
]
