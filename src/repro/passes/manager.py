"""The pass manager: validated ordering, per-pass timing, per-pass
verification, and labeled IR dumps.

A :class:`PassManager` is built from a list of pass names (usually the
list ``TransformOptions`` compiles down to — see
:meth:`repro.transform.pipeline.TransformOptions.pipeline`).  At
construction it *statically* validates the ordering against the declared
invariants (:mod:`repro.passes.invariants`): walking the list from the
entry set, every pass's ``requires`` must already be established —
``--passes "optimize,eliminate"`` is rejected before any work happens,
because the §4.5 rewrites require R2's iterator freedom.

At run time each pass gets:

* an observability span named after it (``canonicalize``, ``eliminate``,
  ``optimize`` ... — docs/OBSERVABILITY.md), so per-pass timing falls
  out of ``repro profile``;
* its postcondition verifier (``verify:<pass>`` spans;
  docs/ANALYSIS.md), gated by ``options.verify`` and recorded in
  ``ctx.verified``;
* an optional labeled IR dump (``--print-ir-after-all`` /
  ``--print-ir-after <pass>``) written through ``options.ir_sink``
  (default: stderr), after the pass and its verifier ran.
"""

from __future__ import annotations

import sys
from typing import Any, Optional, Sequence, Union

from repro.errors import TransformError
from repro.lang.pretty import pretty_def, pretty_program
from repro.obs import runtime as _obs
from repro.passes import invariants as INV
from repro.passes.base import Pass, PassContext
from repro.passes.registry import get_pass

__all__ = ["PassManager", "dump_header"]


def dump_header(name: str) -> str:
    """The label line over each IR dump (one per executed pass)."""
    return f"// -----// IR Dump After {name} //----- //"


def _render_ir(p: Pass, ctx: PassContext) -> str:
    """Pretty-print the IR form the pass stage operates on: the source
    program before typing (R1's view), the transformed defs after."""
    if p.stage == "source":
        return pretty_program(ctx.program)
    return "\n\n".join(pretty_def(d) for d in ctx.defs.values())


class PassManager:
    """Run a validated pass pipeline over a :class:`PassContext`.

    ``passes`` is a sequence of registered names (or ready
    :class:`~repro.passes.base.Pass` instances).  Source-stage passes
    (R1) and defs-stage passes (R2 onward) may be freely mixed in the
    list — the two stages execute at different pipeline points
    (:func:`~repro.api.compile_program` and
    :func:`~repro.transform.pipeline.transform_program`), but ordering
    and invariant flow are validated over the *whole* list, and a
    defs-stage pass listed before a source-stage pass is rejected.
    """

    def __init__(self, passes: Sequence[Union[str, Pass]],
                 options: Any) -> None:
        self.options = options
        self.passes: list[Pass] = [
            p if isinstance(p, Pass) else get_pass(p) for p in passes]
        self._validate()

    # -- static validation ----------------------------------------------------

    def _validate(self) -> None:
        """Reject duplicate passes, stage inversions, and any ordering
        whose declared ``requires`` invariants are not established by the
        entry set plus earlier passes' ``produces``."""
        seen: set[str] = set()
        established = set(INV.ENTRY)
        defs_started = False
        for p in self.passes:
            if p.name in seen:
                raise TransformError(
                    f"pass {p.name!r} listed twice in the pipeline")
            seen.add(p.name)
            if p.stage == "defs":
                defs_started = True
            elif defs_started:
                raise TransformError(
                    f"source-stage pass {p.name!r} listed after a "
                    "defs-stage pass; source passes (R1) must run before "
                    "type inference")
            missing = p.requires - established
            if missing:
                raise TransformError(
                    f"illegal pass order: {p.name!r} requires "
                    f"{sorted(missing)} but only {sorted(established)} "
                    "established at that point")
            established |= p.produces

    # -- stage selection ------------------------------------------------------

    def source_passes(self) -> list[Pass]:
        """The R1-side (pre-typecheck) portion of the pipeline."""
        return [p for p in self.passes if p.stage == "source"]

    def defs_passes(self) -> list[Pass]:
        """The R2-side (post-monomorphization) portion of the pipeline."""
        return [p for p in self.passes if p.stage == "defs"]

    # -- execution ------------------------------------------------------------

    def run_source(self, ctx: PassContext) -> None:
        """Run the source-stage passes over ``ctx.program``."""
        for p in self.source_passes():
            self._run_one(p, ctx)

    def run_defs(self, ctx: PassContext) -> None:
        """Run the defs-stage passes over ``ctx.defs``."""
        for p in self.defs_passes():
            self._run_one(p, ctx)

    def _run_one(self, p: Pass, ctx: PassContext) -> None:
        opts = self.options
        with _obs.span(p.span):
            p.run(ctx)
        if getattr(opts, "verify", True):
            with _obs.span(p.verify_span):
                rec = p.postcondition(ctx)
            if rec is not None and p.stage == "defs":
                ctx.verified.append(rec)
        if self._wants_dump(p.name):
            self._dump(p, ctx)

    # -- IR dumps -------------------------------------------------------------

    def _wants_dump(self, name: str) -> bool:
        opts = self.options
        return bool(getattr(opts, "print_ir_all", False)
                    or name in getattr(opts, "print_ir_after", ()))

    def _dump(self, p: Pass, ctx: PassContext) -> None:
        sink = getattr(self.options, "ir_sink", None)
        text = f"{dump_header(p.name)}\n{_render_ir(p, ctx)}\n"
        if sink is None:
            print(text, file=sys.stderr)
        else:
            sink(text)


def manager_for(options: Any,
                passes: Optional[Sequence[Union[str, Pass]]] = None
                ) -> PassManager:
    """A :class:`PassManager` for ``options`` — the explicit ``passes``
    list when given, else the list the options compile down to
    (``options.pipeline()``)."""
    names = passes if passes is not None else options.pipeline()
    return PassManager(names, options)
