"""Phase-boundary IR verifier.

The transformation pipeline promises a precise shape for its output at
every phase boundary (docs/PIPELINE.md documents the contract); this
module re-derives those postconditions from the program alone and raises
a stage-named :class:`~repro.errors.AnalysisError` the moment one fails,
with a pretty-printed minimal offending subterm.  The checks:

* **structural** — no :class:`~repro.lang.ast.Iter`,
  :class:`~repro.lang.ast.Lambda` or untransformed
  :class:`~repro.lang.ast.Call` survives elimination; every variable is
  bound; builtin and user applications have the declared arity.

* **frame-depth typing** — every expression is assigned an upper bound
  on the frame depth its value can be consumed at.  View-raising
  primitives (``dist``/``range1``/``restrict``/``combine``) produce
  values re-viewable one level *deeper* than their application depth —
  exactly how the iterator-entry and R2d rebindings work — while
  consumption at any *shallower* depth is always legal (the result of an
  eliminated iterator is its depth-``j+1`` body viewed at depth ``j``).
  Every ``f^j`` application must consume each argument at a depth the
  argument can actually supply **and** have at least one argument at the
  application depth itself — the invariant the parallel-extension
  machinery replicates depth-0 values against (this is what the
  ``transform.R2c.depth-bump`` fault site violates).

* **R2d guard discipline** — transform-*generated* ``combine``s (tagged
  with ``origin`` provenance by the eliminator; user-written ``combine``
  calls are untagged and exempt) must take both arms from emptiness-
  guarded branches: a let-bound ``if __any(mask) then ... else
  __empty(mask)``, with every generated ``restrict`` dominated by such a
  guard's then-arm.  This is the property that makes transformed
  *recursive* functions terminate (paper section 3.3), and it is exactly
  what the ``transform.R2d.drop-guard`` fault site breaks.
"""

from __future__ import annotations

from typing import Callable, Mapping, NoReturn, Optional

from repro.errors import AnalysisError
from repro.lang import ast as A
from repro.lang import builtins as B
from repro.lang.pretty import pretty

__all__ = ["verify_canonical", "verify_def", "verify_transformed"]

#: Primitives whose result is legitimately consumed one frame level
#: deeper than the application depth: the iterator-entry rebindings
#: re-view ``dist^j``/``range1^j`` results as depth-``j+1`` frames, and
#: the R2d form re-views ``restrict^{j-1}``/``combine^{j-1}`` results at
#: depth ``j``.  ``__iter^0`` (the fuse pass's identity-gather shortcut)
#: re-views a depth-0 sequence as the depth-1 frame of its elements.
_VIEW_OPS = frozenset({"combine", "restrict", "dist", "range1", "__iter"})

_SUBTERM_LIMIT = 200


def _subterm(e: A.Expr) -> str:
    s = " ".join(pretty(e).split())
    return s if len(s) <= _SUBTERM_LIMIT else s[:_SUBTERM_LIMIT] + " ..."


def _fail(stage: str, detail: str, e: Optional[A.Expr] = None) -> NoReturn:
    raise AnalysisError(stage, detail, _subterm(e) if e is not None else "")


# ---------------------------------------------------------------------------
# Canonical-form postcondition (after R1 + filter desugaring)
# ---------------------------------------------------------------------------

def verify_canonical(program: A.Program,
                     stage: str = "verify:canonicalize") -> int:
    """Every iterator is in the canonical ``[i <- range(1, e): body]`` form
    with no residual filter.  Returns the number of defs checked."""
    for d in program.defs.values():
        for node in A.walk(d.body):
            if not isinstance(node, A.Iter):
                continue
            if node.filter is not None:
                _fail(stage, f"{d.name}: iterator filter survived "
                             "canonicalization", node)
            dom = node.domain
            if not (isinstance(dom, A.Call) and isinstance(dom.fn, A.Var)
                    and dom.fn.name == "range" and len(dom.args) == 2
                    and isinstance(dom.args[0], A.IntLit)
                    and dom.args[0].value == 1):
                _fail(stage, f"{d.name}: iterator domain is not canonical "
                             "range(1, e)", node)
    return len(program.defs)


# ---------------------------------------------------------------------------
# Transformed-form postconditions (after each of eliminate/optimize/
# simplify/fuse)
# ---------------------------------------------------------------------------

class _DefChecker:
    """Checks one transformed definition; raises on the first violation."""

    def __init__(self, stage: str, fname: str,
                 is_known: Callable[[str], bool],
                 arity_of: Callable[[str], Optional[int]]):
        self.stage = stage
        self.fname = fname
        self.is_known = is_known
        self.arity_of = arity_of

    def fail(self, detail: str, e: Optional[A.Expr] = None) -> NoReturn:
        _fail(self.stage, f"{self.fname}: {detail}", e)

    # -- the frame-depth walk ------------------------------------------------

    def check(self, e: A.Expr, env: Mapping[str, int],
              lets: Mapping[str, A.Expr], in_guard: bool) -> int:
        """Returns an upper bound on the frame depth ``e`` can supply."""
        if isinstance(e, A.Var):
            fd = env.get(e.name)
            if fd is not None:
                return fd
            if self.is_known(e.name):
                return 0  # a function constant
            self.fail(f"unbound variable {e.name!r}", e)
        if isinstance(e, (A.IntLit, A.BoolLit, A.FloatLit)):
            return 0
        if isinstance(e, A.Iter):
            self.fail("residual iterator after elimination", e)
        if isinstance(e, A.Lambda):
            self.fail("lambda survived monomorphization", e)
        if isinstance(e, A.Call):
            self.fail("untransformed application (Call node) after "
                      "elimination", e)
        if isinstance(e, (A.SeqLit, A.TupleLit)):
            for item in e.items:
                self.check(item, env, lets, in_guard)
            return 0
        if isinstance(e, A.TupleExtract):
            self.check(e.tup, env, lets, in_guard)
            return 0
        if isinstance(e, A.Let):
            bfd = self.check(e.bound, env, lets, in_guard)
            env2 = dict(env)
            env2[e.var] = bfd
            lets2 = dict(lets)
            lets2[e.var] = e.bound
            return self.check(e.body, env2, lets2, in_guard)
        if isinstance(e, A.If):
            return self.check_if(e, env, lets, in_guard)
        if isinstance(e, A.ExtCall):
            return self.check_ext(e, env, lets, in_guard)
        if isinstance(e, A.IndirectCall):
            return self.check_indirect(e, env, lets, in_guard)
        self.fail(f"unexpected node {type(e).__name__} after elimination", e)

    def check_if(self, e: A.If, env: Mapping[str, int],
                 lets: Mapping[str, A.Expr], in_guard: bool) -> int:
        self.check(e.cond, env, lets, in_guard)
        if e.origin == "R2d-guard":
            if not (isinstance(e.cond, A.ExtCall) and e.cond.fn == "__any"):
                self.fail("R2d branch guard does not test __any emptiness", e)
            if not (isinstance(e.els, A.ExtCall) and e.els.fn == "__empty"):
                self.fail("R2d branch guard's empty arm is not __empty", e)
            tfd = self.check(e.then, env, lets, True)
            efd = self.check(e.els, env, lets, in_guard)
            return max(tfd, efd)
        tfd = self.check(e.then, env, lets, in_guard)
        efd = self.check(e.els, env, lets, in_guard)
        return max(tfd, efd)

    def check_args(self, e: A.Expr, what: str,
                   arg_fds: list[int], arg_depths: list[int]) -> None:
        if len(arg_fds) != len(arg_depths):
            self.fail(f"{what}: {len(arg_fds)} arguments but "
                      f"{len(arg_depths)} argument depths", e)
        for i, (fd, ad) in enumerate(zip(arg_fds, arg_depths)):
            if ad < 0:
                self.fail(f"{what}: negative argument depth {ad}", e)
            if ad > fd:
                self.fail(f"{what}: argument {i} consumed at frame depth "
                          f"{ad}, but it can supply at most depth {fd}", e)

    def check_ext(self, e: A.ExtCall, env: Mapping[str, int],
                  lets: Mapping[str, A.Expr], in_guard: bool) -> int:
        if e.origin == "R2d-restrict" and not in_guard:
            self.fail("transform-generated restrict is not dominated by an "
                      "__any emptiness guard", e)
        arg_fds = [self.check(a, env, lets, in_guard) for a in e.args]
        what = f"{e.fn}^{e.depth}"
        if e.depth < 0:
            self.fail(f"{what}: negative application depth", e)
        self.check_args(e, what, arg_fds, list(e.arg_depths))
        arity = self.arity_of(e.fn)
        if arity is not None and arity != len(e.args):
            self.fail(f"{what}: expects {arity} arguments, got "
                      f"{len(e.args)}", e)
        if e.depth >= 1 and not any(ad == e.depth for ad in e.arg_depths):
            self.fail(f"{what}: no argument at the application depth "
                      f"(argument depths {list(e.arg_depths)})", e)
        if e.origin == "R2d":
            self.check_r2d_combine(e, lets)
        if e.fn == "__any":
            return 0
        if e.fn in _VIEW_OPS:
            return e.depth + 1
        return e.depth

    def check_r2d_combine(self, e: A.ExtCall,
                          lets: Mapping[str, A.Expr]) -> None:
        if e.fn != "combine" or len(e.args) != 3:
            self.fail("R2d provenance on a non-combine application", e)
        for k in (1, 2):
            arm = e.args[k]
            tgt = lets.get(arm.name) if isinstance(arm, A.Var) else arm
            if not (isinstance(tgt, A.If) and tgt.origin == "R2d-guard"):
                self.fail("R2d combine arm is not an emptiness-guarded "
                          "branch (missing __any guard)", e)

    def check_indirect(self, e: A.IndirectCall, env: Mapping[str, int],
                       lets: Mapping[str, A.Expr], in_guard: bool) -> int:
        fun_fd = self.check(e.fun, env, lets, in_guard)
        arg_fds = [self.check(a, env, lets, in_guard) for a in e.args]
        what = f"apply^{e.depth}"
        if e.depth < 0:
            self.fail(f"{what}: negative application depth", e)
        if e.fun_depth > fun_fd:
            self.fail(f"{what}: function part consumed at frame depth "
                      f"{e.fun_depth}, but it can supply at most depth "
                      f"{fun_fd}", e)
        self.check_args(e, what, arg_fds, list(e.arg_depths))
        if e.depth >= 1 and e.fun_depth != e.depth \
                and not any(ad == e.depth for ad in e.arg_depths):
            self.fail(f"{what}: no argument at the application depth "
                      f"(argument depths {list(e.arg_depths)})", e)
        return e.depth


def verify_def(d: A.FunDef, stage: str,
               is_known: Callable[[str], bool],
               arity_of: Callable[[str], Optional[int]]) -> None:
    """Check one transformed definition against the phase postconditions."""
    chk = _DefChecker(stage, d.name, is_known, arity_of)
    env = {p: 0 for p in d.params}
    chk.check(d.body, env, {}, False)


def verify_transformed(defs: Mapping[str, A.FunDef], stage: str,
                       typed: object) -> int:
    """Check every definition of a (partially) transformed program.

    ``typed`` is the :class:`~repro.lang.typecheck.TypedProgram` used for
    name resolution and user-function arity.  Returns the number of defs
    checked (the per-phase count recorded by ``repro analyze``).
    """
    mono_defs = getattr(typed, "mono_defs", {})

    def is_known(name: str) -> bool:
        return (name in defs or name in mono_defs or B.is_builtin(name)
                or name.startswith("__"))

    def arity_of(name: str) -> Optional[int]:
        if B.is_builtin(name):
            scheme = B.get_builtin(name).scheme()
            return len(scheme.params)
        d = mono_defs.get(name)
        if d is not None:
            return len(d.params)
        return None

    for d in defs.values():
        verify_def(d, stage, is_known, arity_of)
    return len(defs)
