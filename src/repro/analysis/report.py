"""The ``repro analyze`` entry point: run all three analysis passes over
one program + entry and render the results (human text + analysis.json).

The JSON schema is versioned (``version`` key); CI archives the file as
an artifact, so downstream tooling can rely on the layout within a
version.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.analysis.shapes import ShapeAnalysis, analyze_shapes
from repro.analysis.verify import verify_canonical
from repro.analysis.vlint import LintResult, lint_program

__all__ = ["ANALYSIS_SCHEMA_VERSION", "AnalysisReport", "analyze_source",
           "classify_fault_sites"]

# 2: optional "cost" section (repro analyze --cost)
ANALYSIS_SCHEMA_VERSION = 2


def classify_fault_sites() -> dict[str, dict[str, str]]:
    """Classify every registered fault-injection site: transform-level
    corruption is caught *statically* by the phase-boundary verifier;
    descriptor corruption beneath the constructor is only observable at
    a guarded runtime boundary (``runtime-only``)."""
    from repro.guard.faults import FAULT_SITES
    out: dict[str, dict[str, str]] = {}
    for site, desc in sorted(FAULT_SITES.items()):
        static = site.startswith("transform.")
        out[site] = {
            "description": desc,
            "classification": "static" if static else "runtime-only",
            "caught_by": ("verify:eliminate (phase-boundary IR verifier)"
                          if static else
                          "stage-named InvariantError at a guarded "
                          "runtime boundary (check=full or the retained "
                          "runtime-class checks of check=static)"),
        }
    return out


@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` learned about one program + entry."""

    file: str
    entry: str
    phases: list[dict[str, Any]]
    shapes: ShapeAnalysis
    vlint: LintResult
    vlint_functions: int
    vlint_instructions: int
    #: optional cost section (``repro analyze --cost``): the
    #: whole-program :class:`~repro.analysis.cost.CostAnalysis` JSON plus
    #: the entry's certificate line
    cost: Optional[dict[str, Any]] = None

    def to_json(self) -> dict[str, Any]:
        static, runtime = self.shapes.counts()
        return {
            "version": ANALYSIS_SCHEMA_VERSION,
            "file": self.file,
            "entry": self.entry,
            "verifier": {"phases": self.phases},
            "shapes": {
                "static_sites": static,
                "runtime_sites": runtime,
                "discharged": sorted(self.shapes.discharged),
                "defs": {
                    name: {
                        "ret_valid": d.ret_valid,
                        "sites": [{"fn": s.fn, "depth": s.depth,
                                   "class": s.cls, "reason": s.reason}
                                  for s in d.sites],
                    }
                    for name, d in sorted(self.shapes.defs.items())
                },
            },
            "vlint": {
                "functions": self.vlint_functions,
                "instructions": self.vlint_instructions,
                "errors": [{"function": x.function, "code": x.code,
                            "detail": x.detail} for x in self.vlint.errors],
                "warnings": [{"function": x.function, "code": x.code,
                              "detail": x.detail}
                             for x in self.vlint.warnings],
            },
            "fault_sites": classify_fault_sites(),
            **({"cost": self.cost} if self.cost is not None else {}),
        }

    def render(self) -> str:
        static, runtime = self.shapes.counts()
        lines = [f"analysis: {self.file}  entry {self.entry}"]
        lines.append(f"verifier: {len(self.phases)} phases passed")
        for p in self.phases:
            lines.append(f"  {p['phase']:<22} {p['defs']} defs")
        lines.append(
            f"shapes: {static + runtime} primitive sites — "
            f"{static} static / {runtime} runtime; "
            f"{len(self.shapes.discharged)} check tags discharged")
        kept = sorted({s.fn for d in self.shapes.defs.values()
                       for s in d.sites if s.cls == "runtime"})
        if kept:
            lines.append("  runtime-class (boundary checks retained): "
                         + ", ".join(kept))
        lines.append(
            f"vlint: {self.vlint_functions} functions, "
            f"{self.vlint_instructions} instructions, "
            f"{len(self.vlint.errors)} errors, "
            f"{len(self.vlint.warnings)} warnings")
        for x in self.vlint.errors + self.vlint.warnings:
            lines.append(f"  {x}")
        sites = classify_fault_sites()
        n_static = sum(1 for v in sites.values()
                       if v["classification"] == "static")
        lines.append(
            f"fault sites: {len(sites) - n_static} runtime-only, "
            f"{n_static} caught statically (see docs/ANALYSIS.md)")
        if self.cost is not None:
            defs = self.cost.get("defs", {})
            n_bnd = sum(1 for d in defs.values()
                        if d.get("verdict") == "bounded")
            lines.append(
                f"cost: model {self.cost.get('model')}; "
                f"{n_bnd}/{len(defs)} definitions bounded")
            lines.append(f"  entry {self.cost.get('entry')}")
            for name, d in sorted(defs.items()):
                if d.get("verdict") == "bounded":
                    lines.append(
                        f"  {name}: work = {d['work']}; "
                        f"span = {d['span']}; mem = {d['mem']}")
                else:
                    lines.append(f"  {name}: unbounded -- {d['reason']}")
        return "\n".join(lines)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=False)
            fh.write("\n")


def analyze_source(source: str, entry: str, args: Sequence[Any],
                   types: Optional[Sequence[Any]] = None,
                   file: str = "<string>",
                   cost: bool = False) -> AnalysisReport:
    """Run the verifier, the shape analysis, and the VCODE lint over one
    program and entry (plus the symbolic cost analysis when ``cost``);
    raises :class:`~repro.errors.AnalysisError` if the verifier or the
    lint finds a hard error."""
    from repro.api import compile_program
    from repro.vcode.compile import compile_transformed

    prog = compile_program(source)
    phases: list[dict[str, Any]] = [
        {"phase": "verify:canonicalize",
         "defs": verify_canonical(prog.canonical), "status": "passed"},
    ]
    arg_types = prog.entry_types(entry, list(args), types)
    fun_entries = prog._fun_value_entries(list(args), arg_types)
    _mono, tp = prog.prepare(entry, arg_types, fun_entries)
    for phase, ndefs in getattr(tp, "verified_phases", ()):
        phases.append({"phase": phase, "defs": ndefs, "status": "passed"})
    shapes = analyze_shapes(tp)
    vp = compile_transformed(tp)  # raises AnalysisError on lint errors
    findings = lint_program(vp)
    cost_section: Optional[dict[str, Any]] = None
    if cost:
        cert = prog.cost_certificate(entry, arg_types, fun_entries)
        cost_section = {**cert.analysis.to_json(), "entry": cert.render()}
    return AnalysisReport(
        file=file, entry=entry, phases=phases, shapes=shapes,
        vlint=findings, vlint_functions=len(vp.functions),
        vlint_instructions=vp.instruction_count, cost=cost_section)
