"""Static analysis over the transformation pipeline's intermediate forms.

Three cooperating passes (see docs/ANALYSIS.md):

* :mod:`repro.analysis.verify` — the phase-boundary IR verifier.  After
  every transformation phase (canonicalize, eliminate, optimize,
  simplify, fuse) the whole program is re-checked against that phase's
  postconditions; a violation raises a stage-named
  :class:`~repro.errors.AnalysisError` carrying a pretty-printed minimal
  offending subterm.

* :mod:`repro.analysis.shapes` — symbolic shape analysis.  An abstract
  interpretation over symbolic descriptor chains classifies every
  primitive application as *static* (result shape provably valid by
  construction) or *runtime* (descriptor arithmetic only checkable on
  concrete data), and derives the set of guard check sites the runtime
  may skip (``check="static"`` mode).

* :mod:`repro.analysis.vlint` — a lint over compiled VCODE: register
  discipline (use before definition), control flow (jump targets,
  return on every path), call arity, and dead vector results.

* :mod:`repro.analysis.cost` — symbolic work/span/memory cost analysis.
  An abstract interpretation over total-size polynomials assigns every
  transformed definition sound upper bounds ``work(n, …)``,
  ``span(n, …)``, ``peak_mem(n, …)`` in named input-size variables
  (widening to a declared ``unbounded`` verdict for data-dependent
  recursion), and :class:`~repro.analysis.cost.CostCertificate` turns
  an entry's bounds into concrete budget predictions.

:func:`analyze_source` (in :mod:`repro.analysis.report`) runs them all
and builds the ``analysis.json`` report behind ``repro analyze``.
"""

from repro.analysis.cost import (
    CostAnalysis,
    CostCertificate,
    analyze_cost,
    cost_certificate_for,
)
from repro.analysis.report import AnalysisReport, analyze_source
from repro.analysis.shapes import ShapeAnalysis, analyze_shapes
from repro.analysis.verify import verify_canonical, verify_def, verify_transformed
from repro.analysis.vlint import LintResult, lint_program

__all__ = [
    "AnalysisReport",
    "CostAnalysis",
    "CostCertificate",
    "LintResult",
    "ShapeAnalysis",
    "analyze_cost",
    "analyze_shapes",
    "analyze_source",
    "cost_certificate_for",
    "lint_program",
    "verify_canonical",
    "verify_def",
    "verify_transformed",
]
