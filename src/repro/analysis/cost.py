"""Static work/span/memory cost analysis over the flattened IR.

The paper's central claim (sections 1 and 6) is that flattening preserves
work and step complexity within a constant factor.  The interpreter
*measures* work and span dynamically (:mod:`repro.interp.cost`); this
pass *predicts* them, assigning every transformed definition a symbolic
upper bound in named input-size variables:

* ``work(n, m, ...)`` — total elementary operations, charged per
  primitive application site from the shared :data:`~repro.interp.cost.
  COST_RULES` table (the same table the interpreter evaluates on
  concrete values, so static and dynamic accounting agree by
  construction);
* ``span(n, m, ...)`` — critical-path steps, charging one step per
  vector-op site (each flattened primitive is a constant number of full
  pool-width vector operations — the segmented-scan span model, a
  constant-step deviation from PRAM ``O(log n)`` depth documented in
  ``docs/ANALYSIS.md``);
* ``mem(n, m, ...)`` — cumulative allocation, an upper bound on peak
  live memory.

The abstraction is a *total-size* domain: a sequence value is a tuple of
polynomials giving the **total** element count at each nesting level
(the flattened representation's own invariant ``#V_{i+1} = sum(V_i)``
makes totals compose exactly under pooling), plus a magnitude bound on
its integer leaves (so ``range(1, n)``'s result size is expressible).
Polynomials have non-negative coefficients over non-negative size
variables, so the pointwise coefficient maximum is a sound join.

The per-definition fixpoint mirrors :mod:`repro.analysis.shapes`:
summaries start at bottom (all-zero sizes and costs) and are iterated to
a post-fixpoint.  Definitions whose summaries keep growing past the
round cap — data-dependent recursion such as quicksort, whose cost
depends on pivot values, not sizes — are **widened** to a declared
``unbounded`` verdict rather than guessed at.  A stabilized summary is a
fixpoint of sound monotone transfer functions and therefore bounds every
finite evaluation derivation.

The exported :class:`CostCertificate` evaluates an entry's polynomials
at concrete argument sizes (``predict``), which powers predicted-budget
admission in ``repro.serve``, ``--threads auto`` on the parallel
backend, and predicted-work native tiering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.shapes import _ELEMENTWISE, _REDUCTIONS, _SCANS
from repro.interp.cost import (ARG0_LEN, ARG1_SCALAR, ARGS01_LEN, FLAT_ARG0,
                               RESULT_LEN, UNIT, cost_rule)
from repro.lang import ast as A
from repro.lang import types as T
from repro.transform.extensions import ext1_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transform.pipeline import TransformedProgram

__all__ = [
    "COST_MODEL_VERSION", "Poly", "OptPoly", "ZERO", "ONE",
    "pconst", "pvar", "padd", "psum", "pmul", "pjoin", "psubst", "peval",
    "pstr", "AScalar", "ASeq", "ATup", "ATop", "AVal",
    "DefCost", "CostAnalysis", "CostCertificate",
    "analyze_cost", "cost_certificate_for",
]

#: Version tag for the ``cost`` section of analysis.json and for
#: certificate provenance.
COST_MODEL_VERSION = "work-span-v1"


# -- polynomial domain -------------------------------------------------------

#: One monomial: sorted ``(variable, exponent)`` pairs, exponents >= 1.
Mono = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class Poly:
    """A polynomial with non-negative integer coefficients over
    non-negative size variables, stored as sorted ``(monomial, coeff)``
    terms with all coefficients positive."""

    terms: tuple[tuple[Mono, int], ...]

    def __str__(self) -> str:
        return pstr(self)


def _poly(d: Mapping[Mono, int]) -> Poly:
    return Poly(tuple(sorted((m, c) for m, c in d.items() if c > 0)))


ZERO = _poly({})


def pconst(c: int) -> Poly:
    """The constant polynomial ``c`` (clamped at zero)."""
    return _poly({(): c}) if c > 0 else ZERO


ONE = pconst(1)


def pvar(name: str) -> Poly:
    """The polynomial consisting of the single size variable ``name``."""
    return _poly({((name, 1),): 1})


#: ``None`` is the domain's top: *unbounded* (no finite polynomial bound).
OptPoly = Optional[Poly]


def padd(a: OptPoly, b: OptPoly) -> OptPoly:
    """Sum; unbounded absorbs."""
    if a is None or b is None:
        return None
    d = dict(a.terms)
    for m, c in b.terms:
        d[m] = d.get(m, 0) + c
    return _poly(d)


def psum(ps: Iterable[OptPoly]) -> OptPoly:
    """Sum of many polynomials."""
    out: OptPoly = ZERO
    for p in ps:
        out = padd(out, p)
    return out


def _mono_mul(a: Mono, b: Mono) -> Mono:
    d: dict[str, int] = {}
    for v, e in a:
        d[v] = d.get(v, 0) + e
    for v, e in b:
        d[v] = d.get(v, 0) + e
    return tuple(sorted(d.items()))


def pmul(a: OptPoly, b: OptPoly) -> OptPoly:
    """Product.  Zero absorbs even against unbounded (an empty frame
    runs nothing, whatever the per-element bound)."""
    if a is not None and not a.terms:
        return ZERO
    if b is not None and not b.terms:
        return ZERO
    if a is None or b is None:
        return None
    d: dict[Mono, int] = {}
    for ma, ca in a.terms:
        for mb, cb in b.terms:
            m = _mono_mul(ma, mb)
            d[m] = d.get(m, 0) + ca * cb
    return _poly(d)


def pjoin(a: OptPoly, b: OptPoly) -> OptPoly:
    """Least upper bound: coefficient-wise maximum.  Sound because size
    variables and coefficients are non-negative, so ``max(p, q) <=
    join(p, q)`` pointwise."""
    if a is None or b is None:
        return None
    d = dict(a.terms)
    for m, c in b.terms:
        d[m] = max(d.get(m, 0), c)
    return _poly(d)


def pjoinmany(ps: Iterable[OptPoly]) -> OptPoly:
    """Join of many polynomials (zero for an empty collection)."""
    out: OptPoly = ZERO
    for p in ps:
        out = pjoin(out, p)
    return out


def psubst(p: OptPoly, env: Mapping[str, OptPoly]) -> OptPoly:
    """Substitute polynomials for variables.  Monotone composition of
    monotone polynomials preserves the upper-bound property.  A variable
    missing from ``env`` is unknown, hence unbounded."""
    if p is None:
        return None
    out: OptPoly = ZERO
    for m, c in p.terms:
        term: OptPoly = pconst(c)
        for v, e in m:
            rep = env.get(v)
            for _ in range(e):
                term = pmul(term, rep)
        out = padd(out, term)
    return out


def peval(p: Poly, env: Mapping[str, int]) -> int:
    """Evaluate at concrete sizes.  Raises ``KeyError`` on a missing
    variable (callers treat that as unbounded)."""
    total = 0
    for m, c in p.terms:
        t = c
        for v, e in m:
            t *= env[v] ** e
        total += t
    return total


def pvars(p: OptPoly) -> frozenset[str]:
    """All size variables appearing in ``p``."""
    if p is None:
        return frozenset()
    return frozenset(v for m, _ in p.terms for v, _ in m)


def pstr(p: OptPoly) -> str:
    """Render ``3*#v*|v| + 2*#v + 1`` style, or ``unbounded``."""
    if p is None:
        return "unbounded"
    if not p.terms:
        return "0"

    def deg(m: Mono) -> int:
        return sum(e for _, e in m)

    parts: list[str] = []
    for m, c in sorted(p.terms, key=lambda t: (-deg(t[0]), t[0])):
        factors = [f"{v}^{e}" if e > 1 else v for v, e in m]
        if not factors:
            parts.append(str(c))
        elif c == 1:
            parts.append("*".join(factors))
        else:
            parts.append("*".join([str(c)] + factors))
    return " + ".join(parts)


# -- abstract values ---------------------------------------------------------

@dataclass(frozen=True)
class AScalar:
    """A scalar value; ``mag`` bounds its absolute value when integral."""

    mag: OptPoly


@dataclass(frozen=True)
class ASeq:
    """A (possibly pooled) sequence value.  ``levels[i]`` bounds the
    **total** element count at nesting level ``i + 1`` — totals, not
    per-element lengths, because the descriptor invariant makes totals
    compose exactly under pooling.  ``mag`` bounds the absolute value of
    every integer leaf.  ``beyond_zero`` marks a value whose untracked
    deeper levels are known empty (``__empty``), so joins against it do
    not lose precision."""

    levels: tuple[OptPoly, ...]
    mag: OptPoly
    beyond_zero: bool = False


@dataclass(frozen=True)
class ATup:
    """A tuple value (or pooled structure-of-arrays tuple)."""

    items: tuple["AVal", ...]


@dataclass(frozen=True)
class ATop:
    """No information."""


AVal = Union[AScalar, ASeq, ATup, ATop]

ATOP = ATop()


def _lvl(v: AVal, i: int) -> OptPoly:
    """Total element count of ``v`` at 0-based nesting level ``i``."""
    if isinstance(v, ASeq):
        if 0 <= i < len(v.levels):
            return v.levels[i]
        return ZERO if v.beyond_zero else None
    if isinstance(v, ATup):
        if not v.items:
            return ZERO
        return pjoinmany(_lvl(x, i) for x in v.items)
    return None


def _mag(v: AVal) -> OptPoly:
    if isinstance(v, (AScalar, ASeq)):
        return v.mag
    if isinstance(v, ATup):
        if not v.items:
            return ZERO
        return pjoinmany(_mag(x) for x in v.items)
    return None


def _depth_of(v: AVal) -> int:
    if isinstance(v, ASeq):
        return len(v.levels)
    if isinstance(v, ATup):
        return max((_depth_of(x) for x in v.items), default=0)
    return 0


def _join_val(a: AVal, b: AVal) -> AVal:
    if isinstance(a, AScalar) and isinstance(b, AScalar):
        return AScalar(pjoin(a.mag, b.mag))
    if isinstance(a, ASeq) and isinstance(b, ASeq):
        n = max(len(a.levels), len(b.levels))
        return ASeq(tuple(pjoin(_lvl(a, i), _lvl(b, i)) for i in range(n)),
                    pjoin(a.mag, b.mag),
                    a.beyond_zero and b.beyond_zero)
    if isinstance(a, ATup) and isinstance(b, ATup) \
            and len(a.items) == len(b.items):
        return ATup(tuple(_join_val(x, y)
                          for x, y in zip(a.items, b.items)))
    # a sequence of tuples has two faithful representations: the pooled
    # single-spine view (ASeq, e.g. a formal) and the pushed-outward
    # component view (ATup of pooled seqs, e.g. a __tuple_cons^d site).
    # Reconcile by pooling the ATup side instead of losing everything.
    if isinstance(a, ATup) and isinstance(b, ASeq):
        a, b = b, a
    if isinstance(a, ASeq) and isinstance(b, ATup):
        return _join_val(a, _pooled_view(b))
    return ATOP


def _pooled_view(v: ATup) -> ASeq:
    """The single-spine (pooled) ASeq view of a pushed-outward tuple of
    sequences.  Per-level totals are *summed* component-wise — an upper
    bound for every level-derived measure including allocation."""
    n = max((_depth_of(x) for x in v.items), default=0)
    return ASeq(tuple(psum(_lvl(x, i) for x in v.items)
                      for i in range(max(1, n))), _mag(v))


def _subst_val(v: AVal, env: Mapping[str, OptPoly]) -> AVal:
    if isinstance(v, AScalar):
        return AScalar(psubst(v.mag, env))
    if isinstance(v, ASeq):
        return ASeq(tuple(psubst(x, env) for x in v.levels),
                    psubst(v.mag, env), v.beyond_zero)
    if isinstance(v, ATup):
        return ATup(tuple(_subst_val(x, env) for x in v.items))
    return ATOP


def _alloc(v: AVal) -> OptPoly:
    """Memory charged for materializing ``v``: one cell per descriptor
    level plus one per element at every level."""
    if isinstance(v, ASeq):
        return padd(ONE, psum(v.levels))
    if isinstance(v, ATup):
        return padd(ONE, psum(_alloc(x) for x in v.items))
    if isinstance(v, AScalar):
        return ONE
    return None


# -- size variables for entry parameters -------------------------------------

def _spine(t: T.Type) -> tuple[int, T.Type]:
    d = 0
    while isinstance(t, T.TSeq):
        d += 1
        t = t.elem
    return d, t


def _has_int_leaf(t: T.Type) -> bool:
    if isinstance(t, T.TInt):
        return True
    if isinstance(t, T.TTuple):
        return any(_has_int_leaf(c) for c in t.items)
    if isinstance(t, T.TSeq):
        return _has_int_leaf(t.elem)
    return False


def _only_bool_leaves(t: T.Type) -> bool:
    if isinstance(t, T.TBool):
        return True
    if isinstance(t, T.TTuple):
        return all(_only_bool_leaves(c) for c in t.items)
    if isinstance(t, T.TSeq):
        return _only_bool_leaves(t.elem)
    return False


def _elem_mag(elem: T.Type, prefix: str) -> OptPoly:
    # Float-valued leaves stay unbounded; the only integer producers
    # from floats (trunc_/round_/floor_/ceil_) yield unbounded
    # magnitudes anyway, so a bound over just the int leaves is sound.
    if _has_int_leaf(elem):
        return pvar(f"|{prefix}|")
    if _only_bool_leaves(elem):
        return ONE
    return None


def _formal_aval(prefix: str, t: T.Type) -> AVal:
    """The abstract value of an entry parameter, with fresh size
    variables: ``p`` for an int's magnitude, ``#p``/``##p``/... for a
    sequence's per-level totals, ``|p|`` for its max-abs integer leaf,
    ``p.1``/``p.2`` for tuple components."""
    if isinstance(t, T.TInt):
        return AScalar(pvar(prefix))
    if isinstance(t, T.TBool):
        return AScalar(ONE)
    if isinstance(t, T.TFloat):
        return AScalar(None)
    if isinstance(t, T.TTuple):
        return ATup(tuple(_formal_aval(f"{prefix}.{i + 1}", c)
                          for i, c in enumerate(t.items)))
    if isinstance(t, T.TSeq):
        d, elem = _spine(t)
        levels = tuple(pvar("#" * (i + 1) + prefix) for i in range(d))
        return ASeq(levels, _elem_mag(elem, prefix))
    return ATOP


def _bind_from_aval(prefix: str, t: T.Type, av: AVal,
                    env: dict[str, OptPoly]) -> None:
    """Bind a callee formal's size variables from a caller's abstract
    argument, tail-aligning sequence levels (a pooled argument's trailing
    levels are exactly the formal's per-level totals)."""
    if isinstance(t, T.TInt):
        env[prefix] = _mag(av)
        return
    if isinstance(t, (T.TBool, T.TFloat)):
        return
    if isinstance(t, T.TTuple):
        for i, c in enumerate(t.items):
            sub: AVal = av.items[i] \
                if isinstance(av, ATup) and i < len(av.items) else ATOP
            _bind_from_aval(f"{prefix}.{i + 1}", c, sub, env)
        return
    if isinstance(t, T.TSeq):
        d, elem = _spine(t)
        off = _depth_of(av) - d
        for i in range(d):
            env["#" * (i + 1) + prefix] = \
                _lvl(av, off + i) if off + i >= 0 else None
        if _has_int_leaf(elem):
            env[f"|{prefix}|"] = _mag(av)
        return
    # function-typed formals carry no size variables


def _bind_concrete(prefix: str, t: T.Type, value: Any,
                   env: dict[str, int]) -> None:
    """Bind a parameter's size variables from a concrete argument."""
    if isinstance(t, T.TInt):
        env[prefix] = abs(int(value))
        return
    if isinstance(t, (T.TBool, T.TFloat)):
        return
    if isinstance(t, T.TTuple):
        for i, c in enumerate(t.items):
            _bind_concrete(f"{prefix}.{i + 1}", c, value[i], env)
        return
    if isinstance(t, T.TSeq):
        d, elem = _spine(t)
        cur: list[Any] = list(value)
        env["#" + prefix] = len(cur)
        for i in range(2, d + 1):
            cur = [x for s in cur for x in s]
            env["#" * i + prefix] = len(cur)
        if _has_int_leaf(elem):
            env[f"|{prefix}|"] = _max_int_leaf(cur, elem)
        return


def _max_int_leaf(vals: list[Any], t: T.Type) -> int:
    if isinstance(t, T.TInt):
        return max((abs(int(x)) for x in vals), default=0)
    if isinstance(t, T.TTuple):
        return max((_max_int_leaf([v[i] for v in vals], c)
                    for i, c in enumerate(t.items)), default=0)
    if isinstance(t, T.TSeq):
        return _max_int_leaf([x for s in vals for x in s], t.elem)
    return 0


# -- results -----------------------------------------------------------------

@dataclass(frozen=True)
class DefCost:
    """Symbolic cost bounds for one transformed definition."""

    name: str
    params: tuple[str, ...]
    work: OptPoly
    span: OptPoly
    mem: OptPoly
    widened: bool

    @property
    def bounded(self) -> bool:
        return (self.work is not None and self.span is not None
                and self.mem is not None)

    @property
    def verdict(self) -> str:
        return "bounded" if self.bounded else "unbounded"

    @property
    def reason(self) -> str:
        if self.bounded:
            return ""
        if self.widened:
            return ("data-dependent recursion: the summary kept growing, "
                    "widened to unbounded")
        return ("unboundable construct (indirect call, float-derived "
                "size, or unclassified primitive)")

    @property
    def size_vars(self) -> tuple[str, ...]:
        return tuple(sorted(pvars(self.work) | pvars(self.span)
                            | pvars(self.mem)))

    def to_json(self) -> dict[str, Any]:
        return {
            "params": list(self.params),
            "size_vars": list(self.size_vars),
            "work": pstr(self.work),
            "span": pstr(self.span),
            "mem": pstr(self.mem),
            "verdict": self.verdict,
            "widened": self.widened,
            "reason": self.reason,
        }

    def render(self) -> str:
        head = f"{self.name}({', '.join(self.params)})"
        if not self.bounded:
            return f"{head}: unbounded -- {self.reason}"
        return (f"{head}: work = {pstr(self.work)}; "
                f"span = {pstr(self.span)}; mem = {pstr(self.mem)}")


@dataclass
class CostAnalysis:
    """Whole-program result: per-definition symbolic bounds."""

    defs: dict[str, DefCost]
    widened: frozenset[str]
    rounds: int
    model: str = COST_MODEL_VERSION

    def to_json(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "rounds": self.rounds,
            "widened": sorted(self.widened),
            "defs": {name: d.to_json()
                     for name, d in sorted(self.defs.items())},
        }


@dataclass(frozen=True)
class CostCertificate:
    """An entry function's cost bounds, evaluable at concrete argument
    sizes.  ``predict`` powers predicted-budget admission in the serving
    layer, ``--threads auto``, and predicted-work native tiering."""

    entry: str
    params: tuple[str, ...]
    param_types: tuple[T.Type, ...]
    work: OptPoly
    span: OptPoly
    mem: OptPoly
    analysis: CostAnalysis

    @property
    def bounded(self) -> bool:
        return (self.work is not None and self.span is not None
                and self.mem is not None)

    def size_env(self, args: Sequence[Any]) -> dict[str, int]:
        """Concrete values for every size variable, from the arguments."""
        env: dict[str, int] = {}
        for p, t, a in zip(self.params, self.param_types, args):
            _bind_concrete(p, t, a, env)
        return env

    def predict(self, args: Sequence[Any]) -> dict[str, Any]:
        """Evaluate the bounds at the argument sizes.  Returns
        ``{"bounded": bool, "work": int|None, "span": int|None,
        "mem": int|None}``; any failure to evaluate degrades to
        unbounded (never raises)."""
        out: dict[str, Any] = {"bounded": False, "work": None,
                               "span": None, "mem": None}
        if (self.work is None or self.span is None or self.mem is None
                or len(args) != len(self.params)
                or len(self.param_types) != len(self.params)):
            return out
        try:
            env = self.size_env(args)
            out["work"] = peval(self.work, env)
            out["span"] = max(1, peval(self.span, env))
            out["mem"] = peval(self.mem, env)
        except Exception:
            return {"bounded": False, "work": None, "span": None,
                    "mem": None}
        out["bounded"] = True
        return out

    def concurrency(self, args: Sequence[Any]) -> Optional[float]:
        """Predicted available concurrency (work / span), or ``None``
        when unbounded."""
        p = self.predict(args)
        if not p["bounded"]:
            return None
        return float(p["work"]) / float(max(1, p["span"]))

    def render(self) -> str:
        d = DefCost(self.entry, self.params, self.work, self.span,
                    self.mem, self.entry in self.analysis.widened)
        return d.render()


# -- the analyzer ------------------------------------------------------------

@dataclass(frozen=True)
class _Summary:
    result: AVal
    work: OptPoly
    span: OptPoly
    mem: OptPoly


_TOP_SUMMARY = _Summary(ATOP, None, None, None)

#: Evaluation result: (abstract value, work, span, mem).
_Quad = tuple[AVal, OptPoly, OptPoly, OptPoly]

#: Primitives whose flattened implementation gathers by index data; the
#: result inherits the source's sub-element structure scaled per frame.
_GATHERS = frozenset({
    "seq_index", "__seq_index_shared", "__seq_index_segshared",
})


def _measure_poly(fn: str, d: int, C: OptPoly, avals: Sequence[AVal],
                  result_level: OptPoly) -> OptPoly:
    """The shared :data:`~repro.interp.cost.COST_RULES` work measure for
    one primitive, evaluated symbolically: the total over all ``C``
    applications of the per-application measure (the interpreter's
    ``sum(max(1, m_i)) <= C + sum(m_i)``)."""
    m = cost_rule(fn).measure
    a0: AVal = avals[0] if avals else ATOP
    a1: AVal = avals[1] if len(avals) > 1 else ATOP
    if m == UNIT:
        return ZERO
    if m == ARG0_LEN:
        return _lvl(a0, d)
    if m == ARGS01_LEN:
        return padd(_lvl(a0, d), _lvl(a1, d))
    if m == RESULT_LEN:
        return result_level
    if m == ARG1_SCALAR:
        return pmul(C, _mag(a1))
    if m == FLAT_ARG0:
        return _lvl(a0, d + 1)
    return None


def _bottom_of(t: Any) -> AVal:
    if isinstance(t, (T.TInt, T.TBool, T.TFloat)):
        return AScalar(ZERO)
    if isinstance(t, T.TSeq):
        d, elem = _spine(t)
        if isinstance(elem, T.TTuple):
            # pushed-outward form, matching the vector library's VTuple
            # representation of a sequence of tuples (and __tuple_cons^d
            # results), so fixpoint joins stay component-precise
            return ATup(tuple(_bottom_of(T.seq_of(c, d))
                              for c in elem.items))
        return ASeq((ZERO,) * d, ZERO, beyond_zero=True)
    if isinstance(t, T.TTuple):
        return ATup(tuple(_bottom_of(c) for c in t.items))
    return ATOP


class _CostAnalyzer:
    def __init__(self, tp: "TransformedProgram") -> None:
        self.tp = tp
        self.mono_defs = tp.typed.mono_defs
        self.summaries: dict[str, _Summary] = {
            name: _Summary(_bottom_of(d.ret_type), ZERO, ZERO, ZERO)
            for name, d in tp.defs.items()
        }
        self.widened: set[str] = set()

    # -- fixpoint with widening ----------------------------------------------

    def run(self) -> CostAnalysis:
        names = list(self.tp.defs)
        cap = len(names) + 8
        rounds = 0
        while True:
            changed: set[str] = set()
            for _ in range(cap):
                rounds += 1
                changed = set()
                for name in names:
                    old = self.summaries[name]
                    new = self._join_summary(
                        old, self.eval_def(self.tp.defs[name]))
                    if new != old:
                        self.summaries[name] = new
                        changed.add(name)
                if not changed:
                    break
            if not changed:
                break
            # still growing after the cap: data-dependent recursion —
            # widen every still-changing definition to unbounded (top is
            # a fixpoint of every transfer, so another pass terminates)
            for name in changed:
                self.summaries[name] = _TOP_SUMMARY
                self.widened.add(name)
        defs = {
            name: DefCost(name=name, params=tuple(d.params),
                          work=self.summaries[name].work,
                          span=self.summaries[name].span,
                          mem=self.summaries[name].mem,
                          widened=name in self.widened)
            for name, d in self.tp.defs.items()
        }
        return CostAnalysis(defs=defs, widened=frozenset(self.widened),
                            rounds=rounds)

    @staticmethod
    def _join_summary(a: _Summary, b: _Summary) -> _Summary:
        return _Summary(_join_val(a.result, b.result),
                        pjoin(a.work, b.work), pjoin(a.span, b.span),
                        pjoin(a.mem, b.mem))

    def eval_def(self, d: A.FunDef) -> _Summary:
        ptypes = d.param_types or []
        env: dict[str, AVal] = {}
        for i, p in enumerate(d.params):
            t = ptypes[i] if i < len(ptypes) else None
            env[p] = _formal_aval(p, t) if isinstance(t, T.Type) else ATOP
        val, w, s, m = self.eval(d.body, env)
        return _Summary(val, w, s, m)

    # -- transfer functions --------------------------------------------------

    def eval(self, e: A.Expr, env: Mapping[str, AVal]) -> _Quad:
        if isinstance(e, A.Var):
            return env.get(e.name, ATOP), ZERO, ZERO, ZERO
        if isinstance(e, A.IntLit):
            return AScalar(pconst(abs(e.value))), ZERO, ZERO, ZERO
        if isinstance(e, A.BoolLit):
            return AScalar(ONE), ZERO, ZERO, ZERO
        if isinstance(e, A.FloatLit):
            return AScalar(None), ZERO, ZERO, ZERO
        if isinstance(e, A.SeqLit):
            return self._eval_seqlit(e, env)
        if isinstance(e, A.TupleLit):
            parts = [self.eval(x, env) for x in e.items]
            val = ATup(tuple(p[0] for p in parts))
            return (val, padd(psum(p[1] for p in parts), ONE),
                    padd(psum(p[2] for p in parts), ONE),
                    padd(psum(p[3] for p in parts), _alloc(val)))
        if isinstance(e, A.TupleExtract):
            tv, w, s, m = self.eval(e.tup, env)
            return (self._proj(tv, e.index), padd(w, ONE), padd(s, ONE), m)
        if isinstance(e, A.Let):
            bv, bw, bs, bm = self.eval(e.bound, env)
            env2 = dict(env)
            env2[e.var] = bv
            v, w, s, m = self.eval(e.body, env2)
            return v, padd(bw, w), padd(bs, s), padd(bm, m)
        if isinstance(e, A.If):
            _, cw, cs, cm = self.eval(e.cond, env)
            tv, tw, ts, tm = self.eval(e.then, env)
            fv, fw, fs, fm = self.eval(e.els, env)
            # the interpreter evaluates only the taken branch; the join
            # bounds either choice
            return (_join_val(tv, fv), padd(cw, pjoin(tw, fw)),
                    padd(cs, pjoin(ts, fs)), padd(cm, pjoin(tm, fm)))
        if isinstance(e, A.ExtCall):
            return self.eval_ext(e, env)
        if isinstance(e, A.IndirectCall):
            self.eval(e.fun, env)
            for a in e.args:
                self.eval(a, env)
            # dynamic dispatch: the callee is not statically known
            return ATOP, None, None, None
        # Call/Lambda/Iter never reach the cost pass (phase-verified IR)
        return ATOP, None, None, None

    @staticmethod
    def _proj(v: AVal, index: int) -> AVal:
        if isinstance(v, ATup):
            if 1 <= index <= len(v.items):
                return v.items[index - 1]
            return ATOP
        if isinstance(v, ASeq):
            # pooled tuple kept whole: every component shares the frame
            # and the pooled magnitude bound
            return v
        return ATOP

    def _eval_seqlit(self, e: A.SeqLit, env: Mapping[str, AVal]) -> _Quad:
        parts = [self.eval(x, env) for x in e.items]
        vals = [p[0] for p in parts]
        k = len(vals)
        maxd = max((_depth_of(v) for v in vals), default=0)
        levels = (pconst(k),) + tuple(
            psum(_lvl(v, j) for v in vals) for j in range(maxd))
        bz = all(v.beyond_zero for v in vals if isinstance(v, ASeq))
        val = ASeq(levels, pjoinmany(_mag(v) for v in vals) if vals else ZERO,
                   beyond_zero=bz)
        return (val, padd(psum(p[1] for p in parts), pconst(max(1, k))),
                padd(psum(p[2] for p in parts), ONE),
                padd(psum(p[3] for p in parts), _alloc(val)))

    def eval_ext(self, e: A.ExtCall, env: Mapping[str, AVal]) -> _Quad:
        parts = [self.eval(a, env) for a in e.args]
        avals = [p[0] for p in parts]
        d = e.depth
        fn = e.fn

        # the application frame: level totals shared by all full-depth
        # arguments; C is the total application count
        frame: tuple[OptPoly, ...]
        if d == 0:
            frame = ()
            C: OptPoly = ONE
        else:
            full = [avals[i] for i in range(len(avals))
                    if i < len(e.arg_depths) and e.arg_depths[i] == d]
            if full:
                frame = tuple(pjoinmany(_lvl(a, j) for a in full)
                              for j in range(d))
            else:
                frame = tuple(None for _ in range(d))
            C = frame[d - 1]

        # Argument evaluation costs.  A sub-depth argument of a depth-d
        # site is a loop-invariant subexpression the transform hoisted
        # (broadcast directly or via __rep); the canonical program the
        # interpreter measures re-evaluates it once per application, so
        # its *work* is scaled by C.  Span is not: the per-application
        # copies evaluate in parallel in the abstract semantics.  Memory
        # is not either: the flattened execution really does evaluate
        # the hoisted expression once.
        w0: OptPoly = ZERO
        s0: OptPoly = ZERO
        m0: OptPoly = ZERO
        for i, p in enumerate(parts):
            wi = p[1]
            ad = e.arg_depths[i] if i < len(e.arg_depths) else d
            if d >= 1 and ad < d:
                wi = pmul(C, wi)
            w0 = padd(w0, wi)
            s0 = padd(s0, p[2])
            m0 = padd(m0, p[3])

        def out(val: AVal, cw: OptPoly, cs: OptPoly) -> _Quad:
            return (val, padd(w0, cw), padd(s0, cs),
                    padd(m0, _alloc(val)))

        def scalar_result(mag: OptPoly) -> AVal:
            return ASeq(frame, mag) if d > 0 else AScalar(mag)

        def seq_result(deeper: tuple[OptPoly, ...], mag: OptPoly,
                       bz: bool = False) -> AVal:
            return ASeq(frame + deeper, mag, beyond_zero=bz)

        step = pconst(d + 1)
        a0: AVal = avals[0] if avals else ATOP
        a1: AVal = avals[1] if len(avals) > 1 else ATOP
        val: AVal

        def site_w(result_level: OptPoly = ZERO) -> OptPoly:
            # one frame charge plus the shared table's measure total
            return padd(C, _measure_poly(fn, d, C, avals, result_level))

        # -- user-defined functions ----------------------------------------
        if fn in self.mono_defs:
            return self._eval_user_call(e, avals, frame, out)

        # -- elementwise scalars -------------------------------------------
        if fn in _ELEMENTWISE:
            return out(scalar_result(self._ew_mag(fn, avals)), site_w(), step)

        if fn == "length":
            return out(scalar_result(_lvl(a0, d)), site_w(), step)

        # range/range1 feed iterators: their work is doubled so the site
        # bound also covers the canonical iterator's per-frame charge,
        # and they cost one extra step (size then values)
        if fn == "range":
            u = padd(padd(_mag(a0), _mag(a1)), ONE)
            n = pmul(C, u)
            w = site_w(n)
            return out(seq_result((n,), pjoin(_mag(a0), _mag(a1))),
                       padd(w, w), pconst(d + 2))
        if fn == "range1":
            n = pmul(C, _mag(a0))
            w = site_w(n)
            return out(seq_result((n,), _mag(a0)), padd(w, w),
                       pconst(d + 2))

        if fn in _GATHERS:
            dv = e.arg_depths[0] if e.arg_depths else 0

            def gathered(src: AVal) -> AVal:
                if isinstance(src, ASeq):
                    deeper = tuple(pmul(C, x) for x in src.levels[dv + 1:])
                    if d == 0 and not deeper:
                        return AScalar(src.mag)
                    return seq_result(deeper, src.mag, src.beyond_zero)
                if isinstance(src, ATup):
                    # pushed-outward sequence of tuples: gather each
                    # component sequence independently
                    return ATup(tuple(gathered(x) for x in src.items))
                return ATOP

            return out(gathered(a0), site_w(), step)

        if fn == "seq_update":
            x = avals[2] if len(avals) > 2 else ATOP
            nd = max(_depth_of(a0), _depth_of(x) + d + 1)
            deeper = tuple(padd(_lvl(a0, j), _lvl(x, j - d - 1))
                           for j in range(d + 1, nd))
            lv = tuple(_lvl(a0, j) for j in range(d + 1)) + deeper
            val = ASeq(lv, pjoin(_mag(a0), _mag(x)))
            return out(val, site_w(), step)

        if fn == "restrict":
            val = a0 if isinstance(a0, ASeq) else ATOP
            return out(val, site_w(), step)

        if fn == "combine":
            v1, v2 = a1, (avals[2] if len(avals) > 2 else ATOP)
            nd = max(_depth_of(v1), _depth_of(v2))
            lv = frame + tuple(padd(_lvl(v1, j), _lvl(v2, j))
                               for j in range(d, nd))
            val = ASeq(lv, pjoin(_mag(v1), _mag(v2)))
            return out(val, site_w(), step)

        if fn == "dist":
            r = _mag(a1)
            n = pmul(C, r)
            dvc = e.arg_depths[0] if e.arg_depths else 0
            if isinstance(a0, (AScalar, ASeq, ATup)):
                if dvc == 0:
                    # broadcast: each of the C*r copies carries the full
                    # replicated value
                    scale = n
                    src_levels = tuple(_lvl(a0, j)
                                       for j in range(_depth_of(a0)))
                else:
                    # pooled: levels beyond the frame are already totals
                    # across applications; r copies of each
                    scale = r
                    src_levels = tuple(_lvl(a0, j)
                                       for j in range(dvc, _depth_of(a0)))
                deeper = (n,) + tuple(pmul(scale, x) for x in src_levels)
                return out(seq_result(deeper, _mag(a0)), site_w(), step)
            return out(ATOP, site_w(), step)

        if fn == "concat":
            nd = max(_depth_of(a0), _depth_of(a1))
            lv = frame + tuple(padd(_lvl(a0, j), _lvl(a1, j))
                               for j in range(d, nd))
            return out(ASeq(lv, pjoin(_mag(a0), _mag(a1))),
                       site_w(), step)

        if fn == "flatten":
            if isinstance(a0, ASeq):
                nd = max(_depth_of(a0), d + 2)
                lv = tuple(_lvl(a0, j) for j in range(d)) + tuple(
                    _lvl(a0, j) for j in range(d + 1, nd))
                val = ASeq(lv, a0.mag, a0.beyond_zero)
            else:
                val = ATOP
            return out(val, site_w(), step)

        if fn in _REDUCTIONS:
            if fn == "sum":
                mag = pmul(_lvl(a0, d), _mag(a0))
            elif fn in ("anytrue", "alltrue"):
                mag = ONE
            else:
                mag = _mag(a0)
            return out(scalar_result(mag), site_w(), step)

        if fn in _SCANS:
            # plus_scan prefixes are bounded by n * |max element|;
            # max_scan is inclusive, so prefixes stay within the input's
            # magnitude
            mag = pmul(_lvl(a0, d), _mag(a0)) if fn == "plus_scan" \
                else _mag(a0)
            if isinstance(a0, ASeq):
                val = ASeq(a0.levels, mag, a0.beyond_zero)
            else:
                val = ATOP
            return out(val, site_w(), step)

        if fn == "rank":
            if isinstance(a0, ASeq):
                val = ASeq(a0.levels, _lvl(a0, d), a0.beyond_zero)
            else:
                val = ATOP
            return out(val, site_w(), step)

        if fn == "permute":
            val = a0 if isinstance(a0, ASeq) else ATOP
            return out(val, site_w(), step)

        # -- flattening-introduced primitives ------------------------------
        if fn == "__seq_cons":
            k = len(avals)
            n = pmul(C, pconst(k))
            maxd = max((_depth_of(v) - d for v in avals), default=0)
            deeper = (n,) + tuple(
                psum(_lvl(v, d + j) for v in avals) for j in range(maxd))
            bz = all(v.beyond_zero for v in avals if isinstance(v, ASeq))
            return out(seq_result(deeper, pjoinmany(_mag(v) for v in avals)
                                  if avals else ZERO, bz),
                       padd(C, n), step)

        if fn == "__empty":
            # empty_frame_like keeps the mask's top d-1 descriptor levels
            # and has *zero* elements at level d (and below): do not charge
            # the full frame to level d, or the R2d branch-guard join
            # (`if __any(m) then ... else __empty(m)`) pads the taken arm
            # with an unknown deeper level and poisons peak_mem.
            lv = (frame[:d - 1] + (ZERO,)) if d >= 1 else (ZERO,)
            return out(ASeq(lv, ZERO, beyond_zero=True), C, step)

        if fn == "__rep":
            return out(self._replicate(a1, frame, C), C, step)

        if fn == "__any":
            return out(AScalar(ONE), padd(C, _lvl(a0, d)), step)

        if fn == "__iter":
            # identity view: a depth-0 sequence re-viewed as a depth-1
            # frame of its elements; no data touched
            return out(a0, ZERO, ZERO)

        if fn == "__tuple_cons":
            return out(ATup(tuple(avals)), C, step)

        if fn.startswith("__tuple_extract_"):
            try:
                idx = int(fn.rsplit("_", 1)[1])
            except ValueError:
                return out(ATOP, C, step)
            return out(self._proj(a0, idx), C, step)

        # unclassified primitive (e.g. a fused megakernel): unbounded
        return ATOP, None, None, None

    @staticmethod
    def _ew_mag(fn: str, avals: Sequence[AVal]) -> OptPoly:
        ms = [_mag(a) for a in avals]
        m0: OptPoly = ms[0] if ms else None
        m1: OptPoly = ms[1] if len(ms) > 1 else None
        if fn in ("add", "sub"):
            return padd(m0, m1)
        if fn == "mul":
            return pmul(m0, m1)
        if fn in ("div", "neg", "abs_"):
            return m0
        if fn in ("mod", "max2", "min2"):
            return pjoin(m0, m1)
        if fn in ("eq", "ne", "lt", "le", "gt", "ge",
                  "and_", "or_", "not_"):
            return ONE
        # float-valued or float-derived (fdiv, sqrt_, real, trunc_, ...)
        return None

    def _replicate(self, rep: AVal, frame: tuple[OptPoly, ...],
                   count: OptPoly) -> AVal:
        """``__rep``: the depth-0 value ``rep`` lifted into every slot of
        the frame — ``count`` copies in total."""
        if isinstance(rep, AScalar):
            return ASeq(frame, rep.mag) if frame else rep
        if isinstance(rep, ASeq):
            return ASeq(frame + tuple(pmul(count, x) for x in rep.levels),
                        rep.mag, rep.beyond_zero)
        if isinstance(rep, ATup):
            return ATup(tuple(self._replicate(x, frame, count)
                              for x in rep.items))
        return ATOP

    def _eval_user_call(
            self, e: A.ExtCall, avals: list[AVal],
            frame: tuple[OptPoly, ...],
            out: Any) -> _Quad:
        d = e.depth
        resolved = e.fn if d == 0 else ext1_name(e.fn)
        name = resolved if resolved in self.summaries else e.fn
        summ = self.summaries.get(name)
        fd = self.tp.defs.get(name)
        if summ is None or fd is None:
            return ATOP, None, None, None
        ptypes = fd.param_types or []
        if len(ptypes) != len(fd.params) or len(avals) != len(fd.params):
            return ATOP, None, None, None
        senv: dict[str, OptPoly] = {}
        for p, t, av in zip(fd.params, ptypes, avals):
            if isinstance(t, T.Type):
                _bind_from_aval(p, t, av, senv)
        cw = psubst(summ.work, senv)
        cs = psubst(summ.span, senv)
        cm = psubst(summ.mem, senv)
        val = _subst_val(summ.result, senv)
        if d >= 2:
            # the extension batches one group of applications at a time;
            # with G groups, sum_g f(sizes_g) <= G * f(totals) by
            # monotonicity, and the result regains the frame's nesting
            G = frame[d - 2]
            cw, cs, cm = pmul(G, cw), pmul(G, cs), pmul(G, cm)
            val = self._regroup(val, frame[:d - 1], G)
        ret: _Quad = out(val, cw, cs)
        # _alloc(val) inside out() already charges the result; the
        # callee's internal allocations come on top
        return ret[0], ret[1], ret[2], padd(ret[3], cm)

    def _regroup(self, val: AVal, outer: tuple[OptPoly, ...],
                 scale: OptPoly) -> AVal:
        if isinstance(val, ASeq):
            return ASeq(outer + tuple(pmul(scale, x) for x in val.levels),
                        val.mag, False)
        if isinstance(val, ATup):
            return ATup(tuple(self._regroup(x, outer, scale)
                              for x in val.items))
        if isinstance(val, AScalar):
            return ASeq(outer + (pmul(scale, ONE),), val.mag) \
                if outer else val
        return ATOP


def analyze_cost(tp: "TransformedProgram") -> CostAnalysis:
    """Analyze a transformed program (memoized on the program object)."""
    cached = getattr(tp, "_cost_analysis", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    from repro.obs import runtime as _obs
    with _obs.span("analyze:cost"):
        out = _CostAnalyzer(tp).run()
    tp._cost_analysis = out  # type: ignore[attr-defined]
    return out


def cost_certificate_for(tp: "TransformedProgram",
                         entry: str) -> CostCertificate:
    """Build the budget certificate for one entry of a transformed
    program."""
    analysis = analyze_cost(tp)
    d = tp.defs.get(entry)
    dc = analysis.defs.get(entry)
    if d is None or dc is None:
        raise KeyError(f"no transformed definition named {entry!r}")
    ptypes = tuple(t for t in (d.param_types or []) if isinstance(t, T.Type))
    if len(ptypes) != len(d.params):
        ptypes = ()
    return CostCertificate(entry=entry, params=tuple(d.params),
                           param_types=ptypes, work=dc.work, span=dc.span,
                           mem=dc.mem, analysis=analysis)
