"""Symbolic shape analysis: statically discharging runtime guard checks.

The strict guard (``check=True``) re-validates the descriptor invariant
``#V_{i+1} = sum(V_i)`` on *every* value crossing a kernel or backend
boundary — typically validating each value two or three times (once at
the producing kernel, again at the VM's post-``Prim`` boundary, again at
a call boundary).  Most of that work is provably redundant: an
elementwise kernel *reuses its argument's descriptor chain unchanged*,
so if the argument was valid the result is valid by construction.

This pass makes that argument precise.  It abstractly interprets every
transformed definition over symbolic shapes — a value is an opaque
descriptor-chain symbol plus a *validity* bit saying whether the
invariant is already established for it without a fresh runtime check —
and classifies every primitive application site:

* **static** — the result's descriptors are inherited, projected, or
  constructed-to-size from validated inputs (elementwise ops, scans,
  reductions, ``length``, ``range``/``range1``, ``__rep``, tuple
  wrappers, fused chains).  The boundary re-check proves nothing new and
  can be skipped.

* **runtime** — the kernel *computes* new descriptors via pooled
  gather/scatter index arithmetic (``seq_index``, ``restrict``,
  ``combine``, ``dist``, ``flatten``, ``concat``, ``permute``, ...).
  These are exactly the sites where the 12 runtime fault-injection
  sites live; their boundary check is load-bearing and is always kept.

The result of a runtime-class site counts as validated downstream
(its retained check establishes the invariant), which is what lets long
elementwise chains after a gather stay static.  A per-definition
fixpoint over return-validity extends the argument across user-function
call boundaries, discharging the redundant call-boundary re-checks too.

The derived :attr:`ShapeAnalysis.discharged` tag set feeds
``GuardConfig(discharged=...)`` — the runtime behind
``run(..., check="static")`` — and benchmark E16 measures the effect:
static mode must keep at most one third of full strict mode's overhead
while catching every runtime-class fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from repro.lang import ast as A
from repro.transform.extensions import ext1_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transform.pipeline import TransformedProgram

__all__ = ["Shape", "Site", "DefFacts", "ShapeAnalysis", "analyze_shapes"]


# -- kernel taxonomy ---------------------------------------------------------

_ELEMENTWISE = frozenset({
    "add", "sub", "mul", "div", "mod", "max2", "min2", "neg", "abs_",
    "fdiv", "sqrt_", "real", "trunc_", "round_", "floor_", "ceil_",
    "eq", "ne", "lt", "le", "gt", "ge", "and_", "or_", "not_",
})
_REDUCTIONS = frozenset({"sum", "maxval", "minval", "anytrue", "alltrue"})
_SCANS = frozenset({"plus_scan", "max_scan"})

#: Runtime-class primitives: descriptors recomputed from data via pooled
#: index arithmetic — the boundary check is load-bearing.
_RUNTIME: dict[str, str] = {
    "seq_index": "pool gather by flat offsets computed from index data",
    "__seq_index_shared":
        "gather from the shared depth-0 source by per-element index data",
    "__seq_index_segshared":
        "segmented gather against the un-replicated source",
    "seq_update": "pool scatter by flat offsets computed from index data",
    "restrict": "pack by mask: descriptors recomputed from mask counts",
    "combine": "merge by mask: descriptors interleaved from both arms",
    "dist": "replication: descriptors multiplied out per frame element",
    "flatten": "descriptor level dropped and pooled",
    "concat": "pairwise pooling of subsequence descriptors",
    "rank": "permutation vector derived from a stable sort",
    "permute": "pool scatter through a data-dependent permutation",
    "__seq_cons": "transpose-gather of item frames into per-element "
                  "sequences",
}

#: Static-class primitives whose *only* VM-side boundary is the
#: post-``Prim`` re-check (their execution path bypasses the shared
#: kernel boundary); that check is retained even though the site is
#: classified static, so discharge never reduces coverage below one
#: check per construction site.
_PRIM_ONLY = frozenset({"__empty"})


# -- abstract domain ---------------------------------------------------------

@dataclass(frozen=True)
class Shape:
    """One abstract value: an opaque descriptor-chain symbol plus whether
    the descriptor invariant is already established for it."""

    sym: str
    valid: bool


@dataclass(frozen=True)
class Site:
    """Classification of one primitive application site."""

    fn: str
    depth: int
    cls: str      # "static" | "runtime"
    reason: str


@dataclass
class DefFacts:
    """Shape facts for one transformed definition."""

    name: str
    sites: list[Site] = field(default_factory=list)
    ret_valid: bool = True


@dataclass
class ShapeAnalysis:
    """Whole-program result: per-def facts plus the discharged tag set."""

    defs: dict[str, DefFacts]
    discharged: frozenset[str]

    def counts(self) -> tuple[int, int]:
        """(static sites, runtime sites) across all definitions."""
        st = sum(1 for d in self.defs.values()
                 for s in d.sites if s.cls == "static")
        rt = sum(1 for d in self.defs.values()
                 for s in d.sites if s.cls == "runtime")
        return st, rt


# -- the analyzer ------------------------------------------------------------

class _Analyzer:
    def __init__(self, tp: "TransformedProgram") -> None:
        self.tp = tp
        self.mono_defs = tp.typed.mono_defs
        self.ret_valid: dict[str, bool] = {name: True for name in tp.defs}
        self._sym = 0
        self.sites: dict[str, list[Site]] = {}

    def fresh(self, hint: str) -> str:
        self._sym += 1
        return f"{hint}#{self._sym}"

    def callee_valid(self, fn: str, depth: int) -> bool:
        """Return-validity of the definition a user call resolves to
        (``f`` at depth 0, its ``f^1`` extension at depth >= 1)."""
        resolved = fn if depth == 0 else ext1_name(fn)
        if resolved in self.ret_valid:
            return self.ret_valid[resolved]
        return self.ret_valid.get(fn, True)

    # -- fixpoint ------------------------------------------------------------

    def run(self) -> ShapeAnalysis:
        changed = True
        while changed:
            changed = False
            for name, d in self.tp.defs.items():
                out = self.eval_def(d, record=None)
                if out.valid != self.ret_valid[name]:
                    self.ret_valid[name] = out.valid
                    changed = True
        for name, d in self.tp.defs.items():
            sites: list[Site] = []
            self.eval_def(d, record=sites)
            self.sites[name] = sites
        return ShapeAnalysis(
            defs={name: DefFacts(name=name, sites=self.sites[name],
                                 ret_valid=self.ret_valid[name])
                  for name in self.tp.defs},
            discharged=self.discharged_tags())

    def eval_def(self, d: A.FunDef, record: Optional[list[Site]]) -> Shape:
        env = {p: Shape(self.fresh(f"{d.name}.{p}"), True) for p in d.params}
        return self.eval(d.body, env, record)

    # -- transfer functions ----------------------------------------------------

    def eval(self, e: A.Expr, env: Mapping[str, Shape],
             record: Optional[list[Site]]) -> Shape:
        if isinstance(e, A.Var):
            s = env.get(e.name)
            return s if s is not None else Shape("fun:" + e.name, True)
        if isinstance(e, (A.IntLit, A.BoolLit, A.FloatLit)):
            return Shape("scalar", True)
        if isinstance(e, (A.SeqLit, A.TupleLit)):
            ok = all(self.eval(x, env, record).valid for x in e.items)
            return Shape(self.fresh("lit"), ok)
        if isinstance(e, A.TupleExtract):
            t = self.eval(e.tup, env, record)
            return Shape(self.fresh("proj"), t.valid)
        if isinstance(e, A.Let):
            bound = self.eval(e.bound, env, record)
            env2 = dict(env)
            env2[e.var] = bound
            return self.eval(e.body, env2, record)
        if isinstance(e, A.If):
            self.eval(e.cond, env, record)
            t = self.eval(e.then, env, record)
            f = self.eval(e.els, env, record)
            sym = t.sym if t.sym == f.sym else self.fresh("join")
            return Shape(sym, t.valid and f.valid)
        if isinstance(e, A.ExtCall):
            return self.eval_ext(e, env, record)
        if isinstance(e, A.IndirectCall):
            self.eval(e.fun, env, record)
            for a in e.args:
                self.eval(a, env, record)
            # dynamic dispatch routes through the same kernel and call
            # boundaries as the static cases; runtime-class checks inside
            # the callee are retained, so the merged result is validated
            return Shape(self.fresh("dyn"), True)
        # Call/Lambda/Iter never reach the shape pass: the phase verifier
        # rejected them before any transformed program is executed
        return Shape(self.fresh("opaque"), True)

    def eval_ext(self, e: A.ExtCall, env: Mapping[str, Shape],
                 record: Optional[list[Site]]) -> Shape:
        args = [self.eval(a, env, record) for a in e.args]
        fn = e.fn

        def site(cls: str, reason: str) -> None:
            if record is not None:
                record.append(Site(fn=fn, depth=e.depth, cls=cls,
                                   reason=reason))

        def static_result(shape: Shape, reason: str) -> Shape:
            if shape.valid:
                site("static", reason)
                return shape
            site("runtime", "inputs not statically validated; boundary "
                            "check retained")
            return Shape(shape.sym, True)

        a0 = args[0] if args else Shape("scalar", True)

        if fn in self.mono_defs:
            return Shape(self.fresh("call"), self.callee_valid(fn, e.depth))
        if fn in _RUNTIME:
            site("runtime", _RUNTIME[fn])
            return Shape(self.fresh(fn), True)
        if fn in _ELEMENTWISE:
            return static_result(
                Shape(a0.sym, a0.valid),
                "elementwise: result reuses the argument's descriptor "
                "chain unchanged")
        if fn.startswith("__fused"):
            ok = all(a.valid for a in args)
            return static_result(
                Shape(self.fresh("fused"), ok),
                "fused elementwise chain: result reuses the replicated "
                "first leaf's descriptors")
        if fn in _SCANS:
            return static_result(
                Shape(a0.sym, a0.valid),
                "segmented scan: result reuses the argument's full "
                "descriptor chain")
        if fn in _REDUCTIONS:
            return static_result(
                Shape(f"outer({a0.sym})", a0.valid),
                "segmented reduction: result projects the argument's "
                "outer descriptor level")
        if fn == "length":
            return static_result(
                Shape(f"lens({a0.sym})", a0.valid),
                "copies one validated descriptor level into values")
        if fn in ("range", "range1"):
            site("static", "constructed: lengths clamped non-negative and "
                           "values sized to match")
            return Shape(self.fresh("iota"), True)
        if fn == "__iter":
            return static_result(
                Shape(a0.sym, a0.valid),
                "identity view: a depth-0 sequence re-viewed as the "
                "depth-1 frame of its elements, no data touched")
        if fn == "__rep":
            rep = args[1] if len(args) > 1 else a0
            return static_result(
                Shape(rep.sym, rep.valid),
                "identity kernel: the replicated value is returned "
                "unchanged")
        if fn == "__any":
            site("static", "scalar boolean result; no descriptors")
            return Shape("scalar", True)
        if fn == "__empty":
            return static_result(
                Shape(self.fresh("empty"), a0.valid),
                "empty frame constructed from the validated mask's outer "
                "level (VM boundary check retained)")
        if fn == "__tuple_cons":
            ok = all(a.valid for a in args)
            return static_result(
                Shape(self.fresh("tuple"), ok),
                "wrapper: tuple components are kept as-is")
        if fn.startswith("__tuple_extract_"):
            return static_result(
                Shape(self.fresh("proj"), a0.valid),
                "projection of a validated tuple component")
        site("runtime", "unclassified primitive: boundary check retained")
        return Shape(self.fresh(fn), True)

    # -- discharge tags --------------------------------------------------------

    def discharged_tags(self) -> frozenset[str]:
        static_names: set[str] = set()
        tainted: set[str] = set()
        for sites in self.sites.values():
            for s in sites:
                if s.cls == "static":
                    static_names.add(s.fn)
                else:
                    tainted.add(s.fn)
        static_names -= tainted

        tags: set[str] = set()
        for n in static_names:
            tags.add(f"kernel:{n}")
            if n not in _PRIM_ONLY:
                tags.add(f"prim:{n}")
        for name, ok in self.ret_valid.items():
            if ok:
                tags.add(f"call:{name}")
        # a user call at depth >= 1 compiles to a VM Prim over the base
        # name; its post-Prim re-check duplicates the resolved extension's
        # call boundary
        for name, ok in self.ret_valid.items():
            base = name[:-2] if name.endswith("^1") else None
            if base is not None and ok and self.ret_valid.get(base, True):
                tags.add(f"prim:{base}")
        return frozenset(tags)


def analyze_shapes(tp: "TransformedProgram") -> ShapeAnalysis:
    """Analyze a transformed program (memoized on the program object)."""
    cached = getattr(tp, "_shape_analysis", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    from repro.obs import runtime as _obs
    with _obs.span("analyze:shapes"):
        out = _Analyzer(tp).run()
    tp._shape_analysis = out  # type: ignore[attr-defined]
    return out
