"""VCODE lint: register discipline, control flow, and dead results.

The VCODE compiler linearizes transformed bodies into register code
(:mod:`repro.vcode.instructions`); this lint re-checks the properties
the VM silently assumes, per compiled function:

Hard errors (raise :class:`~repro.errors.AnalysisError` from
:func:`check_program`, stage ``vlint:<function>``):

* **use before definition** — a register read on some path before any
  instruction defines it (a forward *must*-dataflow over the CFG);
* **bad jump target / duplicate label** — control flow into nowhere;
* **fall-through off the end** — a path that never reaches ``Ret``;
* **call arity** — a ``Call`` whose argument count disagrees with the
  target function's parameters, or targets an unknown function;
* **prim arity** — a ``Prim`` whose ``args`` and ``arg_depths`` lengths
  disagree (the depth annotations drive the T1 machinery);
* **scalar at vector depth** — a register holding only literal
  constants consumed at argument depth >= 1 (the eliminator lifts
  depth-0 values via ``__rep``; a bare literal here means the depth
  bookkeeping broke);
* **register out of range** — an operand outside ``nregs``.

Warnings (collected, never raised):

* **dead vector result** — a ``Prim``/``Call``/``CallInd`` destination
  no instruction ever reads (pure, so safe — but wasted vector work);
* **unreferenced label** — a label no jump targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AnalysisError
from repro.vcode.instructions import (
    Call, CallInd, Const, Copy, FunConst, Instr, Jump, JumpIfNot, Label,
    Prim, Ret, VFunction, VProgram,
)

__all__ = ["Finding", "LintResult", "lint_function", "lint_program",
           "check_program"]


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a function and an instruction."""

    function: str
    code: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.function}: {self.detail}"


@dataclass
class LintResult:
    """All findings over a function or program."""

    errors: list[Finding] = field(default_factory=list)
    warnings: list[Finding] = field(default_factory=list)

    def extend(self, other: "LintResult") -> None:
        self.errors.extend(other.errors)
        self.warnings.extend(other.warnings)


def _defs_uses(i: Instr) -> tuple[Optional[int], list[int]]:
    """(defined register, used registers) of one instruction."""
    if isinstance(i, (Const, FunConst)):
        return i.dst, []
    if isinstance(i, Copy):
        return i.dst, [i.src]
    if isinstance(i, Prim):
        return i.dst, list(i.args)
    if isinstance(i, Call):
        return i.dst, list(i.args)
    if isinstance(i, CallInd):
        return i.dst, [i.fun, *i.args]
    if isinstance(i, JumpIfNot):
        return None, [i.cond]
    if isinstance(i, Ret):
        return None, [i.src]
    return None, []  # Jump, Label


def lint_function(f: VFunction,
                  program: Optional[VProgram] = None) -> LintResult:
    """Lint one compiled function (``program`` enables call-arity checks)."""
    out = LintResult()

    def err(code: str, detail: str) -> None:
        out.errors.append(Finding(f.name, code, detail))

    def warn(code: str, detail: str) -> None:
        out.warnings.append(Finding(f.name, code, detail))

    instrs = f.instrs
    n = len(instrs)

    # labels and jump targets
    labels: dict[str, int] = {}
    for pc, i in enumerate(instrs):
        if isinstance(i, Label):
            if i.name in labels:
                err("duplicate-label", f"label {i.name} defined twice")
            labels[i.name] = pc
    targeted: set[str] = set()
    for i in instrs:
        if isinstance(i, (Jump, JumpIfNot)):
            targeted.add(i.label)
            if i.label not in labels:
                err("bad-jump", f"jump to undefined label {i.label}")
    for name in labels:
        if name not in targeted:
            warn("unreferenced-label", f"label {name} is never targeted")
    if out.errors:
        return out  # CFG construction needs sane targets

    # register-range + structural arity
    for i in instrs:
        d, uses = _defs_uses(i)
        for r in ([d] if d is not None else []) + uses:
            if not (0 <= r < f.nregs):
                err("register-range",
                    f"r{r} outside the declared {f.nregs} registers in "
                    f"`{i}`")
        if isinstance(i, Prim) and len(i.args) != len(i.arg_depths):
            err("prim-arity",
                f"`{i}` has {len(i.args)} args but {len(i.arg_depths)} "
                "argument depths")
        if isinstance(i, CallInd) and len(i.args) != len(i.arg_depths):
            err("prim-arity",
                f"`{i}` has {len(i.args)} args but {len(i.arg_depths)} "
                "argument depths")
        if isinstance(i, Call) and program is not None:
            if i.fname not in program:
                err("unknown-callee", f"`{i}` targets unknown function")
            elif len(i.args) != len(program[i.fname].params):
                err("call-arity",
                    f"`{i}` passes {len(i.args)} args; "
                    f"{i.fname} takes {len(program[i.fname].params)}")
    if out.errors:
        return out

    # basic blocks
    leaders = {0} | {labels[name] for name in labels}
    for pc, i in enumerate(instrs):
        if isinstance(i, (Jump, JumpIfNot, Ret)) and pc + 1 < n:
            leaders.add(pc + 1)
    starts = sorted(leaders)
    blocks: list[tuple[int, int]] = []
    for k, s in enumerate(starts):
        e = starts[k + 1] if k + 1 < len(starts) else n
        blocks.append((s, e))
    block_of = {s: k for k, (s, _e) in enumerate(blocks)}
    succs: list[list[int]] = []
    for s, e in blocks:
        last = instrs[e - 1] if e > s else None
        if isinstance(last, Ret):
            succs.append([])
        elif isinstance(last, Jump):
            succs.append([block_of[labels[last.label]]])
        elif isinstance(last, JumpIfNot):
            nxt = [block_of[labels[last.label]]]
            if e < n:
                nxt.append(block_of[e])
            else:
                err("missing-ret", "conditional fall-through off the end")
            succs.append(nxt)
        else:
            if e < n:
                succs.append([block_of[e]])
            else:
                err("missing-ret", "control falls off the end without Ret")
                succs.append([])
    if not instrs:
        err("missing-ret", "empty function body")

    # forward must-analysis: registers defined on every path in
    preds: list[list[int]] = [[] for _ in blocks]
    for b, ss in enumerate(succs):
        for s in ss:
            preds[s].append(b)
    entry_mask = 0
    for p in f.params:
        entry_mask |= 1 << p
    gen: list[int] = []
    for s, e in blocks:
        m = 0
        for i in instrs[s:e]:
            d, _u = _defs_uses(i)
            if d is not None:
                m |= 1 << d
        gen.append(m)
    all_mask = (1 << f.nregs) - 1 if f.nregs else 0
    inb = [all_mask] * len(blocks)
    inb[0] = entry_mask
    changed = True
    while changed:
        changed = False
        for b in range(len(blocks)):
            m = entry_mask if b == 0 else all_mask
            for p in preds[b]:
                m &= inb[p] | gen[p]
            if b == 0:
                m = entry_mask
            if m != inb[b]:
                inb[b] = m
                changed = True
    for b, (s, e) in enumerate(blocks):
        have = inb[b]
        for i in instrs[s:e]:
            d, uses = _defs_uses(i)
            for r in uses:
                if not (have >> r) & 1:
                    err("undefined-use",
                        f"r{r} used by `{i}` before any definition")
            if d is not None:
                have |= 1 << d

    # literal registers consumed at vector depth
    literal = set()
    for i in instrs:
        if isinstance(i, Const):
            literal.add(i.dst)
    for i in instrs:
        d, _u = _defs_uses(i)
        if d in literal and not isinstance(i, Const):
            literal.discard(d)
    for i in instrs:
        if isinstance(i, Prim):
            for r, ad in zip(i.args, i.arg_depths):
                if r in literal and ad >= 1:
                    err("scalar-at-vector-depth",
                        f"literal r{r} consumed at depth {ad} by `{i}`")

    # dead vector results
    used: set[int] = set()
    for i in instrs:
        _d, uses = _defs_uses(i)
        used.update(uses)
    for i in instrs:
        if isinstance(i, (Prim, Call, CallInd)) and i.dst not in used:
            warn("dead-result", f"result of `{i}` is never used")

    return out


def lint_program(vp: VProgram) -> LintResult:
    """Lint every function of a compiled program."""
    out = LintResult()
    for f in vp.functions.values():
        out.extend(lint_function(f, vp))
    return out


def check_program(vp: VProgram) -> LintResult:
    """Lint and raise :class:`AnalysisError` on the first hard error."""
    res = lint_program(vp)
    if res.errors:
        first = res.errors[0]
        raise AnalysisError(f"vlint:{first.function}",
                            f"[{first.code}] {first.detail}"
                            + (f" (+{len(res.errors) - 1} more)"
                               if len(res.errors) > 1 else ""))
    return res
