"""Profile reports: the frozen, serializable result of a profiled run.

The JSON schema (``SCHEMA_VERSION`` 1, documented with field-by-field
semantics in docs/OBSERVABILITY.md)::

    {
      "version": 1,
      "meta":     {"entry": ..., "backend": ..., ...},      # free-form strings
      "spans":    [{"name", "depth", "start_us", "duration_us"}, ...],
      "counters": [{"layer", "op", "calls", "elements",
                    "bytes_moved", "max_frame_len"}, ...],
      "totals":   {"vector_ops", "elements", "bytes_moved"}  # kernel layer
    }

:func:`validate_profile` checks a decoded document against this schema and
is used both by the test suite and by downstream consumers of
``profile.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.obs.counters import Counter, SpanRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.counters import Profiler

SCHEMA_VERSION = 1

#: Order in which counter layers are rendered and serialized.
LAYERS = ("kernel", "segment", "vm")

_LAYER_TITLES = {
    "kernel": "vector-model kernels (depth-1 ops)",
    "segment": "segmented CVL kernels (flat layer)",
    "vm": "VCODE VM (instructions and charged op widths)",
}


@dataclass
class ProfileReport:
    """Spans + counters of one profiled run, with table and JSON views."""

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    counters: list[Counter] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_profiler(cls, profiler: "Profiler",
                      meta: Optional[dict] = None) -> "ProfileReport":
        spans = sorted(profiler.spans, key=lambda s: s.start)
        counters = [c for layer in LAYERS
                    for c in profiler.layer_counters(layer)]
        return cls(meta=dict(meta or {}), spans=spans, counters=counters)

    # -- aggregate views ----------------------------------------------------

    def layer(self, layer: str) -> list[Counter]:
        return [c for c in self.counters if c.layer == layer]

    def counter(self, op: str, layer: str = "kernel") -> Optional[Counter]:
        for c in self.counters:
            if c.layer == layer and c.op == op:
                return c
        return None

    def total_calls(self, layer: str = "kernel") -> int:
        return sum(c.calls for c in self.layer(layer))

    def total_elements(self, layer: str = "kernel") -> int:
        return sum(c.elements for c in self.layer(layer))

    def total_bytes(self, layer: str = "kernel") -> int:
        return sum(c.bytes_moved for c in self.layer(layer))

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SCHEMA_VERSION,
            "meta": {k: str(v) for k, v in self.meta.items()},
            "spans": [s.to_dict() for s in self.spans],
            "counters": [c.to_dict() for c in self.counters],
            "totals": {
                "vector_ops": self.total_calls("kernel"),
                "elements": self.total_elements("kernel"),
                "bytes_moved": self.total_bytes("kernel"),
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    # -- rendering ----------------------------------------------------------

    def table(self) -> str:
        """Human-readable report: the phase span tree, then one counter
        table per layer, then kernel-layer totals."""
        out: list[str] = []
        if self.meta:
            pairs = "  ".join(f"{k}={v}" for k, v in self.meta.items())
            out.append(f"profile: {pairs}")
        if self.spans:
            out.append("phases:")
            for s in self.spans:
                pad = "  " * (s.depth + 1)
                out.append(f"{pad}{s.name:<{max(2, 34 - 2 * s.depth)}}"
                           f"{s.duration * 1e3:10.3f} ms")
        for layer in LAYERS:
            cells = self.layer(layer)
            if not cells:
                continue
            out.append(f"{_LAYER_TITLES[layer]}:")
            out.append(f"  {'op':<24}{'calls':>8}{'elements':>12}"
                       f"{'bytes':>14}{'max-frame':>11}")
            for c in cells:
                out.append(f"  {c.op:<24}{c.calls:>8}{c.elements:>12}"
                           f"{c.bytes_moved:>14}{c.max_frame_len:>11}")
        out.append(f"totals: {self.total_calls('kernel')} vector ops, "
                   f"{self.total_elements('kernel')} elements, "
                   f"{self.total_bytes('kernel')} bytes moved")
        return "\n".join(out)


def validate_profile(doc: Any) -> list[str]:
    """Check a decoded ``profile.json`` document against the schema;
    returns a list of problems (empty = valid)."""
    errs: list[str] = []

    def expect(cond: bool, msg: str) -> None:
        if not cond:
            errs.append(msg)

    expect(isinstance(doc, dict), "document is not an object")
    if not isinstance(doc, dict):
        return errs
    expect(doc.get("version") == SCHEMA_VERSION,
           f"version != {SCHEMA_VERSION}")
    expect(isinstance(doc.get("meta"), dict), "meta is not an object")
    if isinstance(doc.get("meta"), dict):
        for k, v in doc["meta"].items():
            expect(isinstance(k, str) and isinstance(v, str),
                   f"meta entry {k!r} is not string->string")
    expect(isinstance(doc.get("spans"), list), "spans is not an array")
    for i, s in enumerate(doc.get("spans") or []):
        for key, typ in (("name", str), ("depth", int),
                         ("start_us", (int, float)),
                         ("duration_us", (int, float))):
            expect(isinstance(s, dict) and isinstance(s.get(key), typ),
                   f"spans[{i}].{key} missing or mistyped")
    expect(isinstance(doc.get("counters"), list), "counters is not an array")
    for i, c in enumerate(doc.get("counters") or []):
        for key, typ in (("layer", str), ("op", str), ("calls", int),
                         ("elements", int), ("bytes_moved", int),
                         ("max_frame_len", int)):
            expect(isinstance(c, dict) and isinstance(c.get(key), typ),
                   f"counters[{i}].{key} missing or mistyped")
        if isinstance(c, dict) and isinstance(c.get("layer"), str):
            expect(c["layer"] in LAYERS, f"counters[{i}].layer unknown")
    totals = doc.get("totals")
    expect(isinstance(totals, dict), "totals is not an object")
    if isinstance(totals, dict):
        for key in ("vector_ops", "elements", "bytes_moved"):
            expect(isinstance(totals.get(key), int),
                   f"totals.{key} missing or mistyped")
        if not errs and isinstance(doc.get("counters"), list):
            kernel = [c for c in doc["counters"] if c.get("layer") == "kernel"]
            expect(totals["vector_ops"] == sum(c["calls"] for c in kernel),
                   "totals.vector_ops != sum of kernel calls")
    return errs
