"""Process-wide profiling switch and the zero-overhead instrumentation
contract.

Every instrumented hot path in the package follows the same two-step
pattern::

    from repro.obs import runtime as _obs
    ...
    p = _obs.PROFILER
    if p is not None:
        p.count("kernel", name, n, elements, nbytes)

When profiling is off (the default) the cost of an instrumentation site is
one module-attribute load and one ``is None`` test — no allocation, no
callable indirection, no string formatting.  Sizes and byte counts are only
computed *inside* the guarded branch.

Activation is scoped, not global state mutation by callers::

    from repro.obs import profiling

    with profiling() as prof:
        prog.run("main", [64])
    report = prof.report(entry="main")

``profiling`` saves and restores the previously active profiler, so scopes
nest (the innermost profiler observes the work).  The switch is
process-wide, not thread-local: profile one pipeline run at a time.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.counters import Profiler

#: The active profiler, or None when profiling is off.  Instrumented code
#: reads this exactly once per observation site.
PROFILER: Optional["Profiler"] = None


class _NullSpan:
    """Reusable no-op context manager handed out while profiling is off.

    A single shared instance (:data:`NULL_SPAN`) is returned by
    :func:`span`, so the disabled path allocates nothing — tests assert
    identity with ``span("x") is NULL_SPAN``.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


def current() -> Optional["Profiler"]:
    """The active profiler, or None."""
    return PROFILER


def span(name: str):
    """Context manager recording ``name`` as a phase span on the active
    profiler; the shared :data:`NULL_SPAN` no-op when profiling is off."""
    p = PROFILER
    if p is None:
        return NULL_SPAN
    return p.span(name)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form of :func:`span` — wraps every call of the function in
    a phase span named ``name`` (default: the function's qualname).  Works
    both bare (``@traced``) and called (``@traced("phase-name")``).

    The disabled path adds one attribute load and one ``is None`` test per
    call, then tail-calls the wrapped function directly.
    """
    if callable(name):  # bare @traced
        fn, name = name, None
        return traced()(fn)

    def deco(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            p = PROFILER
            if p is None:
                return fn(*args, **kwargs)
            with p.span(label):
                return fn(*args, **kwargs)
        return wrapper
    return deco


@contextmanager
def profiling(profiler: Optional["Profiler"] = None) -> Iterator["Profiler"]:
    """Activate ``profiler`` (a fresh :class:`Profiler` if omitted) for the
    dynamic extent of the block, restoring the previous one afterwards."""
    global PROFILER
    if profiler is None:
        from repro.obs.counters import Profiler
        profiler = Profiler()
    prev = PROFILER
    PROFILER = profiler
    try:
        yield profiler
    finally:
        PROFILER = prev
