"""The profiler: per-kernel counters and phase spans.

A :class:`Profiler` accumulates two kinds of observations while active
(see :mod:`repro.obs.runtime` for activation):

* **counters** — one :class:`Counter` cell per ``(layer, op)`` pair,
  accumulated by :meth:`Profiler.count`.  Layers tag which part of the
  system made the observation (see docs/OBSERVABILITY.md for the exact
  semantics of every field):

  - ``"kernel"``  — depth-1 vector-model kernels (:mod:`repro.vector.ops`);
  - ``"segment"`` — flat segmented CVL-substitute kernels
    (:mod:`repro.vector.segments`), the layer *underneath* the kernels;
  - ``"vm"``      — VCODE VM instruction executions and the op widths
    charged to the machine model (:mod:`repro.vcode.vm`);
  - ``"native"``  — C kernel executions of the native backend
    (:mod:`repro.native.engine`);
  - ``"parallel"`` — multicore dispatches of the parallel backend
    (:mod:`repro.parallel.engine`): per-op counts plus ``chunks``,
    ``imbalance_x1000`` and ``barrier_wait`` health counters
    (docs/PARALLEL.md).

  Layers overlap by design: one ``seq_index`` kernel call typically
  performs several ``segment`` observations on its behalf.  Sum within a
  layer, never across layers.

* **spans** — wall-clock phase intervals (parse, typecheck, eliminate,
  fuse, execute, ...) recorded by ``with profiler.span(name): ...``,
  nested by a depth counter.

The profiler itself never imports the pipeline; instrumentation sites
compute their own element/byte figures and push plain integers here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Counter", "SpanRecord", "Profiler"]


@dataclass
class Counter:
    """Accumulated statistics for one operation within one layer.

    ``calls`` invocations moved ``elements`` leaf elements (inputs read
    plus outputs written) and ``bytes_moved`` bytes (value *and* descriptor
    storage); ``max_frame_len`` is the largest top frame length seen.
    """

    layer: str
    op: str
    calls: int = 0
    elements: int = 0
    bytes_moved: int = 0
    max_frame_len: int = 0

    def to_dict(self) -> dict:
        return {"layer": self.layer, "op": self.op, "calls": self.calls,
                "elements": self.elements, "bytes_moved": self.bytes_moved,
                "max_frame_len": self.max_frame_len}


@dataclass
class SpanRecord:
    """One completed phase span; times are seconds since the profiler was
    created (``perf_counter`` based), ``depth`` the nesting level."""

    name: str
    start: float
    end: float
    depth: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {"name": self.name, "depth": self.depth,
                "start_us": round(self.start * 1e6, 1),
                "duration_us": round(self.duration * 1e6, 1)}


class _SpanCtx:
    """Context manager recording one span on a profiler."""

    __slots__ = ("_p", "_name", "_start", "_depth")

    def __init__(self, profiler: "Profiler", name: str):
        self._p = profiler
        self._name = name

    def __enter__(self) -> "_SpanCtx":
        self._depth = self._p._span_depth
        self._p._span_depth += 1
        self._start = time.perf_counter() - self._p._t0
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter() - self._p._t0
        self._p._span_depth -= 1
        self._p.spans.append(
            SpanRecord(self._name, self._start, end, self._depth))
        return False


class Profiler:
    """Collects counters and spans; build one, activate it with
    :func:`repro.obs.profiling`, then ask for a
    :class:`~repro.obs.report.ProfileReport`."""

    def __init__(self) -> None:
        self.counters: dict[tuple[str, str], Counter] = {}
        self.spans: list[SpanRecord] = []
        self._span_depth = 0
        self._t0 = time.perf_counter()

    # -- observation --------------------------------------------------------

    def count(self, layer: str, op: str, frame_len: int = 0,
              elements: int = 0, nbytes: int = 0) -> None:
        """Record one invocation of ``op`` within ``layer``."""
        cell = self.counters.get((layer, op))
        if cell is None:
            cell = self.counters[(layer, op)] = Counter(layer, op)
        cell.calls += 1
        cell.elements += elements
        cell.bytes_moved += nbytes
        if frame_len > cell.max_frame_len:
            cell.max_frame_len = frame_len

    def span(self, name: str) -> _SpanCtx:
        """Context manager timing one phase span."""
        return _SpanCtx(self, name)

    # -- aggregation --------------------------------------------------------

    def layer_counters(self, layer: str) -> list[Counter]:
        """This layer's counters, heaviest (by elements, then calls) first."""
        cells = [c for (lay, _op), c in self.counters.items() if lay == layer]
        return sorted(cells, key=lambda c: (-c.elements, -c.calls, c.op))

    def total(self, layer: str, field_name: str) -> int:
        return sum(getattr(c, field_name) for c in self.layer_counters(layer))

    def report(self, **meta) -> "ProfileReport":
        """Freeze the collected data into a :class:`ProfileReport`;
        keyword arguments become the report's ``meta`` mapping."""
        from repro.obs.report import ProfileReport
        return ProfileReport.from_profiler(self, meta)
