"""repro.obs — pipeline-wide observability: phase spans, per-kernel
counters, and profile reports.

Quick use::

    from repro import compile_program
    from repro.obs import profiling

    with profiling() as prof:
        compile_program("fun main(n) = [i <- [1..n]: i*i]").run("main", [64])
    report = prof.report(entry="main")
    print(report.table())
    report.save("profile.json")

Or, one level up, :meth:`repro.CompiledProgram.profile` and the
``repro profile`` CLI subcommand.  The span model, the exact semantics of
every counter field, and the ``profile.json`` schema are documented in
docs/OBSERVABILITY.md; the zero-overhead-when-off contract lives in
:mod:`repro.obs.runtime`.
"""

from repro.obs.counters import Counter, Profiler, SpanRecord
from repro.obs.report import (
    LAYERS, SCHEMA_VERSION, ProfileReport, validate_profile,
)
from repro.obs.runtime import current, profiling, span, traced

__all__ = ["Profiler", "Counter", "SpanRecord", "ProfileReport",
           "profiling", "span", "traced", "current",
           "validate_profile", "SCHEMA_VERSION", "LAYERS"]
