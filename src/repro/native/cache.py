"""Disk-backed artifact cache for compiled native kernels.

Keyed like the serve-layer :class:`~repro.serve.cache.CompileCache`, but the
value is a shared object on disk instead of a program in memory:

* **key** = SHA-256 of ``ABI version + toolchain id + compile flags + C
  source``.  Any change to the calling convention (``ABI_VERSION`` bump),
  the compiler (path or reported version), the flags (``-fwrapv`` is
  load-bearing for bit-identity), or the generated source produces a new
  key, so stale artifacts are never loaded — they are simply ignored and
  age out.
* **layout** — one directory (``$REPRO_NATIVE_CACHE`` or
  ``~/.cache/repro-native``) holding ``<key>.c`` (the exact source, kept
  for inspection and CI artifacts) and ``<key>.so``.
* **hits never recompile** — a hit is a single ``dlopen`` of the cached
  ``.so`` (the loader maps it copy-on-write; pages are shared across
  processes).
* **thundering herd** — concurrent misses on one key compile once: the
  first caller becomes the owner, the rest wait on an event and receive
  the owner's kernel (or its error).  Failures are delivered to waiters
  but never cached, so a transient failure is retried by the next caller.
* **corruption** — a ``.so`` that fails to load (truncated file from a
  crashed writer, wrong architecture) is evicted and recompiled once;
  only a second consecutive failure raises :class:`NativeCompileError`.

Writes are atomic (compile to a per-process temp name in the cache
directory, then ``os.replace``), so a torn ``.so`` is impossible; a
``<key>.lock`` file extends the thundering-herd dedup **across
processes**: one process owns the compile while others wait for the
artifact.  The lock is advisory and crash-safe — a lock whose owner pid
is dead, or older than ``$REPRO_NATIVE_LOCK_TIMEOUT`` (default 120 s),
is *stale* and taken over, so an owner SIGKILLed mid-compile can never
deadlock its waiters (regression-tested by
``tests/native/test_lockfile.py``).  Takeover races at worst duplicate a
compile; the atomic ``os.replace`` keeps that harmless.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional

from ..errors import NativeCompileError
from . import toolchain

__all__ = ["ABI_VERSION", "Kernel", "KernelCache", "default_cache_dir"]

#: Bumped whenever the generated ``run`` signature or calling convention
#: changes; invalidates every cached artifact at once.
ABI_VERSION = 1

#: Flags matter for bit-identity: ``-fwrapv`` makes signed ``long long``
#: overflow wrap like NumPy's int64 instead of being undefined.
CFLAGS = ["-O2", "-shared", "-fPIC", "-fwrapv"]

#: How often a waiter re-checks the owner's lock and artifact.
LOCK_POLL_S = 0.05


def _lock_timeout_s() -> float:
    """Age past which a compile lock is stale even if its owner pid is
    alive (a wedged compiler); ``$REPRO_NATIVE_LOCK_TIMEOUT`` overrides
    the 120 s default (tests set it very low)."""
    try:
        return float(os.environ.get("REPRO_NATIVE_LOCK_TIMEOUT", "120"))
    except ValueError:
        return 120.0


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def source_key(source: str, toolchain_id: Optional[str] = None,
               extra_flags: tuple = ()) -> str:
    """Cache key for one kernel: content hash of ABI + toolchain + flags
    + source.  ``extra_flags`` (e.g. ``-fopenmp`` for the parallel
    backend's OpenMP kernels) join the flag section of the key, so a
    threaded build never aliases a serial one."""
    if toolchain_id is None:
        toolchain_id = toolchain.toolchain_id()
    h = hashlib.sha256()
    h.update(f"abi{ABI_VERSION}\0{toolchain_id}\0"
             f"{' '.join([*CFLAGS, *extra_flags])}\0".encode())
    h.update(source.encode())
    return h.hexdigest()


@dataclass
class Kernel:
    """A loaded native kernel: the ctypes ``run`` symbol plus provenance."""

    run: Callable
    key: str
    c_path: Path
    so_path: Path
    lib: ctypes.CDLL = field(repr=False, default=None)  # keep the handle alive


class _Entry:
    """In-flight or finished compile slot (same protocol as the serve
    CompileCache): the owner compiles and sets ``done``; waiters block on
    it and read ``kernel`` or re-raise ``error``."""

    __slots__ = ("done", "kernel", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.kernel: Optional[Kernel] = None
        self.error: Optional[BaseException] = None


class KernelCache:
    """Two-level kernel cache: loaded ``Kernel`` objects in memory, compiled
    ``.so`` artifacts on disk."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self.hits = 0          # in-memory or on-disk artifact reused
        self.misses = 0        # key never seen: compile required
        self.compiles = 0      # cc actually invoked
        self.evictions = 0     # corrupted .so removed from disk
        self.lock_waits = 0    # deferred to another process's compile
        self.takeovers = 0     # stale locks broken (dead or wedged owner)

    # -- public -----------------------------------------------------------

    def get(self, source: str, argtypes, restype=None,
            extra_flags: tuple = ()) -> Kernel:
        """The compiled kernel for ``source`` (compiling at most once per
        key across all threads).  ``argtypes`` is the ctypes signature to
        install on the ``run`` symbol; ``extra_flags`` extend ``CFLAGS``
        for this kernel and are part of its cache key."""
        key = source_key(source, extra_flags=extra_flags)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.done.is_set() and entry.kernel is not None:
                    self.hits += 1
                    return entry.kernel
                if not entry.done.is_set():
                    owner = False
                else:  # previous attempt failed: this caller retries
                    entry = _Entry()
                    self._entries[key] = entry
                    owner = True
            else:
                entry = _Entry()
                self._entries[key] = entry
                owner = True
            if owner:
                self.misses += 1
        if not owner:
            entry.done.wait()
            if entry.error is not None:
                raise entry.error
            self.hits += 1
            return entry.kernel
        try:
            kernel = self._build(key, source, argtypes, restype, extra_flags)
        except BaseException as exc:
            entry.error = exc
            entry.done.set()
            raise
        entry.kernel = kernel
        entry.done.set()
        return kernel

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "compiles": self.compiles, "evictions": self.evictions,
                    "lock_waits": self.lock_waits,
                    "takeovers": self.takeovers,
                    "loaded": sum(1 for e in self._entries.values()
                                  if e.kernel is not None),
                    "directory": str(self.directory)}

    # -- internals --------------------------------------------------------

    def _build(self, key: str, source: str, argtypes, restype,
               extra_flags: tuple = ()) -> Kernel:
        c_path = self.directory / f"{key}.c"
        so_path = self.directory / f"{key}.so"
        if so_path.exists():
            try:
                return self._load(key, c_path, so_path, argtypes, restype)
            except OSError:
                # corrupted / stale artifact: evict, recompile below
                with self._lock:
                    self.evictions += 1
                try:
                    os.remove(so_path)
                except OSError:
                    pass
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise NativeCompileError("cache", f"{self.directory}: {exc}") \
                from exc
        lock_path = self.directory / f"{key}.lock"
        while True:
            if self._acquire_lock(lock_path):
                try:
                    # a concurrent owner may have produced the artifact
                    # while this process queued for the lock
                    if not so_path.exists():
                        self._compile(key, source, c_path, so_path,
                                      extra_flags)
                finally:
                    self._release_lock(lock_path)
                break
            with self._lock:
                self.lock_waits += 1
            self._await_owner(lock_path, so_path)
            if so_path.exists():
                break
            # the owner released (or died) without an artifact — its
            # compile failed; compete for the lock and retry ourselves
        try:
            return self._load(key, c_path, so_path, argtypes, restype)
        except OSError as exc:
            raise NativeCompileError("load", f"{so_path}: {exc}") from exc

    # -- cross-process compile lock ---------------------------------------

    def _acquire_lock(self, lock_path: Path) -> bool:
        """Try to become the compile owner for a key: atomically create
        ``<key>.lock`` holding this pid.  A *stale* existing lock — owner
        pid dead, or older than the lock timeout — is broken and the
        acquisition retried, so a SIGKILLed owner never deadlocks the
        cache.  (Two breakers can race; the loser of the re-create race
        simply waits, and at very worst a compile is duplicated — the
        atomic ``os.replace`` makes that harmless.)"""
        for _ in range(2):
            try:
                fd = os.open(lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if not self._lock_stale(lock_path):
                    return False
                with self._lock:
                    self.takeovers += 1
                try:
                    os.remove(lock_path)
                except OSError:
                    pass
                continue
            except OSError:
                return False                 # unwritable dir: just compile
            try:
                os.write(fd, str(os.getpid()).encode())
            finally:
                os.close(fd)
            return True
        return False

    @staticmethod
    def _release_lock(lock_path: Path) -> None:
        try:
            os.remove(lock_path)
        except OSError:
            pass

    @staticmethod
    def _lock_stale(lock_path: Path) -> bool:
        """Is the lock abandoned?  Yes when its recorded owner pid no
        longer exists, or when the lock outlived the takeover timeout
        (a wedged owner that is alive but will never finish)."""
        try:
            raw = lock_path.read_text().strip()
        except OSError:
            return False                     # vanished: owner released it
        if raw.isdigit():
            pid = int(raw)
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True                  # owner is dead
            except (PermissionError, OSError):
                pass                         # alive (not ours to signal)
        try:
            age = time.time() - lock_path.stat().st_mtime
        except OSError:
            return False
        return age > _lock_timeout_s()

    def _await_owner(self, lock_path: Path, so_path: Path) -> None:
        """Waiter side: block until the owning process releases the lock,
        the artifact appears, or the lock goes stale (the caller then
        re-competes for ownership)."""
        while True:
            if so_path.exists() or not lock_path.exists():
                return
            if self._lock_stale(lock_path):
                return
            time.sleep(LOCK_POLL_S)

    def _compile(self, key: str, source: str, c_path: Path,
                 so_path: Path, extra_flags: tuple = ()) -> None:
        cc = toolchain.find_cc()
        if cc is None:
            raise NativeCompileError("compile", "no C toolchain available")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise NativeCompileError("cache", f"{self.directory}: {exc}") \
                from exc
        tmp_c = self.directory / f".{key}.{os.getpid()}.c"
        tmp_so = self.directory / f".{key}.{os.getpid()}.so"
        try:
            tmp_c.write_text(source)
            proc = subprocess.run(
                [cc, *CFLAGS, *extra_flags, "-o", str(tmp_so), str(tmp_c),
                 "-lm"],
                capture_output=True, text=True, timeout=120)
            if proc.returncode != 0:
                raise NativeCompileError(
                    "compile",
                    f"{cc} exited {proc.returncode}:\n{proc.stderr.strip()}")
            with self._lock:
                self.compiles += 1
            os.replace(tmp_so, so_path)      # atomic: never a torn .so
            os.replace(tmp_c, c_path)
        except OSError as exc:
            raise NativeCompileError("compile", str(exc)) from exc
        except subprocess.TimeoutExpired as exc:
            raise NativeCompileError("compile", f"{cc} timed out") from exc
        finally:
            for tmp in (tmp_c, tmp_so):
                try:
                    if tmp.exists():
                        os.remove(tmp)
                except OSError:
                    pass

    def _load(self, key: str, c_path: Path, so_path: Path,
              argtypes, restype) -> Kernel:
        lib = ctypes.CDLL(str(so_path))    # dlopen: the .so is mmap'd
        try:
            fn = lib.run
        except AttributeError as exc:
            raise OSError(f"symbol 'run' missing from {so_path}") from exc
        fn.argtypes = list(argtypes)
        fn.restype = restype
        return Kernel(run=fn, key=key, c_path=c_path, so_path=so_path,
                      lib=lib)
