"""Runtime bridge between the vector :class:`~repro.vexec.apply.Applier`
and compiled C kernels.

The engine is strictly an *accelerator*: every public method either returns
a result **bit-identical** to the NumPy applier's, or returns ``None`` to
make the caller fall through to NumPy (unsupported kind, deep frame,
missing toolchain).  The differential fuzzer runs the native backend
against the other three to enforce this contract.

Fused elementwise trees are specialized per *(tree, leaf kinds, hoist
mask)*: an operand that arrives as a depth-0 scalar is compiled into the
kernel as a scalar parameter — the loop-invariant hoist the NumPy path
cannot do (it must materialize an ``n``-element replica).  Segmented
reductions and scans are specialized per *(op, kind)*.

Executions are profiled into the ``native`` obs layer with the same
element/byte accounting the NumPy kernels use for the ``kernel`` layer, so
``repro profile`` shows per-kernel native-vs-numpy counts side by side.
The guard's ``after_kernel`` hook fires exactly as it would for the NumPy
kernel (same stage names, same budget charges).
"""

from __future__ import annotations

import ctypes
import threading
from typing import Optional

import numpy as np

from ..guard import runtime as _guard
from ..obs import runtime as _obs
from ..vector.nested import NestedVector
from ..vector.segments import INT_DTYPE, seg_starts
from ..errors import EvalError, VectorError
from . import toolchain
from .cache import Kernel, KernelCache
from .codegen import (
    CTYPES, SEGMENTED_OPS, emit_fused_source, emit_gather_source,
    emit_segmented_source, tree_kind,
)

__all__ = ["NativeEngine", "get_engine", "reset_engine"]

_DTYPES = {"int": np.int64, "bool": np.bool_, "float": np.float64}
_SCALAR_CTYPES = {"int": ctypes.c_longlong, "bool": ctypes.c_ubyte,
                  "float": ctypes.c_double}

#: what is empty-reduced: shares the NumPy kernels' error message
_STRICT_REDUCE = {"maxval", "minval"}
_REDUCTIONS = {"sum", "maxval", "minval", "anytrue", "alltrue"}


def _strip_rep(tree):
    """Drop ``__rep`` wrappers (the witness child is frame shape only; the
    kernel never reads it)."""
    if tree[0] == "arg":
        return tree
    _tag, name, children = tree
    if name == "__rep":
        return _strip_rep(children[1])
    return ("prim", name, tuple(_strip_rep(c) for c in children))


def _scalar_kind(v) -> Optional[str]:
    """Kind of a hoistable depth-0 scalar, or None."""
    if isinstance(v, (bool, np.bool_)):
        return "bool"
    if isinstance(v, (int, np.integer)):
        return "int"
    if isinstance(v, (float, np.floating)):
        return "float"
    return None


def _count_native(op: str, n: int, args: tuple, result) -> None:
    """Profile one native-kernel invocation into the ``native`` layer with
    the same accounting :func:`repro.vector.ops._count_kernel` uses for the
    ``kernel`` layer."""
    p = _obs.PROFILER
    if p is None:
        return
    from ..vector.ops import value_nbytes, value_size
    elems = value_size(result)
    nb = value_nbytes(result)
    for a in args:
        if isinstance(a, NestedVector):
            elems += value_size(a)
            nb += value_nbytes(a)
        else:
            elems += 1
            nb += 8
    p.count("native", op, n, elems, nb)


class NativeEngine:
    """Compiles and runs native kernels for one process (kernels are shared
    across programs — the cache key is the generated source, not the
    program)."""

    #: OpenMP seams, overridden by the parallel backend's engine subclass
    #: (:class:`repro.parallel.engine._OmpNative`): a thread count baked
    #: into emitted kernels, and extra compiler flags (``-fopenmp``) that
    #: also enter the content-address cache key.
    _omp_threads: Optional[int] = None
    _extra_cflags: tuple = ()

    def __init__(self, cache: Optional[KernelCache] = None):
        self.cache = cache if cache is not None else KernelCache()
        self._lock = threading.Lock()
        self._plans: dict = {}    # tree -> (compact tree, used-leaf tuple)
        self._fused: dict = {}    # (tree, kinds, hoisted) -> Kernel
        self._seg: dict = {}      # (op, kind) -> Kernel
        self._gather: dict = {}   # kind -> Kernel

    # -- fused elementwise trees ------------------------------------------

    def apply_fused(self, name: str, tree, flat: list, raw: list,
                    n: int) -> Optional[NestedVector]:
        """Run fused op ``name`` natively, or return None to fall back.

        ``flat[k]`` is the extracted depth-1 frame for full-depth leaf
        ``k`` (None for depth-0 leaves); ``raw[k]`` the original argument.
        Depth-0 scalar leaves are *hoisted* — passed to the kernel as
        scalar parameters, never replicated.
        """
        plan = self._plans.get(tree)
        if plan is None:
            stripped = _strip_rep(tree)
            used = tuple(sorted(_arg_indices(stripped)))
            remap = {k: i for i, k in enumerate(used)}
            plan = (_remap_tree(stripped, remap), used)
            with self._lock:
                self._plans[tree] = plan
        ctree, used = plan
        kinds: list[str] = []
        hoisted: list[bool] = []
        call_args: list = []
        first_vec: Optional[NestedVector] = None
        for k in used:
            v = flat[k]
            if v is None:            # depth-0 operand: hoist if scalar
                kind = _scalar_kind(raw[k])
                if kind is None:
                    return None
                kinds.append(kind)
                hoisted.append(True)
                call_args.append(raw[k])
            else:
                if not isinstance(v, NestedVector) or v.depth != 1 \
                        or v.kind not in CTYPES or v.values.size != n:
                    return None
                kinds.append(v.kind)
                hoisted.append(False)
                call_args.append(v)
                if first_vec is None:
                    first_vec = v
        out_kind = tree_kind(ctree, kinds)
        if out_kind not in CTYPES:
            return None
        kernel = self._fused_kernel(ctree, tuple(kinds), tuple(hoisted),
                                    name)
        if kernel is None:
            return None
        out = np.empty(n, dtype=_DTYPES[out_kind])
        argv: list = [out.ctypes.data, n]
        for kind, h, a in zip(kinds, hoisted, call_args):
            if h:
                py = bool(a) if kind == "bool" else \
                    (float(a) if kind == "float" else int(a))
                argv.append(_SCALAR_CTYPES[kind](py))
            else:
                argv.append(np.ascontiguousarray(a.values).ctypes.data)
        kernel.run(*argv)
        descs = first_vec.descs if first_vec is not None \
            else (np.array([n], dtype=INT_DTYPE),)
        result = NestedVector(descs, out, out_kind)
        if _obs.PROFILER is not None:
            _count_native(name, n, tuple(call_args), result)
        g = _guard.GUARD
        if g is not None:
            g.after_kernel(name, n, result)
        return result

    def _fused_kernel(self, ctree, kinds: tuple, hoisted: tuple,
                      name: str) -> Optional[Kernel]:
        key = (ctree, kinds, hoisted)
        with self._lock:
            if key in self._fused:
                return self._fused[key]
        if not toolchain.available():
            toolchain.warn_unavailable_once()
            return None
        source = emit_fused_source(ctree, kinds, hoisted, name,
                                   omp_threads=self._omp_threads)
        out_kind = tree_kind(ctree, list(kinds))
        argtypes: list = [ctypes.c_void_p, ctypes.c_longlong]
        for kind, h in zip(kinds, hoisted):
            argtypes.append(_SCALAR_CTYPES[kind] if h else ctypes.c_void_p)
        kernel = self.cache.get(source, argtypes,
                                extra_flags=self._extra_cflags)
        assert out_kind in CTYPES
        with self._lock:
            self._fused[key] = kernel
        return kernel

    # -- shared-index gather (section 4.5 fast path) ----------------------

    def apply_shared_index(self, src, idx) -> Optional[NestedVector]:
        """Run ``__seq_index_shared`` over a scalar sequence natively
        (bounds check + 1-origin gather in one pass), or return None."""
        if not isinstance(src, NestedVector) or src.depth != 1 \
                or src.kind not in CTYPES:
            return None
        if not isinstance(idx, NestedVector) or idx.depth != 1 \
                or idx.kind != "int":
            return None
        kernel = self._gather_kernel(src.kind)
        if kernel is None:
            return None
        iv = np.ascontiguousarray(idx.values)
        sv = np.ascontiguousarray(src.values)
        n = int(iv.size)
        out = np.empty(n, dtype=_DTYPES[src.kind])
        bad = kernel.run(out.ctypes.data, sv.ctypes.data, int(sv.size),
                         iv.ctypes.data, n)
        if bad >= 0:
            # identical first-offender report to the NumPy path
            raise EvalError(
                f"seq_index: index {int(iv[bad])} out of range")
        result = NestedVector(idx.descs, out, src.kind)
        if _obs.PROFILER is not None:
            _count_native("seq_index_shared", n, (src, idx), result)
        return result

    def _gather_kernel(self, kind: str) -> Optional[Kernel]:
        with self._lock:
            if kind in self._gather:
                return self._gather[kind]
        if not toolchain.available():
            toolchain.warn_unavailable_once()
            return None
        source = emit_gather_source(kind)
        argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_longlong,
                    ctypes.c_void_p, ctypes.c_longlong]
        kernel = self.cache.get(source, argtypes,
                                restype=ctypes.c_longlong,
                                extra_flags=self._extra_cflags)
        with self._lock:
            self._gather[kind] = kernel
        return kernel

    # -- segmented reductions and scans -----------------------------------

    def apply_segmented(self, name: str, v) -> Optional[NestedVector]:
        """Run segmented primitive ``name`` over a depth-1 frame of scalar
        sequences natively, or return None to fall back."""
        if not isinstance(v, NestedVector) or v.depth != 2:
            return None
        if v.kind not in SEGMENTED_OPS.get(name, ()):
            return None
        kernel = self._seg_kernel(name, v.kind)
        if kernel is None:
            return None
        counts = np.ascontiguousarray(v.descs[1], dtype=INT_DTYPE)
        if name in _STRICT_REDUCE and counts.size \
                and int(counts.min()) == 0:
            # same message, raised before the kernel runs
            raise VectorError(f"{name} of an empty sequence")
        vals = np.ascontiguousarray(v.values)
        out_kind = "bool" if name in ("anytrue", "alltrue") else v.kind
        nseg = int(counts.size)
        if name in _REDUCTIONS:
            out = np.empty(nseg, dtype=_DTYPES[out_kind])
            result_descs = (v.descs[0],)
        else:
            out = np.empty(vals.size, dtype=_DTYPES[out_kind])
            result_descs = v.descs
        if self._omp_threads is None:
            kernel.run(out.ctypes.data, counts.ctypes.data, nseg,
                       vals.ctypes.data)
        else:
            # OpenMP variant: per-segment start offsets let the segment
            # loop run in parallel (see codegen.emit_segmented_source)
            starts = np.ascontiguousarray(seg_starts(counts))
            kernel.run(out.ctypes.data, counts.ctypes.data,
                       starts.ctypes.data, nseg, vals.ctypes.data)
        result = NestedVector(result_descs, out, out_kind)
        n = int(v.descs[0][0])
        if _obs.PROFILER is not None:
            _count_native(name, n, (v,), result)
        g = _guard.GUARD
        if g is not None:
            g.after_kernel(name, n, result)
        return result

    def _seg_kernel(self, op: str, kind: str) -> Optional[Kernel]:
        key = (op, kind)
        with self._lock:
            if key in self._seg:
                return self._seg[key]
        if not toolchain.available():
            toolchain.warn_unavailable_once()
            return None
        source = emit_segmented_source(op, kind,
                                       omp_threads=self._omp_threads)
        if self._omp_threads is None:
            argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_longlong,
                        ctypes.c_void_p]
        else:
            argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
                        ctypes.c_longlong, ctypes.c_void_p]
        kernel = self.cache.get(source, argtypes,
                                extra_flags=self._extra_cflags)
        with self._lock:
            self._seg[key] = kernel
        return kernel

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            fused = len(self._fused)
            seg = len(self._seg)
            gather = len(self._gather)
        return {"toolchain": toolchain.toolchain_id(),
                "available": toolchain.available(),
                "fused_kernels": fused, "segmented_kernels": seg,
                "gather_kernels": gather,
                "cache": self.cache.stats()}


def _arg_indices(tree) -> set:
    if tree[0] == "arg":
        return {tree[1]}
    out: set = set()
    for c in tree[2]:
        out |= _arg_indices(c)
    return out


def _remap_tree(tree, remap: dict):
    if tree[0] == "arg":
        return ("arg", remap[tree[1]])
    _tag, name, children = tree
    return ("prim", name, tuple(_remap_tree(c, remap) for c in children))


_ENGINE: Optional[NativeEngine] = None
_ENGINE_LOCK = threading.Lock()


def get_engine() -> Optional[NativeEngine]:
    """The process-wide engine, or None (with one warning) when there is no
    C toolchain."""
    global _ENGINE
    if not toolchain.available():
        toolchain.warn_unavailable_once()
        return None
    with _ENGINE_LOCK:
        if _ENGINE is None:
            _ENGINE = NativeEngine()
        return _ENGINE


def reset_engine() -> None:
    """Drop the process-wide engine (tests only — pair with
    :func:`repro.native.toolchain.reset`)."""
    global _ENGINE
    with _ENGINE_LOCK:
        _ENGINE = None
