"""Native megakernel backend: fused regions compiled to real C kernels.

The CVL-style emitter in :mod:`repro.vcode.emit_c` is presentation-only;
this package closes the loop to the paper's §5 end state ("C code making
calls to a vector library") by actually *running* generated C:

* :mod:`repro.native.codegen` — one self-contained C kernel per fused
  region (single loop, invariants hoisted, 4x unrolled) and per segmented
  primitive;
* :mod:`repro.native.cache` — disk-backed artifact cache keyed by content
  hash of ABI + toolchain + source (hits are a single ``dlopen``, never a
  recompile);
* :mod:`repro.native.engine` — the runtime bridge the Applier dispatches
  through, falling back to NumPy bit-identically whenever a kernel is
  unavailable;
* :mod:`repro.native.toolchain` — compiler discovery; a machine without a
  C compiler gets the NumPy path and a single warning.

See docs/NATIVE.md for the annotated walkthrough of an emitted kernel,
the serve-layer tiering policy, and the cache layout.
"""

from .cache import ABI_VERSION, Kernel, KernelCache, default_cache_dir
from .codegen import (
    emit_fused_source, emit_segmented_source, render_tree,
)
from .engine import NativeEngine, get_engine, reset_engine
from .toolchain import available, find_cc, toolchain_id

__all__ = [
    "ABI_VERSION", "Kernel", "KernelCache", "default_cache_dir",
    "emit_fused_source", "emit_segmented_source", "render_tree",
    "NativeEngine", "get_engine", "reset_engine",
    "available", "find_cc", "toolchain_id",
]
