"""C toolchain discovery for the native kernel backend.

The native backend is strictly optional: when no C compiler is on the
``PATH`` the engine answers "not available" and every caller falls back to
the NumPy applier with **one** process-wide warning (tested by
``tests/native/test_fallback.py``).  Discovery runs once and is cached —
the result also feeds the kernel-cache key, so artifacts compiled by one
compiler version are never loaded under another (see
:mod:`repro.native.cache`).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from typing import Optional

__all__ = ["find_cc", "toolchain_id", "available", "openmp_available",
           "warn_unavailable_once", "reset"]

_lock = threading.Lock()
_cc: Optional[str] = None
_cc_probed = False
_id: Optional[str] = None
_warned = False
_omp: Optional[bool] = None

#: The probe translation unit for OpenMP support: it must *compile and
#: link* with ``-fopenmp`` (a compiler that accepts the flag but ships no
#: libgomp fails at the link step, which is exactly what we want to see).
_OMP_PROBE = """\
#include <omp.h>
int probe(void) { int n = 0;
#pragma omp parallel
{
#pragma omp atomic
    n += 1;
}
return n + omp_get_max_threads(); }
"""


def find_cc() -> Optional[str]:
    """Path of the C compiler, or None.  Honours ``$CC``, then looks for
    ``cc``, ``gcc``, ``clang`` on the PATH.  Probed once per process."""
    global _cc, _cc_probed
    with _lock:
        if _cc_probed:
            return _cc
        cand = os.environ.get("CC")
        if cand:
            _cc = shutil.which(cand)
        if _cc is None:
            for name in ("cc", "gcc", "clang"):
                _cc = shutil.which(name)
                if _cc is not None:
                    break
        _cc_probed = True
        return _cc


def available() -> bool:
    """True when a C compiler was found."""
    return find_cc() is not None


def toolchain_id() -> str:
    """A string identifying the toolchain (path + reported version), part
    of every kernel-cache key so a compiler upgrade invalidates cached
    artifacts.  ``"none"`` when no compiler exists."""
    global _id
    cc = find_cc()
    if cc is None:
        return "none"
    with _lock:
        if _id is not None:
            return _id
        try:
            out = subprocess.run([cc, "--version"], capture_output=True,
                                 text=True, timeout=10)
            version = (out.stdout or out.stderr).splitlines()[0].strip() \
                if (out.stdout or out.stderr) else "unknown"
        except (OSError, subprocess.TimeoutExpired, IndexError):
            version = "unknown"
        _id = f"{cc} {version}"
        return _id


def openmp_available() -> bool:
    """True when the toolchain can build ``-fopenmp`` shared objects —
    the gate for the parallel backend's native-threading path (see
    :mod:`repro.parallel` and docs/PARALLEL.md).  Probed once per process
    by actually compiling a tiny ``#pragma omp`` translation unit, so a
    compiler that merely *tolerates* the flag without an OpenMP runtime
    answers False."""
    global _omp
    cc = find_cc()
    if cc is None:
        return False
    with _lock:
        if _omp is not None:
            return _omp
    ok = False
    try:
        with tempfile.TemporaryDirectory(prefix="repro-omp-") as d:
            c_path = os.path.join(d, "probe.c")
            so_path = os.path.join(d, "probe.so")
            with open(c_path, "w") as f:
                f.write(_OMP_PROBE)
            proc = subprocess.run(
                [cc, "-fopenmp", "-shared", "-fPIC", "-o", so_path, c_path],
                capture_output=True, text=True, timeout=30)
            ok = proc.returncode == 0 and os.path.exists(so_path)
    except (OSError, subprocess.TimeoutExpired):
        ok = False
    with _lock:
        _omp = ok
        return _omp


def warn_unavailable_once() -> None:
    """Emit the single fall-back warning the acceptance contract requires:
    native execution was requested, no toolchain exists, NumPy serves the
    request instead.  Subsequent calls are silent."""
    global _warned
    with _lock:
        if _warned:
            return
        _warned = True
    warnings.warn(
        "no C toolchain found (tried $CC, cc, gcc, clang); the native "
        "backend is falling back to the NumPy applier",
        RuntimeWarning, stacklevel=3)


def reset() -> None:
    """Forget every probe result (tests only — e.g. to simulate a machine
    without a compiler by pointing $CC at a nonexistent binary)."""
    global _cc, _cc_probed, _id, _warned, _omp
    with _lock:
        _cc = None
        _cc_probed = False
        _id = None
        _warned = False
        _omp = None
