"""C code generation for fused elementwise trees and segmented primitives.

Each fused region of a :class:`~repro.transform.fuse.FusionRegistry` becomes
**one** self-contained C translation unit exporting a single ``run``
function: a single loop over the flat value vector with the whole
elementwise tree applied per element.  Two classic vector-compiler
transformations are applied at emission time (docs/NATIVE.md walks through
one emitted kernel line by line):

* **invariant hoisting** — depth-0 operands arrive as *scalar parameters*
  instead of replicated vectors (the NumPy applier materializes a full
  ``n``-element copy of every such operand; the C kernel keeps it in a
  register), and
* **loop unrolling** — the inner loop is unrolled 4x with a remainder
  loop, giving the C compiler straight-line bodies to schedule and
  auto-vectorize.

Bit-identity with the NumPy applier is part of the contract (the fuzzer
runs the native backend differentially):

* integer arithmetic compiles with ``-fwrapv`` so ``long long`` overflow
  wraps exactly like NumPy's ``int64``;
* ``round_`` lowers to C ``rint`` — round-half-to-even, like ``np.rint``;
* ``max2``/``min2`` on doubles propagate NaNs the way ``np.maximum`` /
  ``np.minimum`` do;
* segmented reductions and scans accumulate **sequentially left-to-right
  within each segment**, matching the float semantics of
  :mod:`repro.vector.segments` (and, by wraparound associativity, its
  integer prefix-difference method).

Checked primitives (``div``/``mod``/``fdiv``/``sqrt_``) never appear in a
fused tree (see ``fuse._UNSAFE``), so kernels need no error paths.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["CTYPES", "SEGMENTED_OPS", "render_tree", "tree_kind",
           "used_leaves", "emit_fused_source", "emit_segmented_source",
           "emit_gather_source"]

#: C type per leaf kind (the ``fun`` kind is never compiled).
CTYPES = {"int": "long long", "bool": "unsigned char", "float": "double"}

#: segmented primitives with a native kernel, and the leaf kinds each
#: supports (reductions produce one element per segment; scans are
#: length-preserving)
SEGMENTED_OPS = {
    "sum": ("int", "float"),
    "maxval": ("int", "float"),
    "minval": ("int", "float"),
    "anytrue": ("bool",),
    "alltrue": ("bool",),
    "plus_scan": ("int", "float"),
    "max_scan": ("int", "float"),
}

_BOOL_OUT = {"eq", "ne", "lt", "le", "gt", "ge", "and_", "or_", "not_"}
_CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def tree_kind(tree, leaf_kinds: Sequence[Optional[str]]) -> Optional[str]:
    """Result kind of a (sub)tree — the per-node form of
    :func:`repro.transform.fuse.result_kind`; None when a leaf kind is
    unknown."""
    if tree[0] == "arg":
        return leaf_kinds[tree[1]]
    _tag, name, children = tree
    if name in _BOOL_OUT:
        return "bool"
    if name == "real":
        return "float"
    if name in ("trunc_", "round_", "floor_", "ceil_"):
        return "int"
    if name == "__rep":
        return tree_kind(children[1], leaf_kinds)
    return tree_kind(children[0], leaf_kinds)


def used_leaves(tree) -> frozenset:
    """Leaf indices whose *values* the tree reads (a ``__rep`` witness
    contributes only frame shape, never data)."""
    out: set[int] = set()

    def walk(t) -> None:
        if t[0] == "arg":
            out.add(t[1])
            return
        _tag, name, children = t
        if name == "__rep":
            walk(children[1])
            return
        for c in children:
            walk(c)
    walk(tree)
    return frozenset(out)


def render_tree(tree, hoisted: Sequence[bool] = ()) -> str:
    """Compact s-expression rendering of a fused op tree (for comments and
    docs): ``(mul (add a0 s1) a0)`` — ``aK`` is a vector leaf, ``sK`` a
    hoisted scalar leaf."""
    if tree[0] == "arg":
        k = tree[1]
        tag = "s" if (k < len(hoisted) and hoisted[k]) else "a"
        return f"{tag}{k}"
    _tag, name, children = tree
    if name == "__rep":
        return render_tree(children[1], hoisted)
    parts = " ".join(render_tree(c, hoisted) for c in children)
    return f"({name.rstrip('_')} {parts})"


def _expr(tree, leaf_kinds, hoisted, idx: str) -> str:
    """The C expression computing one element of the tree at index ``idx``."""
    if tree[0] == "arg":
        k = tree[1]
        return f"s{k}" if hoisted[k] else f"a{k}[{idx}]"
    _tag, name, children = tree
    if name == "__rep":
        return _expr(children[1], leaf_kinds, hoisted, idx)
    cs = [_expr(c, leaf_kinds, hoisted, idx) for c in children]
    kind = tree_kind(children[0], leaf_kinds) if children else None
    if name == "add":
        return f"({cs[0]} + {cs[1]})"
    if name == "sub":
        return f"({cs[0]} - {cs[1]})"
    if name == "mul":
        return f"({cs[0]} * {cs[1]})"
    if name == "neg":
        return f"(-{cs[0]})"
    if name == "abs_":
        if kind == "float":
            return f"fabs({cs[0]})"
        return f"({cs[0]} < 0 ? -{cs[0]} : {cs[0]})"
    if name == "max2":
        if kind == "float":
            return f"repro_fmax({cs[0]}, {cs[1]})"
        return f"({cs[0]} > {cs[1]} ? {cs[0]} : {cs[1]})"
    if name == "min2":
        if kind == "float":
            return f"repro_fmin({cs[0]}, {cs[1]})"
        return f"({cs[0]} < {cs[1]} ? {cs[0]} : {cs[1]})"
    if name in _CMP:
        return f"(unsigned char)({cs[0]} {_CMP[name]} {cs[1]})"
    if name == "and_":
        return f"(unsigned char)({cs[0]} && {cs[1]})"
    if name == "or_":
        return f"(unsigned char)({cs[0]} || {cs[1]})"
    if name == "not_":
        return f"(unsigned char)(!{cs[0]})"
    if name == "real":
        return f"(double)({cs[0]})"
    if name == "trunc_":
        return f"(long long)trunc({cs[0]})"
    if name == "round_":
        return f"(long long)rint({cs[0]})"  # half-to-even, like np.rint
    if name == "floor_":
        return f"(long long)floor({cs[0]})"
    if name == "ceil_":
        return f"(long long)ceil({cs[0]})"
    raise ValueError(f"no C lowering for primitive {name!r}")


def _needs_nan_minmax(tree) -> bool:
    if tree[0] == "arg":
        return False
    _tag, name, children = tree
    return name in ("max2", "min2") or any(_needs_nan_minmax(c)
                                           for c in children)


_NAN_HELPERS = """\
/* NaN-propagating min/max, matching np.maximum / np.minimum exactly:
 * if either operand is NaN the result is NaN (C's fmax/fmin instead
 * *discard* NaNs, so they cannot be used here). */
static inline double repro_fmax(double a, double b)
{ return (a != a) ? a : ((b != b) ? b : (a > b ? a : b)); }
static inline double repro_fmin(double a, double b)
{ return (a != a) ? a : ((b != b) ? b : (a < b ? a : b)); }
"""


def emit_fused_source(tree, leaf_kinds: Sequence[str],
                      hoisted: Sequence[bool], name: str = "__fused",
                      omp_threads: Optional[int] = None) -> str:
    """The complete C translation unit for one fused elementwise kernel.

    ``leaf_kinds[k]`` is the scalar kind of leaf ``k``; ``hoisted[k]`` is
    True when leaf ``k`` is a loop-invariant (depth-0) operand passed as a
    scalar parameter instead of a vector.  The exported symbol is always
    ``run`` (one kernel per shared object; see :mod:`repro.native.cache`).

    With ``omp_threads`` the element loop becomes an OpenMP
    ``parallel for`` over a fixed thread count (the count is baked into
    the source so it participates in the content-address cache key; the
    caller must compile with ``-fopenmp``).  Every element is computed
    independently, so the parallel kernel is bit-identical to the serial
    one by construction (see docs/PARALLEL.md).
    """
    out_kind = tree_kind(tree, leaf_kinds)
    if out_kind not in CTYPES:
        raise ValueError(f"cannot compile result kind {out_kind!r}")
    params = [f"{CTYPES[out_kind]}* restrict out", "long long n"]
    for k, (kind, h) in enumerate(zip(leaf_kinds, hoisted)):
        if kind not in CTYPES:
            raise ValueError(f"cannot compile leaf kind {kind!r}")
        if h:
            params.append(f"{CTYPES[kind]} s{k}")
        else:
            params.append(f"const {CTYPES[kind]}* restrict a{k}")
    body = _expr(tree, list(leaf_kinds), list(hoisted), "j")
    if omp_threads is not None:
        lines = [
            f"/* repro.native fused kernel {name} (OpenMP, "
            f"{omp_threads} threads):",
            f" *   {render_tree(tree, hoisted)}",
            " * one parallel loop over the flat value vector; depth-0",
            " * operands are hoisted scalar parameters (sK). */",
            "#include <math.h>",
            "",
        ]
        if _needs_nan_minmax(tree):
            lines.append(_NAN_HELPERS)
        lines += [
            f"void run({', '.join(params)})",
            "{",
            f"#define BODY(j) {body}",
            f"#pragma omp parallel for schedule(static) "
            f"num_threads({omp_threads})",
            "    for (long long i = 0; i < n; i++)",
            "        out[i] = BODY(i);",
            "#undef BODY",
            "}",
        ]
        return "\n".join(lines) + "\n"
    lines = [
        f"/* repro.native fused kernel {name}:",
        f" *   {render_tree(tree, hoisted)}",
        " * one loop over the flat value vector; depth-0 operands are",
        " * hoisted scalar parameters (sK); inner loop unrolled 4x. */",
        "#include <math.h>",
        "",
    ]
    if _needs_nan_minmax(tree):
        lines.append(_NAN_HELPERS)
    lines += [
        f"void run({', '.join(params)})",
        "{",
        f"#define BODY(j) {body}",
        "    long long i = 0;",
        "    for (; i + 4 <= n; i += 4) {    /* unrolled x4 */",
        "        out[i]     = BODY(i);",
        "        out[i + 1] = BODY(i + 1);",
        "        out[i + 2] = BODY(i + 2);",
        "        out[i + 3] = BODY(i + 3);",
        "    }",
        "    for (; i < n; i++)              /* remainder */",
        "        out[i] = BODY(i);",
        "#undef BODY",
        "}",
    ]
    return "\n".join(lines) + "\n"


def emit_segmented_source(op: str, kind: str,
                          omp_threads: Optional[int] = None) -> str:
    """The C translation unit for one segment-aware kernel.

    Signature: ``run(out, counts, nseg, v)`` — ``counts`` is one
    descriptor level (per-segment lengths), ``v`` the flat value vector.
    Reductions write ``nseg`` outputs, scans write ``sum(counts)``.
    Accumulation is sequential left-to-right within each segment, which is
    exactly the evaluation order the NumPy substrate guarantees (see
    module docstring).  Empty-segment errors for ``maxval``/``minval`` are
    raised by the engine *before* the kernel runs.

    With ``omp_threads`` the signature grows a ``starts`` array of
    per-segment element offsets — ``run(out, counts, starts, nseg, v)`` —
    and the *segment* loop becomes an OpenMP ``parallel for``.  Each
    segment is still folded sequentially left-to-right by exactly the
    same accumulation body, so the result is bit-identical to the serial
    kernel for every thread count (the determinism contract of
    docs/PARALLEL.md); reduction outputs are indexed by segment and scan
    outputs by element offset, so writes never overlap across threads.
    """
    if kind not in SEGMENTED_OPS.get(op, ()):
        raise ValueError(f"no native segmented kernel for {op}/{kind}")
    T = CTYPES[kind]
    if omp_threads is not None:
        head = [
            f"/* repro.native segmented kernel: {op} over {kind} segments",
            f" * (OpenMP, {omp_threads} threads).  Parallel loop over",
            " * segments; each segment folded sequentially from its",
            " * precomputed start offset, matching the serial kernel",
            " * bit for bit. */",
            "",
            f"void run({T}* restrict out, const long long* restrict counts,",
            "         const long long* restrict starts,",
            f"         long long nseg, const {T}* restrict v)",
            "{",
            f"#pragma omp parallel for schedule(static) "
            f"num_threads({omp_threads})",
            "    for (long long s = 0; s < nseg; s++) {",
            "        long long p = starts[s];",
        ]
    else:
        head = [
            f"/* repro.native segmented kernel: {op} over {kind} segments.",
            " * outer loop over segments, inner sequential loop over each",
            " * segment's slice of the flat value vector. */",
            "",
            f"void run({T}* restrict out, const long long* restrict counts,",
            f"         long long nseg, const {T}* restrict v)",
            "{",
            "    long long p = 0;",
            "    for (long long s = 0; s < nseg; s++) {",
        ]
    if op == "sum":
        body = [
            f"        {T} acc = 0;",
            "        for (long long c = counts[s]; c > 0; c--, p++)",
            "            acc += v[p];",
            "        out[s] = acc;",
        ]
    elif op in ("maxval", "minval"):
        if kind == "float":
            # NaN-propagating fold, like np.maximum.reduceat
            win = "x != x || x > acc" if op == "maxval" else \
                  "x != x || x < acc"
        else:
            win = "x > acc" if op == "maxval" else "x < acc"
        body = [
            f"        {T} acc = v[p++];",
            "        for (long long c = counts[s] - 1; c > 0; c--, p++) {",
            f"            {T} x = v[p];",
            f"            if ({win}) acc = x;",
            "        }",
            "        out[s] = acc;",
        ]
    elif op == "anytrue":
        body = [
            "        unsigned char acc = 0;",
            "        for (long long c = counts[s]; c > 0; c--, p++)",
            "            if (v[p]) acc = 1;",
            "        out[s] = acc;",
        ]
    elif op == "alltrue":
        body = [
            "        unsigned char acc = 1;",
            "        for (long long c = counts[s]; c > 0; c--, p++)",
            "            if (!v[p]) acc = 0;",
            "        out[s] = acc;",
        ]
    elif op == "plus_scan":
        body = [
            f"        {T} acc = 0;    /* exclusive scan, identity 0 */",
            "        for (long long c = counts[s]; c > 0; c--, p++) {",
            f"            {T} x = v[p];",
            "            out[p] = acc;",
            "            acc += x;",
            "        }",
        ]
    elif op == "max_scan":
        win = "x != x || x > acc" if kind == "float" else "x > acc"
        body = [
            "        long long c = counts[s];",
            "        if (c > 0) {    /* inclusive running maximum */",
            f"            {T} acc = v[p];",
            "            out[p] = acc;",
            "            p++;",
            "            for (c--; c > 0; c--, p++) {",
            f"                {T} x = v[p];",
            f"                if ({win}) acc = x;",
            "                out[p] = acc;",
            "            }",
            "        }",
        ]
    else:  # pragma: no cover
        raise ValueError(op)
    return "\n".join(head + body + ["    }", "}"]) + "\n"


def emit_gather_source(kind: str) -> str:
    """The C translation unit for the section-4.5 shared-index gather
    (``__seq_index_shared`` over a scalar sequence).

    One fused pass replaces the NumPy path's three (bounds check, index
    shift, fancy gather).  Indices are 1-origin; the kernel returns the
    position of the first out-of-range index, or -1 — the engine raises
    the applier's exact ``seq_index`` error from that position.
    """
    if kind not in CTYPES:
        raise ValueError(f"no native gather for kind {kind!r}")
    T = CTYPES[kind]
    return "\n".join([
        f"/* repro.native gather kernel: shared seq_index over {kind}.",
        " * bounds-checked 1-origin gather in a single pass. */",
        "",
        f"long long run({T}* restrict out, const {T}* restrict v,",
        "               long long m, const long long* restrict idx,",
        "               long long n)",
        "{",
        "    for (long long j = 0; j < n; j++) {",
        "        long long i = idx[j];",
        "        if (i < 1 || i > m)",
        "            return j;    /* first offender, reported by caller */",
        "        out[j] = v[i - 1];",
        "    }",
        "    return -1;",
        "}",
    ]) + "\n"
