"""The type language of P (section 2):

    T ::= Int | Bool | Seq(T) | (T x ... x T) | (T, ..., T) -> T

plus unification variables used internally by the type checker.  Types are
immutable and hash-consed enough for structural equality to be cheap.

The module also provides the *depth* helpers the transformation relies on:
``seq_of(t, d)`` builds ``Seq^d(t)`` and ``peel(t, d)`` removes ``d`` levels.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import TypeCheckError

# ---------------------------------------------------------------------------
# Type constructors
# ---------------------------------------------------------------------------


class Type:
    """Base class of all P types."""

    def __repr__(self) -> str:
        return type_str(self)


@dataclass(frozen=True, repr=False)
class TInt(Type):
    pass


@dataclass(frozen=True, repr=False)
class TBool(Type):
    pass


@dataclass(frozen=True, repr=False)
class TFloat(Type):
    """Extension beyond the paper's minimal scalar set (section 2: "the set
    of scalar types is limited [to simplify] the exposition ... Extension
    ... should be relatively simple")."""


@dataclass(frozen=True, repr=False)
class TSeq(Type):
    elem: Type


@dataclass(frozen=True, repr=False)
class TTuple(Type):
    items: tuple[Type, ...]


@dataclass(frozen=True, repr=False)
class TFun(Type):
    params: tuple[Type, ...]
    result: Type


_var_ids = itertools.count()


@dataclass(frozen=True, repr=False)
class TVar(Type):
    """A unification variable.  ``scalar_only`` constrains the solution to
    a scalar (Int/Bool/Float — used by ``==``/``!=``); ``numeric_only``
    constrains it to Int/Float (arithmetic and ordered comparisons)."""

    id: int
    scalar_only: bool = False
    numeric_only: bool = False


INT = TInt()
BOOL = TBool()
FLOAT = TFloat()


def fresh_tvar(scalar_only: bool = False, numeric_only: bool = False) -> TVar:
    """A fresh unification variable."""
    return TVar(next(_var_ids), scalar_only, numeric_only)


def seq_of(t: Type, depth: int = 1) -> Type:
    """``Seq^depth(t)``."""
    for _ in range(depth):
        t = TSeq(t)
    return t


def peel(t: Type, depth: int = 1) -> Type:
    """Remove ``depth`` Seq levels from ``t``; error if not nested enough."""
    for _ in range(depth):
        if not isinstance(t, TSeq):
            raise TypeCheckError(f"expected a sequence type, got {type_str(t)}")
        t = t.elem
    return t


def seq_depth(t: Type) -> int:
    """Number of leading Seq constructors in ``t``."""
    d = 0
    while isinstance(t, TSeq):
        d += 1
        t = t.elem
    return d


def is_scalar(t: Type) -> bool:
    return isinstance(t, (TInt, TBool, TFloat))


def is_numeric(t: Type) -> bool:
    return isinstance(t, (TInt, TFloat))


def type_str(t: Type) -> str:
    """Concrete syntax for a type."""
    if isinstance(t, TInt):
        return "int"
    if isinstance(t, TBool):
        return "bool"
    if isinstance(t, TFloat):
        return "float"
    if isinstance(t, TSeq):
        return f"seq({type_str(t.elem)})"
    if isinstance(t, TTuple):
        return "(" + ", ".join(type_str(x) for x in t.items) + ")"
    if isinstance(t, TFun):
        ps = ", ".join(type_str(x) for x in t.params)
        return f"({ps}) -> {type_str(t.result)}"
    if isinstance(t, TVar):
        return f"?{t.id}" + ("s" if t.scalar_only else "") + \
            ("n" if t.numeric_only else "")
    raise TypeError(f"not a type: {t!r}")


def contains_var(t: Type) -> bool:
    """True if any unification variable occurs in ``t``."""
    if isinstance(t, TVar):
        return True
    if isinstance(t, TSeq):
        return contains_var(t.elem)
    if isinstance(t, TTuple):
        return any(contains_var(x) for x in t.items)
    if isinstance(t, TFun):
        return any(contains_var(x) for x in t.params) or contains_var(t.result)
    return False


def type_vars(t: Type) -> set[int]:
    """Ids of all unification variables occurring in ``t``."""
    if isinstance(t, TVar):
        return {t.id}
    out: set[int] = set()
    if isinstance(t, TSeq):
        out |= type_vars(t.elem)
    elif isinstance(t, TTuple):
        for x in t.items:
            out |= type_vars(x)
    elif isinstance(t, TFun):
        for x in t.params:
            out |= type_vars(x)
        out |= type_vars(t.result)
    return out


# ---------------------------------------------------------------------------
# Substitutions and unification
# ---------------------------------------------------------------------------


class Subst:
    """A mutable union-find-free substitution map for unification variables."""

    def __init__(self) -> None:
        self.map: dict[int, Type] = {}

    def resolve(self, t: Type) -> Type:
        """Follow variable bindings one level (path-compressing)."""
        while isinstance(t, TVar) and t.id in self.map:
            t = self.map[t.id]
        return t

    def apply(self, t: Type) -> Type:
        """Fully substitute ``t``."""
        t = self.resolve(t)
        if isinstance(t, TSeq):
            return TSeq(self.apply(t.elem))
        if isinstance(t, TTuple):
            return TTuple(tuple(self.apply(x) for x in t.items))
        if isinstance(t, TFun):
            return TFun(tuple(self.apply(x) for x in t.params), self.apply(t.result))
        return t

    def unify(self, a: Type, b: Type, where: str = "") -> None:
        """Unify ``a`` and ``b``, extending the substitution.

        Raises :class:`TypeCheckError` on mismatch or occurs-check failure.
        """
        a = self.resolve(a)
        b = self.resolve(b)
        if a is b or a == b:
            return
        if isinstance(a, TVar):
            self._bind(a, b, where)
            return
        if isinstance(b, TVar):
            self._bind(b, a, where)
            return
        if isinstance(a, TSeq) and isinstance(b, TSeq):
            self.unify(a.elem, b.elem, where)
            return
        if isinstance(a, TTuple) and isinstance(b, TTuple) and len(a.items) == len(b.items):
            for x, y in zip(a.items, b.items):
                self.unify(x, y, where)
            return
        if isinstance(a, TFun) and isinstance(b, TFun) and len(a.params) == len(b.params):
            for x, y in zip(a.params, b.params):
                self.unify(x, y, where)
            self.unify(a.result, b.result, where)
            return
        ctx = f" in {where}" if where else ""
        raise TypeCheckError(
            f"type mismatch: {type_str(self.apply(a))} vs {type_str(self.apply(b))}{ctx}"
        )

    def _bind(self, v: TVar, t: Type, where: str) -> None:
        if isinstance(t, TVar) and t.id == v.id:
            return
        if v.id in type_vars(self.apply(t)):
            raise TypeCheckError(f"infinite type: ?{v.id} occurs in {type_str(self.apply(t))}")
        if v.scalar_only or v.numeric_only:
            rt = self.resolve(t)
            if isinstance(rt, TVar):
                need_s = v.scalar_only or rt.scalar_only
                need_n = v.numeric_only or rt.numeric_only
                if (rt.scalar_only, rt.numeric_only) != (need_s, need_n):
                    # propagate the union of the constraints
                    nv = fresh_tvar(scalar_only=need_s, numeric_only=need_n)
                    self.map[rt.id] = nv
                    self.map[v.id] = nv
                    return
            else:
                ctx = f" in {where}" if where else ""
                if v.numeric_only and not is_numeric(rt):
                    raise TypeCheckError(
                        f"operator requires a numeric type, got "
                        f"{type_str(self.apply(t))}{ctx}")
                if v.scalar_only and not is_scalar(rt):
                    raise TypeCheckError(
                        f"operator requires a scalar type, got "
                        f"{type_str(self.apply(t))}{ctx}")
        self.map[v.id] = t

    def default_unresolved(self, t: Type) -> Type:
        """Replace any remaining variables in ``t`` by Int (defaulting).

        Programs like ``fun f() = []`` leave the element type unconstrained;
        monomorphization needs a concrete type, and Int is the conventional
        default.
        """
        t = self.resolve(t)
        if isinstance(t, TVar):
            return INT
        if isinstance(t, TSeq):
            return TSeq(self.default_unresolved(t.elem))
        if isinstance(t, TTuple):
            return TTuple(tuple(self.default_unresolved(x) for x in t.items))
        if isinstance(t, TFun):
            return TFun(
                tuple(self.default_unresolved(x) for x in t.params),
                self.default_unresolved(t.result),
            )
        return t


def instantiate(t: Type, mapping: Optional[dict[int, Type]] = None) -> Type:
    """Replace every type variable in ``t`` with a fresh one (consistently)."""
    if mapping is None:
        mapping = {}

    def go(x: Type) -> Type:
        if isinstance(x, TVar):
            if x.id not in mapping:
                mapping[x.id] = fresh_tvar(x.scalar_only, x.numeric_only)
            return mapping[x.id]
        if isinstance(x, TSeq):
            return TSeq(go(x.elem))
        if isinstance(x, TTuple):
            return TTuple(tuple(go(i) for i in x.items))
        if isinstance(x, TFun):
            return TFun(tuple(go(p) for p in x.params), go(x.result))
        return x

    return go(t)


def parse_type(text: str) -> Type:
    """Parse a type written in concrete syntax (used by tests and the API).

    Grammar: ``int | bool | seq(T) | (T, T, ...) | (T, ...) -> T``.
    A parenthesized single type is just that type.
    """
    toks = _type_tokens(text)
    t, pos = _parse_type(toks, 0)
    if pos != len(toks):
        raise TypeCheckError(f"trailing input in type: {text!r}")
    return t


def _type_tokens(text: str) -> list[str]:
    out: list[str] = []
    i = 0
    while i < len(text):
        c = text[i]
        if c.isspace():
            i += 1
        elif text.startswith("->", i):
            out.append("->")
            i += 2
        elif c in "(),":
            out.append(c)
            i += 1
        elif c.isalpha():
            j = i
            while j < len(text) and text[j].isalnum():
                j += 1
            out.append(text[i:j])
            i = j
        else:
            raise TypeCheckError(f"bad character in type: {c!r}")
    return out


def _parse_type(toks: list[str], pos: int) -> tuple[Type, int]:
    if pos >= len(toks):
        raise TypeCheckError("unexpected end of type")
    tok = toks[pos]
    if tok == "int":
        return INT, pos + 1
    if tok == "bool":
        return BOOL, pos + 1
    if tok == "float":
        return FLOAT, pos + 1
    if tok == "seq":
        if pos + 1 >= len(toks) or toks[pos + 1] != "(":
            raise TypeCheckError("seq must be followed by (T)")
        inner, p = _parse_type(toks, pos + 2)
        if p >= len(toks) or toks[p] != ")":
            raise TypeCheckError("missing ) in seq(T)")
        return TSeq(inner), p + 1
    if tok == "(":
        items: list[Type] = []
        p = pos + 1
        if p < len(toks) and toks[p] == ")":
            p += 1
        else:
            while True:
                t, p = _parse_type(toks, p)
                items.append(t)
                if p < len(toks) and toks[p] == ",":
                    p += 1
                    continue
                if p < len(toks) and toks[p] == ")":
                    p += 1
                    break
                raise TypeCheckError("expected , or ) in type")
        if p < len(toks) and toks[p] == "->":
            res, p = _parse_type(toks, p + 1)
            return TFun(tuple(items), res), p
        if len(items) == 1:
            return items[0], p
        return TTuple(tuple(items)), p
    raise TypeCheckError(f"unexpected token in type: {tok!r}")


def scalar_leaves(t: Type) -> list[Type]:
    """The scalar leaf types of ``t`` after flattening tuple structure.

    This mirrors the paper's observation that a sequence of tuples needs
    ``k > d+1`` value vectors: one per scalar leaf.
    """
    if isinstance(t, (TInt, TBool, TFloat)):
        return [t]
    if isinstance(t, TSeq):
        return scalar_leaves(t.elem)
    if isinstance(t, TTuple):
        out: list[Type] = []
        for x in t.items:
            out.extend(scalar_leaves(x))
        return out
    if isinstance(t, TFun):
        return [t]
    raise TypeCheckError(f"no scalar leaves for {type_str(t)}")
