"""Derived functions of P, written in P itself (paper section 2).

The paper defines ``concat``, ``reduce`` and ``flatten`` as user-level P
functions; we keep those P-level versions (suffixed ``_p``) alongside the
native extended primitives (``concat``, ``flatten``, ``sum``) so the
section-4.5 ablation (benchmark E11) can compare the two.

``distribute`` is Table 2's generalized ``dist`` expressed via the base
``dist`` of section 3, and ``reduce`` is the higher-order pairwise-halving
reduction: a recursive, nested-data-parallel, higher-order function — the
trifecta the conclusion claims the transformation covers.
"""

from __future__ import annotations

from repro.lang import ast as A
from repro.lang.parser import parse_program

PRELUDE_SOURCE = """
-- Table 2 dist (elementwise) via the section-3 base dist
fun distribute(v, r) = [i <- [1..#v]: dist(v[i], r[i])]

-- paper section 2: concat as a data-parallel function
fun concat_p(v, w) =
  [i <- [1..#v + #w]: if i <= #v then v[i] else w[i - #v]]

-- higher-order pairwise-halving reduction; nonempty input required
-- (#v == 0 falls into v[1], raising the index error rather than looping)
fun reduce(f, v) =
  if #v <= 1 then v[1]
  else let h = #v div 2,
           w = [i <- [1..h]: f(v[2*i - 1], v[2*i])]
       in if 2*h == #v then reduce(f, w)
          else reduce(f, concat(w, [v[#v]]))

fun reduce_with(f, z, v) = if #v == 0 then z else reduce(f, v)

-- paper section 2: flatten via reduction with concat
fun flatten_p(v) = if #v == 0 then [] else reduce(concat_p, v)

fun zip2(v, w) = [i <- [1..#v]: (v[i], w[i])]

fun append(v, x) = concat(v, [x])

fun reverse(v) = [i <- [1..#v]: v[#v - i + 1]]

fun take(v, n) = [i <- [1..n]: v[i]]

fun drop(v, n) = [i <- [1..#v - n]: v[i + n]]

fun count(m) = sum([i <- [1..#m]: if m[i] then 1 else 0])

fun sum_p(v) = if #v == 0 then 0 else reduce(add, v)

fun maxval_p(v) = reduce(max2, v)

fun minval_p(v) = reduce(min2, v)

fun even(a) = 0 == a mod 2

fun odd(a) = 1 == a mod 2

-- sorting via the CVL rank/permute primitives: one rank + one scatter
fun sort(v) = permute(v, rank(v))

-- sort one sequence by the keys of another (stable)
fun sort_by(keys, v) = permute(v, rank(keys))

-- sorted merge and a divide-and-conquer merge sort written in P
fun merge(a, b) = sort(concat(a, b))

fun msort(v) =
  if #v <= 1 then v
  else let h = #v div 2,
           parts = [p <- [take(v, h), drop(v, h)]: msort(p)]
       in merge(parts[1], parts[2])

-- deduplicate (result ascending)
fun unique(v) =
  let s = sort(v)
  in [i <- [1..#s] | if i == 1 then true else s[i] != s[i - 1]: s[i]]

fun member(x, v) = anytrue([y <- v: y == x])

-- 1-origin index of the first occurrence, or 0 if absent
fun index_of(x, v) =
  let hits = [i <- [1..#v] | v[i] == x: i]
  in if #hits == 0 then 0 else hits[1]

fun dotp(a, b) = sum([i <- [1..#a]: a[i] * b[i]])

-- pair every element with its 1-origin position
fun enumerate2(v) = zip2(range1(#v), v)

fun map_p(f, v) = [x <- v: f(x)]

fun filter_p(f, v) = [x <- v | f(x): x]
"""


def prelude_program() -> A.Program:
    """Parse the prelude into a fresh Program."""
    return parse_program(PRELUDE_SOURCE)


def merge_with_prelude(user: A.Program) -> A.Program:
    """User program plus any prelude definitions it does not override."""
    defs: dict[str, A.FunDef] = {}
    for d in prelude_program():
        if d.name not in user.defs:
            defs[d.name] = d
    defs.update(user.defs)
    return A.Program(defs)
