"""Static typing for P (section 2: "we require that the types of all
expressions be static and monomorphic").

Two stages:

1. **Inference** — Hindley-Milner style unification per strongly-connected
   component of the call graph (monomorphic recursion), producing a possibly
   polymorphic *scheme* per top-level function.  Overloading in the paper's
   sense is realized as polymorphic schemes instantiated per call site.
2. **Monomorphization** — given an entry function and concrete argument
   types, specialize every reachable function to concrete types (the paper:
   "a polymorphic Proteus function can be instantiated with several different
   monomorphic argument types").  Lambdas are lifted to fresh top-level
   definitions here (legal because P function values are fully
   parameterized), so downstream stages see only named functions.

The result is a :class:`TypedProgram` whose ``instance`` method returns the
mangled name of a monomorphic specialization; every AST node of a
specialized body carries a concrete ``type``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TypeCheckError
from repro.lang import ast as A
from repro.lang import builtins as B
from repro.lang import types as T
from repro.lang.types import (
    BOOL, FLOAT, INT, Subst, TFun, TSeq, TTuple, TVar, Type, contains_var,
    fresh_tvar, instantiate, type_str,
)

# ---------------------------------------------------------------------------
# Call graph / SCC ordering
# ---------------------------------------------------------------------------


def _call_graph(prog: A.Program) -> dict[str, set[str]]:
    g: dict[str, set[str]] = {}
    for d in prog:
        refs = A.free_vars(d.body, frozenset(d.params))
        g[d.name] = {r for r in refs if r in prog.defs}
    return g


def _sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC algorithm, iterative; components in reverse topological
    order (callees before callers)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    onstack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    def strongconnect(v0: str) -> None:
        work = [(v0, iter(sorted(graph[v0])))]
        index[v0] = low[v0] = counter[0]
        counter[0] += 1
        stack.append(v0)
        onstack.add(v0)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    onstack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                elif w in onstack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    onstack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                out.append(comp)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return out


# ---------------------------------------------------------------------------
# Inference
# ---------------------------------------------------------------------------


class _Inferencer:
    """Infers types within one substitution, for one SCC at a time."""

    def __init__(self, prog: A.Program):
        self.prog = prog
        self.schemes: dict[str, TFun] = {}  # generalized (may contain TVars)
        # tuple projections whose tuple type was unknown when first seen:
        # (node, result tvar) — retried once the whole unit is inferred
        self._deferred: list[tuple[A.TupleExtract, Type]] = []

    def run(self) -> dict[str, TFun]:
        graph = _call_graph(self.prog)
        for comp in _sccs(graph):
            self._infer_component(comp)
        return self.schemes

    def _infer_component(self, names: list[str]) -> None:
        subst = Subst()
        placeholders: dict[str, TFun] = {}
        for n in names:
            d = self.prog[n]
            ptypes = []
            for i, p in enumerate(d.params):
                ann = d.param_types[i] if d.param_types else None
                ptypes.append(ann if ann is not None else fresh_tvar())
            res = d.ret_type if d.ret_type is not None else fresh_tvar()
            placeholders[n] = TFun(tuple(ptypes), res)
        for n in names:
            d = self.prog[n]
            sig = placeholders[n]
            env = dict(zip(d.params, sig.params))
            body_t = self._infer(d.body, env, subst, placeholders, n)
            subst.unify(body_t, sig.result, f"result of {n}")
        self._drain_deferred(subst)
        for n in names:
            self.schemes[n] = subst.apply(placeholders[n])  # type: ignore[assignment]

    def _drain_deferred(self, subst: Subst) -> None:
        """Retry tuple projections deferred during inference of this unit."""
        deferred, self._deferred = self._deferred, []
        for e, res in deferred:
            tt = subst.apply(e.tup.type)
            if not isinstance(tt, TTuple):
                raise TypeCheckError(
                    f"tuple projection .{e.index} applied to non-tuple type "
                    f"{type_str(tt)} (annotate the tuple if this is a parameter)",
                    e.line, e.col)
            if not (1 <= e.index <= len(tt.items)):
                raise TypeCheckError(
                    f"tuple index .{e.index} out of range for {type_str(tt)}",
                    e.line, e.col)
            subst.unify(res, tt.items[e.index - 1], "tuple projection")

    def _lookup_fn_scheme(self, name: str, placeholders: dict[str, TFun]) -> Optional[Type]:
        """Type for a reference to a top-level function or builtin."""
        if name in placeholders:
            return placeholders[name]  # monotype within the SCC
        if name in self.schemes:
            return instantiate(self.schemes[name])
        if B.is_builtin(name):
            return B.get_builtin(name).fresh_type()
        return None

    def _infer(self, e: A.Expr, env: dict[str, Type], subst: Subst,
               placeholders: dict[str, TFun], fname: str) -> Type:
        t = self._infer_inner(e, env, subst, placeholders, fname)
        e.type = t
        return t

    def _infer_inner(self, e: A.Expr, env: dict[str, Type], subst: Subst,
                     placeholders: dict[str, TFun], fname: str) -> Type:
        rec = lambda x, en=env: self._infer(x, en, subst, placeholders, fname)

        if isinstance(e, A.IntLit):
            return INT
        if isinstance(e, A.BoolLit):
            return BOOL
        if isinstance(e, A.FloatLit):
            return FLOAT
        if isinstance(e, A.Var):
            if e.name in env:
                return env[e.name]
            t = self._lookup_fn_scheme(e.name, placeholders)
            if t is None:
                raise TypeCheckError(f"unbound variable {e.name!r}", e.line, e.col)
            return t
        if isinstance(e, A.SeqLit):
            elem = fresh_tvar()
            for item in e.items:
                subst.unify(rec(item), elem, "sequence literal")
            return TSeq(elem)
        if isinstance(e, A.TupleLit):
            return TTuple(tuple(rec(x) for x in e.items))
        if isinstance(e, A.TupleExtract):
            tt = subst.apply(rec(e.tup))
            if not isinstance(tt, TTuple):
                if contains_var(tt):
                    # the tuple type may become known later in this unit:
                    # defer and retry after the whole unit is inferred
                    res = fresh_tvar()
                    self._deferred.append((e, res))
                    return res
                raise TypeCheckError(
                    f"tuple projection .{e.index} applied to non-tuple type "
                    f"{type_str(tt)}", e.line, e.col)
            if not (1 <= e.index <= len(tt.items)):
                raise TypeCheckError(
                    f"tuple index .{e.index} out of range for {type_str(tt)}",
                    e.line, e.col)
            return tt.items[e.index - 1]
        if isinstance(e, A.Call):
            ft = rec(e.fn)
            args = [rec(a) for a in e.args]
            res = fresh_tvar()
            subst.unify(ft, TFun(tuple(args), res), _call_desc(e))
            return res
        if isinstance(e, A.Lambda):
            # enforce full parameterization: free vars must be params/globals
            free = A.free_vars(e.body, frozenset(e.params))
            for v in sorted(free):
                if v in env and not (v in self.prog.defs or B.is_builtin(v)):
                    raise TypeCheckError(
                        f"function value captures local variable {v!r}; "
                        "P function values must be fully parameterized",
                        e.line, e.col)
            ptypes = [fresh_tvar() for _ in e.params]
            inner = dict(env)
            inner.update(zip(e.params, ptypes))
            body_t = self._infer(e.body, inner, subst, placeholders, fname)
            return TFun(tuple(ptypes), body_t)
        if isinstance(e, A.Let):
            bt = rec(e.bound)
            inner = dict(env)
            inner[e.var] = bt
            return self._infer(e.body, inner, subst, placeholders, fname)
        if isinstance(e, A.If):
            subst.unify(rec(e.cond), BOOL, "condition of if")
            tt = rec(e.then)
            et = rec(e.els)
            subst.unify(tt, et, "branches of if")
            return tt
        if isinstance(e, A.Iter):
            dt = rec(e.domain)
            elem = fresh_tvar()
            subst.unify(dt, TSeq(elem), "iterator domain")
            inner = dict(env)
            inner[e.var] = elem
            if e.filter is not None:
                ft = self._infer(e.filter, inner, subst, placeholders, fname)
                subst.unify(ft, BOOL, "iterator filter")
            body_t = self._infer(e.body, inner, subst, placeholders, fname)
            return TSeq(body_t)
        raise TypeCheckError(
            f"cannot type node {type(e).__name__} (transformed nodes are not "
            "typed by this checker)", getattr(e, "line", 0), getattr(e, "col", 0))


def _call_desc(e: A.Call) -> str:
    if isinstance(e.fn, A.Var):
        return f"call of {e.fn.name}"
    return "call"


# ---------------------------------------------------------------------------
# Monomorphization
# ---------------------------------------------------------------------------


@dataclass
class TypedProgram:
    """Inference results plus a registry of monomorphic specializations."""

    source: A.Program
    schemes: dict[str, TFun]
    mono_defs: dict[str, A.FunDef] = field(default_factory=dict)
    _instances: dict[tuple, str] = field(default_factory=dict)
    _mono_counter: dict[str, int] = field(default_factory=dict)

    # -- public API ----------------------------------------------------------

    def scheme_of(self, name: str) -> TFun:
        if name in self.schemes:
            return self.schemes[name]
        if B.is_builtin(name):
            return B.get_builtin(name).fresh_type()
        raise TypeCheckError(f"unknown function {name!r}")

    def instance(self, name: str, arg_types: tuple[Type, ...]) -> str:
        """Return the mono-name of ``name`` specialized to ``arg_types``,
        creating (and recursively specializing) it on first use."""
        if name not in self.schemes:
            raise TypeCheckError(f"unknown function {name!r}")
        key = (name, arg_types)
        if key in self._instances:
            return self._instances[key]
        d = self.source[name]
        if len(arg_types) != len(d.params):
            raise TypeCheckError(
                f"{name} expects {len(d.params)} arguments, got {len(arg_types)}")
        # check the argument types against the scheme before committing
        subst = Subst()
        sig = instantiate(self.schemes[name])
        assert isinstance(sig, TFun)
        for at, pt in zip(arg_types, sig.params):
            subst.unify(at, pt, f"specialization of {name}")
        mono = self._mangle(name)
        self._instances[key] = mono
        self._specialize(name, mono, arg_types)
        return mono

    def result_type(self, mono_name: str) -> Type:
        return self.mono_defs[mono_name].ret_type

    # -- internals -----------------------------------------------------------

    def _mangle(self, name: str) -> str:
        k = self._mono_counter.get(name, 0)
        self._mono_counter[name] = k + 1
        return name if k == 0 else f"{name}${k}"

    def _lift_lambda(self, lam: A.Lambda, subst: Subst) -> str:
        """Lift a (concretely typed) lambda to a fresh top-level mono def."""
        ft = subst.default_unresolved(subst.apply(lam.type))
        assert isinstance(ft, TFun)
        mono = A.fresh_name("lam")
        d = A.FunDef(name=mono, params=list(lam.params), body=lam.body,
                     param_types=list(ft.params), ret_type=ft.result)
        self.mono_defs[mono] = d
        return mono

    def _specialize(self, name: str, mono: str, arg_types: tuple[Type, ...]) -> None:
        src = self.source[name]
        body = A.clone(src.body)
        subst = Subst()
        env = dict(zip(src.params, arg_types))
        inf = _Inferencer(self.source)
        inf.schemes = self.schemes
        ret_hint = src.ret_type
        bt = inf._infer(body, env, subst, {}, name)
        inf._drain_deferred(subst)
        if ret_hint is not None:
            subst.unify(bt, ret_hint, f"result of {name}")
        # register the def *before* resolving, so recursion terminates
        d = A.FunDef(name=mono, params=list(src.params), body=body,
                     param_types=list(arg_types),
                     ret_type=subst.default_unresolved(subst.apply(bt)),
                     line=src.line, col=src.col)
        self.mono_defs[mono] = d
        d.body = self._resolve(body, subst, set(src.params))

    def _resolve(self, e: A.Expr, subst: Subst, locals_: set[str]) -> A.Expr:
        """Concretize node types and rewrite function references to mono names.

        ``locals_`` tracks in-scope value variables so that a Var naming both
        a local and a top-level function resolves to the local.
        """
        e.type = subst.default_unresolved(subst.apply(e.type))

        if isinstance(e, A.Var):
            if e.name not in locals_ and e.name in self.schemes:
                ft = e.type
                if not isinstance(ft, TFun):
                    raise TypeCheckError(
                        f"top-level function {e.name!r} used as a non-function value")
                mono = self.instance(e.name, ft.params)
                if mono != e.name:
                    v = A.Var(mono)
                    v.type = ft
                    v.line, v.col = e.line, e.col
                    return v
            return e
        if isinstance(e, A.Lambda):
            # resolve the body first (with only the lambda's params in scope)
            e2 = A.Lambda(list(e.params),
                          self._resolve(e.body, subst, set(e.params)))
            e2.type = e.type
            e2.line, e2.col = e.line, e.col
            mono = self._lift_lambda(e2, subst)
            v = A.Var(mono)
            v.type = e.type
            v.line, v.col = e.line, e.col
            return v
        if isinstance(e, A.Let):
            e.bound = self._resolve(e.bound, subst, locals_)
            e.body = self._resolve(e.body, subst, locals_ | {e.var})
            return e
        if isinstance(e, A.Iter):
            e.domain = self._resolve(e.domain, subst, locals_)
            inner = locals_ | {e.var}
            if e.filter is not None:
                e.filter = self._resolve(e.filter, subst, inner)
            e.body = self._resolve(e.body, subst, inner)
            return e
        if isinstance(e, A.Call):
            e.fn = self._resolve(e.fn, subst, locals_)
            e.args = [self._resolve(a, subst, locals_) for a in e.args]
            return e
        if isinstance(e, A.SeqLit):
            e.items = [self._resolve(x, subst, locals_) for x in e.items]
            return e
        if isinstance(e, A.TupleLit):
            e.items = [self._resolve(x, subst, locals_) for x in e.items]
            return e
        if isinstance(e, A.TupleExtract):
            e.tup = self._resolve(e.tup, subst, locals_)
            return e
        if isinstance(e, A.If):
            e.cond = self._resolve(e.cond, subst, locals_)
            e.then = self._resolve(e.then, subst, locals_)
            e.els = self._resolve(e.els, subst, locals_)
            return e
        return e


def typecheck_program(prog: A.Program) -> TypedProgram:
    """Infer schemes for every top-level definition of ``prog``."""
    inf = _Inferencer(prog)
    schemes = inf.run()
    return TypedProgram(source=prog, schemes=schemes)
