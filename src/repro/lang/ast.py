"""Abstract syntax for P programs.

The surface language desugars heavily in the parser: operators, ``#e``,
``v[i]``, ``[a..b]`` and the filtered iterator all become ordinary nodes
here, so the core AST has only twelve expression forms.  Two additional node
kinds (:class:`ExtCall`, :class:`IndirectCall`) appear only in *transformed*
(iterator-free) programs: they denote application of the depth-``d`` parallel
extension ``f^d`` introduced by the paper's rules R2c/T1.

All nodes carry an optional ``type`` attribute filled in by the type checker
and a source position for diagnostics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Optional

# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for all P expressions."""

    # NOTE: subclasses list their own fields; these shared attributes are
    # assigned post-construction to keep constructor signatures clean.
    def __post_init__(self) -> None:
        self.type: Any = None
        self.line: int = 0
        self.col: int = 0
        # provenance tag set by transform rules (e.g. "R2d", "R2d-guard",
        # "R2d-restrict") so the IR verifier can check rule-specific
        # postconditions without pattern-guessing over user-written code
        self.origin: str = ""

    def at(self, line: int, col: int) -> "Expr":
        """Attach a source position, returning self (builder style)."""
        self.line = line
        self.col = col
        return self


@dataclass
class Var(Expr):
    """Reference to a variable, parameter, or top-level function."""

    name: str


@dataclass
class IntLit(Expr):
    """Integer constant."""

    value: int


@dataclass
class BoolLit(Expr):
    """Boolean constant ``true`` / ``false``."""

    value: bool


@dataclass
class FloatLit(Expr):
    """Floating-point constant (the Float scalar extension)."""

    value: float


@dataclass
class SeqLit(Expr):
    """Sequence construction ``[e1, ..., en]`` (Table 2 ``seq_cons``)."""

    items: list[Expr]


@dataclass
class TupleLit(Expr):
    """Tuple construction ``(e1, ..., en)`` with n >= 2."""

    items: list[Expr]


@dataclass
class TupleExtract(Expr):
    """Tuple projection ``e.i`` with a *static* 1-origin index."""

    tup: Expr
    index: int


@dataclass
class Call(Expr):
    """Application ``(ef)(e1, ..., en)``.

    ``fn`` is an arbitrary expression; in first-order code it is a
    :class:`Var` naming a builtin or top-level function.
    """

    fn: Expr
    args: list[Expr]


@dataclass
class Lambda(Expr):
    """Fully-parameterized function value ``fn(x1, ..., xn) => e``.

    The paper requires function values to be fully parameterized: the body
    may reference only the parameters and top-level definitions.  The type
    checker enforces this.
    """

    params: list[str]
    body: Expr


@dataclass
class Let(Expr):
    """``let x = e1 in e2`` (single binding; parser unfolds multiples)."""

    var: str
    bound: Expr
    body: Expr


@dataclass
class If(Expr):
    """``if b then e1 else e2``."""

    cond: Expr
    then: Expr
    els: Expr


@dataclass
class Iter(Expr):
    """The iterator ``[x <- d: e]`` — the sole source of data parallelism.

    ``filter`` holds the optional predicate of ``[x <- d | b: e]``; the
    desugaring of section 2 (restrict the domain first) is applied by the
    canonicalization pass, not the parser, so the original form survives for
    pretty-printing and the rule trace.
    """

    var: str
    domain: Expr
    body: Expr
    filter: Optional[Expr] = None


# --- transformed-program (iterator-free) nodes -----------------------------


@dataclass
class ExtCall(Expr):
    """Application of the depth-``depth`` parallel extension ``fn^depth``.

    ``fn`` names a primitive or a monomorphized top-level function.
    ``arg_depths[i]`` records the *frame depth* of argument ``i`` as known
    statically by the transformation: either ``depth`` (a full frame) or
    ``0`` (a depth-0 value that the extension broadcasts — section 3's "we
    rely on parallel extensions of functions to replicate such single
    values").
    """

    fn: str
    args: list[Expr]
    depth: int
    arg_depths: list[int] = field(default_factory=list)


@dataclass
class IndirectCall(Expr):
    """Application of a function *value* at iteration depth ``depth``.

    ``fun`` evaluates to a function value (``fun_depth == 0``) or to a
    depth-``depth`` frame of function values (``fun_depth == depth``), in
    which case execution dispatches group-by-group over the distinct
    functions present (the paper's "translation of function values").
    """

    fun: Expr
    args: list[Expr]
    depth: int
    fun_depth: int
    arg_depths: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top-level forms
# ---------------------------------------------------------------------------


@dataclass
class FunDef:
    """Top-level definition ``fun name(x1, ..., xn) = body``.

    ``param_types``/``ret_type`` hold optional source annotations (parsed
    type expressions); after type checking they hold resolved types.
    """

    name: str
    params: list[str]
    body: Expr
    param_types: list[Any] | None = None
    ret_type: Any = None
    line: int = 0
    col: int = 0


@dataclass
class Program:
    """An ordered collection of top-level function definitions."""

    defs: dict[str, FunDef]

    def __iter__(self) -> Iterable[FunDef]:
        return iter(self.defs.values())

    def __getitem__(self, name: str) -> FunDef:
        return self.defs[name]

    def __contains__(self, name: str) -> bool:
        return name in self.defs


# ---------------------------------------------------------------------------
# Structural utilities
# ---------------------------------------------------------------------------

_counter = itertools.count()


def fresh_name(base: str = "t") -> str:
    """Return a program-unique identifier.  Generated names contain ``%`` so
    they can never collide with source identifiers."""
    return f"{base}%{next(_counter)}"


def reset_fresh_names() -> None:
    """Reset the fresh-name counter (test isolation only)."""
    global _counter
    _counter = itertools.count()


def children(e: Expr) -> list[Expr]:
    """All direct sub-expressions of ``e`` in evaluation order."""
    if isinstance(e, (Var, IntLit, BoolLit, FloatLit)):
        return []
    if isinstance(e, SeqLit):
        return list(e.items)
    if isinstance(e, TupleLit):
        return list(e.items)
    if isinstance(e, TupleExtract):
        return [e.tup]
    if isinstance(e, Call):
        return [e.fn, *e.args]
    if isinstance(e, Lambda):
        return [e.body]
    if isinstance(e, Let):
        return [e.bound, e.body]
    if isinstance(e, If):
        return [e.cond, e.then, e.els]
    if isinstance(e, Iter):
        out = [e.domain]
        if e.filter is not None:
            out.append(e.filter)
        out.append(e.body)
        return out
    if isinstance(e, ExtCall):
        return list(e.args)
    if isinstance(e, IndirectCall):
        return [e.fun, *e.args]
    raise TypeError(f"unknown expression node {type(e).__name__}")


def walk(e: Expr) -> Iterable[Expr]:
    """Pre-order traversal of the expression tree."""
    yield e
    for c in children(e):
        yield from walk(c)


def free_vars(e: Expr, bound: frozenset[str] = frozenset()) -> set[str]:
    """Free variable names of ``e`` (excluding names in ``bound``)."""
    if isinstance(e, Var):
        return set() if e.name in bound else {e.name}
    if isinstance(e, (IntLit, BoolLit, FloatLit)):
        return set()
    if isinstance(e, Lambda):
        return free_vars(e.body, bound | frozenset(e.params))
    if isinstance(e, Let):
        return free_vars(e.bound, bound) | free_vars(e.body, bound | {e.var})
    if isinstance(e, Iter):
        out = free_vars(e.domain, bound)
        inner = bound | {e.var}
        if e.filter is not None:
            out |= free_vars(e.filter, inner)
        out |= free_vars(e.body, inner)
        return out
    out: set[str] = set()
    for c in children(e):
        out |= free_vars(c, bound)
    return out


def _copy_node(e: Expr, **replacements: Any) -> Expr:
    """Shallow-copy ``e`` with some fields replaced, preserving position."""
    kwargs = {f.name: replacements.get(f.name, getattr(e, f.name)) for f in fields(e)}
    new = type(e)(**kwargs)
    new.type = e.type
    new.line, new.col = e.line, e.col
    new.origin = e.origin
    return new


def map_children(e: Expr, f) -> Expr:
    """Rebuild ``e`` applying ``f`` to each direct sub-expression."""
    if isinstance(e, (Var, IntLit, BoolLit, FloatLit)):
        return e
    if isinstance(e, SeqLit):
        return _copy_node(e, items=[f(c) for c in e.items])
    if isinstance(e, TupleLit):
        return _copy_node(e, items=[f(c) for c in e.items])
    if isinstance(e, TupleExtract):
        return _copy_node(e, tup=f(e.tup))
    if isinstance(e, Call):
        return _copy_node(e, fn=f(e.fn), args=[f(a) for a in e.args])
    if isinstance(e, Lambda):
        return _copy_node(e, body=f(e.body))
    if isinstance(e, Let):
        return _copy_node(e, bound=f(e.bound), body=f(e.body))
    if isinstance(e, If):
        return _copy_node(e, cond=f(e.cond), then=f(e.then), els=f(e.els))
    if isinstance(e, Iter):
        return _copy_node(
            e,
            domain=f(e.domain),
            body=f(e.body),
            filter=None if e.filter is None else f(e.filter),
        )
    if isinstance(e, ExtCall):
        return _copy_node(e, args=[f(a) for a in e.args])
    if isinstance(e, IndirectCall):
        return _copy_node(e, fun=f(e.fun), args=[f(a) for a in e.args])
    raise TypeError(f"unknown expression node {type(e).__name__}")


def substitute(e: Expr, mapping: dict[str, Expr]) -> Expr:
    """Capture-avoiding substitution of variables by expressions.

    Binders whose name would capture a free variable of a substituted
    expression are renamed with :func:`fresh_name`.  This implements the
    paper's ``e|x:=y`` notation used by rules R1 and R0.
    """
    if not mapping:
        return e
    if isinstance(e, Var):
        return mapping.get(e.name, e)
    if isinstance(e, (IntLit, BoolLit, FloatLit)):
        return e

    def clash(names: Iterable[str]) -> bool:
        needed = set()
        for v in mapping.values():
            needed |= free_vars(v)
        return any(n in needed for n in names)

    if isinstance(e, Lambda):
        # Fully-parameterized: body has no free non-global vars, but be safe.
        inner = {k: v for k, v in mapping.items() if k not in e.params}
        if not inner:
            return e
        if clash(e.params):
            renames = {p: fresh_name(p.split("%")[0]) for p in e.params}
            body = substitute(e.body, {p: Var(n) for p, n in renames.items()})
            new = _copy_node(e, params=[renames[p] for p in e.params],
                             body=substitute(body, inner))
            return new
        return _copy_node(e, body=substitute(e.body, inner))
    if isinstance(e, Let):
        bound = substitute(e.bound, mapping)
        inner = {k: v for k, v in mapping.items() if k != e.var}
        if inner and clash([e.var]):
            nv = fresh_name(e.var.split("%")[0])
            body = substitute(e.body, {e.var: Var(nv)})
            return _copy_node(e, var=nv, bound=bound, body=substitute(body, inner))
        return _copy_node(e, bound=bound, body=substitute(e.body, inner))
    if isinstance(e, Iter):
        domain = substitute(e.domain, mapping)
        inner = {k: v for k, v in mapping.items() if k != e.var}
        if inner and clash([e.var]):
            nv = fresh_name(e.var.split("%")[0])
            ren = {e.var: Var(nv)}
            body = substitute(e.body, ren)
            filt = None if e.filter is None else substitute(e.filter, ren)
            return _copy_node(
                e, var=nv, domain=domain,
                body=substitute(body, inner),
                filter=None if filt is None else substitute(filt, inner),
            )
        return _copy_node(
            e, domain=domain,
            body=substitute(e.body, inner),
            filter=None if e.filter is None else substitute(e.filter, inner),
        )
    return map_children(e, lambda c: substitute(c, mapping))


def clone(e: Expr) -> Expr:
    """Deep copy of an expression tree (fresh node objects, same names)."""
    if isinstance(e, (Var, IntLit, BoolLit, FloatLit)):
        return _copy_node(e)
    return map_children(e, clone)


def count_nodes(e: Expr) -> int:
    """Number of AST nodes in ``e`` (used by tests and the rule trace)."""
    return 1 + sum(count_nodes(c) for c in children(e))


def contains_iterator(e: Expr) -> bool:
    """True if any :class:`Iter` node occurs in ``e`` — the transformation's
    postcondition is that this is False for every function body."""
    return any(isinstance(n, Iter) for n in walk(e))
