"""Catalog of the basic functions of P (paper Table 2) plus the internal
primitives introduced by the transformation and the "extended" primitives of
section 4.5.

Each entry carries a *type scheme* (instantiated fresh at every use site), a
category, and per-argument metadata used by the section-4.5 optimization
("certain functions may have parameters that should not be extracted and
inserted" — e.g. the source argument of ``seq_index``).

Notes on ``dist``
-----------------
Section 3 defines the base ``dist(c, r) = [i <- [1..r]: c]`` taking a single
value and a count; Table 2 shows the *depth-k* version acting elementwise
(``dist([3,4,5],[3,2,1]) = [[3,3,3],[4,4,4],[5]]``), which is exactly the
depth-1 parallel extension of the base form.  The builtin here is the base
form; the Table-2 behaviour is the prelude function ``distribute`` (defined
in P itself) or equivalently ``dist``'s parallel extension, which is what the
transformation emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.lang import types as T
from repro.lang.types import BOOL, FLOAT, INT, TFun, TSeq, Type, fresh_tvar


@dataclass(frozen=True)
class Builtin:
    """Static description of one primitive function."""

    name: str
    scheme: Callable[[], TFun]
    category: str  # "scalar" | "seq" | "internal" | "extended"
    #: 0-based positions of arguments that the section-4.5 optimization may
    #: leave at depth 0 (shared) instead of replicating to the frame depth.
    shared_args: frozenset[int] = field(default_factory=frozenset)
    #: True if the primitive is pure elementwise on scalar leaves, so its
    #: depth-d extension is the same flat kernel for every d.
    elementwise: bool = False

    def fresh_type(self) -> TFun:
        """A fresh instantiation of the signature."""
        return self.scheme()


def _ii_i() -> TFun:
    return TFun((INT, INT), INT)


def _nn_n() -> TFun:
    a = fresh_tvar(numeric_only=True)
    return TFun((a, a), a)


def _n_n() -> TFun:
    a = fresh_tvar(numeric_only=True)
    return TFun((a,), a)


def _nn_b() -> TFun:
    a = fresh_tvar(numeric_only=True)
    return TFun((a, a), BOOL)


def _bb_b() -> TFun:
    return TFun((BOOL, BOOL), BOOL)


_TABLE: dict[str, Builtin] = {}


def _def(name: str, scheme: Callable[[], TFun], category: str,
         shared: tuple[int, ...] = (), elementwise: bool = False) -> None:
    _TABLE[name] = Builtin(name, scheme, category, frozenset(shared), elementwise)


# -- scalar functions (Table 2 row 1; arithmetic is numeric-polymorphic
#    over int and the Float extension, division stays integral) -------------
for _n in ("add", "sub", "mul", "max2", "min2"):
    _def(_n, _nn_n, "scalar", elementwise=True)
for _n in ("div", "mod"):
    _def(_n, _ii_i, "scalar", elementwise=True)
for _n in ("lt", "le", "gt", "ge"):
    _def(_n, _nn_b, "scalar", elementwise=True)
for _n in ("and_", "or_"):
    _def(_n, _bb_b, "scalar", elementwise=True)
_def("not_", lambda: TFun((BOOL,), BOOL), "scalar", elementwise=True)
_def("neg", _n_n, "scalar", elementwise=True)
_def("abs_", _n_n, "scalar", elementwise=True)

# float-specific arithmetic and conversions (scalar extension)
_def("fdiv", lambda: TFun((FLOAT, FLOAT), FLOAT), "scalar", elementwise=True)
_def("sqrt_", lambda: TFun((FLOAT,), FLOAT), "scalar", elementwise=True)
_def("real", lambda: TFun((INT,), FLOAT), "scalar", elementwise=True)
_def("trunc_", lambda: TFun((FLOAT,), INT), "scalar", elementwise=True)
_def("round_", lambda: TFun((FLOAT,), INT), "scalar", elementwise=True)
_def("floor_", lambda: TFun((FLOAT,), INT), "scalar", elementwise=True)
_def("ceil_", lambda: TFun((FLOAT,), INT), "scalar", elementwise=True)


def _eq_scheme() -> TFun:
    a = fresh_tvar(scalar_only=True)
    return TFun((a, a), BOOL)


_def("eq", _eq_scheme, "scalar", elementwise=True)
_def("ne", _eq_scheme, "scalar", elementwise=True)

# -- sequence functions (Table 2 rows 5-11) ---------------------------------


def _length_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(a),), INT)


def _range_scheme() -> TFun:
    return TFun((INT, INT), TSeq(INT))


def _range1_scheme() -> TFun:
    return TFun((INT,), TSeq(INT))


def _index_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(a), INT), a)


def _update_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(a), INT, a), TSeq(a))


def _restrict_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(a), TSeq(BOOL)), TSeq(a))


def _combine_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(BOOL), TSeq(a), TSeq(a)), TSeq(a))


def _dist_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((a, INT), TSeq(a))


_def("length", _length_scheme, "seq")
_def("range", _range_scheme, "seq")
_def("range1", _range1_scheme, "seq")
_def("seq_index", _index_scheme, "seq", shared=(0,))
_def("seq_update", _update_scheme, "seq", shared=(0,))
_def("restrict", _restrict_scheme, "seq")
_def("combine", _combine_scheme, "seq")
_def("dist", _dist_scheme, "seq")

# -- extended primitives (section 4.5: "advantageous to increase the set of
#    predefined functions in V") -------------------------------------------


def _flatten_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(TSeq(a)),), TSeq(a))


def _concat_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(a), TSeq(a)), TSeq(a))


_def("flatten", _flatten_scheme, "extended")
_def("concat", _concat_scheme, "extended")
def _agg_scheme() -> TFun:
    a = fresh_tvar(numeric_only=True)
    return TFun((TSeq(a),), a)


def _scan_scheme() -> TFun:
    a = fresh_tvar(numeric_only=True)
    return TFun((TSeq(a),), TSeq(a))


_def("sum", _agg_scheme, "extended")
_def("maxval", _agg_scheme, "extended")
_def("minval", _agg_scheme, "extended")
_def("anytrue", lambda: TFun((TSeq(BOOL),), BOOL), "extended")
_def("alltrue", lambda: TFun((TSeq(BOOL),), BOOL), "extended")
_def("plus_scan", _scan_scheme, "extended")
_def("max_scan", _scan_scheme, "extended")


def _rank_scheme() -> TFun:
    a = fresh_tvar(numeric_only=True)
    return TFun((TSeq(a),), TSeq(INT))


def _permute_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((TSeq(a), TSeq(INT)), TSeq(a))


# rank and permute are primitives of CVL itself; with them, sorting is
# expressible in P as permute(v, rank(v)) (see the prelude)
_def("rank", _rank_scheme, "extended")
_def("permute", _permute_scheme, "extended")

# -- internal primitives emitted by the transformation -----------------------
# __rep(w, c): replicate depth-0 value c over the frame of witness w.
# __any(m):    True iff any element of the (arbitrarily nested) bool frame m.
# __empty(m):  empty frame shaped like m; element type comes from node.type.


def _rep_scheme() -> TFun:
    w = fresh_tvar()
    a = fresh_tvar()
    return TFun((w, a), a)


def _any_scheme() -> TFun:
    a = fresh_tvar()
    return TFun((a,), BOOL)


def _empty_scheme() -> TFun:
    a = fresh_tvar()
    b = fresh_tvar()
    return TFun((a,), b)


_def("__rep", _rep_scheme, "internal")
_def("__any", _any_scheme, "internal")
_def("__empty", _empty_scheme, "internal")


def is_builtin(name: str) -> bool:
    return name in _TABLE


def get_builtin(name: str) -> Builtin:
    return _TABLE[name]


def all_builtins() -> dict[str, Builtin]:
    """Read-only view of the catalog (tests iterate over it)."""
    return dict(_TABLE)


#: Builtin names that user programs may reference (internal ones excluded).
SURFACE_BUILTINS = frozenset(n for n, b in _TABLE.items() if b.category != "internal")
