"""Recursive-descent parser for P.

Operator syntax desugars to calls of the Table-2 primitives:

====================  =========================
source                core AST
====================  =========================
``a + b``             ``Call(Var("add"), [a,b])``
``a mod b``           ``Call(Var("mod"), [a,b])``
``#e``                ``Call(Var("length"), [e])``
``v[i]``              ``Call(Var("seq_index"), [v,i])``
``[a .. b]``          ``Call(Var("range"), [a,b])``
``-e``                ``Call(Var("neg"), [e])``
====================  =========================

so the transformation and both back ends see a uniform application form, and
primitives remain *first-class*: ``reduce(add, v)`` passes the same ``add``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.lang import ast as A
from repro.lang import types as T
from repro.lang.tokens import Token, tokenize

# binary operator token -> (builtin name, precedence); higher binds tighter
_BINOPS = {
    "or": ("or_", 1),
    "and": ("and_", 2),
    "==": ("eq", 3),
    "!=": ("ne", 3),
    "<": ("lt", 3),
    "<=": ("le", 3),
    ">": ("gt", 3),
    ">=": ("ge", 3),
    "+": ("add", 4),
    "-": ("sub", 4),
    "*": ("mul", 5),
    "/": ("div", 5),
    "div": ("div", 5),
    "mod": ("mod", 5),
}

_NONASSOC_PREC = {3}  # comparisons do not chain


class _Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def at(self, text: str) -> bool:
        t = self.peek()
        return t.text == text and t.kind in ("op", "kw")

    def accept(self, text: str) -> Optional[Token]:
        if self.at(text):
            return self.next()
        return None

    def expect(self, text: str, what: str = "") -> Token:
        if self.at(text):
            return self.next()
        t = self.peek()
        ctx = f" while parsing {what}" if what else ""
        raise ParseError(f"expected {text!r}, found {t.text!r}{ctx}", t.line, t.col)

    def expect_ident(self, what: str = "identifier") -> Token:
        t = self.peek()
        if t.kind != "ident":
            raise ParseError(f"expected {what}, found {t.text!r}", t.line, t.col)
        return self.next()

    # -- program ------------------------------------------------------------

    def parse_program(self) -> A.Program:
        defs: dict[str, A.FunDef] = {}
        while self.peek().kind != "eof":
            d = self.parse_def()
            if d.name in defs:
                raise ParseError(f"duplicate definition of {d.name!r}", d.line, d.col)
            defs[d.name] = d
        return A.Program(defs)

    def parse_def(self) -> A.FunDef:
        kw = self.expect("fun", "definition")
        name = self.expect_ident("function name").text
        self.expect("(", f"parameters of {name}")
        params: list[str] = []
        ptypes: list[Optional[T.Type]] = []
        if not self.at(")"):
            while True:
                p = self.expect_ident("parameter name")
                params.append(p.text)
                if self.accept(":"):
                    ptypes.append(self.parse_type())
                else:
                    ptypes.append(None)
                if not self.accept(","):
                    break
        self.expect(")", f"parameters of {name}")
        ret: Optional[T.Type] = None
        if self.accept(":"):
            ret = self.parse_type()
        self.expect("=", f"body of {name}")
        body = self.parse_expr()
        self.accept(";")
        has_ann = any(t is not None for t in ptypes)
        d = A.FunDef(
            name=name,
            params=params,
            body=body,
            param_types=ptypes if has_ann else None,
            ret_type=ret,
        )
        d.line, d.col = kw.line, kw.col
        return d

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> T.Type:
        t = self.peek()
        if self.accept("int"):
            return T.INT
        if self.accept("bool"):
            return T.BOOL
        if self.accept("float"):
            return T.FLOAT
        if self.accept("seq"):
            self.expect("(", "seq type")
            inner = self.parse_type()
            self.expect(")", "seq type")
            return T.TSeq(inner)
        if self.accept("("):
            items: list[T.Type] = []
            if not self.at(")"):
                while True:
                    items.append(self.parse_type())
                    if not self.accept(","):
                        break
            self.expect(")", "type")
            if self.accept("->"):
                return T.TFun(tuple(items), self.parse_type())
            if len(items) == 1:
                return items[0]
            return T.TTuple(tuple(items))
        raise ParseError(f"expected a type, found {t.text!r}", t.line, t.col)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        if self.at("let"):
            return self.parse_let()
        if self.at("if"):
            return self.parse_if()
        if self.at("fn"):
            return self.parse_lambda()
        return self.parse_binary(1)

    def parse_let(self) -> A.Expr:
        kw = self.expect("let")
        bindings: list[tuple[str, A.Expr]] = []
        while True:
            name = self.expect_ident("let-bound variable").text
            self.expect("=", "let binding")
            bindings.append((name, self.parse_expr()))
            if not self.accept(","):
                break
        self.expect("in", "let expression")
        body = self.parse_expr()
        for name, bound in reversed(bindings):
            body = A.Let(name, bound, body).at(kw.line, kw.col)
        return body

    def parse_if(self) -> A.Expr:
        kw = self.expect("if")
        cond = self.parse_expr()
        self.expect("then", "conditional")
        then = self.parse_expr()
        self.expect("else", "conditional")
        els = self.parse_expr()
        return A.If(cond, then, els).at(kw.line, kw.col)

    def parse_lambda(self) -> A.Expr:
        kw = self.expect("fn")
        self.expect("(", "lambda parameters")
        params: list[str] = []
        if not self.at(")"):
            while True:
                params.append(self.expect_ident("lambda parameter").text)
                if not self.accept(","):
                    break
        self.expect(")", "lambda parameters")
        self.expect("=>", "lambda body")
        body = self.parse_expr()
        return A.Lambda(params, body).at(kw.line, kw.col)

    def parse_binary(self, min_prec: int) -> A.Expr:
        left = self.parse_unary()
        while True:
            t = self.peek()
            info = _BINOPS.get(t.text) if t.kind in ("op", "kw") else None
            if info is None or info[1] < min_prec:
                return left
            name, prec = info
            self.next()
            right = self.parse_binary(prec + 1)
            left = A.Call(A.Var(name).at(t.line, t.col), [left, right]).at(t.line, t.col)
            if prec in _NONASSOC_PREC:
                nxt = self.peek()
                ninfo = _BINOPS.get(nxt.text) if nxt.kind in ("op", "kw") else None
                if ninfo is not None and ninfo[1] == prec:
                    raise ParseError(
                        f"comparison operators do not chain; parenthesize around {nxt.text!r}",
                        nxt.line, nxt.col)

    def parse_unary(self) -> A.Expr:
        t = self.peek()
        if self.accept("-"):
            return A.Call(A.Var("neg").at(t.line, t.col), [self.parse_unary()]).at(t.line, t.col)
        if self.accept("#"):
            return A.Call(A.Var("length").at(t.line, t.col), [self.parse_unary()]).at(t.line, t.col)
        if self.accept("not"):
            return A.Call(A.Var("not_").at(t.line, t.col), [self.parse_unary()]).at(t.line, t.col)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        e = self.parse_atom()
        while True:
            t = self.peek()
            if self.at("["):
                self.next()
                idx = self.parse_expr()
                self.expect("]", "index")
                e = A.Call(A.Var("seq_index").at(t.line, t.col), [e, idx]).at(t.line, t.col)
            elif self.at("("):
                self.next()
                args: list[A.Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")", "call arguments")
                e = A.Call(e, args).at(t.line, t.col)
            elif self.at(".") and self.peek(1).kind in ("int", "float"):
                self.next()
                idx = self.next()
                if idx.kind == "int":
                    e = A.TupleExtract(e, int(idx.text)).at(t.line, t.col)
                else:
                    # chained projection `p.1.2`: the lexer greedily read
                    # "1.2" as a float — split it back into two indices
                    parts = idx.text.split(".")
                    if len(parts) != 2 or not all(x.isdigit() for x in parts):
                        raise ParseError(
                            f"bad tuple projection .{idx.text}",
                            idx.line, idx.col)
                    e = A.TupleExtract(e, int(parts[0])).at(t.line, t.col)
                    e = A.TupleExtract(e, int(parts[1])).at(t.line, t.col)
            else:
                return e

    def parse_atom(self) -> A.Expr:
        t = self.peek()
        if t.kind == "int":
            self.next()
            return A.IntLit(int(t.text)).at(t.line, t.col)
        if t.kind == "float":
            self.next()
            return A.FloatLit(float(t.text)).at(t.line, t.col)
        if self.accept("true"):
            return A.BoolLit(True).at(t.line, t.col)
        if self.accept("false"):
            return A.BoolLit(False).at(t.line, t.col)
        if t.kind == "ident":
            self.next()
            return A.Var(t.text).at(t.line, t.col)
        if self.at("("):
            self.next()
            first = self.parse_expr()
            if self.accept(","):
                items = [first]
                while True:
                    items.append(self.parse_expr())
                    if not self.accept(","):
                        break
                self.expect(")", "tuple")
                return A.TupleLit(items).at(t.line, t.col)
            if self.at(";"):
                # Table 2 seq_update syntax: (s; [i1][i2]...: v)
                self.next()
                idxs: list[A.Expr] = []
                while self.accept("["):
                    idxs.append(self.parse_expr())
                    self.expect("]", "update index")
                if not idxs:
                    raise ParseError("expected [index] in update expression",
                                     t.line, t.col)
                self.expect(":", "update expression")
                val = self.parse_expr()
                self.expect(")", "update expression")
                return _desugar_update(first, idxs, val).at(t.line, t.col)
            self.expect(")", "parenthesized expression")
            return first
        if self.at("["):
            return self.parse_bracket()
        raise ParseError(f"expected an expression, found {t.text!r}", t.line, t.col)

    def parse_bracket(self) -> A.Expr:
        """Disambiguate ``[]`` / ``[e, ...]`` / ``[a .. b]`` / ``[x <- d: e]``."""
        t = self.expect("[")
        if self.accept("]"):
            return A.SeqLit([]).at(t.line, t.col)
        # iterator: ident '<-' ...
        if self.peek().kind == "ident" and self.peek(1).text == "<-":
            var = self.next().text
            self.next()  # <-
            domain = self.parse_expr()
            filt: Optional[A.Expr] = None
            if self.accept("|"):
                filt = self.parse_expr()
            self.expect(":", "iterator")
            body = self.parse_expr()
            self.expect("]", "iterator")
            return A.Iter(var, domain, body, filt).at(t.line, t.col)
        first = self.parse_expr()
        if self.accept(".."):
            hi = self.parse_expr()
            self.expect("]", "range")
            return A.Call(A.Var("range").at(t.line, t.col), [first, hi]).at(t.line, t.col)
        items = [first]
        while self.accept(","):
            items.append(self.parse_expr())
        self.expect("]", "sequence literal")
        return A.SeqLit(items).at(t.line, t.col)


def _desugar_update(src: A.Expr, idxs: list[A.Expr], val: A.Expr) -> A.Expr:
    """Table 2's deep update ``(s; [i1]...[ik]: v)``:

        (s; [i]: v)     == seq_update(s, i, v)
        (s; [i]...: v)  == let s' = s, i' = i
                           in seq_update(s', i', (s'[i']; ...: v))
    """
    if len(idxs) == 1:
        return A.Call(A.Var("seq_update"), [src, idxs[0], val])
    sv, iv = A.fresh_name("s"), A.fresh_name("i")
    inner_src = A.Call(A.Var("seq_index"), [A.Var(sv), A.Var(iv)])
    inner = _desugar_update(inner_src, idxs[1:], val)
    upd = A.Call(A.Var("seq_update"), [A.Var(sv), A.Var(iv), inner])
    return A.Let(sv, src, A.Let(iv, idxs[0], upd))


def parse_program(source: str) -> A.Program:
    """Parse a whole P program (a sequence of ``fun`` definitions)."""
    p = _Parser(source)
    return p.parse_program()


def parse_expression(source: str) -> A.Expr:
    """Parse a single P expression (used by the REPL-style API and tests)."""
    p = _Parser(source)
    e = p.parse_expr()
    t = p.peek()
    if t.kind != "eof":
        raise ParseError(f"trailing input: {t.text!r}", t.line, t.col)
    return e
