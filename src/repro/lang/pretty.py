"""Pretty printer for P expressions and programs.

Re-sugars the parser's desugarings (``add`` back to ``+``, ``length`` to
``#``, ``seq_index`` to ``v[i]``, ``range`` to ``[a .. b]``) so transformed
programs print in the notation of the paper; parallel extensions print as
``f^j(...)`` exactly as in section 5.
"""

from __future__ import annotations

from repro.lang import ast as A

_INFIX = {
    "add": ("+", 4), "sub": ("-", 4), "mul": ("*", 5), "div": ("div", 5),
    "mod": ("mod", 5), "eq": ("==", 3), "ne": ("!=", 3), "lt": ("<", 3),
    "le": ("<=", 3), "gt": (">", 3), "ge": (">=", 3), "and_": ("and", 2),
    "or_": ("or", 1),
}

_ATOM_PREC = 100
_UNARY_PREC = 6


def pretty(e: A.Expr, indent: int = 0) -> str:
    """Render ``e`` in P concrete syntax."""
    return _pp(e, 0, indent)


def pretty_def(d: A.FunDef) -> str:
    """Render a function definition."""
    params = ", ".join(d.params)
    body = _pp(d.body, 0, 1)
    return f"fun {d.name}({params}) =\n  {body}"


def pretty_program(p: A.Program) -> str:
    return "\n\n".join(pretty_def(d) for d in p)


def _paren(s: str, inner_prec: int, outer_prec: int) -> str:
    return f"({s})" if inner_prec < outer_prec else s


def _pp(e: A.Expr, prec: int, ind: int) -> str:
    pad = "  " * ind

    if isinstance(e, A.Var):
        return e.name
    if isinstance(e, A.IntLit):
        return str(e.value)
    if isinstance(e, A.BoolLit):
        return "true" if e.value else "false"
    if isinstance(e, A.FloatLit):
        return repr(e.value)
    if isinstance(e, A.SeqLit):
        return "[" + ", ".join(_pp(x, 0, ind) for x in e.items) + "]"
    if isinstance(e, A.TupleLit):
        return "(" + ", ".join(_pp(x, 0, ind) for x in e.items) + ")"
    if isinstance(e, A.TupleExtract):
        return f"{_pp(e.tup, _ATOM_PREC, ind)}.{e.index}"
    if isinstance(e, A.Lambda):
        return _paren(f"fn({', '.join(e.params)}) => {_pp(e.body, 0, ind)}", 0, prec)
    if isinstance(e, A.Let):
        # collapse nested lets into one binding list, as the paper writes them
        binds = []
        cur: A.Expr = e
        while isinstance(cur, A.Let):
            binds.append((cur.var, cur.bound))
            cur = cur.body
        bs = (",\n" + pad + "    ").join(
            f"{v} = {_pp(b, 0, ind + 2)}" for v, b in binds)
        return _paren(
            f"let {bs}\n{pad}in {_pp(cur, 0, ind + 1)}", 0, prec)
    if isinstance(e, A.If):
        return _paren(
            f"if {_pp(e.cond, 0, ind)}\n{pad}  then {_pp(e.then, 0, ind + 1)}"
            f"\n{pad}  else {_pp(e.els, 0, ind + 1)}", 0, prec)
    if isinstance(e, A.Iter):
        dom = _pp(e.domain, 0, ind)
        flt = "" if e.filter is None else f" | {_pp(e.filter, 0, ind)}"
        return f"[{e.var} <- {dom}{flt}: {_pp(e.body, 0, ind)}]"
    if isinstance(e, A.Call):
        return _pp_call(e, prec, ind)
    if isinstance(e, A.ExtCall):
        sup = f"^{e.depth}" if e.depth else ""
        args = ", ".join(_pp(a, 0, ind) for a in e.args)
        return f"{_display_name(e.fn)}{sup}({args})"
    if isinstance(e, A.IndirectCall):
        sup = f"^{e.depth}" if e.depth else ""
        args = ", ".join(_pp(a, 0, ind) for a in e.args)
        return f"({_pp(e.fun, _ATOM_PREC, ind)}){sup}({args})"
    raise TypeError(f"cannot pretty-print {type(e).__name__}")


_DISPLAY = {"and_": "and", "or_": "or", "not_": "not", "abs_": "abs"}


def _display_name(n: str) -> str:
    return _DISPLAY.get(n, n)


def _pp_call(e: A.Call, prec: int, ind: int) -> str:
    if isinstance(e.fn, A.Var):
        name = e.fn.name
        if name in _INFIX and len(e.args) == 2:
            sym, p = _INFIX[name]
            lhs = _pp(e.args[0], p, ind)
            rhs = _pp(e.args[1], p + 1, ind)
            return _paren(f"{lhs} {sym} {rhs}", p, prec)
        if name == "neg" and len(e.args) == 1:
            return _paren(f"-{_pp(e.args[0], _UNARY_PREC, ind)}", _UNARY_PREC, prec)
        if name == "not_" and len(e.args) == 1:
            return _paren(f"not {_pp(e.args[0], _UNARY_PREC, ind)}", _UNARY_PREC, prec)
        if name == "length" and len(e.args) == 1:
            return _paren(f"#{_pp(e.args[0], _UNARY_PREC, ind)}", _UNARY_PREC, prec)
        if name == "seq_index" and len(e.args) == 2:
            return f"{_pp(e.args[0], _ATOM_PREC, ind)}[{_pp(e.args[1], 0, ind)}]"
        if name == "range" and len(e.args) == 2:
            return f"[{_pp(e.args[0], 0, ind)} .. {_pp(e.args[1], 0, ind)}]"
        args = ", ".join(_pp(a, 0, ind) for a in e.args)
        return f"{_display_name(name)}({args})"
    args = ", ".join(_pp(a, 0, ind) for a in e.args)
    return f"({_pp(e.fn, 0, ind)})({args})"
