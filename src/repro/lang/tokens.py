"""Lexer for the P language (the Proteus expression subset of the paper).

The concrete syntax follows the paper closely:

* iterators        ``[x <- d: e]`` and ``[x <- d | b: e]``
* ranges           ``[e1 .. e2]``
* sequence literal ``[e1, e2, e3]``
* length           ``#e``
* lambda           ``fn(x, y) => e``   (the paper writes ``fun (x,..) e``)
* let              ``let x = e1 in e2``  (multiple bindings separated by ``,``)
* conditionals     ``if b then e1 else e2``
* tuple extract    ``e.1`` (index origin 1, as everywhere in P)
* definitions      ``fun name(x, y) = body``

Tokens carry line/column information for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LexError

# Token kinds ---------------------------------------------------------------

KEYWORDS = {
    "fun", "fn", "let", "in", "if", "then", "else",
    "and", "or", "not", "mod", "div",
    "true", "false",
    # type keywords (annotations are optional in source)
    "int", "bool", "float", "seq",
}

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "<-", "=>", "->", "..", "==", "!=", "<=", ">=",
    "+", "-", "*", "/", "<", ">", "=", "#",
    "(", ")", "[", "]", "{", "}", ",", ":", ";", "|", ".",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``"int"``, ``"ident"``, ``"kw"``, ``"op"``, ``"eof"``;
    ``text`` is the matched source text (for ``int`` the digit string).
    """

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into a list of tokens ending with an ``eof`` token.

    Comments run from ``--`` to end of line.  Raises :class:`LexError` on any
    character that cannot start a token.
    """
    toks: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments: -- to end of line
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        # numeric literals: integers, and floats of the form d+.d+([eE][+-]?d+)?
        # (the fractional digits are required so ``1..5`` and ``p.1`` lex as
        # integer / dot tokens, never as floats)
        if ch.isdigit():
            start = i
            startcol = col
            while i < n and source[i].isdigit():
                advance(1)
            is_float = False
            if (i + 1 < n and source[i] == "." and source[i + 1].isdigit()):
                is_float = True
                advance(1)
                while i < n and source[i].isdigit():
                    advance(1)
            if is_float and i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    while i < j:
                        advance(1)
                    while i < n and source[i].isdigit():
                        advance(1)
            kind = "float" if is_float else "int"
            toks.append(Token(kind, source[start:i], line, startcol))
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            startcol = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            toks.append(Token(kind, text, line, startcol))
            continue
        # operators / punctuation
        for op in OPERATORS:
            if source.startswith(op, i):
                # disambiguate ".." from "." followed by "."
                toks.append(Token("op", op, line, col))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    toks.append(Token("eof", "", line, col))
    return toks


def token_stream(source: str) -> Iterator[Token]:
    """Convenience generator over :func:`tokenize`."""
    yield from tokenize(source)
