"""Front end for the Proteus expression subset P (Prins & Palmer, PPoPP'93).

Submodules:

* :mod:`repro.lang.tokens`    -- lexer for P source text
* :mod:`repro.lang.ast`       -- abstract syntax tree node classes
* :mod:`repro.lang.parser`    -- recursive-descent parser
* :mod:`repro.lang.types`     -- the type language (Int, Bool, Seq, tuples, functions)
* :mod:`repro.lang.builtins`  -- Table-2 primitive signatures
* :mod:`repro.lang.typecheck` -- unification-based static typing + monomorphization
* :mod:`repro.lang.pretty`    -- pretty printer (P concrete syntax)
* :mod:`repro.lang.prelude`   -- derived functions written in P itself
"""

from repro.lang.parser import parse_program, parse_expression
from repro.lang.typecheck import typecheck_program
from repro.lang.pretty import pretty

__all__ = ["parse_program", "parse_expression", "typecheck_program", "pretty"]
