"""Reference semantics for P: a per-element interpreter that sequentially
simulates the parallel semantics and measures machine-independent work and
step (span) complexity, as described in the paper's introduction."""

from repro.interp.interpreter import Interpreter
from repro.interp.cost import CostReport

__all__ = ["Interpreter", "CostReport"]
