"""Machine-independent cost accounting for the reference interpreter.

The paper's introduction: a P program "can be simulated sequentially, to
observe its behavior and make measurements of machine-independent
characteristics such as total work and available concurrency."

We use the standard work/span model:

* **work** — total number of elementary operations, with aggregate
  primitives charged their output/input size (``range(1,n)`` costs n,
  ``restrict`` costs the mask length, ...);
* **span** (step complexity) — the length of the critical path, where the
  body evaluations of an iterator count in *parallel* (max, not sum), since
  the iterator is P's sole source of parallelism;
* **available concurrency** = work / span.

The per-primitive work rules live in one shared table,
:data:`COST_RULES`: the interpreter charges ``prim_work`` (the table
evaluated on concrete values) and the static cost analysis
(:mod:`repro.analysis.cost`) evaluates the *same* table symbolically, so
dynamic and static accounting agree by construction
(``tests/analysis/test_cost_table.py`` pins that they never diverge on
the primitive list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["CostReport", "CostRule", "COST_RULES", "UNIT", "ARG0_LEN",
           "ARGS01_LEN", "RESULT_LEN", "ARG1_SCALAR", "FLAT_ARG0",
           "cost_rule", "prim_work"]


@dataclass
class CostReport:
    """Work/span totals for one evaluation."""

    work: int = 0
    span: int = 0

    @property
    def concurrency(self) -> float:
        """Average available concurrency (work per step)."""
        return self.work / self.span if self.span else 0.0

    def __str__(self) -> str:
        return (f"work={self.work} span={self.span} "
                f"concurrency={self.concurrency:.1f}")


# -- the shared per-primitive work table -------------------------------------

#: How a primitive's work is measured, shared between the interpreter
#: (evaluated on concrete values by :func:`prim_work`) and the static
#: cost analysis (evaluated on symbolic size polynomials).  One
#: application of the primitive costs ``max(1, <measure>)``.
UNIT = "unit"                 #: constant: one elementary operation
ARG0_LEN = "arg0-len"         #: length of the first argument
ARGS01_LEN = "args01-len"     #: length of arg 0 plus length of arg 1
RESULT_LEN = "result-len"     #: length of the constructed result
ARG1_SCALAR = "arg1-scalar"   #: the scalar value of argument 1 (a count)
FLAT_ARG0 = "flat-arg0"       #: total elements one level down in arg 0


@dataclass(frozen=True)
class CostRule:
    """Work measure for one primitive, plus the rationale."""

    measure: str
    why: str


#: Work rule for every primitive the interpreter implements.  Primitives
#: not listed are scalar (unit work).  ``n`` denotes the measured size.
COST_RULES: dict[str, CostRule] = {
    "length": CostRule(UNIT, "reads one descriptor"),
    "range": CostRule(RESULT_LEN, "constructs n values"),
    "range1": CostRule(RESULT_LEN, "constructs n values"),
    "seq_index": CostRule(UNIT, "one offset computation + load"),
    "seq_update": CostRule(ARG0_LEN, "applicative update copies"),
    "restrict": CostRule(ARG0_LEN, "pack touches the whole mask length"),
    "combine": CostRule(ARG0_LEN, "merge touches the whole mask length"),
    "dist": CostRule(ARG1_SCALAR, "replicates the value n times"),
    "concat": CostRule(ARGS01_LEN, "copies both inputs"),
    "flatten": CostRule(FLAT_ARG0, "pools all inner elements"),
    "sum": CostRule(ARG0_LEN, "reduction over n elements"),
    "maxval": CostRule(ARG0_LEN, "reduction over n elements"),
    "minval": CostRule(ARG0_LEN, "reduction over n elements"),
    "anytrue": CostRule(ARG0_LEN, "reduction over n elements"),
    "alltrue": CostRule(ARG0_LEN, "reduction over n elements"),
    "plus_scan": CostRule(ARG0_LEN, "scan over n elements"),
    "max_scan": CostRule(ARG0_LEN, "scan over n elements"),
    "rank": CostRule(ARG0_LEN, "sorting permutation over n elements"),
    "permute": CostRule(ARG0_LEN, "scatter of n elements"),
}

_DEFAULT_RULE = CostRule(UNIT, "scalar primitive")


def cost_rule(name: str) -> CostRule:
    """The work rule for primitive ``name`` (unit work if unlisted)."""
    return COST_RULES.get(name, _DEFAULT_RULE)


def prim_work(name: str, args: list[Any], result: Any) -> int:
    """Work charged for one application of primitive ``name`` — the
    shared :data:`COST_RULES` table evaluated on concrete values."""
    m = cost_rule(name).measure
    if m == UNIT:
        return 1
    if m == RESULT_LEN:
        return max(1, len(result))
    if m == ARG0_LEN:
        return max(1, len(args[0]))
    if m == ARGS01_LEN:
        return max(1, len(args[0]) + len(args[1]))
    if m == ARG1_SCALAR:
        return max(1, args[1])
    if m == FLAT_ARG0:
        return max(1, sum(len(x) for x in args[0]))
    raise AssertionError(f"unknown cost measure {m!r}")
