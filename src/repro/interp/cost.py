"""Machine-independent cost accounting for the reference interpreter.

The paper's introduction: a P program "can be simulated sequentially, to
observe its behavior and make measurements of machine-independent
characteristics such as total work and available concurrency."

We use the standard work/span model:

* **work** — total number of elementary operations, with aggregate
  primitives charged their output/input size (``range(1,n)`` costs n,
  ``restrict`` costs the mask length, ...);
* **span** (step complexity) — the length of the critical path, where the
  body evaluations of an iterator count in *parallel* (max, not sum), since
  the iterator is P's sole source of parallelism;
* **available concurrency** = work / span.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostReport:
    """Work/span totals for one evaluation."""

    work: int = 0
    span: int = 0

    @property
    def concurrency(self) -> float:
        """Average available concurrency (work per step)."""
        return self.work / self.span if self.span else 0.0

    def __str__(self) -> str:
        return (f"work={self.work} span={self.span} "
                f"concurrency={self.concurrency:.1f}")


#: Cost (work) of each primitive as a function of its argument values.
#: ``n`` below denotes the relevant sequence length.
def prim_work(name: str, args: list, result) -> int:
    """Work charged for one application of primitive ``name``."""
    if name in ("length",):
        return 1
    if name == "range":
        return max(1, len(result))
    if name == "range1":
        return max(1, len(result))
    if name == "seq_index":
        return 1
    if name == "seq_update":
        return max(1, len(args[0]))  # applicative update copies
    if name == "restrict":
        return max(1, len(args[0]))
    if name == "combine":
        return max(1, len(args[0]))
    if name == "dist":
        return max(1, args[1])
    if name in ("concat",):
        return max(1, len(args[0]) + len(args[1]))
    if name == "flatten":
        return max(1, sum(len(x) for x in args[0]))
    if name in ("sum", "maxval", "minval", "anytrue", "alltrue",
                "plus_scan", "max_scan", "rank", "permute"):
        return max(1, len(args[0]))
    # scalar ops and everything else: unit work
    return 1
