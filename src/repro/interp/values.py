"""Runtime values of the reference interpreter.

P values map directly onto Python values:

=============  =======================
P type         Python representation
=============  =======================
Int            int
Bool           bool
Seq(T)         list
(T1, ..., Tn)  tuple
function       :class:`FunVal`
=============  =======================

:func:`check_value` validates a Python value against a P type (used by the
public API to check entry-point arguments before running either back end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, cast

from repro.errors import EvalError
from repro.lang import types as T


@dataclass(frozen=True)
class FunVal:
    """A first-class function value: a reference to a top-level definition,
    builtin, or lifted lambda.  P function values are fully parameterized, so
    no environment needs to be captured."""

    name: str

    def __repr__(self) -> str:
        return f"<fun {self.name}>"


def check_value(v: Any, t: T.Type, where: str = "value") -> None:
    """Raise :class:`EvalError` unless ``v`` inhabits P type ``t``."""
    if isinstance(t, T.TInt):
        if isinstance(v, bool) or not isinstance(v, int):
            raise EvalError(f"{where}: expected int, got {v!r}")
        return
    if isinstance(t, T.TBool):
        if not isinstance(v, bool):
            raise EvalError(f"{where}: expected bool, got {v!r}")
        return
    if isinstance(t, T.TFloat):
        if not isinstance(v, float):
            raise EvalError(f"{where}: expected float, got {v!r}")
        return
    if isinstance(t, T.TSeq):
        if not isinstance(v, list):
            raise EvalError(f"{where}: expected a sequence (list), got {v!r}")
        for i, x in enumerate(v):
            check_value(x, t.elem, f"{where}[{i + 1}]")
        return
    if isinstance(t, T.TTuple):
        if not isinstance(v, tuple) or len(v) != len(t.items):
            raise EvalError(f"{where}: expected a {len(t.items)}-tuple, got {v!r}")
        for i, (x, it) in enumerate(zip(v, t.items)):
            check_value(x, it, f"{where}.{i + 1}")
        return
    if isinstance(t, T.TFun):
        if not isinstance(v, FunVal):
            raise EvalError(f"{where}: expected a function value, got {v!r}")
        return
    raise EvalError(f"{where}: cannot check against type {t!r}")


def infer_value_type(v: Any) -> T.Type:
    """Best-effort P type of a Python value.  Element types of sibling
    sequences are merged, so ragged data with empty rows infers correctly;
    a sequence that is empty all the way down defaults to seq(int).  Used by
    the API when the caller supplies no explicit types."""
    t = _infer_partial(v)
    return _default_unknown(t)


def _infer_partial(v: Any) -> Optional[T.Type]:
    """Type with ``None`` standing for 'unknown' (under empty sequences)."""
    if isinstance(v, bool):
        return T.BOOL
    if isinstance(v, int):
        return T.INT
    if isinstance(v, float):
        return T.FLOAT
    if isinstance(v, list):
        elem: Optional[T.Type] = None
        for x in v:
            elem = _merge_types(elem, _infer_partial(x), v)
        # a None elem marks 'unknown under an empty sequence', resolved
        # by _default_unknown
        return T.TSeq(elem if elem is not None else cast(T.Type, None))
    if isinstance(v, tuple):
        return T.TTuple(tuple(_infer_partial(x) for x in v))
    if isinstance(v, FunVal):
        raise EvalError("cannot infer the type of a bare function value; "
                        "pass explicit argument types")
    raise EvalError(f"not a P value: {v!r}")


def _merge_types(a: Optional[T.Type], b: Optional[T.Type],
                 where: Any) -> Optional[T.Type]:
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if isinstance(a, T.TSeq) and isinstance(b, T.TSeq):
        return T.TSeq(cast(T.Type, _merge_types(a.elem, b.elem, where)))
    if isinstance(a, T.TTuple) and isinstance(b, T.TTuple) \
            and len(a.items) == len(b.items):
        return T.TTuple(tuple(cast(T.Type, _merge_types(x, y, where))
                              for x, y in zip(a.items, b.items)))
    raise EvalError(f"heterogeneous sequence: {where!r}")


def _default_unknown(t: Optional[T.Type]) -> T.Type:
    if t is None:
        return T.INT
    if isinstance(t, T.TSeq):
        return T.TSeq(_default_unknown(t.elem))
    if isinstance(t, T.TTuple):
        return T.TTuple(tuple(_default_unknown(x) for x in t.items))
    return t
