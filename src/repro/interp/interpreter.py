"""Reference interpreter for P.

Evaluates the *original* (pre-transformation) program with the per-element
iterator semantics of section 2:

    for all k in 1..#d:   [x <- d: e][k]  ==  e[x := d[k]]

This is the semantic baseline every other back end is tested against, and
the "repeated evaluation of the iterator body" whose overhead the
transformation eliminates (section 6, *Implications for sequential
execution* — benchmark E7).

Evaluation also accumulates the work/span cost model of
:mod:`repro.interp.cost`: iterator bodies contribute their *maximum* span
(they run in parallel in the abstract semantics) but their *summed* work.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import EvalError
from repro.guard import runtime as _guard
from repro.guard.runtime import scoped_recursion_limit
from repro.interp.cost import CostReport, prim_work
from repro.interp.values import FunVal, check_value
from repro.lang import ast as A
from repro.lang import builtins as B

# ---------------------------------------------------------------------------
# Builtin implementations on Python values
# ---------------------------------------------------------------------------


import math


def _div(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("division by zero")
    return a // b


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise EvalError("division by zero")
    return a / b


def _sqrt(a: float) -> float:
    if a < 0:
        raise EvalError(f"sqrt of negative value {a}")
    return math.sqrt(a)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("mod by zero")
    return a % b


def _index(v: list[Any], i: int) -> Any:
    if not 1 <= i <= len(v):
        raise EvalError(f"index {i} out of range 1..{len(v)}")
    return v[i - 1]


def _update(v: list[Any], i: int, x: Any) -> list[Any]:
    if not 1 <= i <= len(v):
        raise EvalError(f"update index {i} out of range 1..{len(v)}")
    out = list(v)
    out[i - 1] = x
    return out


def _restrict(v: list[Any], m: list[Any]) -> list[Any]:
    if len(v) != len(m):
        raise EvalError(f"restrict: lengths differ ({len(v)} vs {len(m)})")
    return [x for x, keep in zip(v, m) if keep]


def _combine(m: list[Any], v: list[Any], u: list[Any]) -> list[Any]:
    if len(m) != len(v) + len(u):
        raise EvalError(
            f"combine: #m ({len(m)}) != #v + #u ({len(v)} + {len(u)})")
    out = []
    iv = iu = 0
    for keep in m:
        if keep:
            out.append(v[iv])
            iv += 1
        else:
            out.append(u[iu])
            iu += 1
    return out


def _dist(c: Any, r: int) -> list[Any]:
    if r < 0:
        raise EvalError(f"dist: negative count {r}")
    return [c] * r


def _py_size(v: Any) -> int:
    """Shallow size of an interpreter value for frame-size diagnostics
    (top-level length of a sequence, 1 for scalars/tuples/functions)."""
    return len(v) if isinstance(v, list) else 1


def _nonempty(name: str, v: list[Any]) -> list[Any]:
    if not v:
        raise EvalError(f"{name}: empty sequence")
    return v


def _plus_scan(v: list[Any]) -> list[Any]:
    out = []
    acc = 0
    for x in v:
        out.append(acc)
        acc += x
    return out


def _max_scan(v: list[Any]) -> list[Any]:
    out = []
    acc = None
    for x in v:
        acc = x if acc is None else max(acc, x)
        out.append(acc)
    return out


def _rank(v: list[Any]) -> list[int]:
    """1-origin ranks under a stable ascending sort (CVL's rank)."""
    order = sorted(range(len(v)), key=lambda i: (v[i], i))
    out = [0] * len(v)
    for pos, i in enumerate(order):
        out[i] = pos + 1
    return out


def _permute(v: list[Any], idx: list[int]) -> list[Any]:
    """Scatter: result[idx[k]] = v[k]; idx must be a permutation of 1..#v."""
    if len(v) != len(idx):
        raise EvalError("permute: lengths differ")
    out = [None] * len(v)
    for x, i in zip(v, idx):
        if not 1 <= i <= len(v):
            raise EvalError(f"permute: index {i} out of range 1..{len(v)}")
        if out[i - 1] is not None:
            raise EvalError(f"permute: duplicate target index {i}")
        out[i - 1] = x
    return out


def _flatten(v: list[list[Any]]) -> list[Any]:
    out = []
    for x in v:
        out.extend(x)
    return out


PRIM_IMPLS: dict[str, Callable[..., Any]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _div,
    "mod": _mod,
    "max2": lambda a, b: max(a, b),
    "min2": lambda a, b: min(a, b),
    "neg": lambda a: -a,
    "abs_": lambda a: abs(a),
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "and_": lambda a, b: a and b,
    "or_": lambda a, b: a or b,
    "not_": lambda a: not a,
    "length": lambda v: len(v),
    "range": lambda a, b: list(range(a, b + 1)),
    "range1": lambda n: list(range(1, n + 1)),
    "seq_index": _index,
    "seq_update": _update,
    "restrict": _restrict,
    "combine": _combine,
    "dist": _dist,
    "flatten": _flatten,
    "concat": lambda v, w: list(v) + list(w),
    "sum": lambda v: sum(v),
    "maxval": lambda v: max(_nonempty("maxval", v)),
    "minval": lambda v: min(_nonempty("minval", v)),
    "anytrue": lambda v: any(v),
    "alltrue": lambda v: all(v),
    "plus_scan": _plus_scan,
    "max_scan": _max_scan,
    "rank": _rank,
    "permute": _permute,
    "fdiv": _fdiv,
    "sqrt_": _sqrt,
    "real": lambda a: float(a),
    "trunc_": lambda a: math.trunc(a),
    "round_": lambda a: int(round(a)),  # round-half-even, like np.rint
    "floor_": lambda a: math.floor(a),
    "ceil_": lambda a: math.ceil(a),
}


class Interpreter:
    """Reference evaluator over a :class:`repro.lang.ast.Program`.

    The program may be the raw parse (the interpreter is type-agnostic) or a
    monomorphized one — both give identical results on well-typed inputs.
    """

    def __init__(self, program: A.Program, max_recursion: int = 200_000) -> None:
        self.program = program
        self.cost = CostReport()
        self._max_recursion = max_recursion

    # -- public API ----------------------------------------------------------

    def call(self, fname: str, args: list[Any]) -> Any:
        """Invoke top-level function ``fname`` on Python values."""
        with scoped_recursion_limit(self._max_recursion):
            val, _span = self._apply(FunVal(fname), list(args))
        return val

    def run(self, fname: str, args: list[Any]) -> tuple[Any, CostReport]:
        """Like :meth:`call` but returns a fresh cost report as well."""
        self.cost = CostReport()
        with scoped_recursion_limit(self._max_recursion):
            val, span = self._apply(FunVal(fname), list(args))
        self.cost.span = span
        return val, self.cost

    def eval_expression(self, e: A.Expr, env: dict[str, Any] | None = None) -> Any:
        """Evaluate a standalone expression (tests and the REPL-style API)."""
        val, _ = self._eval(e, env or {})
        return val

    # -- core evaluation (returns (value, span)) ------------------------------

    def _apply(self, f: FunVal, args: list[Any]) -> tuple[Any, int]:
        name = f.name
        g = _guard.GUARD
        if name in self.program.defs:
            d = self.program[name]
            if len(args) != len(d.params):
                raise EvalError(
                    f"{name} expects {len(d.params)} arguments, got {len(args)}")
            if g is None:
                return self._eval(d.body, dict(zip(d.params, args)))
            g.tick(f"interp:{name}")
            g.enter_call(name, sum(_py_size(a) for a in args)
                         if g.track_frames else 0)
            try:
                return self._eval(d.body, dict(zip(d.params, args)))
            finally:
                g.exit_call()
        if name in PRIM_IMPLS:
            res = PRIM_IMPLS[name](*args)
            work = prim_work(name, args, res)
            self.cost.work += work
            if g is not None:
                g.tick(f"interp:{name}")
                g.charge(f"interp:{name}", work, 8 * work)
            return res, 1
        raise EvalError(f"unknown function {name!r}")

    def _eval(self, e: A.Expr, env: dict[str, Any]) -> tuple[Any, int]:
        if isinstance(e, (A.IntLit, A.BoolLit, A.FloatLit)):
            return e.value, 0
        if isinstance(e, A.Var):
            if e.name in env:
                return env[e.name], 0
            if e.name in self.program.defs or B.is_builtin(e.name):
                return FunVal(e.name), 0
            raise EvalError(f"unbound variable {e.name!r}")
        if isinstance(e, A.SeqLit):
            vals, spans = self._eval_many(e.items, env)
            self.cost.work += max(1, len(vals))
            return vals, spans + 1
        if isinstance(e, A.TupleLit):
            vals, spans = self._eval_many(e.items, env)
            self.cost.work += 1
            return tuple(vals), spans + 1
        if isinstance(e, A.TupleExtract):
            v, s = self._eval(e.tup, env)
            if not isinstance(v, tuple) or not 1 <= e.index <= len(v):
                raise EvalError(f"bad tuple projection .{e.index} on {v!r}")
            self.cost.work += 1
            return v[e.index - 1], s + 1
        if isinstance(e, A.Call):
            fval, fspan = self._eval(e.fn, env)
            args, aspan = self._eval_many(e.args, env)
            if not isinstance(fval, FunVal):
                raise EvalError(f"attempt to call non-function {fval!r}")
            rv, rspan = self._apply(fval, args)
            return rv, fspan + aspan + rspan
        if isinstance(e, A.Lambda):
            # fully parameterized: lift on the fly under a unique name
            name = A.fresh_name("lam")
            self.program.defs[name] = A.FunDef(name, list(e.params), e.body)
            return FunVal(name), 0
        if isinstance(e, A.Let):
            bv, bs = self._eval(e.bound, env)
            env2 = dict(env)
            env2[e.var] = bv
            rv, rs = self._eval(e.body, env2)
            return rv, bs + rs
        if isinstance(e, A.If):
            cv, cs = self._eval(e.cond, env)
            if not isinstance(cv, bool):
                raise EvalError(f"if condition is not bool: {cv!r}")
            rv, rs = self._eval(e.then if cv else e.els, env)
            return rv, cs + rs
        if isinstance(e, A.Iter):
            return self._eval_iter(e, env)
        raise EvalError(f"cannot interpret node {type(e).__name__}")

    def _eval_many(self, es: list[A.Expr],
                   env: dict[str, Any]) -> tuple[list[Any], int]:
        vals = []
        span = 0
        for x in es:
            v, s = self._eval(x, env)
            vals.append(v)
            span += s
        return vals, span

    def _eval_iter(self, e: A.Iter, env: dict[str, Any]) -> tuple[Any, int]:
        dom, dspan = self._eval(e.domain, env)
        if not isinstance(dom, list):
            raise EvalError(f"iterator domain is not a sequence: {dom!r}")
        span = dspan
        elems = dom
        # filtered form: [x <- d | b: e] restricts the domain first (sec. 2)
        if e.filter is not None:
            fspan = 0
            kept = []
            for x in dom:
                env2 = dict(env)
                env2[e.var] = x
                keep, s = self._eval(e.filter, env2)
                fspan = max(fspan, s)
                if not isinstance(keep, bool):
                    raise EvalError("iterator filter is not bool")
                if keep:
                    kept.append(x)
            self.cost.work += max(1, len(dom))  # the restrict
            span += fspan + 1
            elems = kept
        out = []
        bspan = 0
        for x in elems:
            env2 = dict(env)
            env2[e.var] = x
            v, s = self._eval(e.body, env2)
            bspan = max(bspan, s)
            out.append(v)
        self.cost.work += max(1, len(elems))
        return out, span + bspan + 1
