"""Unit tests for the VCODE compiler's structural output: register
discipline, control-flow diamonds, label resolution, and instruction
rendering."""


from repro import compile_program
from repro.vcode.instructions import (
    Call, CallInd, Const, Copy, FunConst, Instr, Jump, JumpIfNot, Label,
    Prim, Ret, VFunction, VProgram,
)


def compiled(src, fname, arg_types):
    prog = compile_program(src)
    mono, vp = prog.compile_vcode(fname, arg_types)
    return vp[mono], vp


class TestRegisterDiscipline:
    def test_registers_within_bounds(self):
        f, _ = compiled("fun f(a, b) = a * b + a - b", "f", ["int", "int"])
        for i in f.instrs:
            for attr in ("dst", "src", "cond", "fun"):
                r = getattr(i, attr, None)
                if r is not None:
                    assert 0 <= r < f.nregs
            for a in getattr(i, "args", ()):
                assert 0 <= a < f.nregs

    def test_params_are_first_registers(self):
        f, _ = compiled("fun f(a, b) = a + b", "f", ["int", "int"])
        assert f.params == [0, 1]

    def test_no_write_to_param_registers(self):
        f, _ = compiled("fun f(a) = let a = a + 1 in a * a", "f", ["int"])
        writes = [i.dst for i in f.instrs if hasattr(i, "dst")]
        # shadowing must use fresh registers, never clobber the param
        assert all(w != 0 for w in writes)


class TestControlFlow:
    SRC = "fun f(n) = if n > 0 then n + 1 else n - 1"

    def test_diamond_shape(self):
        f, _ = compiled(self.SRC, "f", ["int"])
        kinds = [type(i).__name__ for i in f.instrs]
        assert "JumpIfNot" in kinds and "Jump" in kinds
        assert kinds.count("Label") == 2

    def test_labels_resolve(self):
        f, _ = compiled(self.SRC, "f", ["int"])
        for i in f.instrs:
            if isinstance(i, (Jump, JumpIfNot)):
                assert i.label in f.labels
                target = f.instrs[f.labels[i.label]]
                assert isinstance(target, Label)

    def test_both_arms_copy_to_join_register(self):
        f, _ = compiled(self.SRC, "f", ["int"])
        copies = [i for i in f.instrs if isinstance(i, Copy)]
        assert len(copies) == 2
        assert copies[0].dst == copies[1].dst

    def test_nested_conditionals_unique_labels(self):
        f, _ = compiled(
            "fun f(n) = if n > 0 then (if n > 9 then 2 else 1) else 0",
            "f", ["int"])
        labels = [i.name for i in f.instrs if isinstance(i, Label)]
        assert len(labels) == len(set(labels)) == 4


class TestInstructionRendering:
    def test_str_forms(self):
        assert str(Const(1, 5)) == "r1 = const 5"
        assert str(Copy(2, 1)) == "r2 = r1"
        assert str(FunConst(0, "add")) == "r0 = fun add"
        assert str(Prim(3, "mul", (1, 2), 1, (1, 1))) == "r3 = mul^1(r1, r2)"
        assert str(Prim(3, "mul", (1, 2), 0, (0, 0))) == "r3 = mul(r1, r2)"
        assert str(Call(4, "f", (1,))) == "r4 = call f(r1)"
        assert str(CallInd(5, 0, (1,), 1, 0, (1,))) == "r5 = apply^1 r0(r1)"
        assert str(Jump(".end0")) == "jump .end0"
        assert str(JumpIfNot(1, ".else0")) == "ifnot r1 jump .else0"
        assert str(Ret(2)) == "ret r2"

    def test_program_str_lists_all_functions(self):
        _, vp = compiled("""
            fun g(x) = x + 1
            fun f(x) = g(g(x))
        """, "f", ["int"])
        s = str(vp)
        assert "function f(" in s and "function g(" in s


class TestFloatConstants:
    def test_float_const_compiles_and_runs(self):
        prog = compile_program("fun f(x: float) = x + 0.5")
        mono, vp = prog.compile_vcode("f", ["float"])
        consts = [i for i in vp[mono].instrs if isinstance(i, Const)]
        assert any(isinstance(c.value, float) for c in consts)
        from repro.vcode.vm import VM
        assert VM(vp).call(mono, [1.25]) == 1.75


class TestDeterminism:
    def test_recompilation_identical(self):
        src = "fun f(v) = [x <- v: if x > 0 then x else 0 - x]"
        prog = compile_program(src)
        m1, vp1 = prog.compile_vcode("f", ["seq(int)"])
        m2, vp2 = prog.compile_vcode("f", ["seq(int)"])
        assert str(vp1) == str(vp2)
