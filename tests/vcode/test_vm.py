"""Tests for VCODE compilation and the VM: three-way backend agreement and
structural properties of the compiled code."""

import pytest

from repro import compile_program
from repro.lang.types import TSeq
from repro.vcode.instructions import Call, Jump, JumpIfNot, Prim, Ret


def vm_for(src, fname, arg_types):
    prog = compile_program(src)
    mono, vp = prog.compile_vcode(fname, arg_types)
    from repro.vcode.vm import VM
    return VM(vp), mono, vp


class TestCompilation:
    def test_simple_function_compiles(self):
        _vm, mono, vp = vm_for("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", ["int"])
        f = vp[mono]
        assert isinstance(f.instrs[-1], Ret)
        assert any(isinstance(i, Prim) and i.fn == "range1" for i in f.instrs)

    def test_every_function_ends_with_ret_reachable(self):
        src = """
            fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
        """
        _vm, mono, vp = vm_for(src, "fact", ["int"])
        f = vp[mono]
        assert any(isinstance(i, (Jump, JumpIfNot)) for i in f.instrs)
        assert isinstance(f.instrs[-1], Ret)

    def test_user_call_compiles_to_call(self):
        src = """
            fun sq(n) = n * n
            fun f(n) = sq(n) + 1
        """
        _vm, mono, vp = vm_for(src, "f", ["int"])
        assert any(isinstance(i, Call) for i in vp[mono].instrs)

    def test_extensions_compiled_too(self):
        src = """
            fun sqs(n) = [i <- [1..n]: i*i]
            fun nested(k) = [i <- [1..k]: sqs(i)]
        """
        _vm, _mono, vp = vm_for(src, "nested", ["int"])
        assert "sqs^1" in vp.functions

    def test_instruction_count_positive(self):
        _vm, _m, vp = vm_for("fun f(n) = n + 1", "f", ["int"])
        assert vp.instruction_count >= 2

    def test_str_rendering(self):
        _vm, mono, vp = vm_for("fun f(n) = n + 1", "f", ["int"])
        s = str(vp)
        assert "function f" in s and "ret" in s


class TestExecution:
    @pytest.mark.parametrize("src,fname,args,expected", [
        ("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [5], [1, 4, 9, 16, 25]),
        ("fun f(v) = [x <- v: if x > 0 then x else 0 - x]", "f",
         [[3, -4, 0]], [3, 4, 0]),
        ("fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)", "fact",
         [6], 720),
        ("fun tri(n) = [i <- [1..n]: [j <- [1..i]: j]]", "tri", [3],
         [[1], [1, 2], [1, 2, 3]]),
    ])
    def test_results(self, src, fname, args, expected):
        prog = compile_program(src)
        assert prog.run(fname, args, backend="vcode") == expected

    def test_three_way_agreement(self):
        src = """
            fun sqs(n) = [i <- [1..n]: i*i]
            fun oddsq(n) = [i <- [1..n] | odd(i): sqs(i)]
        """
        prog = compile_program(src)
        assert prog.run_all("oddsq", [5]) == [[1], [1, 4, 9], [1, 4, 9, 16, 25]]

    def test_recursion_in_frame_on_vm(self):
        src = """
            fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
            fun facts(v) = [x <- v: fact(x)]
        """
        prog = compile_program(src)
        assert prog.run_all("facts", [[3, 1, 5]]) == [6, 1, 120]

    def test_higher_order_on_vm(self):
        src = "fun f(vv) = [v <- vv: reduce(add, v)]"
        prog = compile_program(src)
        assert prog.run_all("f", [[[1, 2], [3, 4, 5]]]) == [3, 12]

    def test_prelude_functions_on_vm(self):
        prog = compile_program("fun f(v) = reverse(v)")
        assert prog.run("f", [[1, 2, 3]], backend="vcode") == [3, 2, 1]


class TestTrace:
    def test_trace_recorded(self):
        prog = compile_program("fun sqs(n) = [i <- [1..n]: i*i]")
        result, trace = prog.vector_trace("sqs", [100])
        assert result[:3] == [1, 4, 9]
        ops = [op for op, _n in trace]
        assert "range1" in ops and "mul" in ops

    def test_trace_widths_scale_with_input(self):
        prog = compile_program("fun sqs(n) = [i <- [1..n]: i*i]")
        _, t1 = prog.vector_trace("sqs", [10])
        _, t2 = prog.vector_trace("sqs", [1000])
        w1 = sum(n for op, n in t1 if op == "mul")
        w2 = sum(n for op, n in t2 if op == "mul")
        assert w2 == 100 * w1

    def test_step_count_independent_of_width(self):
        # a flat data-parallel program: #vector-ops constant as n grows
        prog = compile_program("fun sqs(n) = [i <- [1..n]: i*i]")
        _, t1 = prog.vector_trace("sqs", [10])
        _, t2 = prog.vector_trace("sqs", [10000])
        assert len(t1) == len(t2)


class TestEmitC:
    def test_c_shape(self):
        prog = compile_program("""
            fun sqs(n) = [i <- [1..n]: i*i]
            fun nested(k) = [i <- [1..k]: sqs(i)]
        """)
        c = prog.emit_c("nested", ["int"])
        assert '#include "cvl.h"' in c
        assert "vec_p sqs_ext1(" in c          # the f^1 extension
        assert "cvl_mul_1(" in c               # depth-1 kernel call
        assert "return r" in c

    def test_t1_visible_for_depth2(self):
        prog = compile_program(
            "fun tri(n) = [i <- [1..n]: [j <- [1..i]: i * j]]")
        c = prog.emit_c("tri", ["int"])
        assert "cvl_extract(" in c and "cvl_insert(" in c

    def test_control_flow_rendered(self):
        prog = compile_program(
            "fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)")
        c = prog.emit_c("fact", ["int"])
        assert "goto" in c and ":;" in c

    def test_identifiers_are_c_safe(self):
        prog = compile_program("""
            fun id(x) = x
            fun f(n) = if id(true) then id(1) else n
        """)
        c = prog.emit_c("f", ["int"])
        for ch in ("^", "$", "%"):
            assert ch not in c
