"""Unit-level tests for the vector evaluator and shared Applier: argument
broadcasting, depth-0 wrap/unwrap, group dispatch internals, and error
paths that integration tests don't isolate."""

import numpy as np
import pytest

from repro import compile_program
from repro.errors import EvalError, VMError
from repro.lang.types import INT, TSeq, TTuple, seq_of
from repro.vector import ops as O
from repro.vector.convert import from_python, to_python
from repro.vector.nested import VFun, VTuple
from repro.vexec.apply import Applier, merge_groups


def plain_applier():
    return Applier(call_user=lambda n, a: (_ for _ in ()).throw(VMError(n)),
                   is_user=lambda n: False)


class TestWrapUnwrap:
    @pytest.mark.parametrize("v", [5, -3, True, False])
    def test_scalar_roundtrip(self, v):
        assert O.unwrap1(O.wrap1(v)) == v
        assert type(O.unwrap1(O.wrap1(v))) is type(v)

    def test_sequence_roundtrip(self):
        nv = from_python([[1], [2, 3]], seq_of(INT, 2))
        assert O.unwrap1(O.wrap1(nv)) == nv

    def test_tuple_roundtrip(self):
        v = from_python((1, [2, 3]), TTuple((INT, TSeq(INT))))
        out = O.unwrap1(O.wrap1(v))
        assert to_python(out, TTuple((INT, TSeq(INT)))) == (1, [2, 3])

    def test_function_roundtrip(self):
        out = O.unwrap1(O.wrap1(VFun("add")))
        assert isinstance(out, VFun) and out.name == "add"

    def test_unwrap_rejects_wide_frame(self):
        from repro.errors import VectorError
        nv = from_python([1, 2], TSeq(INT))
        with pytest.raises(VectorError):
            O.unwrap1(nv)


class TestApplierBroadcast:
    def test_depth0_arg_broadcast(self):
        ap = plain_applier()
        v = from_python([1, 2, 3], TSeq(INT))
        out = ap.apply_named("add", [v, 10], [1, 0], 1, None)
        assert to_python(out, TSeq(INT)) == [11, 12, 13]

    def test_depth0_seq_arg_broadcast(self):
        ap = plain_applier()
        idx = from_python([2, 1], TSeq(INT))
        shared = from_python([10, 20], TSeq(INT))
        out = ap.apply_named("seq_index", [shared, idx], [0, 1], 1, None)
        assert to_python(out, TSeq(INT)) == [20, 10]

    def test_shared_fast_path(self):
        ap = plain_applier()
        idx = from_python([2, 1], TSeq(INT))
        shared = from_python([10, 20], TSeq(INT))
        out = ap.apply_named("__seq_index_shared", [shared, idx],
                             [0, 1], 1, None)
        assert to_python(out, TSeq(INT)) == [20, 10]

    def test_rep_kernel(self):
        ap = plain_applier()
        w = from_python([0, 0, 0], TSeq(INT))
        out = ap.apply_named("__rep", [w, 42], [1, 0], 1, None)
        assert to_python(out, TSeq(INT)) == [42, 42, 42]

    def test_no_full_depth_arg_rejected(self):
        ap = plain_applier()
        with pytest.raises(VMError):
            ap.apply_named("add", [1, 2], [0, 0], 1, None)

    def test_replication_observed(self):
        seen = []
        ap = Applier(lambda n, a: None, lambda n: False,
                     observe=lambda op, n: seen.append((op, n)))
        v = from_python(list(range(10)), TSeq(INT))
        ap.apply_named("add", [v, 5], [1, 0], 1, None)
        assert ("replicate", 10) in seen
        assert ("add", 10) in seen


class TestApply0:
    def test_scalar_prim(self):
        ap = plain_applier()
        assert ap.apply0("add", [2, 3], None) == 5

    def test_seq_prim(self):
        ap = plain_applier()
        v = from_python([5, 1], TSeq(INT))
        assert ap.apply0("length", [v], None) == 2

    def test_seq_cons_empty_needs_type(self):
        ap = plain_applier()
        out = ap.apply0("__seq_cons", [], TSeq(INT))
        assert to_python(out, TSeq(INT)) == []

    def test_tuple_ops(self):
        ap = plain_applier()
        t = ap.apply0("__tuple_cons", [1, True], None)
        assert isinstance(t, VTuple)
        assert ap.apply0("__tuple_extract_2", [t], None) is True

    def test_unknown_prim(self):
        ap = plain_applier()
        with pytest.raises(VMError):
            ap.apply0("nonsense", [], None)


class TestGroupDispatch:
    def test_single_function_group(self):
        ap = plain_applier()
        fun = from_python([VFun("neg")] * 3, TSeq(__import__(
            "repro.lang.types", fromlist=["TFun"]).TFun((INT,), INT)))
        args = [from_python([1, 2, 3], TSeq(INT))]
        out = ap.apply_dynamic(fun, args, [1], 1, 1, INT)
        assert to_python(out, TSeq(INT)) == [-1, -2, -3]

    def test_two_function_groups_interleaved(self):
        from repro.lang.types import TFun
        ap = plain_applier()
        fun = from_python([VFun("neg"), VFun("abs_"), VFun("neg"),
                           VFun("abs_")], TSeq(TFun((INT,), INT)))
        args = [from_python([1, -2, 3, -4], TSeq(INT))]
        out = ap.apply_dynamic(fun, args, [1], 1, 1, INT)
        assert to_python(out, TSeq(INT)) == [-1, 2, -3, 4]

    def test_empty_function_frame(self):
        from repro.lang.types import TFun
        ap = plain_applier()
        fun = from_python([], TSeq(TFun((INT,), INT)))
        args = [from_python([], TSeq(INT))]
        out = ap.apply_dynamic(fun, args, [1], 1, 1, INT)
        assert to_python(out, TSeq(INT)) == []

    def test_apply_non_function_value(self):
        ap = plain_applier()
        with pytest.raises(EvalError):
            ap.apply_dynamic(5, [], [], 0, 0, None)

    def test_merge_groups_restores_order(self):
        p1 = from_python([10, 30], TSeq(INT))
        p2 = from_python([21, 41], TSeq(INT))
        out = merge_groups([p1, p2],
                           [np.array([0, 2]), np.array([1, 3])], 4)
        assert to_python(out, TSeq(INT)) == [10, 21, 30, 41]


class TestEvaluatorErrors:
    def test_missing_definition(self):
        prog = compile_program("fun f(x) = x")
        from repro.lang.types import INT as I
        mono, tp = prog.prepare("f", (I,))
        from repro.vexec.evaluator import VectorEvaluator
        ev = VectorEvaluator(tp)
        with pytest.raises(VMError):
            ev.call("nosuch", [1])

    def test_wrong_arity(self):
        prog = compile_program("fun f(x) = x")
        from repro.lang.types import INT as I
        mono, tp = prog.prepare("f", (I,))
        from repro.vexec.evaluator import VectorEvaluator
        ev = VectorEvaluator(tp)
        with pytest.raises(EvalError):
            ev.call(mono, [1, 2])

    def test_observer_via_constructor(self):
        prog = compile_program("fun f(n) = [i <- [1..n]: i + 1]")
        from repro.lang.types import INT as I
        mono, tp = prog.prepare("f", (I,))
        from repro.vexec.evaluator import VectorEvaluator
        seen = []
        ev = VectorEvaluator(tp, observer=lambda op, n: seen.append(op))
        ev.call(mono, [5])
        assert "range1" in seen and "add" in seen
