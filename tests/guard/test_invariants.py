"""The strict descriptor-invariant checker (repro.guard.invariants)."""

import numpy as np
import pytest

from repro.api import compile_program
from repro.errors import InvariantError
from repro.guard import GuardConfig, guarded
from repro.guard.invariants import validate_nested, validate_value
from repro.guard.runtime import GUARD  # noqa: F401  (import must not cycle)
from repro.lang.types import parse_type
from repro.vector.convert import from_python
from repro.vector.nested import VFun, VTuple

NESTED = parse_type("seq(seq(int))")


def make(v=((1, 2), (), (3,))):
    return from_python([list(x) for x in v], NESTED)


class TestValidateNested:
    def test_valid_value_passes(self):
        validate_nested("t", make())

    def test_in_place_corruption_bump(self):
        v = make()
        v.descs[1][0] += 1   # beneath the constructor's validation
        with pytest.raises(InvariantError, match="sum"):
            validate_nested("t", v)

    def test_in_place_corruption_negative(self):
        v = make()
        v.descs[1][1] = -2
        with pytest.raises(InvariantError, match="negative"):
            validate_nested("t", v)

    def test_top_descriptor_must_be_singleton(self):
        # descs is immutable on a real NestedVector; a duck-typed stand-in
        # models a value whose top level was mangled wholesale
        from types import SimpleNamespace
        v = make()
        bad = SimpleNamespace(descs=[np.array([1, 1]), *v.descs[1:]],
                              values=v.values)
        with pytest.raises(InvariantError, match="singleton"):
            validate_nested("t", bad)

    def test_stage_named_in_message(self):
        v = make()
        v.descs[1][0] += 3
        with pytest.raises(InvariantError, match="kernel:concat"):
            validate_nested("kernel:concat", v)


class TestValidateValue:
    def test_scalars_and_funs_trivially_valid(self):
        for x in (0, True, 1.5, np.int64(7), VFun("f")):
            validate_value("t", x)

    def test_tuple_checked_leafwise(self):
        t = VTuple([make(), 3])
        validate_value("t", t)
        t.items[0].descs[1][0] += 1
        with pytest.raises(InvariantError):
            validate_value("t", t)

    def test_tuple_conformability(self):
        a, b = make(((1,), (2, 3))), make(((1, 2), (3,)))
        with pytest.raises(InvariantError, match="disagree"):
            validate_value("t", VTuple([a, b]))

    def test_unexpected_value_rejected(self):
        with pytest.raises(InvariantError, match="unexpected"):
            validate_value("t", object())


SRC = """
fun qsort(v) =
  if #v <= 1 then v
  else let p = v[1 + #v / 2] in
    concat(concat(qsort([x <- v | x < p: x]),
                  [x <- v | x == p: x]),
           qsort([x <- v | x > p: x]))
fun main(n) = qsort([i <- [1..n]: (i * i) mod 19])
fun nest(n) = sum([i <- [1..n]: sum([j <- [1..i]: i*j])])
"""


class TestStrictMode:
    """check=True must not change results on healthy programs."""

    @pytest.mark.parametrize("backend", ["interp", "vector", "vcode"])
    @pytest.mark.parametrize("entry,args", [("main", [12]), ("nest", [7])])
    def test_checked_run_matches_unchecked(self, backend, entry, args):
        prog = compile_program(SRC)
        plain = prog.run(entry, args, backend=backend)
        checked = prog.run(entry, args, backend=backend, check=True)
        assert plain == checked

    def test_run_all_checked(self):
        prog = compile_program(SRC)
        assert prog.run_all("main", [9], check=True) == \
            sorted((i * i) % 19 for i in range(1, 10))

    def test_guard_scope_restored(self):
        from repro.guard import runtime
        prog = compile_program(SRC)
        with guarded(GuardConfig(check=True)) as st:
            prog.run("main", [5])
            assert runtime.GUARD is st
        assert runtime.GUARD is None
