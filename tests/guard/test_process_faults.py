"""Registry-driven containment proofs for the process-level fault sites.

Mirrors tests/guard/test_faults.py's discipline one level up the stack:
``PROCESS_FAULT_SITES`` registers every way a pool worker can betray its
supervisor, and this file keeps a *driver per site* that injects exactly
that fault (via a seeded :class:`ChaosSpec`) and asserts the registered
containment contract — the typed error, the request attribution, and the
pool's recovery to full strength.  ``test_every_site_has_a_driver``
closes the loop: adding a site without a driver fails the suite.
"""

import time

import pytest

from repro.errors import ResourceLimitError, WorkerCrashError
from repro.guard import PROCESS_FAULT_SITES, ChaosSpec
from repro.serve import PoolConfig, WorkerPool

SRC = "fun main(x) = x * x + 1;"


def run_one_under(site: str, tag: str, **cfg_kw):
    """Submit a single request with ``site`` firing for it (and a clean
    follow-up probe it does *not* fire for) and return
    (exception, victim rid, pool stats, recovered worker count)."""
    chaos = ChaosSpec(sites=(site,), rate=0.5, seed=1,
                      stall_s=60.0, slow_s=30.0)
    rid = next(r for i in range(1000)
               if chaos.fires(site, r := f"{tag}{i}"))
    probe = next(r for i in range(1000)
                 if not chaos.fires(site, r := f"ok{i}"))
    cfg_kw.setdefault("workers", 2)
    cfg_kw.setdefault("native_after", 0)
    cfg_kw.setdefault("retry", None)
    cfg_kw.setdefault("respawn_backoff_s", 0.05)
    with WorkerPool(PoolConfig(chaos=chaos, **cfg_kw)) as pool:
        e = pool.submit(SRC, "main", [3], request_id=rid,
                        **({"deadline_s": 0.8} if "deadline_grace_s"
                           in cfg_kw else {})).exception(timeout=120)
        deadline = time.monotonic() + 20
        while pool.healthy_workers() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        healthy = pool.healthy_workers()
        # contained means the pool still serves afterwards
        after = pool.submit(SRC, "main", [4],
                            request_id=probe).result(timeout=60)
        assert after == 17
        return e, rid, pool.stats, healthy


def drive_abort():
    e, rid, stats, healthy = run_one_under("pool.worker.abort", "ab")
    assert isinstance(e, WorkerCrashError) and e.reason == "exit"
    assert rid in e.request_ids
    assert stats.crashes.get("exit", 0) >= 1
    assert healthy == 2


def drive_heartbeat_stall():
    e, rid, stats, healthy = run_one_under(
        "pool.worker.heartbeat-stall", "st",
        heartbeat_s=0.1, heartbeat_timeout_s=0.6)
    assert isinstance(e, WorkerCrashError)
    assert e.reason == "lost-heartbeat" and rid in e.request_ids
    assert stats.crashes.get("lost-heartbeat", 0) >= 1
    assert healthy == 2


def drive_slow_compile():
    e, rid, stats, healthy = run_one_under(
        "pool.worker.slow-compile", "sl", deadline_grace_s=0.1)
    assert isinstance(e, ResourceLimitError)
    assert e.limit == "timeout" and e.request == rid
    assert stats.crashes.get("deadline", 0) >= 1
    assert stats.expired >= 1
    assert healthy == 2


def drive_poisoned_response():
    e, rid, stats, healthy = run_one_under(
        "pool.worker.poisoned-response", "po")
    assert isinstance(e, WorkerCrashError)
    assert e.reason == "poisoned-response" and rid in e.request_ids
    assert stats.crashes.get("poisoned-response", 0) >= 1
    assert healthy == 2


DRIVERS = {
    "pool.worker.abort": drive_abort,
    "pool.worker.heartbeat-stall": drive_heartbeat_stall,
    "pool.worker.slow-compile": drive_slow_compile,
    "pool.worker.poisoned-response": drive_poisoned_response,
}


def test_every_site_has_a_driver():
    assert set(DRIVERS) == set(PROCESS_FAULT_SITES), (
        "every registered process fault site needs a containment driver "
        "here (and every driver a registered site)")


@pytest.mark.parametrize("site", sorted(PROCESS_FAULT_SITES))
def test_site_contained(site):
    DRIVERS[site]()
