"""Regression tests for ``scoped_recursion_limit`` re-entrancy.

The original save/restore implementation was only correct for strictly
nested (LIFO, same-thread) scopes: with overlapping scopes — the serving
layer's worker threads raise the limit concurrently — the first exiter
restored its saved value underneath the survivor, silently lowering the
limit mid-execution.  The fixed implementation keeps a multiset of live
scopes and only restores the baseline when the last one exits.
"""

import sys
import threading

from repro.guard.runtime import scoped_recursion_limit


def test_basic_raise_and_restore():
    base = sys.getrecursionlimit()
    with scoped_recursion_limit(base + 500):
        assert sys.getrecursionlimit() == base + 500
    assert sys.getrecursionlimit() == base


def test_never_lowers_the_limit():
    base = sys.getrecursionlimit()
    with scoped_recursion_limit(10):
        assert sys.getrecursionlimit() == base
    assert sys.getrecursionlimit() == base


def test_nested_lifo_scopes():
    base = sys.getrecursionlimit()
    with scoped_recursion_limit(base + 100):
        with scoped_recursion_limit(base + 300):
            assert sys.getrecursionlimit() == base + 300
        assert sys.getrecursionlimit() == base + 100
    assert sys.getrecursionlimit() == base


def test_non_lifo_exit_order():
    """Scope A exits while scope B (with the higher request) is still
    live: the limit must stay at B's level, then restore to baseline."""
    base = sys.getrecursionlimit()
    a = scoped_recursion_limit(base + 100)
    b = scoped_recursion_limit(base + 300)
    a.__enter__()
    b.__enter__()
    assert sys.getrecursionlimit() == base + 300
    a.__exit__(None, None, None)          # the survivor still needs +300
    assert sys.getrecursionlimit() == base + 300
    b.__exit__(None, None, None)
    assert sys.getrecursionlimit() == base


def test_non_lifo_survivor_with_lower_request():
    base = sys.getrecursionlimit()
    a = scoped_recursion_limit(base + 300)
    b = scoped_recursion_limit(base + 100)
    a.__enter__()
    b.__enter__()
    assert sys.getrecursionlimit() == base + 300
    a.__exit__(None, None, None)          # survivor only needs +100
    assert sys.getrecursionlimit() in (base + 100, base + 300)
    assert sys.getrecursionlimit() >= base + 100
    b.__exit__(None, None, None)
    assert sys.getrecursionlimit() == base


def test_overlapping_scopes_across_threads():
    """The serving failure mode: worker threads' scopes overlap
    arbitrarily.  No exit may lower the limit below what any still-live
    scope requested, and the baseline comes back at the end."""
    base = sys.getrecursionlimit()
    entered = threading.Event()
    release = threading.Event()
    seen = []

    def worker():
        with scoped_recursion_limit(base + 1000):
            entered.set()
            release.wait(10)
            seen.append(sys.getrecursionlimit())

    t = threading.Thread(target=worker)
    t.start()
    assert entered.wait(10)
    with scoped_recursion_limit(base + 200):
        assert sys.getrecursionlimit() >= base + 1000
    # main's scope exited while the worker's is still live: the worker
    # must still see its requested limit (the historical bug lowered it)
    assert sys.getrecursionlimit() >= base + 1000
    release.set()
    t.join(10)
    assert seen == [base + 1000]
    assert sys.getrecursionlimit() == base


def test_many_threads_hammering():
    base = sys.getrecursionlimit()
    barrier = threading.Barrier(8)
    bad = []

    def worker(i):
        want = base + 100 * (i + 1)
        barrier.wait()
        for _ in range(50):
            with scoped_recursion_limit(want):
                if sys.getrecursionlimit() < want:
                    bad.append((i, sys.getrecursionlimit()))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert bad == []
    assert sys.getrecursionlimit() == base


def test_external_writer_wins():
    """User code that sets its own limit inside a scope keeps it."""
    base = sys.getrecursionlimit()
    try:
        with scoped_recursion_limit(base + 100):
            sys.setrecursionlimit(base + 5000)
        assert sys.getrecursionlimit() == base + 5000
    finally:
        sys.setrecursionlimit(base)
