"""Resource budgets and the flattened-recursion depth guard."""

import sys

import pytest

from repro.api import compile_program
from repro.errors import ResourceLimitError
from repro.guard import Budget, GuardConfig, guarded
from repro.guard.runtime import scoped_recursion_limit

LOOP = """
fun loop(v) = if #v == 0 then v else loop(v)
fun main(n) = loop([1..n])
fun work(n) = sum([i <- [1..n]: sum([1..i])])
"""


@pytest.fixture(scope="module")
def prog():
    return compile_program(LOOP)


class TestDepthGuard:
    """The emptiness-guard recursion that never shrinks its argument (the
    classic flattening non-termination mode) must fail within budget, on
    every back end, with a diagnostic naming the function."""

    @pytest.mark.parametrize("backend", ["interp", "vector", "vcode"])
    def test_nonterminating_recursion_diagnosed(self, prog, backend):
        budget = Budget(max_call_depth=64)
        with pytest.raises(ResourceLimitError) as ei:
            prog.run("main", [5], backend=backend, budget=budget)
        e = ei.value
        assert e.limit == "call-depth"
        assert "loop" in e.function
        assert len(e.frame_sizes) > 1
        # non-shrinking: the recursion passes the same-size frame down
        assert list(e.frame_sizes) == sorted(e.frame_sizes)
        assert "non-shrinking" in str(e)

    @pytest.mark.parametrize("backend", ["interp", "vector", "vcode"])
    def test_no_raw_recursionerror(self, prog, backend):
        try:
            prog.run("main", [3], backend=backend,
                     budget=Budget(max_call_depth=40))
        except ResourceLimitError:
            pass  # the required failure mode
        # notably NOT RecursionError and NOT a hang

    def test_terminating_recursion_unaffected(self, prog):
        assert prog.run("work", [6], budget=Budget(max_call_depth=64)) == \
            sum(sum(range(1, i + 1)) for i in range(1, 7))


class TestBudgets:
    def test_elements_ceiling(self, prog):
        with pytest.raises(ResourceLimitError) as ei:
            prog.run("work", [400], budget=Budget(max_elements=100))
        assert ei.value.limit == "elements"
        assert ei.value.stage  # names the kernel that crossed the line

    def test_bytes_ceiling(self, prog):
        with pytest.raises(ResourceLimitError) as ei:
            prog.run("work", [400], budget=Budget(max_bytes=256))
        assert ei.value.limit == "bytes"

    def test_steps_ceiling(self, prog):
        # the flattened VCODE for `work` runs ~10 instructions regardless
        # of n (that is the point of the transformation), so the ceiling
        # must sit below that
        with pytest.raises(ResourceLimitError) as ei:
            prog.run("work", [50], backend="vcode",
                     budget=Budget(max_steps=4))
        assert ei.value.limit == "steps"

    def test_timeout(self, prog):
        with pytest.raises(ResourceLimitError) as ei:
            prog.run("work", [200], budget=Budget(timeout_s=1e-9))
        assert ei.value.limit == "timeout"

    def test_within_budget_returns_normally(self, prog):
        budget = Budget(max_elements=10**9, max_steps=10**9, timeout_s=60.0)
        assert prog.run("work", [5], budget=budget) == \
            sum(sum(range(1, i + 1)) for i in range(1, 6))

    def test_budget_error_carries_numbers(self, prog):
        with pytest.raises(ResourceLimitError) as ei:
            prog.run("work", [400], budget=Budget(max_elements=100))
        assert ei.value.budget == 100
        assert ei.value.used > 100


class TestScopedRecursionLimit:
    def test_restores_previous_limit(self):
        before = sys.getrecursionlimit()
        with scoped_recursion_limit(before + 1234):
            assert sys.getrecursionlimit() == before + 1234
        assert sys.getrecursionlimit() == before

    def test_never_lowers(self):
        before = sys.getrecursionlimit()
        with scoped_recursion_limit(10):
            assert sys.getrecursionlimit() == before
        assert sys.getrecursionlimit() == before

    def test_last_writer_wins_inside_scope(self):
        before = sys.getrecursionlimit()
        with scoped_recursion_limit(before + 777):
            sys.setrecursionlimit(before + 999)  # someone else raises it
        assert sys.getrecursionlimit() == before + 999
        sys.setrecursionlimit(before)

    @pytest.mark.parametrize("backend", ["interp", "vector", "vcode"])
    def test_executors_do_not_leak_limit(self, prog, backend):
        before = sys.getrecursionlimit()
        prog.run("work", [5], backend=backend)
        assert sys.getrecursionlimit() == before
