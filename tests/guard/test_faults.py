"""Fault injection: every registered site's corruption must be caught —
runtime descriptor corruption by the boundary checker with a stage-named
InvariantError, and transform-level IR corruption *statically* by the
phase-boundary verifier with a stage-named AnalysisError (acceptance
criteria of the hardened-execution and analysis work)."""

import pytest

from repro.api import compile_program
from repro.errors import AnalysisError, FaultInjected, InvariantError
from repro.guard import GuardConfig, guarded
from repro.guard import faults as F

SRC = """
fun qsort(v) =
  if #v <= 1 then v
  else let p = v[1 + #v / 2] in
    concat(concat(qsort([x <- v | x < p: x]),
                  [x <- v | x == p: x]),
           qsort([x <- v | x > p: x]))
fun main(n) = qsort([i <- [1..n]: (i * i) - 13 * i])
fun nest(n) = [i <- [1..n]: [j <- [1..i]: [k <- [1..j]: i*j + k]]]
fun nsum(n) = sum([i <- [1..n]: sum([j <- nest(i)[1 + i / 2]: sum(j)])])
fun cc(n) = sum([i <- [1..n]:
  sum([s <- concat([j <- [1..i]: [k <- [1..j]: k]],
                   [j <- [1..i]: [k <- [1..j]: j]]): sum(s)])])
"""

#: Which (backend, entry, args) drives execution through each *runtime*
#: site, and the stage name the resulting InvariantError must carry.
DRIVERS = {
    "extract_insert.extract.top-bump": ("vector", "nsum", [8], "extract"),
    "extract_insert.extract.desc-negate": ("vector", "nsum", [8], "extract"),
    "extract_insert.insert.desc-bump": ("vector", "nsum", [8], "insert"),
    "extract_insert.insert.desc-negate": ("vector", "nsum", [8], "insert"),
    "segments.gather_subtrees.desc-bump":
        ("vector", "nsum", [8], "segments.gather_subtrees"),
    "segments.gather_subtrees.desc-negate":
        ("vector", "nsum", [8], "segments.gather_subtrees"),
    "segments.concat_levels.desc-bump":
        ("vector", "cc", [6], "segments.concat_levels"),
    "segments.concat_levels.desc-negate":
        ("vector", "cc", [6], "segments.concat_levels"),
    "vm.call.desc-bump": ("vcode", "main", [40], "vm:call"),
    "vm.call.desc-negate": ("vcode", "main", [40], "vm:call"),
    "vm.prim.desc-bump": ("vcode", "main", [40], "vm:prim"),
    "vm.prim.desc-negate": ("vcode", "main", [40], "vm:prim"),
}

#: Transform-level IR corruption is caught before anything runs: the
#: phase-boundary verifier (repro.analysis.verify) rejects the program
#: at the named stage.  Compilation must happen *inside* the injecting
#: context, so each test compiles afresh.
STATIC_SRC = """
fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
fun main(n) = [i <- [1..n]: fact(i)]
"""

STATIC_DRIVERS = {
    "transform.R2d.drop-guard": ("main", [5], "verify:eliminate"),
    "transform.R2c.depth-bump": ("main", [5], "verify:eliminate"),
}


@pytest.fixture(scope="module")
def prog():
    return compile_program(SRC)


def test_every_site_has_a_driver():
    """A new fault site cannot be added without proving it is caught."""
    assert set(DRIVERS) | set(STATIC_DRIVERS) == set(F.FAULT_SITES)
    assert not set(DRIVERS) & set(STATIC_DRIVERS)


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_injected_fault_is_caught_with_stage(prog, site):
    backend, entry, args, stage = DRIVERS[site]
    with guarded(GuardConfig(check=True)):
        with F.injecting(site, seed=1) as inj:
            with pytest.raises(InvariantError) as ei:
                prog.run(entry, args, backend=backend)
    assert inj.fired, f"site {site} never fired on {entry}{args}"
    assert ei.value.stage.startswith(stage), \
        f"expected stage {stage!r}, got {ei.value.stage!r}"


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_without_injection_runs_clean(prog, site):
    """The same checked runs succeed when no injector is armed."""
    backend, entry, args, _stage = DRIVERS[site]
    with guarded(GuardConfig(check=True)):
        prog.run(entry, args, backend=backend)


@pytest.mark.parametrize("site", sorted(STATIC_DRIVERS))
def test_transform_fault_is_caught_statically(site):
    """Transform-level IR corruption never reaches execution: the
    verifier rejects it at the named phase boundary."""
    entry, args, stage = STATIC_DRIVERS[site]
    with F.injecting(site, seed=0) as inj:
        with pytest.raises(AnalysisError) as ei:
            compile_program(STATIC_SRC).run(entry, args)
    assert inj.fired, f"site {site} never fired during transformation"
    assert ei.value.stage == stage, \
        f"expected stage {stage!r}, got {ei.value.stage!r}"


@pytest.mark.parametrize("site", sorted(STATIC_DRIVERS))
def test_transform_site_clean_without_injection(site):
    entry, args, _stage = STATIC_DRIVERS[site]
    assert compile_program(STATIC_SRC).run(entry, args) \
        == [1, 2, 6, 24, 120]


def test_raise_mode_surfaces_faultinjected(prog):
    with F.injecting("vm.prim.desc-bump", mode="raise") as inj:
        with pytest.raises(FaultInjected, match="vm.prim.desc-bump"):
            prog.run("main", [40], backend="vcode")
    assert inj.fired


def test_corruption_is_silent_without_checker(prog):
    """Without check mode the corrupted run completes with a wrong
    answer — demonstrating exactly the failure class strict mode guards
    against."""
    clean = prog.run("nsum", [8], backend="vector")
    with F.injecting("segments.gather_subtrees.desc-bump", seed=1):
        try:
            bad = prog.run("nsum", [8], backend="vector")
        except Exception:
            return  # downstream blow-up is also an accepted outcome
    assert bad != clean


def test_injector_is_deterministic(prog):
    msgs = []
    for _ in range(2):
        with guarded(GuardConfig(check=True)):
            with F.injecting("extract_insert.insert.desc-bump", seed=7):
                with pytest.raises(InvariantError) as ei:
                    prog.run("nsum", [8], backend="vector")
        msgs.append(str(ei.value))
    assert msgs[0] == msgs[1]


def test_injecting_restores_globals(prog):
    from repro.vector import nested
    assert F.INJECTOR is None
    before = nested.CHECK_INVARIANTS
    with F.injecting("vm.prim.desc-bump"):
        assert F.INJECTOR is not None
        assert nested.CHECK_INVARIANTS is False
    assert F.INJECTOR is None
    assert nested.CHECK_INVARIANTS == before


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        F.FaultInjector("no.such.site")
