"""Phase spans, the activation contract, and the zero-overhead-off paths."""

import pytest

from repro import Profiler, compile_program, profiling
from repro.obs import runtime
from repro.obs.runtime import NULL_SPAN, current, span, traced

SRC = """
fun sqs(n) = [j <- [1..n]: j * j]
fun main(k) = [i <- [1..k]: sqs(i)]
"""


class TestOffPaths:
    """With no active profiler, instrumentation must be inert."""

    def test_profiler_global_defaults_to_none(self):
        assert runtime.PROFILER is None
        assert current() is None

    def test_span_returns_shared_null_singleton(self):
        # identity, not just equality: the off path allocates nothing
        assert span("anything") is NULL_SPAN
        assert span("other") is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with span("x") as s:
            assert s is NULL_SPAN

    def test_traced_function_runs_normally_when_off(self):
        @traced
        def f(x):
            return x + 1
        assert f(2) == 3

    def test_run_records_nothing_when_off(self):
        prog = compile_program(SRC)
        assert prog.run("main", [3]) == [[1], [1, 4], [1, 4, 9]]
        assert runtime.PROFILER is None


class TestActivation:
    def test_profiling_sets_and_clears_global(self):
        prof = Profiler()
        with profiling(prof):
            assert runtime.PROFILER is prof
            assert current() is prof
        assert runtime.PROFILER is None

    def test_profiling_restores_previous_profiler(self):
        outer, inner = Profiler(), Profiler()
        with profiling(outer):
            with profiling(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_profiling_clears_on_exception(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with profiling(prof):
                raise ValueError("boom")
        assert runtime.PROFILER is None

    def test_profiling_default_creates_profiler(self):
        with profiling() as prof:
            assert isinstance(prof, Profiler)
            assert current() is prof


class TestSpanRecording:
    def test_nesting_depth(self):
        prof = Profiler()
        with profiling(prof):
            with span("outer"):
                with span("inner"):
                    pass
            with span("after"):
                pass
        by_name = {s.name: s for s in prof.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["after"].depth == 0

    def test_traced_decorator_names(self):
        prof = Profiler()

        @traced
        def plain():
            return 1

        @traced("custom-name")
        def named():
            return 2

        with profiling(prof):
            assert plain() == 1
            assert named() == 2
        names = [s.name for s in prof.spans]
        assert any(n.endswith("plain") for n in names)  # default = qualname
        assert "custom-name" in names

    def test_durations_are_nonnegative_and_ordered(self):
        prof = Profiler()
        with profiling(prof):
            with span("a"):
                pass
            with span("b"):
                pass
        rep = prof.report()
        assert all(s.duration >= 0 for s in rep.spans)
        starts = [s.start for s in rep.spans]
        assert starts == sorted(starts)


class TestPipelineSpans:
    def test_compile_and_run_phase_names(self):
        prof = Profiler()
        with profiling(prof):
            prog = compile_program(SRC)
            prog.run("main", [3])
        names = [s.name for s in prof.spans]
        for expected in ("parse", "canonicalize", "typecheck",
                         "monomorphize", "transform", "eliminate",
                         "optimize", "simplify", "execute:vector"):
            assert expected in names, f"missing span {expected}"
        assert any(n.startswith("vexec:main") for n in names)

    def test_transform_children_nest_under_transform(self):
        prof = Profiler()
        with profiling(prof):
            prog = compile_program(SRC)
            prog.run("main", [3])
        by_name = {s.name: s for s in prof.spans}
        assert by_name["eliminate"].depth == by_name["transform"].depth + 1
        assert by_name["simplify"].depth == by_name["transform"].depth + 1

    def test_vcode_backend_spans(self):
        prof = Profiler()
        with profiling(prof):
            compile_program(SRC).run("main", [3], backend="vcode")
        names = [s.name for s in prof.spans]
        assert "vcode-compile" in names
        assert "execute:vcode" in names
        assert any(n.startswith("vcode-vm:") for n in names)

    def test_cached_entry_shows_only_execution_spans(self):
        prog = compile_program(SRC)
        prog.run("main", [3])  # fills the prepare() cache
        prof = Profiler()
        with profiling(prof):
            prog.run("main", [3])
        names = [s.name for s in prof.spans]
        assert "transform" not in names
        assert "execute:vector" in names
