"""Exact per-kernel counter semantics on small known programs.

These tests pin the *measured* operation counts of the flattening for
tiny inputs, so any change to the transformation or the instrumentation
that alters how many vector ops run (or how their sizes are charged)
fails loudly.  Counts follow the semantics in docs/OBSERVABILITY.md.
"""

import numpy as np

from repro import Profiler, compile_program, profiling
from repro.lang import types as T
from repro.vector import ops as O
from repro.vector.convert import from_python


def kernel_map(report):
    return {c.op: c for c in report.layer("kernel")}


class TestRange1Generator:
    """``[i <- [1..k]: i*i]`` — one range1, one mul, nothing else."""

    def setup_method(self):
        prog = compile_program("fun main(k) = [i <- [1..k]: i*i]")
        self.result, self.report = prog.profile("main", [6])

    def test_result_unchanged(self):
        assert self.result == [1, 4, 9, 16, 25, 36]

    def test_exact_kernel_op_set(self):
        assert set(kernel_map(self.report)) == {"range1", "mul"}

    def test_mul_counts(self):
        mul = kernel_map(self.report)["mul"]
        # one call, on a 6-wide frame: two 6-element inputs + 6-element
        # result = 18 elements.
        assert (mul.calls, mul.elements, mul.max_frame_len) == (1, 18, 6)

    def test_range1_counts(self):
        r = kernel_map(self.report)["range1"]
        # unit frame in (scalar 6 -> 1 elem), depth-1 result holds 6
        # values + descriptor row -> 7 charged elements total.
        assert (r.calls, r.elements, r.max_frame_len) == (1, 7, 1)

    def test_totals_match_kernel_layer(self):
        assert self.report.total_calls() == 2
        assert self.report.total_elements() == 25

    def test_segment_layer_present_but_not_totalled(self):
        seg = {c.op for c in self.report.layer("segment")}
        assert seg == {"seg_iota"}


class TestDistGenerator:
    """``[x <- v: x + 10]`` — R1 index form plus one replicate of 10."""

    def setup_method(self):
        prog = compile_program("fun main(v) = [x <- v: x + 10]")
        self.result, self.report = prog.profile("main", [[1, 2, 3, 4]])

    def test_result_unchanged(self):
        assert self.result == [11, 12, 13, 14]

    def test_exact_kernel_table(self):
        got = {op: c.calls for op, c in kernel_map(self.report).items()}
        assert got == {"length": 1, "range1": 1, "seq_index_shared": 1,
                       "replicate": 1, "add": 1}

    def test_replicate_charged_at_frame_width(self):
        rep = kernel_map(self.report)["replicate"]
        assert rep.max_frame_len == 4
        assert rep.elements == 4  # the four copies of the literal 10

    def test_shared_index_no_dist_of_source(self):
        # section 4.5: v is indexed in place, never replicated per index
        assert "dist" not in kernel_map(self.report)

    def test_totals(self):
        assert self.report.total_calls() == 5


class TestConditionalRestrictCombine:
    """R2d: a data-dependent ``if`` packs with restrict, merges with
    combine, and guards both branches."""

    def setup_method(self):
        prog = compile_program(
            "fun f(v) = [x <- v: if x > 0 then x else 0 - x]")
        self.result, self.report = prog.profile("f", [[3, -1, 4, -2]])

    def test_result_unchanged(self):
        assert self.result == [3, 1, 4, 2]

    def test_mask_and_merge_counts(self):
        k = kernel_map(self.report)
        assert k["gt"].calls == 1          # the mask
        assert k["not_"].calls == 1        # its negation
        assert k["restrict"].calls == 2    # one pack per branch
        assert k["combine"].calls == 1     # one merge
        assert k["sub"].calls == 1         # else-branch on the packed space

    def test_else_branch_ran_packed(self):
        # only the two negative elements reached the else branch
        assert kernel_map(self.report)["sub"].max_frame_len == 2


class TestLayerAndBackendSelection:
    def test_interp_backend_has_no_kernel_counters(self):
        prog = compile_program("fun main(k) = [i <- [1..k]: i*i]")
        _r, rep = prog.profile("main", [6], backend="interp")
        assert rep.layer("kernel") == []
        assert rep.layer("segment") == []

    def test_vcode_backend_populates_vm_layer(self):
        prog = compile_program("fun main(k) = [i <- [1..k]: i*i]")
        _r, rep = prog.profile("main", [6], backend="vcode")
        vm_ops = {c.op for c in rep.layer("vm")}
        assert "instr:Prim" in vm_ops
        assert "instr:Ret" in vm_ops
        # charged widths mirror the machine-model trace
        assert rep.counter("mul", layer="vm").elements > 0

    def test_vector_backend_has_empty_vm_layer(self):
        prog = compile_program("fun main(k) = [i <- [1..k]: i*i]")
        _r, rep = prog.profile("main", [6])
        assert rep.layer("vm") == []


class TestChargingRules:
    def test_value_nbytes_includes_descriptors(self):
        v = from_python([[1, 2], [3]], T.parse_type("seq(seq(int))"))
        expected = int(v.values.nbytes) + sum(int(d.nbytes) for d in v.descs)
        assert O.value_nbytes(v) == expected

    def test_scalar_charged_eight_bytes(self):
        assert O.value_nbytes(7) == 8
        assert O.value_nbytes(True) == 8

    def test_max_frame_len_is_max_not_sum(self):
        prog = compile_program("fun main(k) = [i <- [1..k]: i*i]")
        prof = Profiler()
        with profiling(prof):
            prog.run("main", [3])
            prog.run("main", [9])
        rep = prof.report()
        assert rep.counter("mul").calls == 2
        assert rep.counter("mul").max_frame_len == 9

    def test_unit_frame_broadcast_not_charged_as_replicate(self):
        # depth-0 scalar ops wrap through unit frames; that bookkeeping
        # must not appear as data movement
        prog = compile_program("fun main(a, b) = a + b")
        _r, rep = prog.profile("main", [2, 3])
        assert rep.counter("replicate") is None
