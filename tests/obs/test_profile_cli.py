"""The ``repro profile`` subcommand, ``--profile`` flags, and the
profile.json schema contract (in-process via repro.cli.main)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION, validate_profile

REPO_ROOT = Path(__file__).resolve().parents[2]

DEMO = """
fun sqs(n) = [j <- [1..n]: j * j]
fun main(k) = [i <- [1..k]: sqs(i)]
"""


@pytest.fixture()
def demo(tmp_path):
    p = tmp_path / "demo.p"
    p.write_text(DEMO)
    return str(p)


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestProfileCommand:
    def test_profile_prints_table_and_writes_json(self, demo, capsys,
                                                  tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc, out = run_cli(capsys, "profile", demo, "-e", "main", "-a", "4")
        assert rc == 0
        assert "result: [[1], [1, 4], [1, 4, 9], [1, 4, 9, 16]]" in out
        assert "vector-model kernels" in out
        assert "phases:" in out
        assert "totals:" in out
        assert "wrote profile.json" in out
        doc = json.loads((tmp_path / "profile.json").read_text())
        assert validate_profile(doc) == []

    def test_profile_json_contents(self, demo, capsys, tmp_path):
        out_path = tmp_path / "p.json"
        rc, _ = run_cli(capsys, "profile", demo, "-e", "main", "-a", "4",
                        "-o", str(out_path))
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["version"] == SCHEMA_VERSION
        assert doc["meta"]["entry"] == "main"
        assert doc["meta"]["backend"] == "vector"
        span_names = [s["name"] for s in doc["spans"]]
        assert "parse" in span_names and "transform" in span_names
        kernel = [c for c in doc["counters"] if c["layer"] == "kernel"]
        assert doc["totals"]["vector_ops"] == sum(c["calls"] for c in kernel)

    def test_no_write_flag(self, demo, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc, out = run_cli(capsys, "profile", demo, "-e", "main", "-a", "3",
                          "--no-write")
        assert rc == 0
        assert "wrote" not in out
        assert not (tmp_path / "profile.json").exists()

    def test_vcode_backend(self, demo, capsys):
        rc, out = run_cli(capsys, "profile", demo, "-e", "main", "-a", "3",
                          "--backend", "vcode", "--no-write")
        assert rc == 0
        assert "VCODE VM" in out

    def test_default_entry_is_main(self, demo, capsys):
        rc, out = run_cli(capsys, "profile", demo, "-a", "3", "--no-write")
        assert rc == 0
        assert "entry=main" in out


class TestExampleDrivers:
    """``repro profile examples/<name>.py`` — the SOURCE/PROFILE_* path."""

    def test_quicksort_example(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc, out = run_cli(
            capsys, "profile", str(REPO_ROOT / "examples" / "quicksort.py"))
        assert rc == 0
        assert "entry=qsort" in out
        assert "vector-model kernels" in out
        # section 4.5 at work in the recursion
        assert "seq_index_segshared" in out
        doc = json.loads((tmp_path / "profile.json").read_text())
        assert validate_profile(doc) == []

    def test_every_example_declares_profile_defaults(self):
        import ast
        for py in sorted((REPO_ROOT / "examples").glob("*.py")):
            names = {t.targets[0].id
                     for t in ast.parse(py.read_text()).body
                     if isinstance(t, ast.Assign) and len(t.targets) == 1
                     and isinstance(t.targets[0], ast.Name)}
            assert {"SOURCE", "PROFILE_ENTRY", "PROFILE_ARGS"} <= names, \
                f"{py.name} missing profile defaults"

    def test_py_file_without_source_rejected(self, tmp_path):
        f = tmp_path / "noprofile.py"
        f.write_text("x = 1\n")
        with pytest.raises(SystemExit):
            main(["profile", str(f)])


class TestProfileFlags:
    def test_run_profile_flag(self, demo, capsys):
        rc, out = run_cli(capsys, "run", demo, "-a", "3", "--profile")
        assert rc == 0
        assert out.startswith("[[1], [1, 4], [1, 4, 9]]")
        assert "vector-model kernels" in out

    def test_run_without_flag_has_no_table(self, demo, capsys):
        rc, out = run_cli(capsys, "run", demo, "-a", "3")
        assert rc == 0
        assert "vector-model kernels" not in out

    def test_simulate_profile_flag(self, demo, capsys):
        rc, out = run_cli(capsys, "simulate", demo, "-a", "3", "--profile")
        assert rc == 0
        assert "VCODE VM" in out


class TestValidator:
    def _valid_doc(self, demo_src=DEMO):
        from repro import compile_program
        _r, rep = compile_program(demo_src).profile("main", [3])
        return json.loads(rep.to_json())

    def test_valid_document_passes(self):
        assert validate_profile(self._valid_doc()) == []

    def test_rejects_wrong_version(self):
        doc = self._valid_doc()
        doc["version"] = 99
        assert any("version" in e for e in validate_profile(doc))

    def test_rejects_inconsistent_totals(self):
        doc = self._valid_doc()
        doc["totals"]["vector_ops"] += 1
        assert any("vector_ops" in e for e in validate_profile(doc))

    def test_rejects_unknown_layer(self):
        doc = self._valid_doc()
        doc["counters"][0]["layer"] = "mystery"
        assert any("layer" in e for e in validate_profile(doc))

    def test_rejects_non_object(self):
        assert validate_profile([1, 2]) != []
