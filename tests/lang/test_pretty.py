"""Pretty-printer tests: resugaring, precedence-correct parenthesization,
and rendering of transformed (ExtCall/IndirectCall) programs."""

import pytest

from repro.lang import ast as A
from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty, pretty_def, pretty_program


def pp(src):
    return pretty(parse_expression(src))


class TestResugaring:
    @pytest.mark.parametrize("src,expected", [
        ("1 + 2", "1 + 2"),
        ("1 + 2 * 3", "1 + 2 * 3"),
        ("(1 + 2) * 3", "(1 + 2) * 3"),
        ("#v", "#v"),
        ("v[i]", "v[i]"),
        ("v[i][j]", "v[i][j]"),
        ("[1 .. n]", "[1 .. n]"),
        ("not a and b", "not a and b"),
        ("not (a and b)", "not (a and b)"),
        ("-x + 1", "-x + 1"),
        ("a - (b - c)", "a - (b - c)"),
        ("a - b - c", "a - b - c"),
        ("x mod 2 == 1", "x mod 2 == 1"),
    ])
    def test_operators(self, src, expected):
        assert pp(src) == expected

    def test_display_names(self):
        assert pp("and_(a, b)") == "a and b"
        assert pp("abs_(x)") == "abs(x)"
        assert pp("not_(x)") == "not x"

    def test_iterator(self):
        assert pp("[x <- v: x + 1]") == "[x <- v: x + 1]"

    def test_filtered_iterator(self):
        assert pp("[x <- v | odd(x): x]") == "[x <- v | odd(x): x]"

    def test_sequences_and_tuples(self):
        assert pp("[1, 2, 3]") == "[1, 2, 3]"
        assert pp("[]") == "[]"
        assert pp("(a, b)") == "(a, b)"
        assert pp("p.1") == "p.1"

    def test_lambda(self):
        assert pp("fn(x, y) => x + y") == "fn(x, y) => x + y"

    def test_call_of_nonvariable(self):
        out = pp("(f(1))(2)")
        assert out == "(f(1))(2)"


class TestLayout:
    def test_let_collapses_bindings(self):
        out = pp("let a = 1 in let b = 2 in a + b")
        assert out.count("let") == 1
        assert "a = 1" in out and "b = 2" in out

    def test_if_multiline(self):
        out = pp("if c then 1 else 2")
        assert "then 1" in out and "else 2" in out


class TestTransformedNodes:
    def test_extcall_superscript(self):
        e = A.ExtCall("mul", [A.Var("j"), A.Var("j")], 2, [2, 2])
        assert pretty(e) == "mul^2(j, j)"

    def test_extcall_depth0_no_superscript(self):
        e = A.ExtCall("length", [A.Var("v")], 0, [0])
        assert pretty(e) == "length(v)"

    def test_indirect_call(self):
        e = A.IndirectCall(A.Var("f"), [A.Var("x")], 1, 0, [1])
        assert pretty(e) == "(f)^1(x)"

    def test_roundtrip_parse_of_plain_nodes(self):
        src = "let v = [x <- [1 .. n] | odd(x): (x, x * x)] in v[1].2"
        assert pretty(parse_expression(pp(src))) == pp(src)


class TestDefsAndPrograms:
    def test_pretty_def(self):
        p = parse_program("fun f(a, b) = a + b")
        out = pretty_def(p["f"])
        assert out.startswith("fun f(a, b) =")

    def test_pretty_program(self):
        p = parse_program("fun f(x) = x fun g(x) = f(x)")
        out = pretty_program(p)
        assert "fun f(x)" in out and "fun g(x)" in out

    def test_program_reparses(self):
        src = """
            fun odd2(a) = 1 == a mod 2
            fun oddsq(n) = [i <- [1..n] | odd2(i): i * i]
        """
        p = parse_program(src)
        again = parse_program(pretty_program(p))
        assert pretty_program(again) == pretty_program(p)
