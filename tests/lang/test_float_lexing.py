"""Lexer/parser unit tests for float literals and their interactions with
ranges, projections, and exponents."""

import pytest

from repro.errors import ParseError
from repro.lang import ast as A
from repro.lang.parser import parse_expression
from repro.lang.pretty import pretty
from repro.lang.tokens import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestFloatTokens:
    @pytest.mark.parametrize("src,text", [
        ("1.5", "1.5"), ("0.0", "0.0"), ("123.456", "123.456"),
        ("2.5e3", "2.5e3"), ("2.5E3", "2.5E3"), ("2.5e+3", "2.5e+3"),
        ("2.5e-3", "2.5e-3"),
    ])
    def test_float_literals(self, src, text):
        assert kinds(src) == [("float", text)]

    def test_range_not_float(self):
        assert kinds("1..5") == [("int", "1"), ("op", ".."), ("int", "5")]

    def test_projection_not_float(self):
        assert kinds("p.1") == [("ident", "p"), ("op", "."), ("int", "1")]

    def test_trailing_dot_not_float(self):
        # "1." is int then dot (no fractional digits)
        assert kinds("1.") == [("int", "1"), ("op", ".")]

    def test_leading_dot_not_float(self):
        assert kinds(".5")[0] == ("op", ".")

    def test_exponent_without_digits_not_consumed(self):
        assert kinds("1.5e") == [("float", "1.5"), ("ident", "e")]
        assert kinds("1.5e+") == [("float", "1.5"), ("ident", "e"), ("op", "+")]

    def test_float_then_range(self):
        assert kinds("1.5 .. x")[0] == ("float", "1.5")


class TestFloatParsing:
    def test_literal_node(self):
        e = parse_expression("1.5")
        assert isinstance(e, A.FloatLit) and e.value == 1.5

    def test_exponent_value(self):
        assert parse_expression("2.5e2").value == 250.0

    def test_arithmetic(self):
        e = parse_expression("1.5 + 2.5 * 3.0")
        assert isinstance(e, A.Call)

    def test_negative_float(self):
        e = parse_expression("-1.5")
        assert isinstance(e, A.Call)  # neg(1.5)
        assert e.args[0].value == 1.5

    def test_float_in_sequence(self):
        e = parse_expression("[1.0, 2.5]")
        assert all(isinstance(x, A.FloatLit) for x in e.items)

    def test_pretty_roundtrip(self):
        for src in ("1.5", "2.5 + 0.5", "[0.25, 1.75]"):
            e = parse_expression(src)
            assert pretty(parse_expression(pretty(e))) == pretty(e)

    def test_chained_projection_still_works(self):
        e = parse_expression("p.1.2.1")
        assert isinstance(e, A.TupleExtract) and e.index == 1
        assert isinstance(e.tup, A.TupleExtract) and e.tup.index == 2

    def test_bad_projection_float(self):
        with pytest.raises(ParseError):
            parse_expression("p.1e5")  # exponent float after '.' is invalid
