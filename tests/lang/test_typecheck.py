"""Unit tests for inference + monomorphization."""

import pytest

from repro.errors import TypeCheckError
from repro.lang import ast as A
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program
from repro.lang.types import BOOL, INT, TFun, TSeq, TTuple, TVar, seq_of


def infer(src):
    return typecheck_program(parse_program(src))


class TestInference:
    def test_scalar_function(self):
        tp = infer("fun odd(a) = 1 == a mod 2")
        assert tp.schemes["odd"] == TFun((INT,), BOOL)

    def test_sqs(self):
        tp = infer("fun sqs(n) = [i <- [1..n]: i*i]")
        assert tp.schemes["sqs"] == TFun((INT,), TSeq(INT))

    def test_identity_polymorphic(self):
        tp = infer("fun id(x) = x")
        s = tp.schemes["id"]
        assert isinstance(s.params[0], TVar)
        assert s.result == s.params[0]

    def test_length_constrains_to_seq(self):
        tp = infer("fun len2(v) = #v + #v")
        s = tp.schemes["len2"]
        assert isinstance(s.params[0], TSeq)
        assert s.result == INT

    def test_nested_iterator_type(self):
        tp = infer("fun tri(n) = [i <- [1..n]: [j <- [1..i]: j]]")
        assert tp.schemes["tri"] == TFun((INT,), seq_of(INT, 2))

    def test_filter_must_be_bool(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(n) = [i <- [1..n] | i + 1: i]")

    def test_if_branches_must_agree(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(b) = if b then 1 else true")

    def test_cond_must_be_bool(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(x) = if x + 1 then 1 else 2")

    def test_unbound_variable(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(x) = y")

    def test_recursion_monomorphic(self):
        tp = infer("""
            fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
        """)
        assert tp.schemes["fact"] == TFun((INT,), INT)

    def test_mutual_recursion(self):
        tp = infer("""
            fun isEven(n) = if n == 0 then true else isOdd(n - 1)
            fun isOdd(n) = if n == 0 then false else isEven(n - 1)
        """)
        assert tp.schemes["isEven"] == TFun((INT,), BOOL)
        assert tp.schemes["isOdd"] == TFun((INT,), BOOL)

    def test_polymorphic_use_at_two_types(self):
        tp = infer("""
            fun id(x) = x
            fun use(b) = if id(b) then id(1) else id(2)
        """)
        assert tp.schemes["use"] == TFun((BOOL,), INT)

    def test_higher_order(self):
        tp = infer("fun twice(f, x) = f(f(x))")
        s = tp.schemes["twice"]
        f, x = s.params
        assert isinstance(f, TFun) and f.params == (s.result,)

    def test_lambda(self):
        tp = infer("fun inc_all(v) = [x <- v: (fn(y) => y + 1)(x)]")
        assert tp.schemes["inc_all"] == TFun((TSeq(INT),), TSeq(INT))

    def test_lambda_capture_rejected(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(a, v) = [x <- v: (fn(y) => y + a)(x)]")

    def test_lambda_may_reference_toplevel(self):
        tp = infer("""
            fun inc(y) = y + 1
            fun f(v) = [x <- v: (fn(y) => inc(y))(x)]
        """)
        assert tp.schemes["f"] == TFun((TSeq(INT),), TSeq(INT))

    def test_tuple_types(self):
        tp = infer("fun pair(a, b) = (a, b + 1)")
        s = tp.schemes["pair"]
        assert isinstance(s.result, TTuple)
        assert s.result.items[1] == INT

    def test_tuple_extract(self):
        tp = infer("fun fst2(a, b) = (a, b).1")
        s = tp.schemes["fst2"]
        assert s.result == s.params[0]

    def test_tuple_extract_needs_known_tuple(self):
        with pytest.raises(TypeCheckError):
            infer("fun fst(p) = p.1")

    def test_tuple_extract_with_annotation(self):
        tp = infer("fun fst(p: (int, bool)) = p.1")
        assert tp.schemes["fst"] == TFun((TTuple((INT, BOOL)),), INT)

    def test_annotation_mismatch(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(x: bool) = x + 1")

    def test_return_annotation_checked(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(x: int) : bool = x + 1")

    def test_eq_on_bool(self):
        tp = infer("fun f(a, b) = a == b and a")
        assert tp.schemes["f"] == TFun((BOOL, BOOL), BOOL)

    def test_eq_on_seq_rejected(self):
        with pytest.raises(TypeCheckError):
            infer("fun f(v, w) = v == [1]")

    def test_empty_seq_polymorphic(self):
        tp = infer("fun e() = []")
        s = tp.schemes["e"]
        assert isinstance(s.result, TSeq)

    def test_builtin_reference_as_value(self):
        tp = infer("fun apply1(f, x) = f(x) fun use() = apply1(neg, 1)")
        assert tp.schemes["use"] == TFun((), INT)

    def test_builtin_value_arity_mismatch(self):
        # add : (int,int)->int doesn't fit a unary function position
        with pytest.raises(TypeCheckError):
            infer("fun apply1(f, x) = f(x) fun bad() = apply1(add, 1)")

    def test_builtin_value_type_mismatch(self):
        # not_ : (bool)->bool cannot be applied to an int
        with pytest.raises(TypeCheckError):
            infer("fun apply1(f, x) = f(x) fun bad() = apply1(not_, 1)")

    def test_seq_literal_homogeneous(self):
        with pytest.raises(TypeCheckError):
            infer("fun f() = [1, true]")

    def test_restrict_combine(self):
        tp = infer("fun f(v, m) = combine(m, restrict(v, m), restrict(v, [x <- m: not x]))")
        s = tp.schemes["f"]
        assert isinstance(s.params[0], TSeq)
        assert s.params[1] == TSeq(BOOL)


class TestMonomorphization:
    def test_instance_basic(self):
        tp = infer("fun id(x) = x")
        n = tp.instance("id", (INT,))
        assert n == "id"
        d = tp.mono_defs[n]
        assert d.ret_type == INT
        assert d.body.type == INT

    def test_two_instances_get_distinct_names(self):
        tp = infer("fun id(x) = x")
        n1 = tp.instance("id", (INT,))
        n2 = tp.instance("id", (BOOL,))
        assert n1 != n2
        assert tp.mono_defs[n2].ret_type == BOOL

    def test_instance_memoized(self):
        tp = infer("fun id(x) = x")
        assert tp.instance("id", (INT,)) == tp.instance("id", (INT,))

    def test_recursive_instance(self):
        tp = infer("fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)")
        n = tp.instance("fact", (INT,))
        d = tp.mono_defs[n]
        assert d.ret_type == INT

    def test_callee_specialized(self):
        tp = infer("""
            fun id(x) = x
            fun f(v) = id(v)
        """)
        tp.instance("f", (TSeq(INT),))
        # some instance of id at seq(int) must exist
        assert any(d.param_types == [TSeq(INT)]
                   for name, d in tp.mono_defs.items() if name.startswith("id"))

    def test_lambda_lifted(self):
        tp = infer("fun f(x) = (fn(y) => y + 1)(x)")
        n = tp.instance("f", (INT,))
        lams = [name for name in tp.mono_defs if name.startswith("lam")]
        assert len(lams) == 1
        body = tp.mono_defs[n].body
        assert isinstance(body, A.Call)
        assert isinstance(body.fn, A.Var) and body.fn.name == lams[0]

    def test_wrong_arg_types_rejected(self):
        tp = infer("fun sqs(n) = [i <- [1..n]: i*i]")
        with pytest.raises(TypeCheckError):
            tp.instance("sqs", (BOOL,))

    def test_wrong_arity_rejected(self):
        tp = infer("fun f(x, y) = x + y")
        with pytest.raises(TypeCheckError):
            tp.instance("f", (INT,))

    def test_all_nodes_typed(self):
        tp = infer("fun tri(n) = [i <- [1..n]: [j <- [1..i]: i * j]]")
        n = tp.instance("tri", (INT,))
        for node in A.walk(tp.mono_defs[n].body):
            assert node.type is not None
            from repro.lang.types import contains_var
            assert not contains_var(node.type)

    def test_polymorphic_function_value_reference(self):
        tp = infer("""
            fun id(x) = x
            fun f(g, x) = g(x)
            fun main(n) = f(id, n)
        """)
        n = tp.instance("main", (INT,))
        d = tp.mono_defs[n]
        # the reference to id inside main's body resolved to an instance
        names = {node.name for node in A.walk(d.body) if isinstance(node, A.Var)}
        assert any(x.startswith("id") for x in names)


class TestPreludeTypes:
    def test_prelude_typechecks(self):
        from repro.lang.prelude import prelude_program
        tp = typecheck_program(prelude_program())
        assert "reduce" in tp.schemes
        red = tp.schemes["reduce"]
        assert isinstance(red.params[0], TFun)

    def test_reduce_instance_at_int(self):
        from repro.lang.prelude import prelude_program
        tp = typecheck_program(prelude_program())
        n = tp.instance("reduce", (TFun((INT, INT), INT), TSeq(INT)))
        assert tp.mono_defs[n].ret_type == INT

    def test_distribute(self):
        from repro.lang.prelude import prelude_program
        tp = typecheck_program(prelude_program())
        n = tp.instance("distribute", (TSeq(INT), TSeq(INT)))
        assert tp.mono_defs[n].ret_type == seq_of(INT, 2)
