"""Every prelude function, executed on all three back ends.

The prelude is P source, so these are end-to-end pipeline tests as well as
behaviour pins for the derived-function library."""

import random

import pytest

from repro import FunVal, compile_program


@pytest.fixture(scope="module")
def prog():
    # empty user program: prelude only
    return compile_program("")


def rnd(n, lo=0, hi=100, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(lo, hi) for _ in range(n)]


class TestSorting:
    def test_sort(self, prog):
        v = rnd(40)
        assert prog.run_all("sort", [v]) == sorted(v)

    def test_sort_empty_and_singleton(self, prog):
        assert prog.run_all("sort", [[]]) == []
        assert prog.run_all("sort", [[7]]) == [7]

    def test_sort_with_duplicates(self, prog):
        v = [3, 1, 3, 1, 3]
        assert prog.run_all("sort", [v]) == [1, 1, 3, 3, 3]

    def test_sort_negative(self, prog):
        v = [5, -3, 0, -3, 9]
        assert prog.run_all("sort", [v]) == sorted(v)

    def test_sort_by(self, prog):
        keys = [3, 1, 2]
        vals = [30, 10, 20]
        assert prog.run_all("sort_by", [keys, vals]) == [10, 20, 30]

    def test_sort_by_stable(self, prog):
        keys = [1, 1, 0]
        vals = [7, 8, 9]
        assert prog.run_all("sort_by", [keys, vals]) == [9, 7, 8]

    def test_merge(self, prog):
        assert prog.run_all("merge", [[1, 4, 6], [2, 3, 9]]) == [1, 2, 3, 4, 6, 9]

    def test_msort(self, prog):
        v = rnd(33, seed=5)
        assert prog.run_all("msort", [v]) == sorted(v)

    def test_msort_inside_frame(self, prog):
        p = compile_program("fun f(vv) = [v <- vv: msort(v)]")
        vv = [rnd(7, seed=i) for i in range(5)]
        assert p.run_all("f", [vv]) == [sorted(v) for v in vv]

    def test_unique(self, prog):
        assert prog.run_all("unique", [[3, 1, 3, 2, 1]]) == [1, 2, 3]
        assert prog.run_all("unique", [[]]) == []
        assert prog.run_all("unique", [[5, 5, 5]]) == [5]


class TestSearching:
    def test_member(self, prog):
        assert prog.run_all("member", [3, [1, 2, 3]]) is True
        assert prog.run_all("member", [9, [1, 2, 3]]) is False
        assert prog.run_all("member", [9, []]) is False

    def test_index_of(self, prog):
        assert prog.run_all("index_of", [20, [10, 20, 30, 20]]) == 2
        assert prog.run_all("index_of", [99, [10, 20]]) == 0


class TestNumeric:
    def test_dotp(self, prog):
        assert prog.run_all("dotp", [[1, 2, 3], [4, 5, 6]]) == 32
        assert prog.run_all("dotp", [[], []]) == 0

    def test_sum_p_matches_native(self, prog):
        v = rnd(17, seed=2)
        assert prog.run_all("sum_p", [v]) == sum(v)

    def test_maxval_minval_p(self, prog):
        v = rnd(9, seed=3)
        assert prog.run_all("maxval_p", [v]) == max(v)
        assert prog.run_all("minval_p", [v]) == min(v)

    def test_count(self, prog):
        assert prog.run_all("count", [[True, False, True, True]]) == 3


class TestStructural:
    def test_enumerate2(self, prog):
        assert prog.run_all("enumerate2", [[7, 8]]) == [(1, 7), (2, 8)]

    def test_zip2(self, prog):
        assert prog.run_all("zip2", [[1, 2], [3, 4]]) == [(1, 3), (2, 4)]

    def test_reverse(self, prog):
        assert prog.run_all("reverse", [[1, 2, 3, 4]]) == [4, 3, 2, 1]
        assert prog.run_all("reverse", [[]]) == []

    def test_take_drop(self, prog):
        assert prog.run_all("take", [[1, 2, 3], 0]) == []
        assert prog.run_all("drop", [[1, 2, 3], 3]) == []
        assert prog.run_all("take", [[1, 2, 3], 3]) == [1, 2, 3]

    def test_append(self, prog):
        assert prog.run_all("append", [[1], 2]) == [1, 2]

    def test_concat_p(self, prog):
        assert prog.run_all("concat_p", [[], [1]]) == [1]
        assert prog.run_all("concat_p", [[1], []]) == [1]

    def test_distribute(self, prog):
        assert prog.run_all("distribute", [[1, 2], [0, 3]]) == [[], [2, 2, 2]]

    def test_flatten_p(self, prog):
        assert prog.run_all("flatten_p", [[[1], [], [2, 3]]]) == [1, 2, 3]


class TestHigherOrderPrelude:
    def test_map_p(self, prog):
        assert prog.run("map_p", [FunVal("neg"), [1, -2]],
                        types=["(int) -> int", "seq(int)"]) == [-1, 2]

    def test_filter_p(self, prog):
        assert prog.run("filter_p", [FunVal("odd"), [1, 2, 3, 4]],
                        types=["(int) -> bool", "seq(int)"]) == [1, 3]

    def test_reduce_with(self, prog):
        assert prog.run("reduce_with", [FunVal("add"), 0, []],
                        types=["(int, int) -> int", "int", "seq(int)"]) == 0
        assert prog.run("reduce_with", [FunVal("add"), 0, [1, 2]],
                        types=["(int, int) -> int", "int", "seq(int)"]) == 3


class TestRankPermutePrimitives:
    def test_rank(self, prog):
        p = compile_program("fun f(v) = rank(v)")
        assert p.run_all("f", [[30, 10, 20]]) == [3, 1, 2]

    def test_rank_stable(self, prog):
        p = compile_program("fun f(v) = rank(v)")
        assert p.run_all("f", [[5, 5, 1]]) == [2, 3, 1]

    def test_permute(self, prog):
        p = compile_program("fun f(v, i) = permute(v, i)")
        assert p.run_all("f", [[10, 20, 30], [2, 3, 1]]) == [30, 10, 20]

    def test_permute_invalid(self, prog):
        from repro.errors import ReproError
        p = compile_program("fun f(v, i) = permute(v, i)")
        for backend in ("interp", "vector"):
            with pytest.raises(ReproError):
                p.run("f", [[1, 2], [1, 1]], backend=backend)
            with pytest.raises(ReproError):
                p.run("f", [[1, 2], [1, 3]], backend=backend)

    def test_rank_inside_frame(self, prog):
        p = compile_program("fun f(vv) = [v <- vv: rank(v)]")
        assert p.run_all("f", [[[3, 1], [5, 5, 2]]]) == [[2, 1], [2, 3, 1]]

    def test_sort_inside_frame(self, prog):
        p = compile_program("fun f(vv) = [v <- vv: sort(v)]")
        vv = [rnd(6, seed=i) for i in range(4)] + [[]]
        assert p.run_all("f", [vv]) == [sorted(v) for v in vv]

    def test_permute_deep_elements(self, prog):
        p = compile_program("fun f(v: seq(seq(int)), i) = permute(v, i)")
        assert p.run_all("f", [[[1, 1], [2]], [2, 1]]) == [[2], [1, 1]]
