"""Unit tests for the P parser (desugarings, precedence, iterator forms)."""

import pytest

from repro.errors import ParseError
from repro.lang import ast as A
from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty


def call_name(e):
    assert isinstance(e, A.Call) and isinstance(e.fn, A.Var)
    return e.fn.name


class TestAtoms:
    def test_int(self):
        e = parse_expression("42")
        assert isinstance(e, A.IntLit) and e.value == 42

    def test_bools(self):
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False

    def test_var(self):
        e = parse_expression("abc")
        assert isinstance(e, A.Var) and e.name == "abc"

    def test_parenthesized(self):
        e = parse_expression("(1 + 2)")
        assert call_name(e) == "add"

    def test_tuple(self):
        e = parse_expression("(1, 2, 3)")
        assert isinstance(e, A.TupleLit) and len(e.items) == 3

    def test_tuple_extract(self):
        e = parse_expression("p.2")
        assert isinstance(e, A.TupleExtract) and e.index == 2

    def test_nested_tuple_extract(self):
        e = parse_expression("p.1.2")
        assert isinstance(e, A.TupleExtract) and e.index == 2
        assert isinstance(e.tup, A.TupleExtract) and e.tup.index == 1


class TestOperatorDesugaring:
    @pytest.mark.parametrize("src,name", [
        ("1 + 2", "add"), ("1 - 2", "sub"), ("1 * 2", "mul"),
        ("1 div 2", "div"), ("1 / 2", "div"), ("1 mod 2", "mod"),
        ("1 == 2", "eq"), ("1 != 2", "ne"), ("1 < 2", "lt"),
        ("1 <= 2", "le"), ("1 > 2", "gt"), ("1 >= 2", "ge"),
        ("true and false", "and_"), ("true or false", "or_"),
    ])
    def test_binops(self, src, name):
        assert call_name(parse_expression(src)) == name

    def test_unary_minus(self):
        assert call_name(parse_expression("-x")) == "neg"

    def test_not(self):
        assert call_name(parse_expression("not x")) == "not_"

    def test_length(self):
        assert call_name(parse_expression("#v")) == "length"

    def test_index(self):
        e = parse_expression("v[3]")
        assert call_name(e) == "seq_index"
        assert isinstance(e.args[1], A.IntLit)

    def test_chained_index(self):
        e = parse_expression("v[1][2]")
        assert call_name(e) == "seq_index"
        assert call_name(e.args[0]) == "seq_index"

    def test_range(self):
        e = parse_expression("[1 .. n]")
        assert call_name(e) == "range"

    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert call_name(e) == "add"
        assert call_name(e.args[1]) == "mul"

    def test_precedence_cmp_lowest_arith(self):
        e = parse_expression("1 + 1 == 2")
        assert call_name(e) == "eq"

    def test_and_binds_tighter_than_or(self):
        e = parse_expression("a or b and c")
        assert call_name(e) == "or_"
        assert call_name(e.args[1]) == "and_"

    def test_left_associativity(self):
        e = parse_expression("1 - 2 - 3")
        assert call_name(e) == "sub"
        assert call_name(e.args[0]) == "sub"
        assert e.args[1].value == 3

    def test_comparison_nonassoc(self):
        with pytest.raises(ParseError):
            parse_expression("1 < 2 < 3")

    def test_hash_of_index(self):
        e = parse_expression("#v[1]")
        # '#' applies to the postfix expression v[1]
        assert call_name(e) == "length"
        assert call_name(e.args[0]) == "seq_index"


class TestBracketForms:
    def test_empty_seq(self):
        e = parse_expression("[]")
        assert isinstance(e, A.SeqLit) and e.items == []

    def test_singleton_seq(self):
        e = parse_expression("[7]")
        assert isinstance(e, A.SeqLit) and len(e.items) == 1

    def test_seq_literal(self):
        e = parse_expression("[1, 2, 3]")
        assert isinstance(e, A.SeqLit) and len(e.items) == 3

    def test_nested_seq_literal(self):
        e = parse_expression("[[1,2],[3]]")
        assert isinstance(e, A.SeqLit)
        assert all(isinstance(x, A.SeqLit) for x in e.items)

    def test_iterator(self):
        e = parse_expression("[x <- v: x * x]")
        assert isinstance(e, A.Iter)
        assert e.var == "x" and e.filter is None
        assert call_name(e.body) == "mul"

    def test_filtered_iterator(self):
        e = parse_expression("[x <- v | odd(x): x]")
        assert isinstance(e, A.Iter)
        assert e.filter is not None
        assert call_name(e.filter) == "odd"

    def test_iterator_range_domain(self):
        e = parse_expression("[i <- [1..n]: i]")
        assert isinstance(e, A.Iter)
        assert call_name(e.domain) == "range"

    def test_nested_iterators(self):
        e = parse_expression("[i <- [1..n]: [j <- [1..i]: i + j]]")
        assert isinstance(e, A.Iter)
        assert isinstance(e.body, A.Iter)


class TestCompoundForms:
    def test_let_single(self):
        e = parse_expression("let x = 1 in x + x")
        assert isinstance(e, A.Let) and e.var == "x"

    def test_let_multiple_unfolds(self):
        e = parse_expression("let x = 1, y = 2 in x + y")
        assert isinstance(e, A.Let) and e.var == "x"
        assert isinstance(e.body, A.Let) and e.body.var == "y"

    def test_if(self):
        e = parse_expression("if a then 1 else 2")
        assert isinstance(e, A.If)

    def test_lambda(self):
        e = parse_expression("fn(x, y) => x + y")
        assert isinstance(e, A.Lambda) and e.params == ["x", "y"]

    def test_call(self):
        e = parse_expression("f(1, 2)")
        assert isinstance(e, A.Call) and len(e.args) == 2

    def test_call_no_args(self):
        e = parse_expression("f()")
        assert isinstance(e, A.Call) and e.args == []

    def test_higher_order_call(self):
        e = parse_expression("reduce(add, v)")
        assert call_name(e) == "reduce"
        assert isinstance(e.args[0], A.Var) and e.args[0].name == "add"

    def test_curried_application(self):
        e = parse_expression("f(1)(2)")
        assert isinstance(e, A.Call)
        assert isinstance(e.fn, A.Call)


class TestPrograms:
    def test_simple_program(self):
        p = parse_program("fun sqs(n) = [i <- [1..n]: i*i]")
        assert "sqs" in p
        assert p["sqs"].params == ["n"]

    def test_multiple_defs(self):
        p = parse_program("""
            fun odd(a) = 1 == a mod 2
            fun oddsq(n) = [i <- [1..n] | odd(i): i * i]
        """)
        assert set(p.defs) == {"odd", "oddsq"}

    def test_annotations(self):
        p = parse_program("fun f(x: int, v: seq(int)) : seq(int) = v")
        d = p["f"]
        from repro.lang import types as T
        assert d.param_types == [T.INT, T.TSeq(T.INT)]
        assert d.ret_type == T.TSeq(T.INT)

    def test_duplicate_def_rejected(self):
        with pytest.raises(ParseError):
            parse_program("fun f(x) = x fun f(y) = y")

    def test_optional_semicolons(self):
        p = parse_program("fun f(x) = x; fun g(x) = f(x);")
        assert set(p.defs) == {"f", "g"}

    def test_paper_concat(self):
        src = "fun concat(v, w) = [i <- [1..#v + #w]: if i <= #v then v[i] else w[i - #v]]"
        p = parse_program(src)
        body = p["concat"].body
        assert isinstance(body, A.Iter)
        assert isinstance(body.body, A.If)


class TestParseErrors:
    @pytest.mark.parametrize("src", [
        "1 +", "let x = in x", "if a then b", "[x <- v x]",
        "fn(x => x", "(1, )", "f(", "[1 ..", "fun", "v[",
    ])
    def test_rejects(self, src):
        with pytest.raises(ParseError):
            parse_expression(src) if not src.startswith("fun") else parse_program(src)

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_expression("1 2")


class TestRoundTrip:
    @pytest.mark.parametrize("src", [
        "1 + 2 * 3",
        "[i <- [1 .. n]: i * i]",
        "[x <- v | odd(x): x + 1]",
        "if a then 1 else 2",
        "fn(x) => x + 1",
        "#v + #w",
        "v[i][j]",
        "(1, true)",
        "p.1",
        "reduce(add, [1, 2, 3])",
    ])
    def test_parse_pretty_parse(self, src):
        e1 = parse_expression(src)
        s1 = pretty(e1)
        e2 = parse_expression(s1)
        assert pretty(e2) == s1
