"""Unit tests for the type language and unification."""

import pytest

from repro.errors import TypeCheckError
from repro.lang import types as T
from repro.lang.types import (
    BOOL, INT, Subst, TFun, TSeq, TTuple, fresh_tvar, instantiate, parse_type,
    peel, scalar_leaves, seq_depth, seq_of, type_str,
)


class TestConstructorsAndDepth:
    def test_seq_of(self):
        assert seq_of(INT, 0) == INT
        assert seq_of(INT, 2) == TSeq(TSeq(INT))

    def test_peel(self):
        assert peel(TSeq(TSeq(INT)), 2) == INT

    def test_peel_too_deep(self):
        with pytest.raises(TypeCheckError):
            peel(TSeq(INT), 2)

    def test_seq_depth(self):
        assert seq_depth(INT) == 0
        assert seq_depth(seq_of(BOOL, 3)) == 3

    def test_equality_structural(self):
        assert TSeq(INT) == TSeq(INT)
        assert TTuple((INT, BOOL)) == TTuple((INT, BOOL))
        assert TFun((INT,), BOOL) == TFun((INT,), BOOL)
        assert TSeq(INT) != TSeq(BOOL)


class TestTypeStr:
    @pytest.mark.parametrize("t,s", [
        (INT, "int"),
        (BOOL, "bool"),
        (TSeq(INT), "seq(int)"),
        (TTuple((INT, BOOL)), "(int, bool)"),
        (TFun((INT, INT), TSeq(INT)), "(int, int) -> seq(int)"),
        (TSeq(TSeq(BOOL)), "seq(seq(bool))"),
    ])
    def test_render(self, t, s):
        assert type_str(t) == s


class TestParseType:
    @pytest.mark.parametrize("s", [
        "int", "bool", "seq(int)", "seq(seq(bool))",
        "(int, bool)", "(int) -> int", "(seq(int), int) -> seq(int)",
        "(int, (int, bool))", "() -> int",
    ])
    def test_roundtrip(self, s):
        t = parse_type(s)
        assert parse_type(type_str(t)) == t

    def test_paren_single_is_type(self):
        assert parse_type("(int)") == INT

    def test_bad_type(self):
        with pytest.raises(TypeCheckError):
            parse_type("seq(int")
        with pytest.raises(TypeCheckError):
            parse_type("complex")


class TestUnification:
    def test_simple(self):
        s = Subst()
        v = fresh_tvar()
        s.unify(v, INT)
        assert s.apply(v) == INT

    def test_nested(self):
        s = Subst()
        a, b = fresh_tvar(), fresh_tvar()
        s.unify(TSeq(a), TSeq(TSeq(b)))
        s.unify(b, INT)
        assert s.apply(a) == TSeq(INT)

    def test_function_types(self):
        s = Subst()
        a, r = fresh_tvar(), fresh_tvar()
        s.unify(TFun((a,), r), TFun((INT,), BOOL))
        assert s.apply(a) == INT and s.apply(r) == BOOL

    def test_mismatch(self):
        s = Subst()
        with pytest.raises(TypeCheckError):
            s.unify(INT, BOOL)

    def test_arity_mismatch(self):
        s = Subst()
        with pytest.raises(TypeCheckError):
            s.unify(TFun((INT,), INT), TFun((INT, INT), INT))

    def test_occurs_check(self):
        s = Subst()
        a = fresh_tvar()
        with pytest.raises(TypeCheckError):
            s.unify(a, TSeq(a))

    def test_scalar_only_accepts_int_and_bool(self):
        for t in (INT, BOOL):
            s = Subst()
            v = fresh_tvar(scalar_only=True)
            s.unify(v, t)
            assert s.apply(v) == t

    def test_scalar_only_rejects_seq(self):
        s = Subst()
        v = fresh_tvar(scalar_only=True)
        with pytest.raises(TypeCheckError):
            s.unify(v, TSeq(INT))

    def test_scalar_constraint_propagates(self):
        s = Subst()
        v = fresh_tvar(scalar_only=True)
        w = fresh_tvar()
        s.unify(v, w)
        with pytest.raises(TypeCheckError):
            s.unify(w, TSeq(INT))

    def test_defaulting(self):
        s = Subst()
        a = fresh_tvar()
        assert s.default_unresolved(TSeq(a)) == TSeq(INT)


class TestInstantiate:
    def test_fresh_copies(self):
        a = fresh_tvar()
        t = TFun((a, TSeq(a)), a)
        t2 = instantiate(t)
        assert isinstance(t2, TFun)
        v = t2.params[0]
        assert isinstance(v, T.TVar) and v.id != a.id
        # consistency: same var maps to same fresh var
        assert t2.params[1] == TSeq(v) and t2.result == v

    def test_concrete_unchanged(self):
        t = TFun((INT,), TSeq(BOOL))
        assert instantiate(t) == t


class TestScalarLeaves:
    def test_scalar(self):
        assert scalar_leaves(INT) == [INT]

    def test_nested_seq(self):
        assert scalar_leaves(seq_of(BOOL, 3)) == [BOOL]

    def test_tuple_flattening(self):
        t = TSeq(TTuple((INT, TTuple((BOOL, INT)))))
        assert scalar_leaves(t) == [INT, BOOL, INT]

    def test_seq_of_tuple_of_seq(self):
        t = TSeq(TTuple((INT, TSeq(BOOL))))
        assert scalar_leaves(t) == [INT, BOOL]
