"""Unit tests for the P lexer."""

import pytest

from repro.errors import LexError
from repro.lang.tokens import Token, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasicTokens:
    def test_integer(self):
        assert kinds("42") == [("int", "42")]

    def test_multi_digit_and_zero(self):
        assert kinds("0 007 123456789") == [
            ("int", "0"), ("int", "007"), ("int", "123456789")]

    def test_identifier(self):
        assert kinds("foo _bar x1 a_b") == [
            ("ident", "foo"), ("ident", "_bar"), ("ident", "x1"), ("ident", "a_b")]

    def test_keywords(self):
        for kw in ["fun", "fn", "let", "in", "if", "then", "else", "and",
                   "or", "not", "mod", "div", "true", "false", "int", "bool", "seq"]:
            assert kinds(kw) == [("kw", kw)]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("lettuce functor iffy") == [
            ("ident", "lettuce"), ("ident", "functor"), ("ident", "iffy")]

    def test_eof_token(self):
        toks = tokenize("x")
        assert toks[-1].kind == "eof"


class TestOperators:
    def test_arrow_operators(self):
        assert kinds("<- => -> ..") == [
            ("op", "<-"), ("op", "=>"), ("op", "->"), ("op", "..")]

    def test_comparison_operators(self):
        assert kinds("== != <= >= < >") == [
            ("op", "=="), ("op", "!="), ("op", "<="), ("op", ">="),
            ("op", "<"), ("op", ">")]

    def test_arith_and_punct(self):
        assert kinds("+-*/#()[]{},:;|.") == [
            ("op", c) for c in ["+", "-", "*", "/", "#", "(", ")", "[", "]",
                                "{", "}", ",", ":", ";", "|", "."]]

    def test_maximal_munch_range_vs_dot(self):
        # "1..5" must lex as int, .., int (not int, ., ., int)
        assert kinds("1..5") == [("int", "1"), ("op", ".."), ("int", "5")]

    def test_arrow_vs_less_minus(self):
        assert kinds("x <- y") == [("ident", "x"), ("op", "<-"), ("ident", "y")]
        assert kinds("x < -y") == [
            ("ident", "x"), ("op", "<"), ("op", "-"), ("ident", "y")]


class TestCommentsAndWhitespace:
    def test_comment_to_eol(self):
        assert kinds("x -- this is a comment\ny") == [
            ("ident", "x"), ("ident", "y")]

    def test_comment_at_eof(self):
        assert kinds("x -- trailing") == [("ident", "x")]

    def test_double_minus_inside_expr_is_comment(self):
        # P uses "a - -b" for double negation; "--" always starts a comment
        assert kinds("a - b") == [("ident", "a"), ("op", "-"), ("ident", "b")]

    def test_whitespace_variants(self):
        assert kinds("a\tb\r\nc") == [
            ("ident", "a"), ("ident", "b"), ("ident", "c")]


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_column_after_operator(self):
        toks = tokenize("a+b")
        assert [(t.text, t.col) for t in toks[:-1]] == [("a", 1), ("+", 2), ("b", 3)]


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_error_position(self):
        with pytest.raises(LexError) as ei:
            tokenize("ab\n @")
        assert ei.value.line == 2
        assert ei.value.col == 2

    def test_iterator_snippet(self):
        src = "[x <- [1..n] | odd(x): x*x]"
        texts = [t.text for t in tokenize(src)[:-1]]
        assert texts == ["[", "x", "<-", "[", "1", "..", "n", "]", "|",
                         "odd", "(", "x", ")", ":", "x", "*", "x", "]"]
